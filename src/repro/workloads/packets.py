"""Packet representation.

Packets are logical: the simulator never materialises payload bytes, only
sizes and timestamps. ``tx_ns`` is stamped when the application submits
the packet, so TX-RX loopback latency is ``rx_ns - tx_ns`` in virtual
time — the same definition the paper's DPDK traffic generator uses.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import WorkloadError

_packet_ids = itertools.count()


@dataclass
class Packet:
    """One packet travelling through a simulated NIC interface.

    Attributes:
        size: Payload bytes on the wire.
        tx_ns: Virtual time the application submitted it (set by apps).
        rx_ns: Virtual time the application received it back.
        pkt_id: Unique id, useful in tests and tracing.
        flow: Optional flow label for application workloads.
    """

    size: int
    tx_ns: float = 0.0
    rx_ns: Optional[float] = None
    pkt_id: int = field(default_factory=lambda: next(_packet_ids))
    flow: int = 0

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise WorkloadError(f"packet size must be positive, got {self.size}")

    @property
    def latency_ns(self) -> float:
        """TX-to-RX loopback latency; only valid once received."""
        if self.rx_ns is None:
            raise WorkloadError(f"packet {self.pkt_id} has not been received")
        return self.rx_ns - self.tx_ns
