"""Workloads: packets, traffic generation, load control, distributions."""

from repro.workloads.packets import Packet
from repro.workloads.distributions import (
    AdsObjectSizes,
    GeoObjectSizes,
    ObjectSizeDistribution,
    ZipfKeys,
)

__all__ = [
    "AdsObjectSizes",
    "GeoObjectSizes",
    "ObjectSizeDistribution",
    "Packet",
    "ZipfKeys",
]
