"""Object-size and key-popularity distributions for application studies.

The paper's key-value store evaluation uses two production object-size
distributions from Google (published in the CliqueMap paper): *Ads*,
skewed toward small objects (61% under 100B), and *Geo*, skewed larger
(13% under 100B). The exact traces are proprietary, so we synthesise
log-normal-ish mixtures matching the published small-object fractions
and the 9600B MTU cap (the paper truncates the largest 0.01% of Ads).
Key popularity follows a Zipf distribution with coefficient 0.75 over
1M objects, exactly as in the paper.
"""

from __future__ import annotations

import bisect
import math
import random
from typing import List, Sequence

from repro.errors import WorkloadError


class ObjectSizeDistribution:
    """Piecewise-defined object size sampler.

    Defined by (cumulative_probability, size_upper_bound) breakpoints;
    within a segment sizes are sampled log-uniformly. This gives smooth,
    heavy-tailed distributions whose published percentiles we can pin
    exactly.
    """

    def __init__(
        self,
        name: str,
        breakpoints: Sequence[tuple],
        max_size: int,
    ) -> None:
        if not breakpoints:
            raise WorkloadError("need at least one breakpoint")
        previous = 0.0
        for cum, size in breakpoints:
            if not 0.0 < cum <= 1.0 or cum < previous:
                raise WorkloadError(f"bad cumulative probability {cum}")
            if size <= 0 or size > max_size:
                raise WorkloadError(f"bad size bound {size}")
            previous = cum
        if abs(breakpoints[-1][0] - 1.0) > 1e-9:
            raise WorkloadError("last breakpoint must have cumulative probability 1")
        self.name = name
        self.max_size = max_size
        self._cums = [cum for cum, _size in breakpoints]
        self._sizes = [size for _cum, size in breakpoints]

    def sample(self, rng: random.Random) -> int:
        """Draw one object size in bytes."""
        u = rng.random()
        seg = bisect.bisect_left(self._cums, u)
        if seg >= len(self._sizes):
            seg = len(self._sizes) - 1
        low = 16 if seg == 0 else self._sizes[seg - 1]
        high = self._sizes[seg]
        if high <= low:
            return min(high, self.max_size)
        log_low, log_high = math.log(low), math.log(high)
        value = math.exp(log_low + (log_high - log_low) * rng.random())
        return max(1, min(int(value), self.max_size))

    def fraction_below(self, threshold: int, rng: random.Random, n: int = 20000) -> float:
        """Empirical fraction of sampled objects smaller than ``threshold``."""
        hits = sum(1 for _ in range(n) if self.sample(rng) < threshold)
        return hits / n


def AdsObjectSizes() -> ObjectSizeDistribution:
    """Ads distribution: 61% of objects below 100B; capped at 9600B MTU."""
    return ObjectSizeDistribution(
        name="ads",
        breakpoints=[
            (0.61, 100),     # 61% < 100B (paper, CliqueMap)
            (0.85, 512),
            (0.96, 2048),
            (1.00, 9600),
        ],
        max_size=9600,
    )


def GeoObjectSizes() -> ObjectSizeDistribution:
    """Geo distribution: only 13% of objects below 100B; larger payloads."""
    return ObjectSizeDistribution(
        name="geo",
        breakpoints=[
            (0.13, 100),     # 13% < 100B (paper, CliqueMap)
            (0.45, 512),
            (0.80, 2048),
            (0.95, 4096),
            (1.00, 9600),
        ],
        max_size=9600,
    )


class ZipfKeys:
    """Zipf-distributed key sampler over ``n_keys`` items.

    Uses the standard rejection-free inverse-CDF over precomputed
    cumulative weights. The paper's KV workloads use coefficient 0.75
    over 1M objects; we default to a smaller key space for simulation
    speed (the skew, not the cardinality, drives interface behaviour).
    """

    def __init__(self, n_keys: int, coefficient: float = 0.75) -> None:
        if n_keys <= 0:
            raise WorkloadError("n_keys must be positive")
        if coefficient < 0:
            raise WorkloadError("zipf coefficient must be non-negative")
        self.n_keys = n_keys
        self.coefficient = coefficient
        weights = [1.0 / (k ** coefficient) for k in range(1, n_keys + 1)]
        total = sum(weights)
        cumulative: List[float] = []
        running = 0.0
        for w in weights:
            running += w / total
            cumulative.append(running)
        cumulative[-1] = 1.0
        self._cumulative = cumulative

    def sample(self, rng: random.Random) -> int:
        """Draw a key index in [0, n_keys)."""
        return bisect.bisect_left(self._cumulative, rng.random())

    def hottest_fraction(self, top: int) -> float:
        """Probability mass of the ``top`` most popular keys."""
        if top <= 0:
            return 0.0
        top = min(top, self.n_keys)
        return self._cumulative[top - 1]
