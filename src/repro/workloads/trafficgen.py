"""Loopback traffic generator (the paper's measurement application).

Mirrors the evaluation setup of §5.1: each application thread owns a
private TX/RX queue pair, allocates TX buffers, writes full timestamped
payloads for each burst, polls its RX queue, reads every RX payload, and
frees buffers. Latency is TX-submit to RX-read in virtual time;
throughput is received packets over the measurement window.

Two load modes:

* **closed loop** — at most ``inflight`` packets outstanding; with
  ``inflight=1`` this measures minimum latency.
* **open loop** — batches are offered at a fixed rate; if the interface
  cannot keep up, ring backpressure throttles the generator and the
  achieved rate saturates below the offered rate, tracing out the
  paper's throughput-latency curves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.recovery import RecoveryPolicy
from repro.errors import RingTimeoutError, WorkloadError
from repro.obs.instrument import Instrumented
from repro.sim.rng import make_rng
from repro.sim.stats import Histogram
from repro.workloads.packets import Packet

#: Fixed per-iteration application overhead, cycles (loop, branch, timestamping).
APP_CYCLES_PER_LOOP = 16
APP_CYCLES_PER_PKT = 14


@dataclass
class LoopbackResult:
    """Measurement outcome of one traffic-generator run."""

    sent: int = 0
    received: int = 0
    bytes_received: int = 0
    window_start_ns: float = 0.0
    window_end_ns: float = 0.0
    latency: Histogram = field(default_factory=lambda: Histogram("latency_ns"))
    backpressure_events: int = 0
    # Packets written off under fault recovery: shed at submission
    # (ring timeout) or lost in flight (NIC reset). Always 0 when no
    # recovery policy is configured.
    dropped: int = 0

    @property
    def elapsed_ns(self) -> float:
        return max(0.0, self.window_end_ns - self.window_start_ns)

    @property
    def mpps(self) -> float:
        if self.elapsed_ns <= 0:
            return 0.0
        return self._measured / self.elapsed_ns * 1e3

    @property
    def gbps(self) -> float:
        if self.elapsed_ns <= 0:
            return 0.0
        return self._measured_bytes * 8.0 / self.elapsed_ns

    # Set by the generator: packets/bytes inside the measurement window.
    _measured: int = 0
    _measured_bytes: int = 0

    @property
    def median_latency_ns(self) -> float:
        return self.latency.median

    def __repr__(self) -> str:
        return (
            f"LoopbackResult(rx={self.received}, {self.mpps:.1f}Mpps, "
            f"{self.gbps:.1f}Gbps, median={self.latency.median:.0f}ns)"
        )


class LoopbackApp(Instrumented):
    """One application thread driving one queue pair.

    Args:
        driver: Host-side driver (CC-NIC, unoptimized-UPI, or PCIe —
            they share the same burst API).
        pkt_size: Payload bytes per packet.
        n_packets: Packets to send and receive before stopping.
        tx_batch: Packets submitted per burst.
        rx_batch: Maximum packets polled per burst.
        inflight: Closed-loop window (None for pure open loop).
        offered_mpps: Open-loop offered rate (None for closed loop).
        warmup_fraction: Leading fraction of packets excluded from the
            latency histogram and rate window.
        arrivals: Open-loop arrival process: "paced" (deterministic
            inter-burst gaps) or "poisson" (exponential gaps — burstier,
            with a heavier queueing tail at the same mean rate).
        seed: RNG seed for stochastic arrival processes.
        recovery: Optional :class:`RecoveryPolicy`. When set, the app
            degrades gracefully under injected faults — ring timeouts
            shed the burst, the driver watchdog runs each iteration, and
            packets lost to NIC resets are written off as ``dropped``
            instead of deadlocking the closed-loop window.
    """

    #: Optional :class:`repro.obs.flight.FlightRecorder`; the app closes
    #: each sampled packet's waterfall at its RX-read timestamp.
    flight = None

    #: Optional per-packet rack-fabric charge (``pkt -> extra ns``),
    #: set by topology scenarios: the returned delay is added to each
    #: received packet's delivery time, modelling the round trip through
    #: a :class:`repro.topology.net.Router`. Class-level None so
    #: single-box runs pay zero extra cost.
    route = None

    #: Optional :class:`repro.obs.timeline.TimelineSampler`; the app
    #: feeds post-warmup latencies into its ``latency_ns`` windowed
    #: series. Class-level None: detached runs pay one load + branch.
    timeline = None

    def __init__(
        self,
        driver,
        pkt_size: int,
        n_packets: int,
        tx_batch: int = 32,
        rx_batch: int = 32,
        inflight: Optional[int] = None,
        offered_mpps: Optional[float] = None,
        warmup_fraction: float = 0.1,
        arrivals: str = "paced",
        seed: int = 0,
        recovery: Optional[RecoveryPolicy] = None,
    ) -> None:
        if n_packets <= 0:
            raise WorkloadError("n_packets must be positive")
        if inflight is None and offered_mpps is None:
            raise WorkloadError("need a closed-loop window or an offered rate")
        if inflight is not None and inflight <= 0:
            raise WorkloadError("inflight must be positive")
        if offered_mpps is not None and offered_mpps <= 0:
            raise WorkloadError("offered_mpps must be positive")
        if not 0.0 <= warmup_fraction < 1.0:
            raise WorkloadError("warmup_fraction must be in [0, 1)")
        if arrivals not in ("paced", "poisson"):
            raise WorkloadError(f"unknown arrival process {arrivals!r}")
        self.arrivals = arrivals
        self._rng = make_rng(seed, "trafficgen")
        self.driver = driver
        self.pkt_size = pkt_size
        self.n_packets = n_packets
        self.tx_batch = tx_batch
        self.rx_batch = rx_batch
        self.inflight = inflight
        self.offered_mpps = offered_mpps
        self.warmup = int(n_packets * warmup_fraction)
        self.result = LoopbackResult()
        self.done = False
        self.recovery = recovery
        if recovery is not None:
            driver.configure_recovery(recovery)
        # Loss accounting: submit-side sheds never entered the interface
        # (they cap the offered count); in-flight losses were sent and
        # must refill the closed-loop window. Invariant:
        #   sent + _submit_dropped == offered
        #   received + outstanding + _lost_inflight == sent
        #   dropped == _submit_dropped + _lost_inflight
        self._submit_dropped = 0
        self._lost_inflight = 0
        self._last_received = 0
        self._rx_stall_since = 0.0

    # ------------------------------------------------------------------
    def _obs_component(self) -> str:
        return "trafficgen"

    def _register_metrics(self, registry) -> None:
        result = self.result
        registry.gauge(self.obs_name, "sent", fn=lambda: float(result.sent))
        registry.gauge(self.obs_name, "received", fn=lambda: float(result.received))
        registry.gauge(
            self.obs_name, "bytes_received", fn=lambda: float(result.bytes_received)
        )
        registry.gauge(
            self.obs_name,
            "backpressure_events",
            fn=lambda: float(result.backpressure_events),
        )
        registry.gauge(self.obs_name, "dropped", fn=lambda: float(result.dropped))
        registry.adopt_histogram(self.obs_name, "latency_ns", result.latency)

    # ------------------------------------------------------------------
    def run(self):
        """Generator body: the application polling loop."""
        driver = self.driver
        system = driver.interface.system
        sim = system.sim
        result = self.result
        rx_batch = self.rx_batch
        interval = None
        if self.offered_mpps is not None:
            interval = 1e3 / self.offered_mpps  # ns per packet
        next_send = 0.0
        pending: List[Tuple] = []  # (buffer, packet) ready to submit
        recovery = self.recovery
        # cycles() is pure in its argument: precompute the two per-loop
        # charges instead of recomputing them ~2x per packet.
        loop_ns = system.cycles(APP_CYCLES_PER_LOOP)
        pkt_ns = system.cycles(APP_CYCLES_PER_PKT)
        # Hot-loop hoists: this generator runs ~1.5 iterations per
        # packet, so repeated attribute traffic shows up in profiles.
        n_packets = self.n_packets
        inflight = self.inflight
        tx_batch = self.tx_batch
        pkt_size = self.pkt_size
        warmup = self.warmup
        drv_alloc = driver.alloc
        drv_write_payloads = driver.write_payloads
        drv_read_payloads = driver.read_payloads
        drv_rx_burst = driver.rx_burst
        drv_free = driver.free
        drv_housekeeping = driver.housekeeping
        record_latency = result.latency.record
        route = self.route
        timeline = self.timeline
        sample_latency = None
        if timeline is not None:
            # The open-window list is identity-stable across window
            # closes, so hoisting its append out of the loop is safe.
            sample_latency = timeline.hist("latency_ns").append

        # Every offered packet eventually resolves to received or
        # dropped, so the loop terminates even when faults lose packets.
        while result.received + result.dropped < n_packets:
            ns = loop_ns
            offered = result.sent + self._submit_dropped
            outstanding = result.sent - result.received - self._lost_inflight
            if outstanding < 0:
                outstanding = 0

            # ---- Prepare and submit TX.
            can_send = offered < n_packets and not pending
            if can_send and inflight is not None:
                can_send = outstanding < inflight
            if can_send and interval is not None:
                can_send = sim.now >= next_send
            if can_send:
                burst = min(tx_batch, n_packets - offered)
                if inflight is not None:
                    burst = min(burst, inflight - outstanding)
                sizes = [pkt_size] * burst
                blank = drv_alloc(sizes)
                bufs = blank.bufs
                ns += blank.ns
                ns += drv_write_payloads([(buf, pkt_size) for buf in bufs])
                now = sim.now
                for buf in bufs:
                    ns += pkt_ns
                    pkt = Packet(size=pkt_size, tx_ns=now + ns)
                    pending.append((buf, pkt))
                if interval is not None and bufs:
                    if next_send < sim.now - interval * burst:
                        next_send = sim.now  # don't accumulate unbounded debt
                    if self.arrivals == "poisson":
                        # Exponential inter-arrival per packet, summed
                        # over the burst: same mean rate, bursty.
                        gap = sum(
                            self._rng.expovariate(1.0) * interval
                            for _ in range(burst)
                        )
                        next_send += gap
                    else:
                        next_send += interval * burst

            if pending:
                try:
                    if recovery is not None:
                        tx = driver.tx_submit(pending, base_ns=ns)
                    else:
                        tx = driver.tx_burst(pending, base_ns=ns)
                except RingTimeoutError:
                    # The ring is dead; shed the burst instead of
                    # spinning. The watchdog below revives the queue.
                    ns += drv_free([buf for buf, _pkt in pending])
                    self._submit_dropped += len(pending)
                    result.dropped += len(pending)
                    pending.clear()
                else:
                    ns += tx.ns
                    if tx.count:
                        result.sent += tx.count
                        del pending[: tx.count]
                    if pending:
                        result.backpressure_events += 1

            # ---- Receive.
            rx = drv_rx_burst(rx_batch)
            ns += rx.ns
            entries = rx.entries
            if entries:
                bufs_to_free = []
                ns += drv_read_payloads([buf for _pkt, buf in entries])
                now = sim.now
                for pkt, buf in entries:
                    ns += pkt_ns
                    pkt.rx_ns = now + ns
                    if route is not None:
                        # Rack-fabric round trip: delivery (and latency)
                        # shifts; the local measurement window does not.
                        pkt.rx_ns += route(pkt)
                    result.received += 1
                    result.bytes_received += pkt.size
                    bufs_to_free.append(buf)
                    if result.received > warmup:
                        record_latency(pkt.latency_ns)
                        if sample_latency is not None:
                            sample_latency(pkt.latency_ns)
                        if result._measured == 0:
                            result.window_start_ns = now + ns
                        result._measured += 1
                        result._measured_bytes += pkt.size
                        result.window_end_ns = now + ns
                flight = self.flight
                if flight is not None:
                    for pkt, _buf in entries:
                        if flight.tracked(pkt.pkt_id):
                            flight.packet_finish(pkt.pkt_id, pkt.rx_ns)
                ns += drv_free(bufs_to_free)

            ns += drv_housekeeping()
            if recovery is not None:
                ns += driver.watchdog()
                ns += self._write_off_losses(sim.now)
            yield max(ns, 1.0)
        self.done = True

    def _write_off_losses(self, now: float) -> float:
        """Account packets lost to resets; expire a dead in-flight window.

        Reset losses reported by the driver shrink the outstanding
        count directly. Separately, if nothing has been received for
        ``inflight_timeout_ns`` while packets are outstanding, the whole
        window is written off — those packets evaporated somewhere the
        driver could not see (e.g. on the wire during a reset).
        """
        result = self.result
        lost = self.driver.take_reset_losses()
        if lost:
            outstanding = max(
                0, result.sent - result.received - self._lost_inflight
            )
            lost = min(lost, outstanding)
            self._lost_inflight += lost
            result.dropped += lost
        outstanding = max(0, result.sent - result.received - self._lost_inflight)
        if outstanding and result.received == self._last_received:
            if now - self._rx_stall_since >= self.recovery.inflight_timeout_ns:
                self._lost_inflight += outstanding
                result.dropped += outstanding
                self._rx_stall_since = now
        else:
            self._last_received = result.received
            self._rx_stall_since = now
        return 0.0


def run_loopback(
    system,
    driver,
    pkt_size: int,
    n_packets: int,
    tx_batch: int = 32,
    rx_batch: int = 32,
    inflight: Optional[int] = None,
    offered_mpps: Optional[float] = None,
    max_sim_ns: float = 1e9,
    arrivals: str = "paced",
    seed: int = 0,
    obs=None,
    recovery: Optional[RecoveryPolicy] = None,
    flight=None,
    route=None,
    timeline=None,
) -> LoopbackResult:
    """Convenience wrapper: spawn one app on a started interface and run."""
    app = LoopbackApp(
        driver,
        pkt_size=pkt_size,
        n_packets=n_packets,
        tx_batch=tx_batch,
        rx_batch=rx_batch,
        inflight=inflight,
        offered_mpps=offered_mpps,
        arrivals=arrivals,
        seed=seed,
        recovery=recovery,
    )
    if obs is not None and obs.enabled:
        app.instrument(obs)
    if flight is not None:
        app.flight = flight
    if route is not None:
        app.route = route
    if timeline is not None:
        app.timeline = timeline
    system.sim.spawn(app.run(), name="loopback-app")
    system.sim.run(until=max_sim_ns, stop_when=lambda: app.done)
    return app.result
