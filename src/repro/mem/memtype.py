"""x86 memory types relevant to host-device communication.

Only three types matter to the paper: write-back (the normal cacheable,
coherent path), write-combining (streaming stores through a finite buffer
file, used for PCIe MMIO data paths), and uncacheable (strongly ordered,
one access in flight — used for doorbell registers).
"""

from __future__ import annotations

import enum


class MemType(enum.Enum):
    """Memory type of a region, controlling which data path accesses use."""

    WRITEBACK = "WB"
    WRITE_COMBINING = "WC"
    UNCACHEABLE = "UC"

    @property
    def is_cacheable(self) -> bool:
        """Only write-back memory participates in the coherence protocol."""
        return self is MemType.WRITEBACK

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value
