"""A flat physical address space carved into regions.

The space is a bump allocator over a single integer address range.
Regions never overlap and are always cache-line aligned, so the
coherence layer can map any line number back to its region (for homing
and memory-type decisions) with a sorted-list lookup.
"""

from __future__ import annotations

import bisect
from typing import List, Optional

from repro.errors import AddressSpaceError
from repro.mem.address import CACHE_LINE_SIZE
from repro.mem.memtype import MemType
from repro.mem.region import Region
from repro.units import align_up


class AddressSpace:
    """Allocates non-overlapping, line-aligned :class:`Region` objects."""

    def __init__(self, base: int = 0x1000_0000) -> None:
        self._cursor = align_up(base, CACHE_LINE_SIZE)
        self._regions: List[Region] = []
        self._bases: List[int] = []
        self._ends: List[int] = []

    def allocate(
        self,
        name: str,
        size: int,
        home: int,
        memtype: MemType = MemType.WRITEBACK,
        align: int = CACHE_LINE_SIZE,
    ) -> Region:
        """Carve a new region off the top of the space.

        Args:
            name: Diagnostic label.
            size: Bytes; rounded up to a whole number of cache lines.
            home: Socket index owning the backing memory.
            memtype: Data-path type for accesses to this region.
            align: Base alignment (>= cache line).

        Returns:
            The newly created region.
        """
        if size <= 0:
            raise AddressSpaceError(f"cannot allocate {size} bytes for {name!r}")
        if align < CACHE_LINE_SIZE or align % CACHE_LINE_SIZE:
            raise AddressSpaceError(f"alignment {align} must be a multiple of 64")
        base = align_up(self._cursor, align)
        rounded = align_up(size, CACHE_LINE_SIZE)
        region = Region(name=name, base=base, size=rounded, home=home, memtype=memtype)
        self._cursor = base + rounded
        index = bisect.bisect_left(self._bases, base)
        self._bases.insert(index, base)
        self._regions.insert(index, region)
        self._ends.insert(index, region.end)
        return region

    def region_of(self, addr: int) -> Region:
        """Region containing byte address ``addr``.

        Raises:
            AddressSpaceError: if the address falls outside every region.
        """
        region = self.try_region_of(addr)
        if region is None:
            raise AddressSpaceError(f"address {addr:#x} is not mapped")
        return region

    def try_region_of(self, addr: int) -> Optional[Region]:
        """Like :meth:`region_of` but returns None for unmapped addresses."""
        # Hot path (one call per modelled access): the parallel _ends
        # list avoids a Region.contains() method call per lookup.
        index = bisect.bisect_right(self._bases, addr) - 1
        if index < 0 or addr >= self._ends[index]:
            return None
        return self._regions[index]

    @property
    def regions(self) -> List[Region]:
        """All regions, ordered by base address."""
        return list(self._regions)

    def __repr__(self) -> str:
        return f"<AddressSpace regions={len(self._regions)} cursor={self._cursor:#x}>"
