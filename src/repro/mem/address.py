"""Cache-line arithmetic on integer byte addresses."""

from __future__ import annotations

from typing import List

CACHE_LINE_SIZE = 64


def line_index(addr: int) -> int:
    """Cache-line number containing byte address ``addr``."""
    return addr // CACHE_LINE_SIZE


def line_base(addr: int) -> int:
    """Byte address of the start of the line containing ``addr``."""
    return addr - (addr % CACHE_LINE_SIZE)


def line_offset(addr: int) -> int:
    """Offset of ``addr`` within its cache line."""
    return addr % CACHE_LINE_SIZE


def lines_spanned(addr: int, size: int) -> List[int]:
    """All cache-line numbers touched by ``size`` bytes at ``addr``."""
    if size <= 0:
        return []
    first = line_index(addr)
    last = line_index(addr + size - 1)
    return list(range(first, last + 1))
