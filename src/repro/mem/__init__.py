"""Physical address space model: regions, homing, memory types."""

from repro.mem.address import CACHE_LINE_SIZE, line_base, line_index, line_offset, lines_spanned
from repro.mem.memtype import MemType
from repro.mem.region import Region
from repro.mem.space import AddressSpace

__all__ = [
    "AddressSpace",
    "CACHE_LINE_SIZE",
    "MemType",
    "Region",
    "line_base",
    "line_index",
    "line_offset",
    "lines_spanned",
]
