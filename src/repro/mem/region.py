"""Named memory regions with a home socket and memory type."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AddressSpaceError
from repro.mem.memtype import MemType


@dataclass(frozen=True)
class Region:
    """A contiguous range of the physical address space.

    Attributes:
        name: Label used in diagnostics ("tx_ring", "pool", ...).
        base: First byte address (cache-line aligned).
        size: Length in bytes.
        home: Socket index whose memory controller owns these addresses.
        memtype: WB / WC / UC data-path selector.
    """

    name: str
    base: int
    size: int
    home: int
    memtype: MemType = field(default=MemType.WRITEBACK)
    #: One past the last byte address; computed in ``__post_init__`` as
    #: a plain attribute because hot prefetch-bound checks read it per
    #: cache-line access and a property call there is measurable.
    end: int = field(init=False, compare=False, repr=False, default=0)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise AddressSpaceError(f"region {self.name!r} has non-positive size {self.size}")
        if self.base < 0:
            raise AddressSpaceError(f"region {self.name!r} has negative base {self.base}")
        if self.base % 64 != 0:
            raise AddressSpaceError(
                f"region {self.name!r} base {self.base:#x} is not cache-line aligned"
            )
        object.__setattr__(self, "end", self.base + self.size)

    def contains(self, addr: int, size: int = 1) -> bool:
        """True if ``[addr, addr+size)`` lies entirely within this region."""
        return self.base <= addr and addr + size <= self.end

    def offset_of(self, addr: int) -> int:
        """Byte offset of ``addr`` from the region base."""
        if not self.contains(addr):
            raise AddressSpaceError(
                f"address {addr:#x} not in region {self.name!r} "
                f"[{self.base:#x}, {self.end:#x})"
            )
        return addr - self.base

    def __repr__(self) -> str:
        return (
            f"Region({self.name!r}, base={self.base:#x}, size={self.size}, "
            f"home=S{self.home}, {self.memtype.value})"
        )
