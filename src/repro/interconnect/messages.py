"""Message classes that cross an interconnect link.

These mirror the coherence/IO traffic the paper measures: data reads
(READ), reads-for-ownership (RFO), writebacks, invalidations and their
acks, and the PCIe-side MMIO/DMA transactions. Each class has a nominal
payload size used for bandwidth accounting; data-carrying classes move a
full cache line (plus per-message protocol header overhead charged by the
link).
"""

from __future__ import annotations

import enum

from repro.mem.address import CACHE_LINE_SIZE


class MessageClass(enum.Enum):
    """Kind of interconnect message, with its payload size in bytes."""

    # Coherent traffic (UPI/CXL-style).
    READ = "read"                  # data response: one cache line
    RFO = "rfo"                    # read-for-ownership: one cache line
    INVALIDATE = "invalidate"      # ownership transfer without data
    WRITEBACK = "writeback"        # dirty-line eviction to remote home
    SNOOP = "snoop"                # control-only probe
    ACK = "ack"                    # control-only completion
    SPECULATIVE_MEM_READ = "spec_mem_read"  # spurious reader-homed DRAM read
    PREFETCH = "prefetch"          # hardware prefetch of one line

    # PCIe traffic.
    MMIO_READ = "mmio_read"        # non-posted read request + completion
    MMIO_WRITE = "mmio_write"      # posted write (up to one WC buffer)
    DMA_READ = "dma_read"          # device-initiated read of host memory
    DMA_WRITE = "dma_write"        # device-initiated write of host memory

    @property
    def carries_line(self) -> bool:
        """True for messages whose payload is a full cache line."""
        return self in _LINE_CARRIERS

    def payload_bytes(self, explicit: int = 0) -> int:
        """Payload size for bandwidth accounting.

        ``explicit`` overrides the default for variable-size classes
        (MMIO and DMA transfers).
        """
        if explicit:
            return explicit
        if self in _LINE_CARRIERS:
            return CACHE_LINE_SIZE
        return 0


_LINE_CARRIERS = frozenset(
    {
        MessageClass.READ,
        MessageClass.RFO,
        MessageClass.WRITEBACK,
        MessageClass.SPECULATIVE_MEM_READ,
        MessageClass.PREFETCH,
    }
)
