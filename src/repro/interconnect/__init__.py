"""Interconnect cost models: generic links, UPI, PCIe."""

from repro.interconnect.link import Link, LinkStats
from repro.interconnect.messages import MessageClass

__all__ = ["Link", "LinkStats", "MessageClass"]
