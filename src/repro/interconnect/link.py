"""Generic point-to-point link cost model.

A :class:`Link` charges three costs per message:

* **propagation latency** — fixed one-way wire + protocol-stack delay;
* **serialization** — ``(payload + header_overhead) / bandwidth``;
* **queueing** — congestion-induced waiting, modelled from measured
  utilization: each direction tracks the serialization demand offered
  over a short trailing window and charges an M/D/1-style wait
  ``ser * rho / (1 - rho)`` based on the previous window's utilization.
  This is stable under the out-of-order local timestamps that burst
  accesses generate (a backlog-horizon model is not) and produces
  natural saturation behaviour: as offered load approaches line rate,
  waits grow without bound and throttle the offering actors.

The same class models UPI (both directions symmetric, high bandwidth)
and a PCIe lane group. Utilization statistics feed the analysis layer's
bandwidth-share model for multi-core scaling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import InterconnectError
from repro.interconnect.messages import MessageClass
from repro.sim.engine import Simulator


@dataclass
class LinkStats:
    """Aggregate per-direction traffic counters."""

    messages: int = 0
    payload_bytes: int = 0
    wire_bytes: int = 0
    busy_ns: float = 0.0
    # One [count, wire_bytes] cell per message class: note() is on the
    # per-message hot path, so both counters share a single dict lookup.
    _per_class: Dict[str, list] = field(default_factory=dict)

    def note(self, cls: MessageClass, payload: int, wire: int, ser_ns: float) -> None:
        self.messages += 1
        self.payload_bytes += payload
        self.wire_bytes += wire
        self.busy_ns += ser_ns
        entry = self._per_class.get(cls.value)
        if entry is None:
            self._per_class[cls.value] = entry = [0, 0]
        entry[0] += 1
        entry[1] += wire

    @property
    def by_class(self) -> Dict[str, int]:
        """Per-class message counts (snapshot view)."""
        return {k: v[0] for k, v in self._per_class.items()}

    @property
    def wire_by_class(self) -> Dict[str, int]:
        """Per-class wire bytes (snapshot view)."""
        return {k: v[1] for k, v in self._per_class.items()}


class Link:
    """A full-duplex link between two endpoints (sockets or host/device).

    Args:
        sim: Simulator providing the clock used for queueing decisions.
        name: Diagnostic label ("upi", "pcie-e810", ...).
        latency_ns: One-way propagation latency per message.
        bandwidth_bytes_per_ns: Per-direction serialization rate.
        header_overhead: Protocol header bytes added to each message's
            wire size (UPI flit headers, PCIe TLP headers).
    """

    #: Optional :class:`repro.faults.FaultInjector`. Class-level None so
    #: fault-free runs carry zero extra per-message cost or state.
    faults = None

    def __init__(
        self,
        sim: Simulator,
        name: str,
        latency_ns: float,
        bandwidth_bytes_per_ns: float,
        header_overhead: int = 12,
    ) -> None:
        if latency_ns < 0:
            raise InterconnectError(f"link {name!r}: negative latency")
        if bandwidth_bytes_per_ns <= 0:
            raise InterconnectError(f"link {name!r}: bandwidth must be positive")
        self.sim = sim
        self.name = name
        self.latency_ns = latency_ns
        self.bandwidth = bandwidth_bytes_per_ns
        self.header_overhead = header_overhead
        # Utilization-window state per direction: serialization demand
        # accumulated in the current wall-time window, split by actor so
        # an actor is never queued behind its own (self-paced) demand.
        self._win_busy = [0.0, 0.0]
        self._win_by: list = [{}, {}]
        self._win_start = [0.0, 0.0]
        self._rho = [0.0, 0.0]
        self._rho_by: list = [{}, {}]
        self.stats = (LinkStats(), LinkStats())

    # ------------------------------------------------------------------
    def one_way(
        self,
        cls: MessageClass,
        direction: int,
        payload_bytes: Optional[int] = None,
        charge_queueing: bool = True,
        actor: str = "anon",
    ) -> float:
        """Send one message; return the delay until it is delivered.

        Args:
            cls: Message class (sets default payload size).
            direction: 0 or 1; which half of the duplex pair carries it.
            payload_bytes: Override payload size (MMIO/DMA bodies).
            charge_queueing: When False the message still consumes
                bandwidth but the caller is not delayed by queueing
                (used for prefetches and speculative reads that are not
                on the requester's critical path).

        Returns:
            Nanoseconds from "now" until delivery at the far end.
        """
        if direction not in (0, 1):
            raise InterconnectError(f"direction must be 0 or 1, got {direction}")
        payload = cls.payload_bytes(payload_bytes or 0)
        wire = payload + self.header_overhead
        ser = wire / self.bandwidth
        disrupt = 0.0
        if self.faults is not None:
            ser *= self.faults.link_ser_scale(self.name, self.sim.now)
            disrupt = self._fault_disruptions(cls, direction, ser, wire, actor)
        wait = self._enqueue(direction, ser, actor)
        self.stats[direction].note(cls, payload, wire, ser)
        if charge_queueing:
            return wait + ser + self.latency_ns + disrupt
        return ser + self.latency_ns + disrupt

    def occupy(
        self,
        cls: MessageClass,
        direction: int,
        payload_bytes: Optional[int] = None,
        inflate: float = 1.0,
        charge_queueing: bool = True,
        now: Optional[float] = None,
        actor: str = "anon",
    ) -> float:
        """Consume bandwidth for one message; return only the queueing delay.

        Used by the coherence fabric, whose zero-load latencies already
        include propagation and serialization: the fabric adds just the
        congestion-induced wait returned here. ``inflate`` scales the
        wire size to model inefficient encodings (non-temporal
        partial-line streams). ``actor`` names the issuing agent for the
        per-actor utilization accounting (``now`` is accepted for
        compatibility but windows roll on simulator time).
        """
        if direction not in (0, 1):
            raise InterconnectError(f"direction must be 0 or 1, got {direction}")
        if inflate < 1.0:
            raise InterconnectError(f"inflate must be >= 1.0, got {inflate}")
        payload = cls.payload_bytes(payload_bytes or 0)
        wire = int((payload + self.header_overhead) * inflate)
        ser = wire / self.bandwidth
        disrupt = 0.0
        if self.faults is not None:
            ser *= self.faults.link_ser_scale(self.name, self.sim.now)
            disrupt = self._fault_disruptions(cls, direction, ser, wire, actor)
        wait = self._enqueue(direction, ser, actor)
        self.stats[direction].note(cls, payload, wire, ser)
        if charge_queueing:
            return wait + disrupt
        return disrupt

    def _fault_disruptions(
        self, cls: MessageClass, direction: int, ser: float, wire: int, actor: str
    ) -> float:
        """Draw one per-message link fault; return the extra delivery delay.

        Coherent links never surface loss to the protocol layer: a
        dropped flit is retransmitted by the link layer, so a "drop"
        manifests as extra latency plus a second (wasted) copy on the
        wire. Duplicates likewise burn bandwidth without delaying the
        original. Both wasted copies are booked through ``_enqueue`` and
        counted in the stats with zero payload bytes.
        """
        fault = self.faults.link_decide(self.name, self.sim.now)
        if fault is None:
            return 0.0
        if fault.retransmit or fault.duplicate:
            self._enqueue(direction, ser, actor)
            self.stats[direction].note(cls, 0, wire, ser)
        if fault.retransmit:
            return fault.extra_ns + ser
        return fault.extra_ns

    #: Utilization-measurement window, ns.
    WINDOW_NS = 2000.0
    #: Utilization cap: keeps the M/D/1 wait finite at saturation.
    RHO_CAP = 0.97

    def _enqueue(self, direction: int, ser: float, actor: str) -> float:
        """Record ``ser`` ns of demand by ``actor``; return the wait.

        Windows roll on wall (simulator) time; demand is accounted per
        actor. The wait charged to a message is an M/D/1-style
        ``ser * rho / (1 - rho)`` where rho is the utilization offered
        by *other* actors — an actor's own stream is already paced by
        the latency charged to it, so it never queues behind itself.
        """
        t = self.sim.now
        elapsed = t - self._win_start[direction]
        if elapsed >= self.WINDOW_NS:
            self._rho[direction] = min(
                self.RHO_CAP, self._win_busy[direction] / elapsed
            )
            self._rho_by[direction] = {
                a: min(self.RHO_CAP, busy / elapsed)
                for a, busy in self._win_by[direction].items()
            }
            self._win_start[direction] = t
            self._win_busy[direction] = 0.0
            self._win_by[direction] = {}
        self._win_busy[direction] += ser
        by = self._win_by[direction]
        by[actor] = by.get(actor, 0.0) + ser
        settled_others = max(
            0.0, self._rho[direction] - self._rho_by[direction].get(actor, 0.0)
        )
        live_elapsed = max(self.WINDOW_NS / 4, t - self._win_start[direction] + ser)
        live_others = (self._win_busy[direction] - by[actor]) / live_elapsed
        rho_others = min(self.RHO_CAP, max(settled_others, live_others))
        if rho_others <= 0.0:
            return 0.0
        # Two congestion regimes, take whichever binds less:
        #  * M/D/1 residual wait — right for a light actor slipping
        #    messages between heavy streams;
        #  * proportional fair share — right at saturation, where each
        #    heavy stream gets capacity * (its demand / total demand)
        #    and the M/D/1 pole would overshoot.
        mm1 = ser * rho_others / (1.0 - rho_others)
        own = max(by[actor], ser)
        total = self._win_busy[direction]
        settled_total = self._rho[direction]
        live_total = total / live_elapsed
        rho_total = min(1.0, max(settled_total, live_total))
        fair = ser * max(0.0, total / own - 1.0) * rho_total * rho_total
        return min(mm1, fair)

    def round_trip(
        self,
        request: MessageClass,
        response: MessageClass,
        direction: int,
        request_bytes: Optional[int] = None,
        response_bytes: Optional[int] = None,
    ) -> float:
        """Request out on ``direction``, response back on the other half."""
        out = self.one_way(request, direction, request_bytes)
        back = self.one_way(response, 1 - direction, response_bytes)
        return out + back

    # ------------------------------------------------------------------
    def utilization(self, direction: int, window_ns: float) -> float:
        """Fraction of ``window_ns`` this direction spent serializing."""
        if window_ns <= 0:
            return 0.0
        return min(1.0, self.stats[direction].busy_ns / window_ns)

    def total_wire_bytes(self) -> int:
        """Wire bytes in both directions combined."""
        return self.stats[0].wire_bytes + self.stats[1].wire_bytes

    def reset_stats(self) -> None:
        """Clear traffic statistics and the utilization-window state.

        Resetting the window state matters for reused links: a settled
        rho estimate or partially filled demand window from the previous
        experiment would otherwise leak queueing delay (and the per-class
        byte counters would double-count) into the next one.
        """
        self.stats = (LinkStats(), LinkStats())
        now = self.sim.now
        self._win_busy = [0.0, 0.0]
        self._win_by = [{}, {}]
        self._win_start = [now, now]
        self._rho = [0.0, 0.0]
        self._rho_by = [{}, {}]

    def rho(self, direction: int) -> float:
        """Most recently settled utilization estimate for a direction."""
        return self._rho[direction]

    def scaled(self, latency_factor: float = 1.0, bandwidth_factor: float = 1.0) -> None:
        """Rescale link performance in place (Fig 21 sensitivity knob)."""
        if latency_factor <= 0 or bandwidth_factor <= 0:
            raise InterconnectError("scale factors must be positive")
        self.latency_ns *= latency_factor
        self.bandwidth *= bandwidth_factor

    def __repr__(self) -> str:
        return (
            f"<Link {self.name!r} lat={self.latency_ns:.1f}ns "
            f"bw={self.bandwidth * 8:.0f}Gbps>"
        )
