"""Generic point-to-point link cost model.

A :class:`Link` charges three costs per message:

* **propagation latency** — fixed one-way wire + protocol-stack delay;
* **serialization** — ``(payload + header_overhead) / bandwidth``;
* **queueing** — congestion-induced waiting, modelled from measured
  utilization: each direction tracks the serialization demand offered
  over a short trailing window and charges an M/D/1-style wait
  ``ser * rho / (1 - rho)`` based on the previous window's utilization.
  This is stable under the out-of-order local timestamps that burst
  accesses generate (a backlog-horizon model is not) and produces
  natural saturation behaviour: as offered load approaches line rate,
  waits grow without bound and throttle the offering actors.

The same class models UPI (both directions symmetric, high bandwidth)
and a PCIe lane group. Utilization statistics feed the analysis layer's
bandwidth-share model for multi-core scaling.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.errors import InterconnectError
from repro.interconnect.messages import MessageClass
from repro.sim.engine import Simulator


class LinkStats:
    """Aggregate per-direction traffic counters.

    The four scalar counters live in the mutable list :attr:`agg`
    (``[messages, payload_bytes, wire_bytes, busy_ns]``) so batched
    senders (:meth:`Link.occupy_pair`) can bump them with plain list
    stores; the named attributes stay available as read-only properties
    for snapshot-time consumers.
    """

    __slots__ = ("agg", "_per_class")

    def __init__(self) -> None:
        self.agg: list = [0, 0, 0, 0.0]
        # One [count, wire_bytes] cell per message class: note() is on
        # the per-message hot path, so both counters share a single
        # dict lookup.
        self._per_class: Dict[str, list] = {}

    def note(self, cls: MessageClass, payload: int, wire: int, ser_ns: float) -> None:
        agg = self.agg
        agg[0] += 1
        agg[1] += payload
        agg[2] += wire
        agg[3] += ser_ns
        entry = self.class_cell(cls)
        entry[0] += 1
        entry[1] += wire

    @property
    def messages(self) -> int:
        return self.agg[0]

    @property
    def payload_bytes(self) -> int:
        return self.agg[1]

    @property
    def wire_bytes(self) -> int:
        return self.agg[2]

    @property
    def busy_ns(self) -> float:
        return self.agg[3]

    @property
    def by_class(self) -> Dict[str, int]:
        """Per-class message counts (snapshot view)."""
        return {k: v[0] for k, v in self._per_class.items()}

    @property
    def wire_by_class(self) -> Dict[str, int]:
        """Per-class wire bytes (snapshot view)."""
        return {k: v[1] for k, v in self._per_class.items()}

    def class_cell(self, cls: MessageClass) -> list:
        """Get-or-create the mutable ``[count, wire_bytes]`` cell of a class."""
        entry = self._per_class.get(cls.value)
        if entry is None:
            self._per_class[cls.value] = entry = [0, 0]
        return entry

    def snapshot(self) -> Dict:
        """The canonical dict form of one direction's counters.

        Every consumer of per-direction stats — shard snapshots, the
        topology per-edge export — uses this shape, so the keys are part
        of the merged-document fingerprint contract:
        ``messages``/``payload``/``wire``/``busy`` merge as sums and the
        two ``*_class`` maps merge key-wise (see
        :func:`repro.shard.merge._merge_link`).
        """
        return {
            "messages": self.agg[0],
            "payload": self.agg[1],
            "wire": self.agg[2],
            "busy": self.agg[3],
            "by_class": self.by_class,
            "wire_by_class": self.wire_by_class,
        }

    def to_doc(self) -> Dict:
        """Alias of :meth:`snapshot` (JSON-safe plain dict)."""
        return self.snapshot()


class Link:
    """A full-duplex link between two endpoints (sockets or host/device).

    Args:
        sim: Simulator providing the clock used for queueing decisions.
        name: Diagnostic label ("upi", "pcie-e810", ...).
        latency_ns: One-way propagation latency per message.
        bandwidth_bytes_per_ns: Per-direction serialization rate.
        header_overhead: Protocol header bytes added to each message's
            wire size (UPI flit headers, PCIe TLP headers).
    """

    #: Optional :class:`repro.faults.FaultInjector`. Class-level None so
    #: fault-free runs carry zero extra per-message cost or state.
    faults = None

    def __init__(
        self,
        sim: Simulator,
        name: str,
        latency_ns: float,
        bandwidth_bytes_per_ns: float,
        header_overhead: int = 12,
    ) -> None:
        if latency_ns < 0:
            raise InterconnectError(f"link {name!r}: negative latency")
        if bandwidth_bytes_per_ns <= 0:
            raise InterconnectError(f"link {name!r}: bandwidth must be positive")
        self.sim = sim
        self.name = name
        self.latency_ns = latency_ns
        self.bandwidth = bandwidth_bytes_per_ns
        self.header_overhead = header_overhead
        # Utilization-window state per direction: serialization demand
        # accumulated in the current wall-time window, split by actor so
        # an actor is never queued behind its own (self-paced) demand.
        self._win_busy = [0.0, 0.0]
        self._win_by: list = [{}, {}]
        self._win_start = [0.0, 0.0]
        self._rho = [0.0, 0.0]
        self._rho_by: list = [{}, {}]
        self.stats = (LinkStats(), LinkStats())
        #: Invoked (no args) by :meth:`scaled` so callers holding
        #: precomputed wire/serialization figures can invalidate them.
        self.on_scaled: Optional[Callable[[], None]] = None

    # ------------------------------------------------------------------
    def one_way(
        self,
        cls: MessageClass,
        direction: int,
        payload_bytes: Optional[int] = None,
        charge_queueing: bool = True,
        actor: str = "anon",
    ) -> float:
        """Send one message; return the delay until it is delivered.

        Args:
            cls: Message class (sets default payload size).
            direction: 0 or 1; which half of the duplex pair carries it.
            payload_bytes: Override payload size (MMIO/DMA bodies).
            charge_queueing: When False the message still consumes
                bandwidth but the caller is not delayed by queueing
                (used for prefetches and speculative reads that are not
                on the requester's critical path).

        Returns:
            Nanoseconds from "now" until delivery at the far end.
        """
        if direction not in (0, 1):
            raise InterconnectError(f"direction must be 0 or 1, got {direction}")
        payload = cls.payload_bytes(payload_bytes or 0)
        wire = payload + self.header_overhead
        ser = wire / self.bandwidth
        disrupt = 0.0
        if self.faults is not None:
            ser *= self.faults.link_ser_scale(self.name, self.sim.now)
            disrupt = self._fault_disruptions(cls, direction, ser, wire, actor)
        wait = self._enqueue(direction, ser, actor)
        self.stats[direction].note(cls, payload, wire, ser)
        if charge_queueing:
            return wait + ser + self.latency_ns + disrupt
        return ser + self.latency_ns + disrupt

    def occupy(
        self,
        cls: MessageClass,
        direction: int,
        payload_bytes: Optional[int] = None,
        inflate: float = 1.0,
        charge_queueing: bool = True,
        now: Optional[float] = None,
        actor: str = "anon",
    ) -> float:
        """Consume bandwidth for one message; return only the queueing delay.

        Used by the coherence fabric, whose zero-load latencies already
        include propagation and serialization: the fabric adds just the
        congestion-induced wait returned here. ``inflate`` scales the
        wire size to model inefficient encodings (non-temporal
        partial-line streams). ``actor`` names the issuing agent for the
        per-actor utilization accounting (``now`` is accepted for
        compatibility but windows roll on simulator time).
        """
        if direction not in (0, 1):
            raise InterconnectError(f"direction must be 0 or 1, got {direction}")
        if inflate < 1.0:
            raise InterconnectError(f"inflate must be >= 1.0, got {inflate}")
        payload = cls.payload_bytes(payload_bytes or 0)
        wire = int((payload + self.header_overhead) * inflate)
        ser = wire / self.bandwidth
        disrupt = 0.0
        if self.faults is not None:
            ser *= self.faults.link_ser_scale(self.name, self.sim.now)
            disrupt = self._fault_disruptions(cls, direction, ser, wire, actor)
        wait = self._enqueue(direction, ser, actor)
        self.stats[direction].note(cls, payload, wire, ser)
        if charge_queueing:
            return wait + disrupt
        return disrupt

    def _fault_disruptions(
        self, cls: MessageClass, direction: int, ser: float, wire: int, actor: str
    ) -> float:
        """Draw one per-message link fault; return the extra delivery delay.

        Coherent links never surface loss to the protocol layer: a
        dropped flit is retransmitted by the link layer, so a "drop"
        manifests as extra latency plus a second (wasted) copy on the
        wire. Duplicates likewise burn bandwidth without delaying the
        original. Both wasted copies are booked through ``_enqueue`` and
        counted in the stats with zero payload bytes.
        """
        # repro: allow(zero-cost-hooks) every caller guards on self.faults
        fault = self.faults.link_decide(self.name, self.sim.now)
        if fault is None:
            return 0.0
        if fault.retransmit or fault.duplicate:
            self._enqueue(direction, ser, actor)
            self.stats[direction].note(cls, 0, wire, ser)
        if fault.retransmit:
            return fault.extra_ns + ser
        return fault.extra_ns

    #: Utilization-measurement window, ns.
    WINDOW_NS = 2000.0
    #: Utilization cap: keeps the M/D/1 wait finite at saturation.
    RHO_CAP = 0.97

    def _enqueue(self, direction: int, ser: float, actor: str) -> float:
        """Record ``ser`` ns of demand by ``actor``; return the wait.

        Windows roll on wall (simulator) time; demand is accounted per
        actor. The wait charged to a message is an M/D/1-style
        ``ser * rho / (1 - rho)`` where rho is the utilization offered
        by *other* actors — an actor's own stream is already paced by
        the latency charged to it, so it never queues behind itself.
        """
        t = self.sim.now
        elapsed = t - self._win_start[direction]
        if elapsed >= self.WINDOW_NS:
            self._rho[direction] = min(
                self.RHO_CAP, self._win_busy[direction] / elapsed
            )
            self._rho_by[direction] = {
                a: min(self.RHO_CAP, busy / elapsed)
                for a, busy in self._win_by[direction].items()
            }
            self._win_start[direction] = t
            self._win_busy[direction] = 0.0
            self._win_by[direction] = {}
        self._win_busy[direction] += ser
        by = self._win_by[direction]
        by[actor] = by.get(actor, 0.0) + ser
        settled_others = max(
            0.0, self._rho[direction] - self._rho_by[direction].get(actor, 0.0)
        )
        if settled_others <= 0.0 and self._win_busy[direction] == by[actor]:
            # Sole actor, nothing settled from others: live_others and
            # the clipped settled share are both exactly 0.0.
            return 0.0
        live_elapsed = max(self.WINDOW_NS / 4, t - self._win_start[direction] + ser)
        live_others = (self._win_busy[direction] - by[actor]) / live_elapsed
        rho_others = min(self.RHO_CAP, max(settled_others, live_others))
        if rho_others <= 0.0:
            return 0.0
        # Two congestion regimes, take whichever binds less:
        #  * M/D/1 residual wait — right for a light actor slipping
        #    messages between heavy streams;
        #  * proportional fair share — right at saturation, where each
        #    heavy stream gets capacity * (its demand / total demand)
        #    and the M/D/1 pole would overshoot.
        mm1 = ser * rho_others / (1.0 - rho_others)
        own = max(by[actor], ser)
        total = self._win_busy[direction]
        settled_total = self._rho[direction]
        live_total = total / live_elapsed
        rho_total = min(1.0, max(settled_total, live_total))
        fair = ser * max(0.0, total / own - 1.0) * rho_total * rho_total
        return min(mm1, fair)

    def occupy_pair(self, plan: tuple, actor: str, base: float = 0.0) -> float:
        """Charge a flattened two-message plan; return ``base`` + waits.

        The coherence fabric's memoized transition plans always pair one
        request message with one response on the opposite half of the
        duplex link, so the whole plan is a flat 16-field tuple — two
        ``(direction, cls, payload, wire, ser, charge_queueing, agg,
        class_cell)`` rows concatenated — that unpacks in one step and
        runs straight-line. ``wire``/``ser`` are resolved against the
        current bandwidth and header configuration and ``agg``/
        ``class_cell`` are the live statistics cells of each direction's
        :class:`LinkStats` (the fabric rebuilds its plans via
        :attr:`on_scaled` when either goes stale — both :meth:`scaled`
        and :meth:`reset_stats` fire it). The accounting is
        bit-identical to calling :meth:`occupy` once per row — same
        window rolls, same per-actor demand updates, same wait
        arithmetic in the same evaluation order — batching away only
        the per-call validation, payload resolution and attribute
        traffic. Rows with ``charge_queueing`` False still consume
        window demand but add nothing to the returned total. With
        faults attached this falls back to per-message :meth:`occupy`
        so fault draws keep their order.
        """
        (d0, cls0, payload0, wire0, ser0, charge0, agg0, cell0,
         d1, cls1, payload1, wire1, ser1, charge1, agg1, cell1) = plan
        if self.faults is not None:
            wait = self.occupy(
                cls0, d0, payload_bytes=payload0 or None,
                charge_queueing=charge0, actor=actor,
            )
            if charge0:
                base += wait
            wait = self.occupy(
                cls1, d1, payload_bytes=payload1 or None,
                charge_queueing=charge1, actor=actor,
            )
            if charge1:
                base += wait
            return base
        window = self.WINDOW_NS
        cap = self.RHO_CAP
        t = self.sim.now
        win_busy = self._win_busy
        win_by = self._win_by
        win_start = self._win_start
        rho_settled = self._rho
        rho_by = self._rho_by
        live_floor = window / 4
        # --- request row
        elapsed = t - win_start[d0]
        if elapsed >= window:
            rho_settled[d0] = min(cap, win_busy[d0] / elapsed)
            rho_by[d0] = {
                a: min(cap, busy / elapsed)
                for a, busy in win_by[d0].items()
            }
            win_start[d0] = t
            win_busy[d0] = 0.0
            win_by[d0] = {}
        busy = win_busy[d0] + ser0
        win_busy[d0] = busy
        by = win_by[d0]
        try:
            mine = by[actor] + ser0
        except KeyError:
            mine = ser0
        by[actor] = mine
        agg0[0] += 1
        agg0[1] += payload0
        agg0[2] += wire0
        agg0[3] += ser0
        cell0[0] += 1
        cell0[1] += wire0
        if charge0:
            try:
                settled_others = rho_settled[d0] - rho_by[d0][actor]
            except KeyError:
                settled_others = rho_settled[d0]
            # Sole actor in the live window with nothing settled from
            # others: live_others is exactly 0.0 and the clipped
            # settled share is 0.0, so the wait would be 0.0 — skip
            # its arithmetic entirely (the dominant uncontended case).
            if busy != mine or settled_others > 0.0:
                if settled_others < 0.0:
                    settled_others = 0.0
                live_elapsed = t - win_start[d0] + ser0
                if live_elapsed < live_floor:
                    live_elapsed = live_floor
                live_others = (busy - mine) / live_elapsed
                rho_others = settled_others if settled_others >= live_others else live_others
                if rho_others > cap:
                    rho_others = cap
                if rho_others > 0.0:
                    mm1 = ser0 * rho_others / (1.0 - rho_others)
                    own = mine if mine >= ser0 else ser0
                    settled_total = rho_settled[d0]
                    live_total = busy / live_elapsed
                    rho_total = settled_total if settled_total >= live_total else live_total
                    if rho_total > 1.0:
                        rho_total = 1.0
                    over = busy / own - 1.0
                    if over < 0.0:
                        over = 0.0
                    fair = ser0 * over * rho_total * rho_total
                    base += mm1 if mm1 <= fair else fair
        # --- response row (opposite direction, so state is independent)
        elapsed = t - win_start[d1]
        if elapsed >= window:
            rho_settled[d1] = min(cap, win_busy[d1] / elapsed)
            rho_by[d1] = {
                a: min(cap, busy / elapsed)
                for a, busy in win_by[d1].items()
            }
            win_start[d1] = t
            win_busy[d1] = 0.0
            win_by[d1] = {}
        busy = win_busy[d1] + ser1
        win_busy[d1] = busy
        by = win_by[d1]
        try:
            mine = by[actor] + ser1
        except KeyError:
            mine = ser1
        by[actor] = mine
        agg1[0] += 1
        agg1[1] += payload1
        agg1[2] += wire1
        agg1[3] += ser1
        cell1[0] += 1
        cell1[1] += wire1
        if charge1:
            try:
                settled_others = rho_settled[d1] - rho_by[d1][actor]
            except KeyError:
                settled_others = rho_settled[d1]
            if busy != mine or settled_others > 0.0:
                if settled_others < 0.0:
                    settled_others = 0.0
                live_elapsed = t - win_start[d1] + ser1
                if live_elapsed < live_floor:
                    live_elapsed = live_floor
                live_others = (busy - mine) / live_elapsed
                rho_others = settled_others if settled_others >= live_others else live_others
                if rho_others > cap:
                    rho_others = cap
                if rho_others > 0.0:
                    mm1 = ser1 * rho_others / (1.0 - rho_others)
                    own = mine if mine >= ser1 else ser1
                    settled_total = rho_settled[d1]
                    live_total = busy / live_elapsed
                    rho_total = settled_total if settled_total >= live_total else live_total
                    if rho_total > 1.0:
                        rho_total = 1.0
                    over = busy / own - 1.0
                    if over < 0.0:
                        over = 0.0
                    fair = ser1 * over * rho_total * rho_total
                    base += mm1 if mm1 <= fair else fair
        return base

    def plan_one_way(self, cls: MessageClass, direction: int,
                     payload_bytes: Optional[int] = None) -> tuple:
        """Build a memoized per-hop charge row for :meth:`one_way`.

        Returns the flat 14-field tuple ``(link, direction, payload,
        wire, ser, latency, ser+latency, agg, class_cell, win_busy,
        win_by, win_start, rho_settled, rho_by)`` — the resolved wire
        figures plus the live statistics and utilization-window cells a
        caller needs to replay :meth:`one_way`'s accounting without the
        per-call validation, payload resolution, and class-cell dict
        lookup (see :meth:`repro.topology.net.Router.charge`). The row
        embeds mutable state that :meth:`scaled` and :meth:`reset_stats`
        replace, so holders must drop it when :attr:`on_scaled` fires;
        fault attachment needs no invalidation because consumers are
        expected to re-check :attr:`faults` per charge and fall back to
        :meth:`one_way`.
        """
        if direction not in (0, 1):
            raise InterconnectError(f"direction must be 0 or 1, got {direction}")
        payload = cls.payload_bytes(payload_bytes or 0)
        wire = payload + self.header_overhead
        ser = wire / self.bandwidth
        stats = self.stats[direction]
        return (
            self, direction, payload, wire, ser, self.latency_ns,
            ser + self.latency_ns, stats.agg, stats.class_cell(cls),
            self._win_busy, self._win_by, self._win_start,
            self._rho, self._rho_by,
        )

    def round_trip(
        self,
        request: MessageClass,
        response: MessageClass,
        direction: int,
        request_bytes: Optional[int] = None,
        response_bytes: Optional[int] = None,
    ) -> float:
        """Request out on ``direction``, response back on the other half."""
        out = self.one_way(request, direction, request_bytes)
        back = self.one_way(response, 1 - direction, response_bytes)
        return out + back

    # ------------------------------------------------------------------
    def utilization(self, direction: int, window_ns: float) -> float:
        """Fraction of ``window_ns`` this direction spent serializing."""
        if window_ns <= 0:
            return 0.0
        return min(1.0, self.stats[direction].busy_ns / window_ns)

    def total_wire_bytes(self) -> int:
        """Wire bytes in both directions combined."""
        return self.stats[0].wire_bytes + self.stats[1].wire_bytes

    def reset_stats(self) -> None:
        """Clear traffic statistics and the utilization-window state.

        Resetting the window state matters for reused links: a settled
        rho estimate or partially filled demand window from the previous
        experiment would otherwise leak queueing delay (and the per-class
        byte counters would double-count) into the next one.
        """
        self.stats = (LinkStats(), LinkStats())
        now = self.sim.now
        self._win_busy = [0.0, 0.0]
        self._win_by = [{}, {}]
        self._win_start = [now, now]
        self._rho = [0.0, 0.0]
        self._rho_by = [{}, {}]
        # Cached occupy_pair plans embed the replaced stats cells.
        if self.on_scaled is not None:
            self.on_scaled()

    def rho(self, direction: int) -> float:
        """Most recently settled utilization estimate for a direction."""
        return self._rho[direction]

    def scaled(self, latency_factor: float = 1.0, bandwidth_factor: float = 1.0) -> None:
        """Rescale link performance in place (Fig 21 sensitivity knob)."""
        if latency_factor <= 0 or bandwidth_factor <= 0:
            raise InterconnectError("scale factors must be positive")
        self.latency_ns *= latency_factor
        self.bandwidth *= bandwidth_factor
        if self.on_scaled is not None:
            self.on_scaled()

    def __repr__(self) -> str:
        return (
            f"<Link {self.name!r} lat={self.latency_ns:.1f}ns "
            f"bw={self.bandwidth * 8:.0f}Gbps>"
        )
