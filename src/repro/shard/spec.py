"""Declarative, serializable scenario specifications.

A :class:`ScenarioSpec` is the portable description of one simulation
run: platform, interface, workload family, counts, seeds, and fault
plan. It replaces the closed-over scenario functions the perf harness
used to hardcode — a spec is a frozen dataclass of plain values, so it
pickles across process boundaries, round-trips through JSON
(:meth:`ScenarioSpec.to_doc` / :meth:`ScenarioSpec.from_doc`), and can
be constructed by any runner: the inline executor, the sharded
multiprocessing runner (:mod:`repro.shard.runner`), or a future
multi-host dispatcher.

Sharding model (conservative parallel DES over queue pairs)
-----------------------------------------------------------

CC-NIC's unit of independence is the queue pair: descriptor rings,
signal lines, and buffer pools are per-QP, homed per-socket, and never
shared between pairs. A spec with ``shards = n`` therefore describes a
scenario whose workload is *partitioned* into ``n`` per-QP shards —
:meth:`ScenarioSpec.shard_specs` splits the packet/op counts, assigns
disjoint key ranges, and derives an independent seed family per shard
via :func:`repro.sim.rng.derive_seed`. The partition is a property of
the **scenario**, not of the machine executing it: however many worker
processes run the shards, the per-shard runs — and therefore the merged
metrics — are identical.

A spec naming a registered :mod:`repro.topology` graph partitions
per *host* instead: the partition width equals the topology's host
count and shard ``i`` simulates host ``i`` (``host_index``), including
that host's slice of the key space and its routes through the rack
fabric.

The registry
------------

Named specs live in a process-global registry. The built-in scenarios
(``loopback_64b``, ``kv_zipf``, ``faults_canned``, ``kv_zipf_1m``) are
registered at import; users register their own with
:func:`register_scenario` (or ``python -m repro perf --register
your.module``, which imports a module for its registration side
effects) and every runner picks them up by name.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ConfigError
from repro.sim.rng import derive_seed

#: Workload families a spec can describe.
WORKLOADS = ("loopback", "kv")
#: Platform presets a spec can name.
PLATFORMS = ("icx", "spr")
#: Interface comparison points (mirrors analysis.loopback.InterfaceKind).
INTERFACES = ("ccnic", "unopt", "e810", "cx6")


@dataclass(frozen=True)
class ScenarioSpec:
    """One named, parameterized, picklable scenario description.

    Packet-workload fields (``pkt_size`` .. ``rx_batch``) apply when
    ``workload == "loopback"``; KV fields (``distribution`` ..
    ``key_base``) when ``workload == "kv"``. ``n_packets_quick`` /
    ``n_ops_quick`` are the CI-smoke sizes used when a runner asks for
    the quick variant; they scale the count, never the seeds, so quick
    and full runs share the same stream derivation.
    """

    name: str
    workload: str = "loopback"
    platform: str = "icx"
    interface: str = "ccnic"
    description: str = ""
    # -- packet (loopback) workload ------------------------------------
    pkt_size: int = 64
    n_packets: int = 50000
    n_packets_quick: Optional[int] = None
    inflight: Optional[int] = 64
    offered_mpps: Optional[float] = None
    tx_batch: int = 32
    rx_batch: int = 32
    # -- kv workload ----------------------------------------------------
    distribution: str = "ads"
    n_ops: int = 500
    n_ops_quick: Optional[int] = None
    n_keys: int = 4096
    offered_mops: float = 50.0
    zipf_coefficient: float = 0.75
    key_base: int = 0
    # -- shared ---------------------------------------------------------
    seed: int = 7
    fault_plan: Optional[str] = None   # None, "canned", or a plan path
    fault_seed: int = 7
    shards: int = 1                    # logical partition width
    # -- multi-host topology (repro.topology) ---------------------------
    topology: Optional[str] = None     # registered TopologySpec name
    host_index: Optional[int] = None   # which topology host a shard models
    n_clients: int = 0                 # simulated client hosts behind the ToR

    # ------------------------------------------------------------------
    def validate(self) -> "ScenarioSpec":
        """Raise :class:`ConfigError` on an inconsistent spec."""
        if not self.name:
            raise ConfigError("scenario spec needs a name")
        if self.workload not in WORKLOADS:
            raise ConfigError(
                f"unknown workload {self.workload!r} "
                f"(choose from {', '.join(WORKLOADS)})"
            )
        if self.platform not in PLATFORMS:
            raise ConfigError(
                f"unknown platform {self.platform!r} "
                f"(choose from {', '.join(PLATFORMS)})"
            )
        if self.interface not in INTERFACES:
            raise ConfigError(
                f"unknown interface {self.interface!r} "
                f"(choose from {', '.join(INTERFACES)})"
            )
        if self.shards < 1:
            raise ConfigError("shards must be >= 1")
        if self.workload == "loopback":
            if self.n_packets < self.shards:
                raise ConfigError(
                    f"scenario {self.name!r}: n_packets ({self.n_packets}) "
                    f"cannot cover the partition ({self.shards} shards)"
                )
            if self.pkt_size <= 0:
                raise ConfigError("pkt_size must be positive")
        else:
            if self.n_ops < self.shards:
                raise ConfigError(
                    f"scenario {self.name!r}: n_ops ({self.n_ops}) "
                    f"cannot cover the partition ({self.shards} shards)"
                )
            if self.n_keys < self.shards:
                raise ConfigError(
                    f"scenario {self.name!r}: n_keys ({self.n_keys}) "
                    f"cannot cover the partition ({self.shards} shards)"
                )
            if self.distribution not in ("ads", "geo"):
                raise ConfigError(
                    f"unknown distribution {self.distribution!r} (ads or geo)"
                )
        self._validate_topology()
        return self

    def _validate_topology(self) -> None:
        if self.n_clients < 0:
            raise ConfigError("n_clients must be >= 0")
        if self.topology is None:
            if self.host_index is not None:
                raise ConfigError(
                    f"scenario {self.name!r}: host_index requires a topology"
                )
            return
        # Lazy: repro.topology registers its scenarios through this
        # module, so the import must not run at module load time.
        from repro.topology.registry import topology as _topology

        topo = _topology(self.topology)
        n_hosts = len(topo.host_names())
        if self.host_index is None:
            # A whole-scenario spec partitions per host: shard i models
            # host i, so the partition width is the host count.
            if self.shards != n_hosts:
                raise ConfigError(
                    f"scenario {self.name!r}: topology {self.topology!r} has "
                    f"{n_hosts} host(s), so the partition needs shards == "
                    f"{n_hosts} (got {self.shards})"
                )
        elif not 0 <= self.host_index < n_hosts:
            raise ConfigError(
                f"scenario {self.name!r}: host_index {self.host_index} out of "
                f"range for topology {self.topology!r} ({n_hosts} host(s))"
            )
        if self.workload == "kv" and self.n_clients < 1:
            raise ConfigError(
                f"scenario {self.name!r}: a kv topology scenario needs "
                f"n_clients >= 1 (the simulated client hosts behind the ToR)"
            )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_doc(self) -> Dict:
        """Plain-dict form (JSON-safe); drops default-valued fields."""
        doc: Dict = {}
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if field.name == "name" or value != field.default:
                doc[field.name] = value
        return doc

    @classmethod
    def from_doc(cls, doc: Dict) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_doc` output."""
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = set(doc) - known
        if unknown:
            raise ConfigError(
                f"unknown scenario spec field(s): {', '.join(sorted(unknown))}"
            )
        return cls(**doc).validate()

    def replace(self, **changes) -> "ScenarioSpec":
        """A copy with ``changes`` applied (and re-validated)."""
        return dataclasses.replace(self, **changes).validate()

    # ------------------------------------------------------------------
    # Effective sizes
    # ------------------------------------------------------------------
    def count(self, quick: bool = False) -> int:
        """Effective packet/op count for the quick or full variant."""
        if self.workload == "loopback":
            if quick and self.n_packets_quick is not None:
                return self.n_packets_quick
            return self.n_packets
        if quick and self.n_ops_quick is not None:
            return self.n_ops_quick
        return self.n_ops

    @property
    def total_flows(self) -> int:
        """Distinct flows the scenario's workload draws from."""
        if self.workload == "kv":
            return self.n_keys
        return 1  # one loopback flow per queue pair

    # ------------------------------------------------------------------
    # Partitioning
    # ------------------------------------------------------------------
    def shard_label(self, index: int) -> str:
        """Stable label naming one shard of this scenario."""
        return f"{self.name}/shard{index}"

    def shard_specs(self) -> List["ScenarioSpec"]:
        """The per-shard specs of this scenario's logical partition.

        Counts are split evenly with the remainder spread over the
        lowest shard indices; KV key spaces become disjoint ranges
        (``key_base`` prefix sums). Seeds are *derived*, not split:
        shard ``i`` seeds come from ``derive_seed(seed, label)`` so
        every shard owns an independent, reproducible stream family
        regardless of worker count or execution order.
        """
        self.validate()
        if self.shards == 1:
            return [self]
        specs: List[ScenarioSpec] = []
        key_cursor = self.key_base
        for index in range(self.shards):
            label = self.shard_label(index)
            changes: Dict = {
                "name": label,
                "shards": 1,
                "seed": derive_seed(self.seed, label),
                "fault_seed": derive_seed(self.fault_seed, label + "/faults"),
                "n_packets": _split(self.n_packets, self.shards, index),
                "n_ops": _split(self.n_ops, self.shards, index),
            }
            if self.topology is not None:
                # Per-host partition: shard i simulates topology host i.
                changes["host_index"] = index
            if self.n_packets_quick is not None:
                changes["n_packets_quick"] = _split(
                    self.n_packets_quick, self.shards, index
                )
            if self.n_ops_quick is not None:
                changes["n_ops_quick"] = _split(self.n_ops_quick, self.shards, index)
            if self.workload == "kv":
                shard_keys = _split(self.n_keys, self.shards, index)
                changes["n_keys"] = shard_keys
                changes["key_base"] = key_cursor
                key_cursor += shard_keys
            if self.offered_mpps is not None:
                changes["offered_mpps"] = self.offered_mpps / self.shards
            specs.append(dataclasses.replace(self, **changes))
        return specs


def _split(total: int, parts: int, index: int) -> int:
    """Size of piece ``index`` when ``total`` splits into ``parts``."""
    base, remainder = divmod(total, parts)
    return base + (1 if index < remainder else 0)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec, replace: bool = False) -> ScenarioSpec:
    """Add a named spec to the registry; returns it for chaining.

    Registration is how user scenarios reach the runners: any module
    that calls this at import time makes its scenarios runnable via
    ``repro perf --scenario <name>`` (see ``--register``).
    """
    spec.validate()
    if not replace and spec.name in _REGISTRY:
        raise ConfigError(f"scenario {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def unregister_scenario(name: str) -> None:
    """Remove a registered spec (primarily for tests)."""
    _REGISTRY.pop(name, None)


def scenario(name: str) -> ScenarioSpec:
    """Look up a registered spec by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown scenario {name!r} (choose from {', '.join(scenario_names())})"
        )


def scenario_names() -> List[str]:
    """Registered scenario names, in registration order."""
    return list(_REGISTRY)


def scenario_descriptions() -> Dict[str, str]:
    """``{name: description}`` for every registered scenario."""
    return {name: spec.description for name, spec in _REGISTRY.items()}


# ----------------------------------------------------------------------
# Built-in scenarios
# ----------------------------------------------------------------------
#: Logical partition width of the built-in shardable scenarios: eight
#: queue pairs, one per application thread of the paper's single-socket
#: evaluation sweep. Fixed per scenario so the merged fingerprint is
#: invariant under the worker count executing it.
DEFAULT_SHARDS = 8

register_scenario(ScenarioSpec(
    name="loopback_64b",
    workload="loopback",
    description="closed-loop 64B CC-NIC loopback",
    pkt_size=64,
    n_packets=50000,
    n_packets_quick=4000,
    inflight=64,
    shards=DEFAULT_SHARDS,
))

register_scenario(ScenarioSpec(
    name="kv_zipf",
    workload="kv",
    description="KV server thread, Zipf Ads objects",
    n_ops=500,
    n_ops_quick=120,
    n_keys=4096,
    offered_mops=50.0,
    shards=DEFAULT_SHARDS,
))

register_scenario(ScenarioSpec(
    name="faults_canned",
    workload="loopback",
    description="canned fault plan + recovery",
    pkt_size=256,
    n_packets=6000,
    n_packets_quick=1200,
    inflight=64,
    fault_plan="canned",
    shards=DEFAULT_SHARDS,
))

register_scenario(ScenarioSpec(
    name="kv_zipf_1m",
    workload="kv",
    description="million-flow Zipf KV service, 32 queue-pair shards",
    n_ops=9600,
    n_ops_quick=1600,
    n_keys=1 << 20,
    offered_mops=50.0,
    shards=32,
))
