"""Sharded parallel simulation behind the declarative ScenarioSpec API.

``repro.shard`` splits a scenario into per-queue-pair shards, executes
them across worker processes, and merges the per-shard metrics into one
deterministic, fingerprint-stable document. The enabling abstraction is
:class:`ScenarioSpec` — a frozen, picklable description of a run
(platform, interface, workload, counts, seeds, fault plan) registered
under a name and runnable by every harness in the repo::

    from repro.shard import run_sharded, scenario

    run = run_sharded("loopback_64b", workers=4)
    assert run.fingerprint == run_sharded("loopback_64b", workers=1).fingerprint

The partition width is a property of the *scenario* (``spec.shards``),
not of the machine: any worker count executes the identical shard set,
so merged fingerprints are invariant under parallelism. See
:mod:`repro.shard.spec` for the partition/seed-derivation rules,
:mod:`repro.shard.runner` for the conservative-DES lookahead argument,
and :mod:`repro.shard.merge` for the order-independent reduction.
"""

from repro.shard.merge import (
    MERGED_SCHEMA,
    fingerprint,
    merge_metrics,
    merge_results,
)
from repro.shard.runner import (
    ShardPlan,
    ShardRun,
    default_workers,
    execute_spec,
    lookahead_ns,
    run_shard,
    run_sharded,
)
from repro.shard.spec import (
    DEFAULT_SHARDS,
    INTERFACES,
    PLATFORMS,
    WORKLOADS,
    ScenarioSpec,
    register_scenario,
    scenario,
    scenario_descriptions,
    scenario_names,
    unregister_scenario,
)

__all__ = [
    "DEFAULT_SHARDS",
    "INTERFACES",
    "MERGED_SCHEMA",
    "PLATFORMS",
    "ScenarioSpec",
    "ShardPlan",
    "ShardRun",
    "WORKLOADS",
    "default_workers",
    "execute_spec",
    "fingerprint",
    "lookahead_ns",
    "merge_metrics",
    "merge_results",
    "register_scenario",
    "run_shard",
    "run_sharded",
    "scenario",
    "scenario_descriptions",
    "scenario_names",
    "unregister_scenario",
]
