"""Deterministic, order-independent merge of per-shard results.

Shard workers return plain-dict results (see
:func:`repro.shard.runner.run_shard`); this module folds them into one
*merged document* whose fingerprint is a pure function of the scenario
partition — independent of worker count, completion order, or which
process ran which shard.

Two properties make that hold:

* **Canonical reduction order.** Results are sorted by shard index
  before any arithmetic, every dict is reduced over sorted keys, and
  latency quantiles are recomputed exactly from the concatenation of
  the shards' raw samples. Float summation order is therefore fixed,
  so the merge is bit-stable, not merely value-stable.
* **No host state.** Wall-clock times, worker counts and RSS never
  enter the merged document; only simulation-determined values do.

The merged snapshot uses the same reduction semantics the hardware
would: counters and link byte/message tallies are sums over queue
pairs, throughput (``mpps``/``mops``) is the aggregate of concurrent
per-QP rates, simulated time is the maximum over shards (the shards run
concurrently in virtual time), and latency percentiles come from the
pooled sample population.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Sequence

from repro.errors import ConfigError
from repro.sim.stats import Histogram

#: Schema tag of the merged document.
MERGED_SCHEMA = "repro.shard/merged-v1"

#: Snapshot keys that merge as a max over shards (concurrent virtual time).
_MAX_KEYS = ("now", "sim_ns")
#: Snapshot keys recomputed exactly from pooled raw samples.
_QUANTILE_KEYS = ("median_ns", "p99_ns")


def fingerprint(doc: Dict) -> str:
    """Stable short hash of a merged document (or any JSON-safe dict)."""
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def _merge_scalar_maps(maps: Sequence[Dict[str, float]]) -> Dict[str, float]:
    """Key-wise sum of flat ``{name: number}`` dicts, sorted key order."""
    names = sorted({name for m in maps for name in m})
    return {name: sum(m[name] for m in maps if name in m) for name in names}


def _merge_link(stats: Sequence[List[Dict]]) -> List[Dict]:
    """Element-wise sum of per-direction link stat rows."""
    directions = max((len(rows) for rows in stats), default=0)
    merged: List[Dict] = []
    for direction in range(directions):
        rows = [r[direction] for r in stats if direction < len(r)]
        entry: Dict = {}
        for key in ("messages", "payload", "wire", "busy"):
            entry[key] = sum(row.get(key, 0) for row in rows)
        for key in ("by_class", "wire_by_class"):
            entry[key] = _merge_scalar_maps([row.get(key, {}) for row in rows])
        merged.append(entry)
    return merged


def _merge_snapshots(snapshots: Sequence[Dict]) -> Dict:
    """Fold per-shard scenario snapshots into one, per-key semantics."""
    keys = sorted({key for snap in snapshots for key in snap})
    merged: Dict = {}
    for key in keys:
        values = [snap[key] for snap in snapshots if key in snap]
        if key in _QUANTILE_KEYS:
            continue  # recomputed from pooled samples by merge_results
        if key in _MAX_KEYS:
            merged[key] = max(values)
        elif key == "link":
            merged[key] = _merge_link(values)
        elif values and isinstance(values[0], dict):
            merged[key] = _merge_scalar_maps(values)
        else:
            merged[key] = sum(values)
    return merged


def merge_results(results: Sequence[Dict], scenario: str, lookahead_ns: float) -> Dict:
    """Fold shard result dicts into the canonical merged document.

    ``results`` may arrive in any order; they are validated to form a
    complete partition (indices ``0..n-1``, no duplicates) and sorted by
    shard index before reduction. Raises :class:`ConfigError` on a
    damaged partition — a missing shard must never silently shrink the
    merged metrics.
    """
    if not results:
        raise ConfigError(f"scenario {scenario!r}: no shard results to merge")
    by_index: Dict[int, Dict] = {}
    for result in results:
        index = result.get("index")
        if not isinstance(index, int):
            raise ConfigError(f"scenario {scenario!r}: shard result without an index")
        if index in by_index:
            raise ConfigError(f"scenario {scenario!r}: duplicate shard index {index}")
        by_index[index] = result
    n = len(by_index)
    missing = sorted(set(range(n)) - set(by_index))
    if missing:
        raise ConfigError(
            f"scenario {scenario!r}: incomplete partition, missing shard "
            f"index(es) {missing} of {n}"
        )
    ordered = [by_index[index] for index in range(n)]

    snapshots = [result["snapshot"] for result in ordered]
    merged = _merge_snapshots(snapshots)

    latency = Histogram("merged_latency")
    for result in ordered:
        latency.extend(result.get("latency_ns", ()))
    if latency.count:
        merged["median_ns"] = latency.percentile(50)
        merged["p99_ns"] = latency.percentile(99)
        merged["latency_count"] = latency.count

    return {
        "schema": MERGED_SCHEMA,
        "scenario": scenario,
        "n_shards": n,
        "lookahead_ns": lookahead_ns,
        "shards": {f"{index:03d}": snapshots[index] for index in range(n)},
        "merged": merged,
    }


def merge_timelines(results: Sequence[Dict]) -> Dict:
    """Deterministic window-aligned merge of per-shard timeline docs.

    Shards run concurrently in virtual time and share one window grid
    (``interval_ns`` is part of the run configuration and window 0
    starts at t=0), so merging is a per-window reduction in shard-index
    order: counter and gauge series sum (a shard that ended before a
    window contributes 0), histogram windows pool their raw samples and
    recompute p50/p99 exactly — order statistics are a function of the
    sample multiset, so the merged document is bit-identical for any
    worker count. Watchdog findings are evaluated on the merged series.

    Returns ``None`` when no shard carried a timeline. Raises
    :class:`ConfigError` on misaligned grids (differing intervals, or a
    ring that already evicted windows — merge needs the full run).
    """
    ordered = sorted(
        (r for r in results if r.get("timeline")),
        key=lambda r: r["index"],
    )
    if not ordered:
        return None
    docs = [r["timeline"] for r in ordered]
    interval = docs[0]["interval_ns"]
    for doc in docs:
        if doc["interval_ns"] != interval:
            raise ConfigError(
                f"timeline merge: interval mismatch "
                f"({doc['interval_ns']} != {interval})"
            )
        if doc.get("start", 0) != 0:
            raise ConfigError(
                "timeline merge: shard evicted early windows "
                f"(start={doc['start']}); raise the sampler capacity"
            )
    windows = max(doc["windows"] for doc in docs)

    def merged_series(kind: str) -> Dict[str, List[float]]:
        names = sorted({name for doc in docs for name in doc.get(kind, {})})
        out: Dict[str, List[float]] = {}
        for name in names:
            rows = [doc.get(kind, {}).get(name, []) for doc in docs]
            out[name] = [
                sum(row[w] for row in rows if w < len(row)) for w in range(windows)
            ]
        return out

    histograms: Dict[str, List] = {}
    hist_names = sorted({name for doc in docs for name in doc.get("histograms", {})})
    for name in hist_names:
        points: List = []
        for w in range(windows):
            pooled = Histogram(name)
            for doc in docs:
                samples = doc.get("samples", {}).get(name, [])
                if w < len(samples):
                    pooled.extend(samples[w])
            if pooled.count:
                points.append(
                    {
                        "count": pooled.count,
                        "p50": pooled.percentile(50),
                        "p99": pooled.percentile(99),
                    }
                )
            else:
                points.append(None)
        histograms[name] = points

    merged = {
        "schema": docs[0]["schema"],
        "interval_ns": interval,
        "start": 0,
        "windows": windows,
        "n_shards": len(ordered),
        "counters": merged_series("counters"),
        "gauges": merged_series("gauges"),
        "histograms": histograms,
    }
    from repro.obs.timeline import run_watchdogs

    merged["findings"] = run_watchdogs(merged)
    return merged


def merge_metrics(results: Sequence[Dict]) -> Dict[str, Dict[str, float]]:
    """Merged :class:`~repro.obs.MetricRegistry` snapshot over shards.

    Sorted by shard index first so the weighted-mean reductions in
    :func:`repro.obs.merge_snapshots` see a canonical input order.
    Shards that ran without metrics contribute nothing.
    """
    from repro.obs import merge_snapshots

    ordered = sorted(
        (r for r in results if r.get("metrics")),
        key=lambda r: r["index"],
    )
    return merge_snapshots([r["metrics"] for r in ordered])
