"""Execute :class:`~repro.shard.spec.ScenarioSpec` partitions.

Three layers, each usable on its own:

* :func:`execute_spec` — run ONE spec (a whole scenario or a single
  shard of one) in this process and return a plain-dict result:
  counts, simulation snapshot, raw latency samples, and optionally a
  metric-registry snapshot. Everything in the dict is picklable and
  JSON-safe, so results cross process boundaries untouched.
* :func:`run_shard` — the multiprocessing entry point: rebuilds a spec
  from its ``to_doc`` form and runs it. Top-level by design so it
  pickles under both ``fork`` and ``spawn`` start methods.
* :func:`run_sharded` — partition a scenario with
  :meth:`~repro.shard.spec.ScenarioSpec.shard_specs`, execute the
  shards across a process pool (or sequentially for ``workers=1``),
  and fold the results with :mod:`repro.shard.merge`.

Lookahead
---------

The partition is conservative parallel DES in its degenerate best
case: CC-NIC queue pairs share no simulation state, so shards exchange
no events at all, and cross-QP coupling (shared interconnect bandwidth,
LLC contention) is modeled analytically after the fact by
:mod:`repro.analysis.scaling`. The lookahead bound recorded in the
:class:`ShardPlan` — the one-way latency of the host-NIC interconnect —
is the earliest any cross-shard event *could* arrive if one existed;
since none does, every shard may safely run its full virtual-time
window without synchronizing. The bound is recorded, not enforced:
it documents why the parallel run is exactly equivalent to the
sequential one.
"""

from __future__ import annotations

import gc
import multiprocessing
import os
import sys
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

from repro.analysis.loopback import InterfaceKind, build_interface, run_point
from repro.core.recovery import RecoveryPolicy
from repro.errors import ConfigError
from repro.platform import icx, spr
from repro.shard.merge import (
    fingerprint,
    merge_metrics,
    merge_results,
    merge_timelines,
)
from repro.shard.spec import ScenarioSpec, scenario


# ----------------------------------------------------------------------
# Spec execution (one process)
# ----------------------------------------------------------------------
def _platform_spec(name: str):
    if name == "icx":
        return icx()
    if name == "spr":
        return spr()
    raise ConfigError(f"unknown platform {name!r}")


def _make_faults(spec: ScenarioSpec):
    if spec.fault_plan is None:
        return None
    from repro.faults import FaultInjector, FaultPlan

    if spec.fault_plan == "canned":
        plan = FaultPlan.canned()
    else:
        plan = FaultPlan.load(spec.fault_plan)
    return FaultInjector(plan, seed=spec.fault_seed)


def lookahead_ns(spec: ScenarioSpec) -> float:
    """Conservative-DES lookahead: the earliest cross-shard arrival.

    For single-box scenarios that is the host-NIC interconnect's one-way
    latency. A topology scenario's shards are whole hosts, so the bound
    tightens to the fastest rack edge when one is faster — the soonest
    any cross-host message *could* arrive (none does: per-host fabric
    occupancy is charged shard-locally, see ``docs/TOPOLOGY.md``).
    """
    platform = _platform_spec(spec.platform)
    kind = InterfaceKind(spec.interface)
    if kind.is_coherent:
        base = platform.upi_latency_ns
    else:
        base = platform.nic(kind.value).pcie_one_way_ns
    if spec.topology is not None:
        from repro.topology.registry import topology

        edge_min = min(e.latency_ns for e in topology(spec.topology).edges)
        base = min(base, edge_min)
    return base


def _attach_topology(spec: ScenarioSpec, setup, faults, obs):
    """Build the shard's rack fabric, or None for single-box specs.

    Each shard instantiates its own :class:`TopologyNet` on its own
    simulator: the per-edge occupancy a shard observes is the traffic it
    charges itself, which is what keeps shards independent (and the
    merged per-edge stats are the element-wise sums over hosts).
    """
    if spec.topology is None:
        return None
    from repro.topology.net import TopologyNet
    from repro.topology.registry import topology

    net = TopologyNet(setup.system.sim, topology(spec.topology))
    if faults is not None:
        net.attach_faults(faults)
    if obs is not None and obs.enabled:
        net.publish_metrics(obs.metrics)
    return net


def _topology_endpoints(spec: ScenarioSpec, net) -> tuple:
    """(host, tor) node names this shard's traffic terminates on."""
    hosts = net.spec.host_names()
    index = spec.host_index if spec.host_index is not None else 0
    return hosts[index], net.spec.tor_name()


def _loopback_route(net, host: str, tor: str):
    """Per-packet rack round trip: host -> ToR -> host, charge-at-RX."""
    from repro.interconnect.messages import MessageClass

    charge = net.router.charge

    def route(pkt) -> float:
        out = charge(host, tor, MessageClass.DMA_WRITE, pkt.size, actor=host)
        back = charge(tor, host, MessageClass.DMA_WRITE, pkt.size, actor=tor)
        return out + back

    return route


def _make_timeline(timeline_interval, setup, net):
    """Build and attach a sampler, or None when timelines are off."""
    if timeline_interval is None:
        return None
    from repro.obs.timeline import TimelineSampler, attach_timeline

    sampler = TimelineSampler(interval_ns=timeline_interval)
    attach_timeline(sampler, setup, net=net)
    return sampler


def _finish_timeline(sampler, result, system) -> None:
    """Close the trailing window; attach the samples-bearing doc.

    The timeline rides *alongside* the fingerprint snapshot (like
    ``metrics``), never inside it, so attached runs stay
    fingerprint-identical to detached ones.
    """
    if sampler is None:
        return
    sampler.finish(system.sim.now)
    result["timeline"] = sampler.to_doc(include_samples=True)


def _execute_loopback(
    spec: ScenarioSpec, quick: bool, obs, timeline_interval, attach=None
) -> Dict:
    faults = _make_faults(spec)
    setup = build_interface(
        _platform_spec(spec.platform),
        InterfaceKind(spec.interface),
        obs=obs,
        faults=faults,
    )
    recovery = RecoveryPolicy() if faults is not None else None
    net = _attach_topology(spec, setup, faults, obs)
    route = None
    if net is not None:
        host, tor = _topology_endpoints(spec, net)
        route = _loopback_route(net, host, tor)
    sampler = _make_timeline(timeline_interval, setup, net)
    if attach is not None:
        attach(setup)
    start = time.perf_counter()  # repro: allow(wall-clock) host benchmark timing
    result = run_point(
        setup,
        pkt_size=spec.pkt_size,
        n_packets=spec.count(quick),
        inflight=spec.inflight,
        offered_mpps=spec.offered_mpps,
        tx_batch=spec.tx_batch,
        rx_batch=spec.rx_batch,
        obs=obs,
        recovery=recovery,
        route=route,
        timeline=sampler,
    )
    wall = time.perf_counter() - start  # repro: allow(wall-clock) host benchmark timing
    system = setup.system
    snapshot = {
        "received": result.received,
        "dropped": result.dropped,
        "mpps": result.mpps,
        "median_ns": result.latency.percentile(50),
        "p99_ns": result.latency.percentile(99),
        **_system_snapshot(system),
    }
    if net is not None:
        snapshot["topology"] = net.stats_flat()
    extra = {"packets": float(result.received), "mpps": result.mpps}
    if faults is not None:
        snapshot["faults"] = faults.counters.snapshot()
        snapshot["injected"] = faults.total_injected()
        snapshot["tx_retries"] = setup.driver.tx_retries
        snapshot["watchdog_resets"] = setup.driver.watchdog_resets
        extra["dropped"] = float(result.dropped)
        extra["injected"] = float(faults.total_injected())
    doc = _result_doc(spec, wall, system, snapshot, result.latency.samples(), extra)
    _finish_timeline(sampler, doc, system)
    return doc


def _execute_kv(
    spec: ScenarioSpec, quick: bool, obs, timeline_interval, attach=None
) -> Dict:
    from repro.apps.kvstore import KvServerApp, KvWorkload

    faults = _make_faults(spec)
    setup = build_interface(
        _platform_spec(spec.platform),
        InterfaceKind(spec.interface),
        obs=obs,
        faults=faults,
    )
    maker = KvWorkload.ads if spec.distribution == "ads" else KvWorkload.geo
    workload = maker(
        n_keys=spec.n_keys,
        zipf_coefficient=spec.zipf_coefficient,
        seed=spec.seed,
        key_base=spec.key_base,
    )
    net = _attach_topology(spec, setup, faults, obs)
    if net is not None:
        from repro.apps.rack import RackKvApp

        host, tor = _topology_endpoints(spec, net)
        app = RackKvApp(
            setup,
            workload,
            offered_mops=spec.offered_mops,
            n_ops=spec.count(quick),
            batch=spec.tx_batch,
            router=net.router,
            host=host,
            tor=tor,
            n_clients=spec.n_clients,
            seed=spec.seed,
        )
    else:
        app = KvServerApp(
            setup,
            workload,
            offered_mops=spec.offered_mops,
            n_ops=spec.count(quick),
            batch=spec.tx_batch,
        )
    sampler = _make_timeline(timeline_interval, setup, net)
    if sampler is not None:
        app.timeline = sampler
    if attach is not None:
        attach(setup)
    start = time.perf_counter()  # repro: allow(wall-clock) host benchmark timing
    result = app.run()
    wall = time.perf_counter() - start  # repro: allow(wall-clock) host benchmark timing
    system = setup.system
    snapshot = {
        "ops": result.ops,
        "mops": result.mops,
        "median_ns": result.latency.percentile(50),
        "p99_ns": result.latency.percentile(99),
        **_system_snapshot(system),
    }
    if net is not None:
        snapshot["topology"] = net.stats_flat()
        snapshot["clients"] = app.clients_seen()
    extra = {"ops": float(result.ops), "mops": result.mops}
    doc = _result_doc(spec, wall, system, snapshot, result.latency.samples(), extra)
    _finish_timeline(sampler, doc, system)
    return doc


def _system_snapshot(system) -> Dict:
    """The simulation-state half of every shard fingerprint."""
    return {
        "counters": system.fabric.snapshot_counters(),
        "events": system.sim.events_executed,
        "now": system.sim.now,
        "link": [st.snapshot() for st in system.link.stats],
    }


def _result_doc(spec, wall, system, snapshot, latency_samples, extra) -> Dict:
    return {
        "spec": spec.to_doc(),
        "wall_s": wall,
        "events": system.sim.events_executed,
        "sim_ns": system.sim.now,
        "snapshot": snapshot,
        "latency_ns": latency_samples,
        "extra": extra,
        "metrics": None,
        "timeline": None,
    }


def execute_spec(
    spec: ScenarioSpec,
    quick: bool = False,
    with_metrics: bool = False,
    timeline_interval: Optional[float] = None,
    attach: Optional[Callable] = None,
) -> Dict:
    """Run one spec in this process; returns the shard-result dict.

    ``attach`` is called with the built interface setup after every
    observer (topology, timeline) is wired but before the workload
    runs; ``repro.check`` uses it to hang a sanitizer or flight
    recorder off the fabric of a scenario run it does not otherwise
    control. In-process callers only — the hook does not cross the
    ``run_shard`` pickle boundary.

    ``with_metrics`` wires a fresh :class:`~repro.obs.MetricRegistry`
    into the run and attaches its snapshot under ``"metrics"`` (merged
    across shards by :func:`repro.shard.merge.merge_metrics`). Metric
    snapshots ride alongside the fingerprint snapshot; they never enter
    it, so metric-instrumented and bare runs stay comparable.

    ``timeline_interval`` (simulated ns) attaches a
    :class:`~repro.obs.timeline.TimelineSampler` with the standard
    series and returns its samples-bearing doc under ``"timeline"`` —
    also alongside the snapshot, for the same reason (merged across
    shards by :func:`repro.shard.merge.merge_timelines`).
    """
    spec.validate()
    obs = None
    if with_metrics:
        from repro.obs import MetricRegistry, Observability

        obs = Observability(metrics=MetricRegistry())
    # Pause the cyclic GC for the simulation proper: a shard allocates
    # millions of short-lived containers (event records, span lists,
    # work items) whose reference counting already reclaims them, and
    # generational collections in the middle of the hot loop cost
    # 10-20% of wall time. Bounded run, collected at the end, and pure
    # host-side — simulated time and fingerprints are unaffected.
    was_enabled = gc.isenabled()
    if was_enabled:
        gc.disable()
    try:
        if spec.workload == "kv":
            result = _execute_kv(spec, quick, obs, timeline_interval, attach)
        else:
            result = _execute_loopback(spec, quick, obs, timeline_interval, attach)
    finally:
        if was_enabled:
            gc.enable()
            gc.collect()
    if obs is not None:
        result["metrics"] = obs.metrics.snapshot()
    return result


def run_shard(
    index: int,
    spec_doc: Dict,
    quick: bool = False,
    with_metrics: bool = False,
    timeline_interval: Optional[float] = None,
) -> Dict:
    """Process-pool entry point: run shard ``index`` from its doc form."""
    spec = ScenarioSpec.from_doc(spec_doc)
    result = execute_spec(
        spec,
        quick=quick,
        with_metrics=with_metrics,
        timeline_interval=timeline_interval,
    )
    result["index"] = index
    return result


# ----------------------------------------------------------------------
# Sharded execution
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardPlan:
    """The partition a sharded run will execute."""

    scenario: str
    n_shards: int
    lookahead_ns: float
    specs: List[ScenarioSpec] = field(repr=False)

    @classmethod
    def for_spec(cls, spec: ScenarioSpec) -> "ShardPlan":
        return cls(
            scenario=spec.name,
            n_shards=spec.shards,
            lookahead_ns=lookahead_ns(spec),
            specs=spec.shard_specs(),
        )


@dataclass
class ShardRun:
    """Outcome of one sharded execution, merged."""

    scenario: str
    n_shards: int
    workers: int
    wall_s: float
    events: int
    sim_ns: float
    fingerprint: str
    doc: Dict
    extra: Dict[str, float]
    lookahead_ns: float
    metrics: Optional[Dict] = None
    timeline: Optional[Dict] = None

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0


def _pool_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # platforms without fork
        return multiprocessing.get_context("spawn")


def default_workers() -> int:
    """Worker-count default: one per available CPU."""
    return max(1, os.cpu_count() or 1)


class _Heartbeat:
    """Wall-clock progress heartbeat for long sharded runs.

    Strictly runner-side: it prints ``scenario: done/total shard(s)``
    lines to stderr from a daemon thread and leaves no trace in any
    result document, so the fingerprint path never sees it. Wall-clock
    reads are confined here and waived — this is operator feedback, not
    simulation state.
    """

    def __init__(self, scenario: str, total: int, interval_s: float) -> None:
        self.scenario = scenario
        self.total = total
        self.interval_s = interval_s
        self.start = time.perf_counter()  # repro: allow(wall-clock) operator heartbeat
        self._done = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._beat, name="shard-heartbeat", daemon=True
        )
        self._thread.start()

    def shard_done(self, _future=None) -> None:
        """Completion callback; accepts a future for add_done_callback."""
        with self._lock:
            self._done += 1

    def _beat(self) -> None:
        while not self._stop.wait(self.interval_s):
            elapsed = time.perf_counter() - self.start  # repro: allow(wall-clock) operator heartbeat
            with self._lock:
                done = self._done
            print(
                f"[{self.scenario}] {done}/{self.total} shard(s) done, "
                f"{elapsed:.0f}s elapsed",
                file=sys.stderr,
                flush=True,
            )

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=1.0)


def run_sharded(
    spec: Union[str, ScenarioSpec],
    workers: Optional[int] = None,
    quick: bool = False,
    with_metrics: bool = False,
    progress: Optional[Callable[[str], None]] = None,
    timeline_interval: Optional[float] = None,
    heartbeat_s: Optional[float] = None,
) -> ShardRun:
    """Run a scenario's partition and merge the per-shard results.

    ``spec`` is a registered scenario name or a spec object. ``workers``
    chooses how many processes execute the (fixed) partition —
    ``workers=1`` runs every shard sequentially in this process, which
    is both the determinism baseline and the speedup denominator. The
    merged fingerprint is identical for every worker count because the
    partition, the per-shard seeds, and the merge order never depend
    on it.

    ``timeline_interval`` attaches a per-shard
    :class:`~repro.obs.timeline.TimelineSampler` and folds the shard
    timelines with :func:`~repro.shard.merge.merge_timelines` into
    :attr:`ShardRun.timeline`; the merged timeline is identical for any
    worker count, for the same reasons the fingerprint is.
    ``heartbeat_s`` prints wall-clock progress lines to stderr at that
    period (operator feedback only — never enters any document).
    """
    if isinstance(spec, str):
        spec = scenario(spec)
    plan = ShardPlan.for_spec(spec)
    n = plan.n_shards
    requested = default_workers() if workers is None else workers
    if requested < 1:
        raise ConfigError("workers must be >= 1")
    use_workers = min(requested, n)
    if progress is not None:
        progress(
            f"{plan.scenario}: {n} shard(s) on {use_workers} worker(s), "
            f"lookahead {plan.lookahead_ns:g} ns"
        )
    docs = [s.to_doc() for s in plan.specs]
    # One GC pause across the whole sequential run (execute_spec skips
    # its own nested pause when the collector is already off) so the
    # deferred collection happens once, outside the timed region.
    was_enabled = use_workers == 1 and gc.isenabled()
    if was_enabled:
        gc.disable()
    heartbeat = (
        _Heartbeat(plan.scenario, n, heartbeat_s) if heartbeat_s is not None else None
    )
    try:
        start = time.perf_counter()  # repro: allow(wall-clock) host benchmark timing
        if use_workers == 1:
            results = []
            for index, doc in enumerate(docs):
                results.append(
                    run_shard(
                        index,
                        doc,
                        quick=quick,
                        with_metrics=with_metrics,
                        timeline_interval=timeline_interval,
                    )
                )
                if heartbeat is not None:
                    heartbeat.shard_done()
        else:
            with ProcessPoolExecutor(
                max_workers=use_workers, mp_context=_pool_context()
            ) as pool:
                futures = [
                    pool.submit(
                        run_shard, index, doc, quick, with_metrics, timeline_interval
                    )
                    for index, doc in enumerate(docs)
                ]
                if heartbeat is not None:
                    for future in futures:
                        future.add_done_callback(heartbeat.shard_done)
                results = [f.result() for f in futures]
        wall = time.perf_counter() - start  # repro: allow(wall-clock) host benchmark timing
    finally:
        if heartbeat is not None:
            heartbeat.stop()
        if was_enabled:
            gc.enable()
            gc.collect()

    merged_doc = merge_results(results, plan.scenario, plan.lookahead_ns)
    extras = sorted(
        (result["index"], result["extra"]) for result in results
    )
    extra: Dict[str, float] = {}
    for _, shard_extra in extras:
        for key in sorted(shard_extra):
            extra[key] = extra.get(key, 0.0) + shard_extra[key]
    metrics = merge_metrics(results) if with_metrics else None
    timeline = merge_timelines(results) if timeline_interval is not None else None
    return ShardRun(
        scenario=plan.scenario,
        n_shards=n,
        workers=use_workers,
        wall_s=wall,
        events=int(merged_doc["merged"]["events"]),
        sim_ns=merged_doc["merged"]["now"],
        fingerprint=fingerprint(merged_doc),
        doc=merged_doc,
        extra=extra,
        lookahead_ns=plan.lookahead_ns,
        metrics=metrics,
        timeline=timeline,
    )
