"""Rack-scale KV service: one server host behind the ToR load balancer.

:class:`RackKvApp` is the per-host half of the ``kv_rack_zipf``
scenario: a :class:`~repro.apps.kvstore.KvServerApp` whose request and
response paths cross the rack fabric. The load balancer lives on the
ToR node; it forwards each request from one of ``n_clients`` simulated
client hosts down the topology route to this server, and each response
travels back up. Both legs are charged hop-by-hop through the
:class:`~repro.topology.net.Router`, so rack traffic shows up in the
same per-edge :class:`~repro.interconnect.link.LinkStats`, metric
registry, and fault-injection machinery as intra-host traffic.

Client attribution matters for queueing: each request is drawn from a
deterministic client stream and charged under that client's actor name,
so the per-actor utilization model on the ToR -> host edge makes
distinct clients queue behind each other (but never behind themselves),
exactly as the intra-host link model treats concurrent agents.
"""

from __future__ import annotations

from repro.apps.kvstore import KvServerApp, KvWorkload
from repro.errors import WorkloadError
from repro.interconnect.messages import MessageClass
from repro.sim.rng import make_rng
from repro.workloads.packets import Packet


class RackKvApp(KvServerApp):
    """One KV server host of a sharded rack deployment."""

    def __init__(
        self,
        setup,
        workload: KvWorkload,
        offered_mops: float,
        n_ops: int,
        router,
        host: str,
        tor: str,
        n_clients: int,
        batch: int = 32,
        seed: int = 7,
        warmup_fraction: float = 0.1,
    ) -> None:
        if n_clients < 1:
            raise WorkloadError("a rack KV server needs n_clients >= 1")
        super().__init__(
            setup,
            workload,
            offered_mops=offered_mops,
            n_ops=n_ops,
            batch=batch,
            warmup_fraction=warmup_fraction,
        )
        self.router = router
        self.host = host
        self.tor = tor
        self.n_clients = n_clients
        # Client draws come from their own derived stream so adding the
        # rack layer never perturbs the workload's key/size streams.
        self._client_rng = make_rng(seed, "rack/clients")
        self._clients_seen: set = set()

    # ------------------------------------------------------------------
    def _ingress_ns(self, pkt: Packet) -> float:
        """ToR -> host leg: the balancer forwards one client's request."""
        client = self._client_rng.randrange(self.n_clients)
        self._clients_seen.add(client)
        return self.router.charge(
            self.tor,
            self.host,
            MessageClass.DMA_WRITE,
            payload_bytes=pkt.size,
            actor=f"client{client}",
        )

    def _egress_ns(self, pkt: Packet) -> float:
        """Host -> ToR leg: the response returns to the balancer."""
        return self.router.charge(
            self.host,
            self.tor,
            MessageClass.DMA_WRITE,
            payload_bytes=pkt.size,
            actor=self.host,
        )

    def clients_seen(self) -> int:
        """Distinct simulated clients that sent this host a request."""
        return len(self._clients_seen)
