"""TAS-like userspace TCP fast path with an echo RPC server (§5.7).

TAS (TCP Acceleration as a Service) runs dedicated fast-path threads
that own the TCP data plane: per-flow state lookups, sequence/ack
bookkeeping, and the NIC TX/RX interface. The application (an echo RPC
server) exchanges descriptors with the fast path through shared-memory
queues. The paper swaps TAS's PCIe TX/RX for the CC-NIC Overlay and
measures how many fast-path threads are needed to reach 95% of peak
throughput (Table 2: 5 with the CX6, 3 with CC-NIC).

Our model keeps TAS's structure without a full TCP implementation: the
fast path maintains real per-flow connection state (sequence numbers,
ack counters, flow-table entries in simulated memory whose accesses are
charged through the coherence model), but no retransmission machinery —
loopback delivery is loss-free, as in the paper's testbed LAN.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.analysis.loopback import InterfaceKind, build_interface
from repro.errors import WorkloadError
from repro.platform.presets import PlatformSpec
from repro.sim.stats import Histogram
from repro.workloads.packets import Packet

#: Echo RPC payload (the paper's 64B echo workload).
RPC_BYTES = 64
#: Cycles per fast-path packet: header parse, timer wheel touch, app
#: queue notification.
FASTPATH_CYCLES = 25
#: Cycles the echo application spends per RPC.
APP_CYCLES = 15
#: Flow-table entry size (one cache line per flow: state + seq/ack).
FLOW_ENTRY_BYTES = 64


@dataclass
class FlowState:
    """Per-connection TCP state the fast path maintains."""

    flow_id: int
    seq: int = 0
    ack: int = 0
    rx_packets: int = 0
    tx_packets: int = 0


@dataclass
class RpcResult:
    """Outcome of a fast-path thread measurement."""

    ops: int = 0
    elapsed_ns: float = 0.0
    latency: Histogram = field(default_factory=lambda: Histogram("rpc_ns"))

    @property
    def mops(self) -> float:
        if self.elapsed_ns <= 0:
            return 0.0
        return self.ops / self.elapsed_ns * 1e3


class TasFastPath:
    """One fast-path thread serving echo RPCs over a NIC queue pair."""

    #: Optional :class:`repro.obs.timeline.TimelineSampler`; the TX
    #: sink feeds post-warmup RPC latencies into its ``latency_ns``
    #: windowed series. Class-level None, same pattern as ``flight``.
    timeline = None

    def __init__(
        self,
        setup,
        n_flows: int,
        offered_mops: float,
        n_ops: int,
        batch: int = 32,
        warmup_fraction: float = 0.1,
    ) -> None:
        if n_flows <= 0:
            raise WorkloadError("n_flows must be positive")
        self.setup = setup
        self.n_flows = n_flows
        self.offered_mops = offered_mops
        self.n_ops = n_ops
        self.batch = batch
        self.warmup = int(n_ops * warmup_fraction)
        self.result = RpcResult()
        self.done = False
        system = setup.system
        self.flow_table = system.alloc_host("tas_flows", n_flows * FLOW_ENTRY_BYTES)
        self.flows: Dict[int, FlowState] = {
            i: FlowState(flow_id=i) for i in range(n_flows)
        }
        self._window_start: Optional[float] = None
        self.fastpath_busy_ns = 0.0
        self.fastpath_ops = 0

    # ------------------------------------------------------------------
    def client(self):
        """Open-loop clients cycling over the flows."""
        sim = self.setup.system.sim
        interval = 1e3 / self.offered_mops
        inject = self._injector()
        sent = 0
        while sent < self.n_ops:
            burst = min(self.batch, self.n_ops - sent)
            for i in range(burst):
                flow = (sent + i) % self.n_flows
                pkt = Packet(size=RPC_BYTES, tx_ns=sim.now, flow=flow)
                inject(pkt, sim.now)
            sent += burst
            yield interval * burst

    def _injector(self):
        if self.setup.kind.is_coherent:
            agent = self.setup.interface.pair(0).agent
            return lambda pkt, when: agent.inject(pkt, when)
        return lambda pkt, when: self.setup.interface.inject(0, pkt, when)

    def _attach_sink(self) -> None:
        result = self.result
        timeline = self.timeline
        sample_latency = None
        if timeline is not None:
            # Identity-stable open-window list; hoist its append.
            sample_latency = timeline.hist("latency_ns").append

        def sink(pkt: Packet, when: float) -> None:
            result.ops += 1
            if result.ops > self.warmup:
                if self._window_start is None:
                    self._window_start = when
                result.elapsed_ns = when - self._window_start
                result.latency.record(when - pkt.tx_ns)
                if sample_latency is not None:
                    sample_latency(when - pkt.tx_ns)
            if result.ops >= self.n_ops:
                self.done = True

        if self.setup.kind.is_coherent:
            self.setup.interface.pair(0).agent.on_transmit = sink
        else:
            self.setup.interface.on_transmit = sink

    # ------------------------------------------------------------------
    def fast_path(self):
        """Fast-path thread: TCP RX processing, app echo, TCP TX."""
        system = self.setup.system
        fabric = system.fabric
        driver = self.setup.driver
        agent = driver.agent
        while not self.done:
            ns = 0.0
            rx = driver.rx_burst(self.batch)
            ns += rx.ns
            if not rx.entries:
                ns += driver.housekeeping()
                yield max(ns + system.cycles(10), 2.0)
                continue
            ns += driver.read_payloads([buf for _pkt, buf in rx.entries])
            responses = []
            rx_bufs = []
            for pkt, buf in rx.entries:
                rx_bufs.append(buf)
                flow = self.flows[pkt.flow % self.n_flows]
                entry = self.flow_table.base + flow.flow_id * FLOW_ENTRY_BYTES
                # TCP RX: flow lookup + seq/ack update (one dirty line).
                ns += fabric.read(agent, entry, 32)
                flow.seq += pkt.size
                flow.rx_packets += 1
                ns += fabric.write(agent, entry, 16)
                ns += system.cycles(FASTPATH_CYCLES)
                # Application echo (shared-memory queue + app work).
                ns += system.cycles(APP_CYCLES)
                # TCP TX: build the echo segment.
                out = driver.alloc([RPC_BYTES])
                ns += out.ns
                if not out:
                    continue
                ns += driver.write_payload(out.bufs[0], RPC_BYTES)
                flow.ack = flow.seq
                flow.tx_packets += 1
                ns += fabric.write(agent, entry, 16)
                responses.append((out.bufs[0], Packet(size=RPC_BYTES, tx_ns=pkt.tx_ns)))
            while responses:
                tx = driver.tx_burst(responses, base_ns=ns)
                ns += tx.ns
                if tx.count == 0:
                    yield max(ns, 1.0)
                    ns = 0.0
                    continue
                del responses[: tx.count]
            ns += driver.free(rx_bufs)
            ns += driver.housekeeping()
            self.fastpath_busy_ns += ns
            self.fastpath_ops += rx.count
            yield max(ns, 1.0)

    @property
    def per_thread_mops(self) -> float:
        """Service rate of one fast-path thread (Mops)."""
        if self.fastpath_busy_ns <= 0:
            return 0.0
        return self.fastpath_ops / self.fastpath_busy_ns * 1e3

    def run(self, max_sim_ns: float = 5e8) -> RpcResult:
        self._attach_sink()
        system = self.setup.system
        system.sim.spawn(self.client(), "tas-client")
        system.sim.spawn(self.fast_path(), "tas-fastpath")
        system.sim.run(until=max_sim_ns, stop_when=lambda: self.done)
        self.done = True
        return self.result


# ----------------------------------------------------------------------
# Thread-count study (Table 2's TCP echo RPC row)
# ----------------------------------------------------------------------
@dataclass
class RpcStudy:
    """Per-fast-path-thread rate and the shared NIC ceiling."""

    kind: InterfaceKind
    per_thread_mops: float
    peak_mops: float

    def throughput(self, threads: int) -> float:
        return min(threads * self.per_thread_mops, self.peak_mops)

    def threads_to_saturate(self, fraction: float = 0.95) -> int:
        target = fraction * self.peak_mops
        threads = 1
        while self.throughput(threads) < target and threads < 64:
            threads += 1
        return threads


def rpc_thread_study(
    spec: PlatformSpec,
    kind: InterfaceKind,
    n_flows: int = 96,
    n_ops: int = 6000,
    probe_mops: float = 60.0,
    nic_cap_mops: Optional[float] = None,
    obs=None,
    faults=None,
    flight=None,
    sanitizer=None,
    timeline=None,
    batch: int = 32,
) -> RpcStudy:
    """Measure one fast-path thread; compose the thread-count answer.

    ``faults`` is an optional :class:`repro.faults.FaultInjector`
    attached to the built system; ``flight`` an optional
    :class:`repro.obs.flight.FlightRecorder` attached to every
    recording layer; ``sanitizer`` an optional
    :class:`repro.check.Sanitizer` attached to every checked layer;
    ``timeline`` an optional
    :class:`repro.obs.timeline.TimelineSampler` windowing the probe run.
    """
    setup = build_interface(
        spec, kind if kind.is_coherent else InterfaceKind.CX6, obs=obs, faults=faults
    )
    if flight is not None:
        from repro.analysis.profile import attach_recorder

        attach_recorder(setup, flight)
    if sanitizer is not None:
        from repro.analysis.checks import attach_sanitizer

        attach_sanitizer(setup, sanitizer)
    if timeline is not None:
        from repro.obs.timeline import attach_timeline

        attach_timeline(timeline, setup)
    fastpath = TasFastPath(
        setup, n_flows=n_flows, offered_mops=probe_mops, n_ops=n_ops, batch=batch
    )
    if timeline is not None:
        fastpath.timeline = timeline
    fastpath.run()
    if timeline is not None:
        timeline.finish(setup.system.sim.now)
    if nic_cap_mops is None:
        # 64B echo RPCs: the CX6 engine moves one request + one response
        # per op; TAS overheads shave a little off the ideal.
        cx6 = spec.nic("cx6")
        nic_cap_mops = cx6.pps_capacity / 1e6 / 1.33
    return RpcStudy(
        kind=kind, per_thread_mops=fastpath.per_thread_mops, peak_mops=nic_cap_mops
    )
