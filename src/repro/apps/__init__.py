"""Application studies: key-value store, TAS-like TCP RPC, overlay."""

from repro.apps.kvstore import KvResult, KvServerApp, KvWorkload, kv_thread_study
from repro.apps.tas import RpcResult, rpc_thread_study

__all__ = [
    "KvResult",
    "KvServerApp",
    "KvWorkload",
    "RpcResult",
    "kv_thread_study",
    "rpc_thread_study",
]
