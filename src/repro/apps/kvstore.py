"""CliqueMap-style key-value store over a simulated NIC interface (§5.7).

Server threads poll NIC RX queues for get/set RPCs against a hash index.
Gets are zero-copy: the response chains a header buffer with an external
segment referencing the object in store memory (DPDK extbuf), so large
objects are never memcpy'd but cost an extra TX descriptor. Sets write
the received object into store memory and update the index.

The workload matches the paper: two production object-size distributions
(Ads: 61% < 100B; Geo: 13% < 100B), 95% gets / 5% sets, Zipf(0.75) key
popularity, clients saturating the server.

Deployment comparison (Fig 19 / Table 2):

* **PCIe direct** — server threads drive the CX6 PCIe interface.
* **CC-NIC Overlay** — server threads drive CC-NIC queues over UPI; the
  NIC-socket agents play the role of the overlay threads bridging to
  the CX6 (§4). Peak throughput remains capped by the CX6 packet rate
  in both cases; the question is how many *application* threads reach
  that peak.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.loopback import InterfaceKind, LoopbackSetup, build_interface
from repro.core.buffers import Buffer
from repro.errors import WorkloadError
from repro.platform.presets import PlatformSpec
from repro.sim.rng import make_rng
from repro.sim.stats import Histogram
from repro.workloads.distributions import (
    AdsObjectSizes,
    GeoObjectSizes,
    ObjectSizeDistribution,
    ZipfKeys,
)
from repro.workloads.packets import Packet

#: Request header bytes (key, opcode, RPC framing).
REQUEST_BYTES = 64
#: Response header bytes preceding the object payload.
HEADER_BYTES = 64
#: Cycles per hash-index probe (rte_hash bucket walk + key compare).
INDEX_CYCLES = 160
#: Cycles of per-RPC server bookkeeping (parse, validate, respond).
RPC_CYCLES = 420


@dataclass
class KvWorkload:
    """Workload parameters (paper defaults).

    ``key_base`` offsets this server's keys in the global flow space:
    a sharded deployment gives each queue pair a disjoint key range
    (flow-steered partitioning), so shard ``i`` of an ``n_keys``-per-
    shard run serves flows ``[i * n_keys, (i+1) * n_keys)`` and the
    union of shards covers one large keyspace with no overlap.
    """

    distribution: ObjectSizeDistribution
    get_fraction: float = 0.95
    n_keys: int = 4096          # scaled-down key space; skew via Zipf
    zipf_coefficient: float = 0.75
    seed: int = 7
    key_base: int = 0

    @classmethod
    def ads(cls, **kw) -> "KvWorkload":
        return cls(distribution=AdsObjectSizes(), **kw)

    @classmethod
    def geo(cls, **kw) -> "KvWorkload":
        return cls(distribution=GeoObjectSizes(), **kw)


@dataclass
class KvResult:
    """Outcome of one server-thread measurement."""

    ops: int = 0
    elapsed_ns: float = 0.0
    latency: Histogram = field(default_factory=lambda: Histogram("rpc_ns"))

    @property
    def mops(self) -> float:
        """Throughput in millions of operations per second."""
        if self.elapsed_ns <= 0:
            return 0.0
        return self.ops / self.elapsed_ns * 1e3


class KvServerApp:
    """One server thread bound to one NIC queue pair.

    The client side is modelled as an open-loop request injector into
    the queue's RX path; responses are counted at the TX sink.
    """

    #: Optional :class:`repro.obs.timeline.TimelineSampler`; the TX
    #: sink feeds post-warmup request latencies into its ``latency_ns``
    #: windowed series. Class-level None: detached runs pay one load
    #: plus a branch when the sink is attached.
    timeline = None

    def __init__(
        self,
        setup: LoopbackSetup,
        workload: KvWorkload,
        offered_mops: float,
        n_ops: int,
        batch: int = 32,
        warmup_fraction: float = 0.1,
    ) -> None:
        if offered_mops <= 0 or n_ops <= 0:
            raise WorkloadError("offered_mops and n_ops must be positive")
        self.setup = setup
        self.workload = workload
        self.offered_mops = offered_mops
        self.n_ops = n_ops
        self.batch = batch
        self.warmup = int(n_ops * warmup_fraction)
        self.result = KvResult()
        self.done = False
        system = setup.system
        # Object store and index live in host memory; values are read
        # and written in place (zero-copy gets).
        self.store = system.alloc_host("kv_store", 8 << 20)
        self.index = system.alloc_host("kv_index", 1 << 20)
        self._rng = make_rng(workload.seed, "kv")
        self._keys = ZipfKeys(workload.n_keys, workload.zipf_coefficient)
        self._sizes = [
            workload.distribution.sample(self._rng) for _ in range(workload.n_keys)
        ]
        self._window_start: Optional[float] = None
        #: Server-thread busy time (processing iterations only): the
        #: per-application-thread service cost that the thread-count
        #: study scales on. The NIC-side agent's busy time is tracked
        #: separately (overlay threads are provisioned independently).
        self.server_busy_ns = 0.0
        self.server_ops = 0

    # ------------------------------------------------------------------
    # Network-path hooks: a rack deployment (repro.apps.rack) charges
    # the ToR -> host fabric leg on each request and the host -> ToR leg
    # on each response. The single-box base case pays 0.0 on both.
    def _ingress_ns(self, pkt: Packet) -> float:
        """Extra delay before a request reaches this server's queue."""
        return 0.0

    def _egress_ns(self, pkt: Packet) -> float:
        """Extra delay before a response reaches the client side."""
        return 0.0

    # ------------------------------------------------------------------
    def client(self):
        """Open-loop request injector (the remote client machines)."""
        interval = 1e3 / self.offered_mops
        sent = 0
        sim = self.setup.system.sim
        inject = self._injector()
        ingress = self._ingress_ns
        while sent < self.n_ops:
            burst = min(self.batch, self.n_ops - sent)
            key_base = self.workload.key_base
            for _ in range(burst):
                key = self._keys.sample(self._rng)
                is_get = self._rng.random() < self.workload.get_fraction
                size = REQUEST_BYTES if is_get else min(
                    REQUEST_BYTES + self._sizes[key], 9600
                )
                pkt = Packet(size=size, tx_ns=sim.now, flow=key_base + key)
                pkt.is_get = is_get  # type: ignore[attr-defined]
                inject(pkt, sim.now + ingress(pkt))
                sent += 1
            yield interval * burst

    def _injector(self):
        if self.setup.kind.is_coherent:
            agent = self.setup.interface.pair(0).agent
            return lambda pkt, when: agent.inject(pkt, when)
        return lambda pkt, when: self.setup.interface.inject(0, pkt, when)

    def _attach_sink(self) -> None:
        result = self.result
        egress = self._egress_ns
        timeline = self.timeline
        sample_latency = None
        if timeline is not None:
            # Identity-stable open-window list; hoist its append.
            sample_latency = timeline.hist("latency_ns").append

        def sink(pkt: Packet, when: float) -> None:
            when += egress(pkt)
            result.ops += 1
            if result.ops > self.warmup:
                if self._window_start is None:
                    self._window_start = when
                result.elapsed_ns = when - self._window_start
                result.latency.record(when - pkt.tx_ns)
                if sample_latency is not None:
                    sample_latency(when - pkt.tx_ns)
            if result.ops >= self.n_ops:
                self.done = True

        if self.setup.kind.is_coherent:
            self.setup.interface.pair(0).agent.on_transmit = sink
        else:
            self.setup.interface.on_transmit = sink

    # ------------------------------------------------------------------
    def server(self):
        """The server thread's polling loop."""
        system = self.setup.system
        fabric = system.fabric
        driver = self.setup.driver
        agent = driver.agent
        store_size = self.store.size
        # cycles() is pure in its argument: precompute the per-loop and
        # per-request work charges.
        rpc_ns = system.cycles(RPC_CYCLES)
        index_ns = system.cycles(INDEX_CYCLES)
        while not self.done:
            ns = rpc_ns
            rx = driver.rx_burst(self.batch)
            ns += rx.ns
            if not rx.entries:
                ns += driver.housekeeping()
                yield max(ns, 2.0)
                continue
            responses = []
            rx_bufs = []
            for pkt, buf in rx.entries:
                rx_bufs.append(buf)
                key = pkt.flow
                obj_size = self._sizes[key % len(self._sizes)]
                obj_addr = self.store.base + (key * 9600) % (store_size - 9600)
                ns += index_ns
                ns += fabric.read(agent, self.index.base + (key * 64) % self.index.size, 16)
                if getattr(pkt, "is_get", True):
                    # Zero-copy get: header buffer + external object segment.
                    header = driver.alloc([HEADER_BYTES])
                    ns += header.ns
                    if not header:
                        continue
                    head = header.bufs[0]
                    ns += driver.write_payload(head, HEADER_BYTES)
                    segment = Buffer(
                        addr=obj_addr, capacity=max(64, obj_size), external=True
                    )
                    segment.set_payload(obj_size)
                    head.chain(segment)
                    response = Packet(size=HEADER_BYTES + obj_size, tx_ns=pkt.tx_ns)
                    responses.append((head, response))
                else:
                    # Set: write the object into store memory, ack.
                    ns += fabric.write(agent, obj_addr, max(64, obj_size))
                    ack = driver.alloc([HEADER_BYTES])
                    ns += ack.ns
                    if not ack:
                        continue
                    ns += driver.write_payload(ack.bufs[0], HEADER_BYTES)
                    responses.append(
                        (ack.bufs[0], Packet(size=HEADER_BYTES, tx_ns=pkt.tx_ns))
                    )
            ns += driver.read_payloads(rx_bufs)
            while responses:
                tx = driver.tx_burst(responses, base_ns=ns)
                ns += tx.ns
                if tx.count == 0:
                    yield max(ns, 1.0)
                    ns = 0.0
                    continue
                del responses[: tx.count]
            ns += driver.free(rx_bufs)
            ns += driver.housekeeping()
            self.server_busy_ns += ns
            self.server_ops += rx.count
            yield max(ns, 1.0)

    @property
    def per_thread_mops(self) -> float:
        """Service rate of one application thread (Mops)."""
        if self.server_busy_ns <= 0:
            return 0.0
        return self.server_ops / self.server_busy_ns * 1e3

    # ------------------------------------------------------------------
    def run(self, max_sim_ns: float = 5e8) -> KvResult:
        """Run client + server to completion; returns the result."""
        self._attach_sink()
        system = self.setup.system
        system.sim.spawn(self.client(), "kv-client")
        system.sim.spawn(self.server(), "kv-server")
        system.sim.run(until=max_sim_ns, stop_when=lambda: self.done)
        self.done = True
        return self.result


# ----------------------------------------------------------------------
# Thread-count study (Fig 19 / Table 2 rows)
# ----------------------------------------------------------------------
@dataclass
class KvStudy:
    """Per-thread rate plus the composed throughput-vs-threads curve."""

    kind: InterfaceKind
    per_thread_mops: float
    peak_mops: float

    def throughput(self, threads: int, spec: PlatformSpec) -> float:
        """Aggregate Mops for ``threads`` application threads."""
        physical = min(threads, spec.cores_per_socket)
        extra = max(0, threads - spec.cores_per_socket)
        rate = (physical + extra * (spec.ht_speedup - 1.0)) * self.per_thread_mops
        return min(rate, self.peak_mops)

    def threads_to_saturate(self, spec: PlatformSpec, fraction: float = 0.95) -> int:
        """Smallest thread count reaching ``fraction`` of peak."""
        for threads in range(1, 4 * spec.cores_per_socket):
            if self.throughput(threads, spec) >= fraction * self.peak_mops:
                return threads
        return 4 * spec.cores_per_socket


def kv_thread_study(
    spec: PlatformSpec,
    kind: InterfaceKind,
    workload: KvWorkload,
    n_ops: int = 6000,
    probe_mops: float = 50.0,
    nic_cap_mops: Optional[float] = None,
    obs=None,
    faults=None,
    flight=None,
    sanitizer=None,
    timeline=None,
    batch: int = 32,
) -> KvStudy:
    """Measure one server thread in detail and compose the curve.

    ``nic_cap_mops`` defaults to the CX6 packet-engine limit divided by
    the average packets per operation — both deployments forward through
    the same CX6, so the peak is shared (§5.7). ``faults`` is an
    optional :class:`repro.faults.FaultInjector` attached to the built
    system; ``flight`` an optional
    :class:`repro.obs.flight.FlightRecorder` attached to every
    recording layer (line events + packet waterfalls where the CC-NIC
    driver is in play); ``sanitizer`` an optional
    :class:`repro.check.Sanitizer` attached to every checked layer;
    ``timeline`` an optional
    :class:`repro.obs.timeline.TimelineSampler` windowing the probe run.
    """
    setup = build_interface(
        spec, kind if kind.is_coherent else InterfaceKind.CX6, obs=obs, faults=faults
    )
    if flight is not None:
        from repro.analysis.profile import attach_recorder

        attach_recorder(setup, flight)
    if sanitizer is not None:
        from repro.analysis.checks import attach_sanitizer

        attach_sanitizer(setup, sanitizer)
    if timeline is not None:
        from repro.obs.timeline import attach_timeline

        attach_timeline(timeline, setup)
    app = KvServerApp(setup, workload, offered_mops=probe_mops, n_ops=n_ops, batch=batch)
    if timeline is not None:
        app.timeline = timeline
    app.run()
    if timeline is not None:
        timeline.finish(setup.system.sim.now)
    # Scale on the application thread's own service rate: under CC-NIC
    # the NIC-socket agents (the overlay threads of §4) absorb the
    # PCIe-side work, so the app thread's busy time is what each added
    # thread contributes; under the direct PCIe interface the app
    # thread's busy time includes all driver bookkeeping.
    per_thread = app.per_thread_mops
    if nic_cap_mops is None:
        cx6 = spec.nic("cx6")
        # Both deployments forward through the CX6: peak ops are bounded
        # by its packet engine (one request + one response per op, plus
        # segment descriptors) and by its Ethernet line rate against the
        # workload's measured bytes per operation (which is what caps
        # the large-object Geo distribution in the paper).
        pkts_per_op = 2.2
        engine_cap = cx6.pps_capacity / 1e6 / pkts_per_op
        mean_op_bytes = sum(app._sizes) / len(app._sizes) + 2 * HEADER_BYTES
        line_cap = cx6.line_rate_gbps * 1e3 / (mean_op_bytes * 8)
        nic_cap_mops = min(engine_cap, line_cap)
    return KvStudy(kind=kind, per_thread_mops=per_thread, peak_mops=nic_cap_mops)
