"""Network-function (middlebox) forwarding, the paper's §6 extension.

Packet switching through a PCIe NIC moves every payload byte across the
interconnect twice even when the application only rewrites headers. A
coherent NIC can instead *retain payloads in the NIC-side cache* while
the host touches only the header line: the payload crosses the
interconnect zero times for forwarded traffic.

Two forwarding modes over the CC-NIC interface:

* ``full_payload`` — the host reads the whole packet and writes it back
  out (the PCIe-equivalent data motion);
* ``header_only`` — the host reads and rewrites only the first cache
  line; the payload stays wherever it is cached (the NIC side), and the
  TX descriptor re-references the same buffer.

The measured difference — interconnect wire bytes per forwarded packet
and the per-core forwarding rate — is the §6 claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.analysis.loopback import InterfaceKind, build_interface
from repro.errors import WorkloadError
from repro.platform.presets import PlatformSpec
from repro.sim.stats import Histogram
from repro.workloads.packets import Packet

#: Header bytes the middlebox inspects and rewrites.
HEADER_BYTES = 64
#: Cycles of forwarding logic per packet (lookup + header rewrite).
FORWARD_CYCLES = 60


@dataclass
class ForwardingResult:
    """Outcome of a forwarding run."""

    forwarded: int = 0
    elapsed_ns: float = 0.0
    wire_bytes_per_pkt: float = 0.0
    latency: Histogram = field(default_factory=lambda: Histogram("fwd_ns"))

    @property
    def mpps(self) -> float:
        if self.elapsed_ns <= 0:
            return 0.0
        return self.forwarded / self.elapsed_ns * 1e3


class ForwardingApp:
    """One middlebox thread forwarding packets between two ports.

    Packets are injected into the RX path (port A); the app inspects
    headers and retransmits (port B, the TX sink).
    """

    def __init__(
        self,
        setup,
        pkt_size: int,
        n_packets: int,
        header_only: bool,
        offered_mpps: float = 20.0,
        batch: int = 32,
        warmup_fraction: float = 0.1,
    ) -> None:
        if pkt_size < HEADER_BYTES:
            raise WorkloadError(f"packets must be at least {HEADER_BYTES}B")
        if n_packets <= 0:
            raise WorkloadError("n_packets must be positive")
        self.setup = setup
        self.pkt_size = pkt_size
        self.n_packets = n_packets
        self.header_only = header_only
        self.offered_mpps = offered_mpps
        self.batch = batch
        self.warmup = int(n_packets * warmup_fraction)
        self.result = ForwardingResult()
        self.done = False
        self._window_start = None

    # ------------------------------------------------------------------
    def client(self):
        sim = self.setup.system.sim
        agent = self.setup.interface.pair(0).agent
        interval = 1e3 / self.offered_mpps
        sent = 0
        while sent < self.n_packets:
            burst = min(self.batch, self.n_packets - sent)
            for _ in range(burst):
                agent.inject(Packet(size=self.pkt_size, tx_ns=sim.now), sim.now)
            sent += burst
            yield interval * burst

    def _attach_sink(self):
        result = self.result

        def sink(pkt: Packet, when: float) -> None:
            result.forwarded += 1
            if result.forwarded > self.warmup:
                if self._window_start is None:
                    self._window_start = when
                result.elapsed_ns = when - self._window_start
                result.latency.record(when - pkt.tx_ns)
            if result.forwarded >= self.n_packets:
                self.done = True

        self.setup.interface.pair(0).agent.on_transmit = sink

    # ------------------------------------------------------------------
    def middlebox(self):
        system = self.setup.system
        fabric = system.fabric
        driver = self.setup.driver
        agent = driver.agent
        while not self.done:
            ns = 0.0
            rx = driver.rx_burst(self.batch)
            ns += rx.ns
            if not rx.entries:
                yield max(ns + system.cycles(8), 2.0)
                continue
            outgoing: List[tuple] = []
            for pkt, buf in rx.entries:
                head = next(iter(buf.segments()))
                if self.header_only:
                    # Touch only the header line; the payload lines stay
                    # in the NIC-side cache and never cross the link.
                    ns += fabric.read(agent, head.addr, HEADER_BYTES)
                    ns += fabric.write(agent, head.addr, HEADER_BYTES)
                else:
                    # PCIe-equivalent data motion: full payload in, full
                    # payload out.
                    ns += driver.read_payloads([buf])
                    ns += fabric.access(agent, head.addr, buf.total_len, write=True)
                ns += system.cycles(FORWARD_CYCLES)
                outgoing.append((buf, Packet(size=pkt.size, tx_ns=pkt.tx_ns)))
            while outgoing:
                tx = driver.tx_burst(outgoing, base_ns=ns)
                ns += tx.ns
                if tx.count == 0:
                    yield max(ns, 1.0)
                    ns = 0.0
                    continue
                del outgoing[: tx.count]
            yield max(ns, 1.0)

    # ------------------------------------------------------------------
    def run(self, max_sim_ns: float = 5e8) -> ForwardingResult:
        self._attach_sink()
        system = self.setup.system
        link = system.link
        start_wire = link.total_wire_bytes()
        system.sim.spawn(self.client(), "fwd-client")
        system.sim.spawn(self.middlebox(), "fwd-middlebox")
        system.sim.run(until=max_sim_ns, stop_when=lambda: self.done)
        self.done = True
        if self.result.forwarded:
            self.result.wire_bytes_per_pkt = (
                link.total_wire_bytes() - start_wire
            ) / self.result.forwarded
        return self.result


def forwarding_study(
    spec: PlatformSpec,
    pkt_size: int = 1500,
    n_packets: int = 3000,
) -> dict:
    """Compare header-only and full-payload forwarding over CC-NIC."""
    out = {}
    for mode, header_only in (("header_only", True), ("full_payload", False)):
        setup = build_interface(spec, InterfaceKind.CCNIC)
        app = ForwardingApp(setup, pkt_size, n_packets, header_only=header_only)
        out[mode] = app.run()
    return out
