"""The CC-NIC Overlay deployment model (§4, used by §5.7).

In the paper's end-to-end experiments, applications speak CC-NIC over
UPI while *overlay threads* on the NIC socket bridge between the CC-NIC
queues and a real PCIe NIC. In this reproduction the NIC-socket queue
agents play that role directly: their measured busy time is the overlay
thread cost.

Two series from Fig 19 are derived from one detailed run:

* **CC-NIC** — overlay threads are provisioned as needed; application
  threads scale by their own service rate.
* **UPI 1-1** — one overlay thread per application thread: per-thread
  throughput is limited by whichever side is busier, which the paper
  observes caps the series despite up-to-31% higher per-thread rates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.loopback import InterfaceKind, build_interface
from repro.apps.kvstore import KvServerApp, KvWorkload
from repro.platform.presets import PlatformSpec


@dataclass
class OverlayProfile:
    """Busy-time profile of one app thread + one overlay thread."""

    app_mops: float        # application-thread service rate
    overlay_mops: float    # overlay (NIC-socket agent) service rate

    @property
    def one_to_one_mops(self) -> float:
        """Per-pair rate when overlay threads are 1-1 with app threads."""
        return min(self.app_mops, self.overlay_mops)


def measure_overlay_profile(
    spec: PlatformSpec,
    workload: KvWorkload,
    n_ops: int = 2000,
    probe_mops: float = 40.0,
) -> OverlayProfile:
    """Run one CC-NIC KV server thread and profile both pipeline stages."""
    setup = build_interface(spec, InterfaceKind.CCNIC)
    app = KvServerApp(setup, workload, offered_mops=probe_mops, n_ops=n_ops)
    result = app.run()
    agent = setup.interface.pair(0).agent
    overlay_mops = 0.0
    if agent.busy_ns > 0:
        overlay_mops = result.ops / agent.busy_ns * 1e3
    return OverlayProfile(app_mops=app.per_thread_mops, overlay_mops=overlay_mops)
