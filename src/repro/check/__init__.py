"""Protocol sanitizer and determinism lint suite (``repro.check``).

Two heads, one contract — catch protocol and reproducibility bugs that
timing-level tests can miss:

* :class:`Sanitizer` — a runtime happens-before checker over the
  simulated coherence domain. It attaches like the flight recorder
  (zero cost detached; attaching forces the fabric's reference path so
  sanitized runs stay fingerprint-identical) and reports descriptor
  races, torn grouped reads, double reaps, blank-skip violations,
  buffer use-after-free / double-free across the host<->NIC pool
  handoff, and writer-homing violations.
* :func:`run_lint` — a visitor-based static linter over the source
  tree enforcing the determinism contracts the simulator rests on: no
  wall-clock or unseeded randomness, fast-path/reference twins with a
  fingerprint test, zero-cost-detached hook guards, no ``id()``-keyed
  iteration, and the ``repro.errors`` exception taxonomy. Inline
  ``# repro: allow(<rule>)`` waivers are counted, never silent.

Surface through the CLI: ``python -m repro check`` (lint) and
``--sanitize`` / ``--sanitize=strict`` on loopback/kv/rpc runs.
"""

from repro.check.hb import HBTracker, VectorClock
from repro.check.lint import (
    LintFinding,
    LintReport,
    format_lint_findings,
    format_lint_summary,
    lint_source,
    run_lint,
)
from repro.check.rules import LintRule, default_rules
from repro.check.sanitizer import METADATA_CLASSES, Sanitizer, Violation
from repro.obs.export import LINT_SCHEMA, SANITIZE_SCHEMA

__all__ = [
    "HBTracker",
    "LINT_SCHEMA",
    "LintFinding",
    "LintReport",
    "LintRule",
    "METADATA_CLASSES",
    "SANITIZE_SCHEMA",
    "Sanitizer",
    "VectorClock",
    "Violation",
    "default_rules",
    "format_lint_findings",
    "format_lint_summary",
    "lint_source",
    "run_lint",
]
