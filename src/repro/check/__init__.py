"""Protocol sanitizer, determinism lint, and model-checking suite
(``repro.check``).

Four heads, one contract — catch protocol and reproducibility bugs that
timing-level tests can miss:

* :class:`Sanitizer` — a runtime happens-before checker over the
  simulated coherence domain. It attaches like the flight recorder
  (zero cost detached; attaching forces the fabric's reference path so
  sanitized runs stay fingerprint-identical) and reports descriptor
  races, torn grouped reads, double reaps, blank-skip violations,
  buffer use-after-free / double-free across the host<->NIC pool
  handoff, and writer-homing violations.
* :func:`run_lint` — a visitor-based static linter over the source
  tree enforcing the determinism contracts the simulator rests on: no
  wall-clock or unseeded randomness, fast-path/reference twins with a
  fingerprint test, zero-cost-detached hook guards, no ``id()``-keyed
  iteration, the ``repro.errors`` exception taxonomy, no additive
  time/size unit mixing, and no stale waivers. Inline
  ``# repro: allow(<rule>)`` waivers are counted, never silent.
* :func:`check_model` — a small-scope exhaustive model checker that
  drives the real coherence fabric through every short op sequence over
  a few agents and lines, checking each observed transition, cost, and
  counter delta against the declarative MESIF spec in ``TRANSITIONS``
  (plus SWMR, stale-read, and fast/slow twin-equivalence invariants),
  with shrunk replayable counterexamples and a transition-coverage
  table. ``MUTATIONS`` holds seeded protocol bugs for checking the
  checker.
* :func:`check_explore` — a bounded DFS over intra-cohort dispatch
  orders (via the engine's ``chooser`` hook) on small registered
  scenarios, with partial-order pruning on disjoint footprints,
  asserting merged-fingerprint stability and sanitizer cleanliness
  across every explored schedule.

Surface through the CLI: ``python -m repro check`` (lint),
``check --model`` / ``--mutate`` / ``--explore``, and ``--sanitize`` /
``--sanitize=strict`` on loopback/kv/rpc runs.
"""

from repro.check.explore import (
    check_explore,
    explore_plans,
    format_explore_summary,
    replay_schedule,
)
from repro.check.hb import HBTracker, VectorClock
from repro.check.lint import (
    LintFinding,
    LintReport,
    format_lint_findings,
    format_lint_summary,
    lint_source,
    run_lint,
)
from repro.check.model import (
    MUTATIONS,
    TRANSITIONS,
    ModelScope,
    check_model,
    format_model_summary,
    raise_on_failure,
    replay_counterexample,
)
from repro.check.rules import LintRule, default_rules
from repro.check.sanitizer import METADATA_CLASSES, Sanitizer, Violation
from repro.obs.export import LINT_SCHEMA, MODEL_SCHEMA, SANITIZE_SCHEMA

__all__ = [
    "HBTracker",
    "LINT_SCHEMA",
    "LintFinding",
    "LintReport",
    "LintRule",
    "METADATA_CLASSES",
    "MODEL_SCHEMA",
    "MUTATIONS",
    "ModelScope",
    "SANITIZE_SCHEMA",
    "Sanitizer",
    "TRANSITIONS",
    "VectorClock",
    "Violation",
    "check_explore",
    "check_model",
    "default_rules",
    "explore_plans",
    "format_explore_summary",
    "format_lint_findings",
    "format_lint_summary",
    "format_model_summary",
    "lint_source",
    "raise_on_failure",
    "replay_counterexample",
    "replay_schedule",
    "run_lint",
]
