"""Cohort-schedule explorer: permute same-timestamp dispatch order.

Cohort batching made intra-cohort dispatch order a real degree of
freedom: every set of timestamp-tied event records is drained in seq
(insertion) order, and nothing in the dynamic checks ever exercises a
different order. This module drives the engine's
:attr:`~repro.sim.engine.Simulator.chooser` hook to *systematically*
permute that order on small registered scenarios, asserting after every
explored schedule that

* the merged result fingerprint equals the canonical schedule's (tie
  order is incidental, so any divergence is latent nondeterminism the
  slowpath-twin contract cannot see), and
* the runtime sanitizer stays clean (a reordering that surfaces a
  happens-before race is a protocol bug, not a tolerable quirk).

Exploration is a deviation-bounded DFS: the canonical run (every choice
index 0) discovers the choice points; each explored schedule deviates
from canonical at up to ``max_deviations`` points, extending only at
ordinals past its last deviation so no plan is visited twice. A partial
order reduction prunes deviations whose event footprints
(:class:`~repro.sim.engine.Process` ``footprint``) are pairwise
disjoint from every record they would overtake — such swaps commute by
construction. Records without footprints are never pruned.

One cohort is special-cased: the *bootstrap* cohort at ``t == 0``
holds the first steps of the spawned processes, whose order is the
scenario's program-defined initialization order (a poller's first poll
racing the producer's first post is resolved by spawn order, exactly
like thread-creation order in a real driver). Deviating there changes
when the first work is noticed, so bootstrap deviations are still
explored — the sanitizer must stay clean under *any* initialization
order — but their fingerprint divergence is reported informationally
(``bootstrap_divergent``) rather than as a failure. Fingerprint
equality is enforced on every cohort that *emerges* at ``t > 0`` from
timing collisions; those are the orderings nothing defines.

Reports share the ``repro.check/model-v1`` stamp with the protocol
model checker (``kind`` distinguishes them); failures carry the
replayable deviation plan (see :func:`replay_schedule`).
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.check.sanitizer import Sanitizer
from repro.errors import ConfigError, ModelCheckError
from repro.obs.export import MODEL_SCHEMA
from repro.shard.merge import fingerprint, merge_results
from repro.shard.runner import execute_spec, lookahead_ns
from repro.shard.spec import ScenarioSpec, scenario
from repro.sim.engine import Simulator

#: Scenarios explored by default: the two cheap, fault-free built-ins.
DEFAULT_SCENARIOS = ("loopback_64b", "kv_zipf")

#: Default op/packet count per explored schedule (kept tiny: every
#: schedule is a full scenario run).
DEFAULT_OPS = 48

#: Default bound on simultaneous deviations from the canonical order.
DEFAULT_DEVIATIONS = 1

#: Default bound on choice-point ordinals eligible for deviation.
DEFAULT_POINTS = 40

#: Default cap on explored schedules per scenario (canonical included).
DEFAULT_SCHEDULES = 64


class _PlanChooser:
    """A :attr:`Simulator.chooser` that replays a deviation plan.

    ``plan`` maps choice-point ordinal -> cohort index; unlisted
    ordinals take index 0 (canonical). Every invocation also records
    the cohort's shape (timestamp, size, per-record footprints) so the
    explorer can grow new deviations from what this schedule saw.
    """

    def __init__(self, plan: Dict[int, int]) -> None:
        self.plan = dict(plan)
        self.points: List[Dict[str, Any]] = []

    def __call__(self, when: float, records: List[list]) -> int:
        ordinal = len(self.points)
        self.points.append({
            "when": when,
            "size": len(records),
            "bootstrap": when == 0.0,
            "footprints": [getattr(rec[3], "footprint", None) for rec in records],
        })
        index = self.plan.get(ordinal, 0)
        if index >= len(records):
            # A deviation planned from an earlier schedule's larger
            # cohort: this schedule diverged before reaching it, so the
            # plan entry no longer applies. Fall back to canonical.
            return 0
        return index


def _commutes(point: Dict[str, Any], index: int) -> bool:
    """True when dispatching record ``index`` first provably commutes.

    Requires every overtaken record (0..index-1) *and* the candidate to
    carry a footprint, all pairwise disjoint with the candidate's; any
    ``None`` footprint blocks pruning (unknown state may conflict).
    """
    footprints = point["footprints"]
    mine = footprints[index]
    if mine is None:
        return False
    for other in footprints[:index]:
        if other is None or not mine.isdisjoint(other):
            return False
    return True


def _deviations(plan: Dict[int, int]) -> int:
    return sum(1 for index in plan.values() if index != 0)


def explore_plans(
    run_schedule,
    max_deviations: int = DEFAULT_DEVIATIONS,
    max_points: int = DEFAULT_POINTS,
    max_schedules: int = DEFAULT_SCHEDULES,
) -> Tuple[List[Dict[str, Any]], int, bool]:
    """Deviation-bounded DFS over cohort-dispatch plans.

    ``run_schedule(plan)`` executes one schedule and returns
    ``(outcome, points)`` where ``outcome`` is any caller-defined
    per-schedule record and ``points`` the observed choice points.
    Returns ``(schedules, pruned, truncated)``: one
    ``{"plan", "outcome", "bootstrap"}`` entry per executed schedule
    (canonical first; ``bootstrap`` marks plans that deviate inside the
    ``t == 0`` initialization cohort), the count of deviations pruned
    by the partial-order reduction, and whether ``max_schedules`` cut
    exploration short.
    """
    outcome, points = run_schedule({})
    schedules = [{"plan": {}, "outcome": outcome, "bootstrap": False}]
    pruned = 0
    truncated = False
    stack: List[Tuple[Dict[int, int], bool, List[Dict[str, Any]]]] = [
        ({}, False, points)
    ]
    while stack:
        plan, bootstrap, points = stack.pop()
        if _deviations(plan) >= max_deviations:
            continue
        base = max(plan, default=-1)
        for ordinal in range(base + 1, min(len(points), max_points)):
            for index in range(1, points[ordinal]["size"]):
                if _commutes(points[ordinal], index):
                    pruned += 1
                    continue
                if len(schedules) >= max_schedules:
                    truncated = True
                    return schedules, pruned, truncated
                candidate = dict(plan)
                candidate[ordinal] = index
                touched_bootstrap = bootstrap or points[ordinal]["bootstrap"]
                outcome, seen = run_schedule(candidate)
                schedules.append({
                    "plan": candidate,
                    "outcome": outcome,
                    "bootstrap": touched_bootstrap,
                })
                stack.append((candidate, touched_bootstrap, seen))
    return schedules, pruned, truncated


def _scoped_spec(spec: ScenarioSpec, ops: int) -> ScenarioSpec:
    """Single-shard, count-bounded variant of a registered spec."""
    changes: Dict[str, Any] = {"shards": 1}
    if spec.workload == "kv":
        changes["n_ops"] = ops
        changes["n_ops_quick"] = ops
    else:
        changes["n_packets"] = ops
        changes["n_packets_quick"] = ops
    return spec.replace(**changes)


def _run_scenario_schedule(
    spec: ScenarioSpec, plan: Dict[int, int], sanitize: bool
) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Execute one scenario schedule; returns (outcome, choice points)."""
    # Imported here, not at module top: repro.analysis.checks imports
    # repro.check.sanitizer, so a module-level import would be circular
    # for callers that load repro.analysis first.
    from repro.analysis.checks import attach_sanitizer

    chooser = _PlanChooser(plan)
    sanitizer = Sanitizer() if sanitize else None

    def attach(setup) -> None:
        attach_sanitizer(setup, sanitizer)

    previous = Simulator.chooser
    Simulator.chooser = chooser
    try:
        result = execute_spec(
            spec, attach=attach if sanitize else None
        )
    finally:
        Simulator.chooser = previous
    merged = merge_results(
        [dict(result, index=0)], spec.name, lookahead_ns(spec)
    )
    outcome = {
        "fingerprint": fingerprint(merged),
        "events": int(result["events"]),
        "choice_points": len(chooser.points),
        "sanitizer_total": sanitizer.total if sanitizer is not None else None,
        "sanitizer_counts": dict(sanitizer.counts) if sanitizer is not None else None,
    }
    return outcome, chooser.points


def check_explore(
    scenarios: Tuple[str, ...] = DEFAULT_SCENARIOS,
    ops: int = DEFAULT_OPS,
    max_deviations: int = DEFAULT_DEVIATIONS,
    max_points: int = DEFAULT_POINTS,
    max_schedules: int = DEFAULT_SCHEDULES,
    sanitize: bool = True,
) -> Dict[str, Any]:
    """Explore cohort schedules for each scenario; ``model-v1`` report.

    Every explored schedule must keep the sanitizer clean, and every
    schedule whose deviations all lie in emergent (``t > 0``) cohorts
    must fingerprint-match the canonical schedule of the same scoped
    spec. Schedules that permute the ``t == 0`` bootstrap cohort are
    sanitizer-checked but fingerprint-informational (see the module
    docstring). ``ops`` bounds the per-schedule packet/op count; the
    deviation, choice-point and schedule caps bound the DFS (these
    four numbers are the documented scope bound).
    """
    if ops < 1:
        raise ConfigError(f"ops must be >= 1, got {ops}")
    per_scenario: List[Dict[str, Any]] = []
    failures: List[Dict[str, Any]] = []
    for name in scenarios:
        spec = _scoped_spec(scenario(name), ops)

        def run_schedule(plan, spec=spec):
            return _run_scenario_schedule(spec, plan, sanitize)

        schedules, pruned, truncated = explore_plans(
            run_schedule, max_deviations, max_points, max_schedules
        )
        canonical = schedules[0]["outcome"]
        enforced = [e for e in schedules if not e["bootstrap"]]
        fingerprints = {e["outcome"]["fingerprint"] for e in enforced}
        bootstrap_divergent = sum(
            1 for e in schedules
            if e["bootstrap"]
            and e["outcome"]["fingerprint"] != canonical["fingerprint"]
        )
        for entry in schedules:
            outcome = entry["outcome"]
            plan_doc = {str(k): v for k, v in sorted(entry["plan"].items())}
            if (
                not entry["bootstrap"]
                and outcome["fingerprint"] != canonical["fingerprint"]
            ):
                failures.append({
                    "invariant": "fingerprint-diverged",
                    "scenario": name,
                    "message": (
                        f"{name}: schedule {plan_doc} fingerprints "
                        f"{outcome['fingerprint']}, canonical is "
                        f"{canonical['fingerprint']}"
                    ),
                    "plan": plan_doc,
                    "detail": {
                        "fingerprint": outcome["fingerprint"],
                        "canonical": canonical["fingerprint"],
                        "events": outcome["events"],
                        "canonical_events": canonical["events"],
                    },
                })
            if sanitize and outcome["sanitizer_total"]:
                failures.append({
                    "invariant": "sanitizer-violation",
                    "scenario": name,
                    "message": (
                        f"{name}: schedule {plan_doc} raised "
                        f"{outcome['sanitizer_total']} sanitizer finding(s)"
                    ),
                    "plan": plan_doc,
                    "detail": {"counts": outcome["sanitizer_counts"]},
                })
        per_scenario.append({
            "scenario": name,
            "spec": spec.to_doc(),
            "schedules": len(schedules),
            "enforced_schedules": len(enforced),
            "bootstrap_schedules": len(schedules) - len(enforced),
            "bootstrap_divergent": bootstrap_divergent,
            "choice_points": canonical["choice_points"],
            "pruned": pruned,
            "truncated": truncated,
            "fingerprints": sorted(fingerprints),
            "canonical_fingerprint": canonical["fingerprint"],
            "events": canonical["events"],
        })
    report = {
        "schema": MODEL_SCHEMA,
        "kind": "explore",
        "scenarios": per_scenario,
        "scope": {
            "ops": ops,
            "max_deviations": max_deviations,
            "max_points": max_points,
            "max_schedules": max_schedules,
            "sanitize": sanitize,
        },
        "schedules": sum(s["schedules"] for s in per_scenario),
        "counterexamples": failures,
        "ok": not failures,
    }
    return report


def replay_schedule(report: Dict[str, Any], index: int = 0) -> Dict[str, Any]:
    """Re-run a failed schedule from an explore report.

    Returns the re-run's outcome dict; raises :class:`ModelCheckError`
    if the failure no longer reproduces.
    """
    entries = report.get("counterexamples", ())
    if not 0 <= index < len(entries):
        raise ConfigError(
            f"report has {len(entries)} counterexample(s); index {index} invalid"
        )
    entry = entries[index]
    scope = report["scope"]
    spec = _scoped_spec(scenario(entry["scenario"]), scope["ops"])
    plan = {int(k): v for k, v in entry["plan"].items()}
    sanitize = scope["sanitize"]
    outcome, _points = _run_scenario_schedule(spec, plan, sanitize)
    canonical, _points = _run_scenario_schedule(spec, {}, sanitize)
    diverged = outcome["fingerprint"] != canonical["fingerprint"]
    dirty = bool(sanitize and outcome["sanitizer_total"])
    if not diverged and not dirty:
        raise ModelCheckError(
            f"schedule counterexample {index} no longer reproduces "
            f"({entry['invariant']}); the engine or scenario has changed",
            invariant=entry["invariant"],
            sequence=sorted(entry["plan"].items()),
        )
    return outcome


def format_explore_summary(report: Dict[str, Any]) -> str:
    """Human-readable one-screen summary of an explore report."""
    from repro.analysis.tables import format_table

    scope = report["scope"]
    lines = [
        f"schedule exploration: {report['schedules']} schedule(s), "
        f"ops={scope['ops']}, deviations<={scope['max_deviations']}, "
        f"points<={scope['max_points']}, sanitize={scope['sanitize']}",
    ]
    rows = [
        [
            entry["scenario"],
            str(entry["schedules"]),
            str(entry["bootstrap_schedules"]),
            str(entry["choice_points"]),
            str(entry["pruned"]),
            str(len(entry["fingerprints"])),
            str(entry["bootstrap_divergent"]),
            "yes" if entry["truncated"] else "no",
        ]
        for entry in report["scenarios"]
    ]
    lines.append(format_table(
        ["scenario", "schedules", "bootstrap", "choice points", "pruned",
         "fingerprints", "boot divergent", "truncated"],
        rows,
    ))
    for i, failure in enumerate(report["counterexamples"]):
        lines.append(f"counterexample[{i}] {failure['invariant']}: {failure['message']}")
    lines.append("RESULT: " + ("ok" if report["ok"] else "FAILED"))
    return "\n".join(lines)
