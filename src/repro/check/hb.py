"""Vector clocks and happens-before tracking for the protocol sanitizer.

CC-NIC has no interrupts and no shared locks; every cross-agent ordering
edge is a *publish/observe* pair over coherent memory — the producer's
descriptor store (with its inlined signal) is a release, and the
consumer's poll that observes the signal is an acquire (§3.2: the
coherence protocol IS the signal). The sanitizer models exactly that
with TSan-style vector clocks:

* ``release(agent, key)`` — agent publishes through ``key`` (a signal
  line): tick the agent's clock and snapshot it on the key.
* ``acquire(agent, key)`` — agent observes ``key``'s signal: merge the
  stored snapshot into the agent's clock.
* ``ordered(agent, key)`` — does the agent's clock cover the publish?
  A consume that is not ordered-after its publish is a race even when
  the simulated timing happened to be safe on this run.
"""

from __future__ import annotations

from typing import Dict, Hashable


class VectorClock:
    """A sparse agent-name -> counter map with the usual lattice ops."""

    __slots__ = ("_c",)

    def __init__(self, init: Dict[str, int] = None) -> None:
        self._c: Dict[str, int] = dict(init) if init else {}

    def tick(self, agent: str) -> None:
        """Advance ``agent``'s own component."""
        self._c[agent] = self._c.get(agent, 0) + 1

    def merge(self, other: "VectorClock") -> None:
        """Pointwise max with ``other`` (the acquire operation)."""
        mine = self._c
        for agent, value in other._c.items():
            if value > mine.get(agent, 0):
                mine[agent] = value

    def covers(self, other: "VectorClock") -> bool:
        """True when every component of ``other`` is <= this clock's."""
        mine = self._c
        for agent, value in other._c.items():
            if mine.get(agent, 0) < value:
                return False
        return True

    def snapshot(self) -> "VectorClock":
        """An independent copy (stored on release keys)."""
        return VectorClock(self._c)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}:{v}" for k, v in sorted(self._c.items()))
        return f"<VC {inner}>"


class HBTracker:
    """Per-agent clocks plus release snapshots keyed by signal identity."""

    def __init__(self) -> None:
        self._agents: Dict[str, VectorClock] = {}
        self._released: Dict[Hashable, VectorClock] = {}

    def clock(self, agent: str) -> VectorClock:
        clock = self._agents.get(agent)
        if clock is None:
            clock = self._agents[agent] = VectorClock()
        return clock

    def release(self, agent: str, key: Hashable) -> None:
        """Publish: snapshot ``agent``'s (ticked) clock onto ``key``."""
        clock = self.clock(agent)
        clock.tick(agent)
        self._released[key] = clock.snapshot()

    def acquire(self, agent: str, key: Hashable) -> None:
        """Observe: merge ``key``'s publish snapshot into ``agent``."""
        released = self._released.get(key)
        if released is not None:
            self.clock(agent).merge(released)

    def ordered(self, agent: str, key: Hashable) -> bool:
        """Is ``agent`` ordered after the publish stored on ``key``?

        Keys that were never released are trivially ordered (the caller
        reports those as reads of unpublished slots separately).
        """
        released = self._released.get(key)
        if released is None:
            return True
        return self.clock(agent).covers(released)

    def forget(self, key: Hashable) -> None:
        """Drop a release snapshot (consumed slots; bounds memory)."""
        self._released.pop(key, None)
