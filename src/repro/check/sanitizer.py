"""Runtime happens-before sanitizer for the simulated CC-NIC protocol.

The :class:`Sanitizer` attaches like the flight recorder: every hooked
component keeps a class-level ``sanitizer = None`` attribute, so
detached runs pay one attribute test per burst and allocate nothing.
Attaching it to the fabric forces the reference access path and
epoch-invalidates the memoized transition plans, so sanitized runs stay
bit-identical in simulated metrics to unsanitized ones (the
flight-recorder contract).

Checked contracts, one rule id each:

``read-before-signal``
    A descriptor was consumed before its inlined signal was observable:
    the slot was never published, the producer's store had not retired
    (``visible_at`` in the future), the consume was not happens-before
    ordered after the publish, or (register mode) the slot lay beyond
    the tail value the consumer had actually read.
``torn-group-read``
    The grouped (OPT) layout was consumed at sub-line granularity: a
    poll gated on a non-group-aligned position, or moved on while a
    group line was only partially consumed.
``double-reap``
    A descriptor slot was consumed twice.
``blank-skip``
    A zero-padded blank descriptor was emitted as a work item instead
    of being skipped (the paper's blank-skip rule).
``use-after-free``
    Pool buffer payload touched after being freed, or while its
    ownership was in flight on a descriptor ring.
``double-free``
    Pool buffer freed while already free.
``writer-homing``
    A reader-side speculative read fetched writer-homed metadata
    (descriptor/signal region classes) from a remote cache — the same
    event class the flight recorder's homing audit counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.check.hb import HBTracker
from repro.errors import SanitizerError
from repro.obs.export import SANITIZE_SCHEMA
from repro.obs.flight import classify_region

#: Region classes whose lines are single-writer, writer-homed metadata
#: under CC-NIC's homing contract. Payload buffers are deliberately
#: host-homed and may be speculatively read (§3.1), and pool metadata
#: is multi-writer by design (per-side recycling stacks with cross-side
#: buffer handoff), so neither is flagged.
METADATA_CLASSES = frozenset({"descriptor", "signal"})

#: Descriptors per grouped line (mirrors repro.core.ring.GROUP).
_GROUP = 4


@dataclass(frozen=True)
class Violation:
    """One sanitizer finding."""

    rule: str
    message: str
    addr: Optional[int]
    agents: Tuple[str, ...]
    sim_time: float
    location: str

    def as_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "message": self.message,
            "addr": self.addr,
            "agents": list(self.agents),
            "sim_time": self.sim_time,
            "location": self.location,
        }


class _QueueState:
    """Per-ring sanitizer bookkeeping (slots are monotonic positions)."""

    __slots__ = (
        "published", "reaped", "reap_floor", "open_group", "open_seen",
        "signal_tail", "signal_visible", "acquired_tail",
    )

    def __init__(self) -> None:
        # position -> (visible_at, has_item); popped on consume.
        self.published: Dict[int, Tuple[float, bool]] = {}
        self.reaped: Set[int] = set()
        self.reap_floor = 0
        self.open_group: Optional[int] = None
        self.open_seen = 0
        self.signal_tail = 0
        self.signal_visible = 0.0
        # Register mode: tail value each consumer has actually observed.
        self.acquired_tail: Dict[str, int] = {}


class Sanitizer:
    """Happens-before race and ownership checker for one simulated system.

    Args:
        strict: Fail fast — the first violation raises
            :class:`~repro.errors.SanitizerError` instead of recording.
        max_findings: Cap on retained :class:`Violation` records; the
            per-rule counters keep counting past it.
    """

    def __init__(self, strict: bool = False, max_findings: int = 10000) -> None:
        self.strict = strict
        self.max_findings = max_findings
        self.hb = HBTracker()
        self.violations: List[Violation] = []
        self.counts: Dict[str, int] = {}
        self.events = 0
        self._sim = None
        self._queues: Dict[str, _QueueState] = {}
        # buf_id -> ("owned", agent) | ("inflight", queue) | ("free", agent)
        self._bufs: Dict[int, Tuple[str, str]] = {}
        self._spec_lines: Set[int] = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def bind(self, sim) -> None:
        """Bind the simulator whose clock stamps pool/payload findings."""
        self._sim = sim

    def _now(self) -> float:
        return self._sim.now if self._sim is not None else 0.0

    def _queue_state(self, queue) -> _QueueState:
        state = self._queues.get(queue.name)
        if state is None:
            state = self._queues[queue.name] = _QueueState()
        return state

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _flag(
        self,
        rule: str,
        message: str,
        addr: Optional[int],
        agents: Tuple[str, ...],
        sim_time: float,
        location: str,
    ) -> None:
        self.counts[rule] = self.counts.get(rule, 0) + 1
        if len(self.violations) < self.max_findings:
            self.violations.append(
                Violation(rule, message, addr, agents, sim_time, location)
            )
        if self.strict:
            where = f" at {addr:#x}" if addr is not None else ""
            raise SanitizerError(
                f"[{rule}] {message}{where} (t={sim_time:.1f}ns, "
                f"agents={','.join(agents)}, {location})",
                rule=rule,
                addr=addr,
                agents=agents,
                sim_time=sim_time,
            )

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def report(
        self,
        config: Optional[Dict[str, Any]] = None,
        scenario: Optional[str] = None,
        spec_fingerprint: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Schema-stamped report for :func:`repro.obs.export.export_sanitize_json`.

        ``scenario`` and ``spec_fingerprint`` stamp the report with the
        run it came from; loaders ignore the fields when absent.
        """
        doc = {
            "schema": SANITIZE_SCHEMA,
            "strict": self.strict,
            "events": self.events,
            "total": self.total,
            "counts": dict(sorted(self.counts.items())),
            "truncated": self.total > len(self.violations),
            "findings": [v.as_dict() for v in self.violations],
            "config": dict(config or {}),
        }
        if scenario is not None:
            doc["scenario"] = scenario
        if spec_fingerprint is not None:
            doc["spec_fingerprint"] = spec_fingerprint
        return doc

    # ------------------------------------------------------------------
    # Ring hooks (called by repro.core.ring.CoherentQueue when attached)
    # ------------------------------------------------------------------
    def group_publish(self, queue, agent, base: int, group, visible: float) -> None:
        """A whole grouped (OPT) line published; blanks pad to GROUP."""
        self.events += 1
        state = self._queue_state(queue)
        published = state.published
        for offset in range(_GROUP):
            published[base + offset] = (visible, offset < len(group))
        self.hb.release(agent.name, (queue.name, base))
        for item in group:
            self._item_inflight(item, queue)

    def slot_publish(self, queue, agent, index: int, item, visible: float) -> None:
        """One per-descriptor or register-mode slot published."""
        self.events += 1
        state = self._queue_state(queue)
        state.published[index] = (visible, True)
        if queue.inline_signals:
            # Each padded/packed descriptor carries its own signal.
            self.hb.release(agent.name, (queue.name, index))
        self._item_inflight(item, queue)

    def signal_publish(self, queue, agent, tail: int, visible: float) -> None:
        """Register mode: the producer's tail-register store."""
        self.events += 1
        state = self._queue_state(queue)
        state.signal_tail = tail
        state.signal_visible = visible
        self.hb.release(agent.name, (queue.name, "tail"))

    def signal_observe(self, queue, agent, base, now: float) -> None:
        """The consumer's poll passed the signal gate for ``base``.

        ``base`` is the group base (grouped), the slot position
        (per-descriptor), or the string ``"tail"`` (register mode).
        """
        self.events += 1
        state = self._queue_state(queue)
        self.hb.acquire(agent.name, (queue.name, base))
        if base == "tail":
            if now < state.signal_visible:
                self._flag(
                    "read-before-signal",
                    "tail register observed before the producer's store retired "
                    f"(retires at t={state.signal_visible:.1f}ns)",
                    queue.tail_reg.base if queue.tail_reg is not None else None,
                    (agent.name,),
                    now,
                    f"queue {queue.name}",
                )
            state.acquired_tail[agent.name] = state.signal_tail
        elif queue.grouped and base % _GROUP:
            self._flag(
                "torn-group-read",
                f"poll gated on non-group-aligned position {base} "
                f"(groups of {_GROUP})",
                queue.line_addr(base),
                (agent.name,),
                now,
                f"queue {queue.name}",
            )

    def slot_consume(
        self,
        queue,
        agent,
        index: int,
        item,
        now: float,
        emitted: bool,
        blank: bool = False,
    ) -> None:
        """One descriptor slot consumed (blanks included, ``item=None``)."""
        self.events += 1
        state = self._queue_state(queue)
        name = agent.name
        addr = queue.line_addr(index)
        where = f"queue {queue.name}"

        if index < state.reap_floor or index in state.reaped:
            self._flag(
                "double-reap",
                f"descriptor slot {index} consumed twice",
                addr, (name,), now, where,
            )
        pub = state.published.pop(index, None)
        if pub is None:
            if index >= state.reap_floor and index not in state.reaped:
                self._flag(
                    "read-before-signal",
                    f"descriptor slot {index} consumed but never published",
                    addr, (name,), now, where,
                )
        elif pub[0] > now:
            self._flag(
                "read-before-signal",
                f"descriptor slot {index} consumed at t={now:.1f}ns before the "
                f"producer's store retires at t={pub[0]:.1f}ns",
                addr, (name,), now, where,
            )
        elif queue.inline_signals:
            key = (
                (queue.name, index - index % _GROUP)
                if queue.grouped
                else (queue.name, index)
            )
            if not self.hb.ordered(name, key):
                self._flag(
                    "read-before-signal",
                    f"consume of slot {index} is not happens-before ordered "
                    "after its publish (signal never observed)",
                    addr, (name,), now, where,
                )
            if not queue.grouped:
                self.hb.forget(key)
            elif index % _GROUP == _GROUP - 1:
                # Last slot of the line: the group's release key is dead.
                self.hb.forget(key)
        else:
            if index >= state.acquired_tail.get(name, 0):
                self._flag(
                    "read-before-signal",
                    f"slot {index} consumed beyond the observed tail "
                    f"({state.acquired_tail.get(name, 0)})",
                    addr, (name,), now, where,
                )
        if blank and emitted:
            self._flag(
                "blank-skip",
                f"zero-padded blank at slot {index} emitted as a work item",
                addr, (name,), now, where,
            )
        if queue.grouped:
            group_base = index - index % _GROUP
            if state.open_group is not None and group_base != state.open_group:
                if state.open_seen < _GROUP:
                    self._flag(
                        "torn-group-read",
                        f"group at {state.open_group} left partially consumed "
                        f"({state.open_seen}/{_GROUP} slots) before moving on",
                        queue.line_addr(state.open_group), (name,), now, where,
                    )
                state.open_seen = 0
            if group_base != state.open_group:
                state.open_group = group_base
            state.open_seen += 1
        state.reaped.add(index)
        reaped = state.reaped
        floor = state.reap_floor
        while floor in reaped:
            reaped.discard(floor)
            floor += 1
        state.reap_floor = floor
        if item is not None:
            self._item_consumed(item, agent)

    def queue_reset(self, queue) -> None:
        """Ring reinitialized (watchdog recovery): drop stale state."""
        self.events += 1
        state = self._queue_state(queue)
        state.published.clear()
        state.reaped.clear()
        state.reap_floor = queue.tail
        state.open_group = None
        state.open_seen = 0
        state.acquired_tail.clear()

    # ------------------------------------------------------------------
    # Buffer-ownership hooks (pool + payload accessors)
    # ------------------------------------------------------------------
    def _item_inflight(self, item, queue) -> None:
        """Descriptor published: its buffer's ownership rides the ring."""
        buf = getattr(item, "buf", None)
        if buf is None or _is_continuation(item):
            # Continuation descriptors alias the head buffer; the head
            # descriptor governs the chain's ownership.
            return
        bufs = self._bufs
        for seg in buf.segments():
            if not seg.external:
                bufs[seg.buf_id] = ("inflight", queue.name)

    def _item_consumed(self, item, agent) -> None:
        """Descriptor consumed: the consumer now owns the buffer."""
        buf = getattr(item, "buf", None)
        if buf is None or _is_continuation(item):
            return
        bufs = self._bufs
        for seg in buf.segments():
            if not seg.external:
                bufs[seg.buf_id] = ("owned", agent.name)

    def pool_alloc(self, pool, agent, bufs) -> None:
        """Buffers handed out by the pool; the allocator owns them."""
        self.events += 1
        table = self._bufs
        for buf in bufs:
            table[buf.buf_id] = ("owned", agent.name)

    def pool_free(self, pool, agent, buf) -> None:
        """One buffer returned to the pool (called before the state flip,
        so a double free is recorded even though the pool then raises)."""
        self.events += 1
        state = self._bufs.get(buf.buf_id)
        already_free = (state is not None and state[0] == "free") or not buf._allocated
        if already_free:
            self._flag(
                "double-free",
                f"buffer {buf.buf_id} freed while already free",
                buf.addr, (agent.name,), self._now(), "pool",
            )
        self._bufs[buf.buf_id] = ("free", agent.name)

    def buf_access(self, agent, buf, write: bool) -> None:
        """Payload bytes touched by ``agent`` (host driver or NIC)."""
        self.events += 1
        bufs = self._bufs
        now = self._now()
        verb = "written" if write else "read"
        for seg in buf.segments():
            if seg.external:
                continue
            state = bufs.get(seg.buf_id)
            if state is None:
                continue
            if state[0] == "free":
                self._flag(
                    "use-after-free",
                    f"buffer {seg.buf_id} payload {verb} after being freed "
                    f"(freed by {state[1]})",
                    seg.addr, (agent.name,), now, "pool",
                )
            elif state[0] == "inflight":
                self._flag(
                    "use-after-free",
                    f"buffer {seg.buf_id} payload {verb} while its ownership "
                    f"is in flight on {state[1]}",
                    seg.addr, (agent.name,), now, f"queue {state[1]}",
                )

    # ------------------------------------------------------------------
    # Fabric hook
    # ------------------------------------------------------------------
    def spec_read(self, now: float, line: int, region, agent, write: bool) -> None:
        """A reader-homed speculative remote-cache fetch happened.

        Cross-checks the flight recorder's homing audit: the same
        ``cache_remote_spec`` events it counts per region are flagged
        here when a *read* hits writer-homed metadata classes. Writer
        accesses take the same fabric path when the reader has pulled
        the line to its cache — that is the intended HitM publish
        pattern, not a homing violation, so writes are exempt.
        """
        self.events += 1
        if write:
            return
        cls = classify_region(region.name)
        if cls not in METADATA_CLASSES:
            return
        if line in self._spec_lines and not self.strict:
            # One retained finding per line; the counter keeps counting.
            self.counts["writer-homing"] += 1
            return
        self._spec_lines.add(line)
        self._flag(
            "writer-homing",
            f"reader-side speculative read of {cls} metadata in region "
            f"{region.name!r} (homed on socket {region.home})",
            line * 64,
            (agent.name,),
            now,
            f"region {region.name}",
        )


def _is_continuation(item) -> bool:
    """True for multi-segment continuation descriptors (driver marker)."""
    pkt = getattr(item, "pkt", None)
    return isinstance(pkt, str) and pkt == "cont"
