"""Small-scope protocol model checker for the coherence fabric.

The fabric's MESIF transition behaviour (HITM dirty-ownership transfer,
homing-dependent charging, speculative reads, store pipelining) is what
CC-NIC's results rest on — and, since the memoized transition plans
landed, it is implemented twice. This module pins both implementations
to one explicit, declarative transition relation
(:data:`TRANSITIONS`) extracted from ``coherence/state.py`` +
``coherence/costs.py``, then *exhaustively enumerates* every reachable
small-scope configuration (2–3 agents × 1–2 cache lines × all op
sequences) through the real :class:`~repro.coherence.fabric.CoherenceFabric`,
checking per step:

* **twin equivalence** — the memoized fast path and the reference path
  agree exactly on latency, counters and resulting line states for
  every reachable ``(op, line situation, homing, requester)`` key;
* **single-writer-multiple-reader** — via the fabric's own
  :meth:`~repro.coherence.fabric.CoherenceFabric.check_invariants`;
* **transition legality** — every observed transition is in the spec,
  with the specified post-state, latency charge and counter deltas;
* **no stale reads** — a shadow data-version oracle asserts every read
  observes the globally newest version after any remote modify;
* **coverage** — every spec transition is reached (the coverage table).

On failure the checker emits a *shrunk*, replayable counterexample op
sequence (see :func:`replay_counterexample`). Named fabric mutations
(:data:`MUTATIONS`) let CI prove the checker actually catches protocol
bugs: each mutation (e.g. skipping the HITM forward) must produce a
counterexample.

Scope bounds are deliberately tiny — the point is exhaustiveness within
a scope small enough that the reachable abstract-state graph closes in
hundreds of probes, per the small-scope hypothesis.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.coherence.fabric import CoherenceFabric
from repro.coherence.state import LineState
from repro.errors import CoherenceError, ConfigError, ModelCheckError
from repro.interconnect.link import Link
from repro.mem.space import AddressSpace
from repro.obs.export import MODEL_SCHEMA
from repro.platform import cxl, icx, spr
from repro.sim.engine import Simulator
from repro.sim.rng import make_rng

#: Absolute tolerance (ns) for latency-charge checks against the spec.
#: Residual M/D/1 queueing after a settle gap is ~1e-7 ns; real cost
#: regressions are whole calibrated constants (tens of ns).
COST_TOL_NS = 1e-3

#: Settle gap between ops: long enough that the link's rate windows
#: decay to negligible queueing, so spec latencies are zero-load.
SETTLE_NS = 100_000.0

#: Safety valve on BFS probes; the default scope closes in well under
#: a tenth of this.
MAX_PROBES = 50_000

#: Platform presets usable as a model-check scope.
_PLATFORMS = {"icx": icx, "spr": spr, "cxl": cxl}


@dataclass(frozen=True)
class ModelScope:
    """Bounds of one small-scope enumeration.

    Attributes:
        agents: ``(name, socket)`` per caching agent.
        line_homes: Home socket per modelled cache line.
        platform: Platform preset key (``icx``/``spr``) for costs.
        settle_ns: Virtual-time gap inserted between ops.
    """

    agents: Tuple[Tuple[str, int], ...] = (("h0", 0), ("h1", 0), ("n0", 1))
    line_homes: Tuple[int, ...] = (0, 1)
    platform: str = "icx"
    settle_ns: float = SETTLE_NS

    def __post_init__(self) -> None:
        if not self.agents:
            raise ConfigError("model scope needs at least one agent")
        if not self.line_homes:
            raise ConfigError("model scope needs at least one line")
        if self.platform not in _PLATFORMS:
            raise ConfigError(
                f"unknown platform {self.platform!r}; pick from {sorted(_PLATFORMS)}"
            )
        sockets = {socket for _, socket in self.agents}
        if not sockets <= {0, 1}:
            raise ConfigError(f"agent sockets must be 0 or 1, got {sorted(sockets)}")
        if not set(self.line_homes) <= {0, 1}:
            raise ConfigError("line homes must be socket 0 or 1")

    def to_doc(self) -> Dict[str, Any]:
        return {
            "agents": [list(pair) for pair in self.agents],
            "line_homes": list(self.line_homes),
            "platform": self.platform,
            "settle_ns": self.settle_ns,
        }

    @classmethod
    def from_doc(cls, doc: Dict[str, Any]) -> "ModelScope":
        return cls(
            agents=tuple((name, socket) for name, socket in doc["agents"]),
            line_homes=tuple(doc["line_homes"]),
            platform=doc["platform"],
            settle_ns=doc["settle_ns"],
        )


@dataclass(frozen=True)
class TransitionRule:
    """One allowed protocol transition in the declarative spec.

    Attributes:
        key: Situation key produced by :func:`_situation`.
        write: Whether the op is a store.
        description: Human-readable transition description.
        cost_case: :class:`~repro.coherence.costs.CostModel` field charged.
        pipelined: Whether the charge is divided by ``write_pipeline``.
        counters: Per-socket counter suffixes bumped on the requester's
            socket (the offcore-response model).
        observable: Flight-recorder label (``"r:kind"``/``"w:kind"``)
            this transition produces, tying the spec to scenario runs.
        installs: Line state installed at the requester afterwards
            (``None`` keeps the pre-state — read hits).
        others: Effect on the other holders: ``keep``, ``drop`` (all
            other copies invalidated), ``drop_dirty`` (only the dirty
            source invalidated — HITM migration), or ``downgrade``
            (E/F owners fall to S).
    """

    key: tuple
    write: bool
    description: str
    cost_case: str
    pipelined: bool = False
    counters: Tuple[str, ...] = ()
    observable: str = ""
    installs: Optional[str] = None
    others: str = "keep"


def _rules() -> Dict[str, TransitionRule]:
    r = {}

    def add(tid: str, **kw) -> None:
        r[tid] = TransitionRule(**kw)

    for state in ("M", "E", "S"):
        add(
            f"read_hit_{state}",
            key=("hit", "r", state),
            write=False,
            description=f"load hit on a {state} line: no transition, L2 charge",
            cost_case="l2_hit",
            observable="r:hit",
        )
    for state in ("M", "E"):
        add(
            f"write_hit_{state}",
            key=("hit", "w", state),
            write=True,
            description=f"store hit on a writable {state} line: retire to store buffer, line goes M",
            cost_case="store_buffer",
            pipelined=True,
            observable="w:hit",
            installs="M",
        )
    add(
        "write_upgrade_local",
        key=("upgrade", False),
        write=True,
        description="store hit on a shared line, all other copies local: cheap invalidate, line goes M",
        cost_case="local_invalidate",
        pipelined=True,
        observable="w:upgrade_local",
        installs="M",
        others="drop",
    )
    add(
        "write_upgrade_remote",
        key=("upgrade", True),
        write=True,
        description="store hit on a shared line with a remote copy: cross-link invalidate (RFO), line goes M",
        cost_case="remote_invalidate",
        pipelined=True,
        counters=("rfo",),
        observable="w:upgrade_remote",
        installs="M",
        others="drop",
    )
    for write, op in ((False, "r"), (True, "w")):
        for home_local in (True, False):
            where = "local" if home_local else "remote"
            add(
                f"{'write' if write else 'read'}_miss_dram_{where}",
                key=("dram", op, home_local),
                write=write,
                description=f"{'store' if write else 'load'} miss, no cached copy, {where}-homed DRAM fill",
                cost_case=f"{where}_dram",
                pipelined=write,
                counters=() if home_local else (("rfo",) if write else ("read",)),
                observable=f"{op}:dram_{where}",
                installs="M" if write else "E",
            )
        for dirty in (False, True):
            kind = "dirty" if dirty else "clean"
            add(
                f"{'write' if write else 'read'}_miss_local_{kind}",
                key=("local", op, dirty),
                write=write,
                description=(
                    f"{'store' if write else 'load'} miss served by a same-socket "
                    f"{kind} cache" + ("" if write else
                                      (": HITM, ownership migrates" if dirty
                                       else ": shared fill, owners downgrade"))
                ),
                cost_case="local_cache",
                pipelined=write,
                observable=f"{op}:cache_local",
                installs="M" if (write or dirty) else "S",
                others="drop" if write else ("drop_dirty" if dirty else "downgrade"),
            )
            for home_local in (True, False):
                homed = "reader_homed" if home_local else "writer_homed"
                spec = ("spec_mem_read",) if home_local else ()
                add(
                    f"{'write' if write else 'read'}_miss_remote_{kind}_{homed}",
                    key=("remote", op, dirty, home_local),
                    write=write,
                    description=(
                        f"{'store' if write else 'load'} miss served by a remote "
                        f"{kind} cache, {homed.replace('_', '-')}"
                        + (" (HITM transfer)" if dirty else "")
                    ),
                    cost_case=f"remote_cache_{homed}",
                    pipelined=write,
                    counters=(("rfo",) if write else ("read",)) + spec,
                    observable=(
                        f"{op}:cache_remote"
                        + ("_spec" if home_local else "")
                        + ("_hitm" if dirty else "")
                    ),
                    installs="M" if (write or dirty) else "S",
                    others="drop" if write else ("drop_dirty" if dirty else "downgrade"),
                )
    return r


#: The declarative MESIF/HITM transition relation: transition id ->
#: :class:`TransitionRule`. 23 rules cover every transition the fabric
#: can take within a write-back, capacity-unbounded scope (FORWARD is
#: never installed by the fabric, so no rule starts from it).
TRANSITIONS: Dict[str, TransitionRule] = _rules()

_BY_KEY: Dict[tuple, str] = {rule.key: tid for tid, rule in TRANSITIONS.items()}


class _World:
    """One concrete fabric instance (fast or reference path)."""

    def __init__(self, scope: ModelScope, slowpath: bool) -> None:
        self.scope = scope
        self.sim = Simulator(slowpath=slowpath)
        self.space = AddressSpace()
        plat = _PLATFORMS[scope.platform]()
        self.link = Link(
            self.sim,
            "upi",
            latency_ns=plat.upi_latency_ns,
            bandwidth_bytes_per_ns=plat.upi_wire_bytes_per_ns,
            header_overhead=plat.upi_header_overhead,
        )
        self.fabric = CoherenceFabric(
            self.sim,
            self.space,
            plat.cost,
            self.link,
            mlp=plat.mlp,
            write_pipeline=plat.write_pipeline,
        )
        self.agents = [
            self.fabric.new_agent(name, socket) for name, socket in scope.agents
        ]
        self.regions = [
            self.space.allocate(f"L{i}", 64, home=home)
            for i, home in enumerate(scope.line_homes)
        ]

    def apply(self, op: Tuple[int, bool, int]) -> float:
        agent_index, write, line_index = op
        return self.fabric.access(
            self.agents[agent_index], self.regions[line_index].base, 8, write
        )

    def settle(self) -> None:
        self.sim.call_at(self.sim.now + self.scope.settle_ns, _noop)
        self.sim.run()

    def abstract(self) -> tuple:
        """Per-line tuple of per-agent state chars (None = Invalid)."""
        out = []
        for region in self.regions:
            line = region.base // 64
            states = tuple(
                None if (s := agent.peek(line)) is None else s.value
                for agent in self.agents
            )
            out.append(states)
        return tuple(out)

    def counters(self) -> Dict[str, float]:
        return dict(self.fabric.counters.snapshot())


def _noop() -> None:
    return None


def _situation(scope: ModelScope, pre: tuple, op: Tuple[int, bool, int]) -> Optional[tuple]:
    """Map ``(pre-state, op)`` to a spec situation key (None = unknown)."""
    agent_index, write, line_index = op
    states = pre[line_index]
    mine = states[agent_index]
    socket = scope.agents[agent_index][1]
    home_local = scope.line_homes[line_index] == socket
    opc = "w" if write else "r"
    if mine is not None:
        if not write or mine in ("M", "E"):
            return ("hit", opc, mine)
        if mine == "S":
            remote = any(
                s is not None and scope.agents[i][1] != socket
                for i, s in enumerate(states)
                if i != agent_index
            )
            return ("upgrade", remote)
        return None  # F at the requester: outside the installable space
    holders = [i for i, s in enumerate(states) if s is not None]
    if not holders:
        return ("dram", opc, home_local)
    dirty = [i for i in holders if states[i] == "M"]
    if dirty:
        source = dirty[0]
    else:
        local = [i for i in holders if scope.agents[i][1] == socket]
        source = local[-1] if local else holders[-1]
    if scope.agents[source][1] != socket:
        return ("remote", opc, bool(dirty), home_local)
    return ("local", opc, bool(dirty))


def _expected_post(
    scope: ModelScope, pre: tuple, op: Tuple[int, bool, int], rule: TransitionRule
) -> tuple:
    """Post-state the spec requires after ``rule`` fires on ``pre``."""
    agent_index, _write, line_index = op
    states = list(pre[line_index])
    if rule.installs is None:
        pass  # read hit: nothing moves
    elif rule.others == "drop" or rule.write:
        states = [None] * len(states)
        states[agent_index] = "M"
    elif rule.others == "drop_dirty":
        states = [None if s == "M" else s for s in states]
        states[agent_index] = rule.installs
    elif rule.others == "downgrade":
        states = ["S" if s in ("E", "F") else s for s in states]
        states[agent_index] = rule.installs
    else:
        states[agent_index] = rule.installs
    post = list(pre)
    post[line_index] = tuple(states)
    return tuple(post)


def op_to_doc(op: Tuple[int, bool, int], scope: ModelScope) -> List[Any]:
    """JSON-safe ``[agent_name, "r"/"w", line_index]`` form of an op."""
    agent_index, write, line_index = op
    return [scope.agents[agent_index][0], "w" if write else "r", line_index]


def op_from_doc(doc: List[Any], scope: ModelScope) -> Tuple[int, bool, int]:
    """Inverse of :func:`op_to_doc`."""
    names = [name for name, _ in scope.agents]
    return (names.index(doc[0]), doc[1] == "w", int(doc[2]))


class _Outcome:
    __slots__ = ("post", "transitions", "violation")

    def __init__(self, post, transitions, violation) -> None:
        self.post = post
        self.transitions = transitions
        self.violation = violation


def _violation(invariant: str, message: str, step: int, scope: ModelScope,
               seq, detail: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "invariant": invariant,
        "message": message,
        "step": step,
        "op": op_to_doc(seq[step], scope),
        "detail": detail,
    }


def _run_sequence(scope: ModelScope, seq, mutation=None) -> _Outcome:
    """Replay ``seq`` through a fresh fast/reference twin pair.

    Returns the final abstract state, the transition id taken at each
    step, and the first invariant violation (None when clean). Checks
    run in severity order so a single broken step reports its most
    fundamental cause.
    """
    fast = _World(scope, slowpath=False)
    slow = _World(scope, slowpath=True)
    if mutation is not None:
        MUTATIONS[mutation](fast.fabric)
        MUTATIONS[mutation](slow.fabric)
    # Spec charges bind to the platform preset, not the live fabric:
    # a mutated (or miscalibrated) fabric cost model must *diverge*
    # from the spec, not silently redefine it.
    plat = _PLATFORMS[scope.platform]()
    cost = plat.cost
    pipeline = plat.write_pipeline
    # Shadow data-version oracle: versions[l] is the newest write's
    # version; copies[l][agent] is the version each cached copy carries.
    versions = [0] * len(scope.line_homes)
    copies: List[Dict[int, int]] = [{} for _ in scope.line_homes]
    transitions: List[Optional[str]] = []
    for step, op in enumerate(seq):
        agent_index, write, line_index = op
        pre = fast.abstract()
        key = _situation(scope, pre, op)
        tid = _BY_KEY.get(key) if key is not None else None
        before_f = fast.counters()
        before_s = slow.counters()
        lat_f = fast.apply(op)
        lat_s = slow.apply(op)
        delta_f = _delta(before_f, fast.counters())
        delta_s = _delta(before_s, slow.counters())
        post_f = fast.abstract()
        post_s = slow.abstract()
        if lat_f != lat_s or delta_f != delta_s or post_f != post_s:
            return _Outcome(post_f, transitions, _violation(
                "twin-diverged",
                "memoized fast path disagrees with the reference path",
                step, scope, seq,
                {"fast": {"latency_ns": lat_f, "counters": delta_f,
                          "state": _state_doc(post_f)},
                 "reference": {"latency_ns": lat_s, "counters": delta_s,
                               "state": _state_doc(post_s)}},
            ))
        for world, path in ((fast, "fast"), (slow, "reference")):
            try:
                world.fabric.check_invariants()
            except CoherenceError as exc:
                return _Outcome(post_f, transitions, _violation(
                    "swmr",
                    f"fabric invariant violated on the {path} path: {exc}",
                    step, scope, seq, {"state": _state_doc(post_f)},
                ))
        if tid is None:
            return _Outcome(post_f, transitions, _violation(
                "transition-unknown",
                f"no spec transition matches situation {key!r}",
                step, scope, seq,
                {"situation": list(key) if key else None,
                 "pre": _state_doc(pre)},
            ))
        rule = TRANSITIONS[tid]
        expected = _expected_post(scope, pre, op, rule)
        if post_f != expected:
            return _Outcome(post_f, transitions, _violation(
                "transition-mismatch",
                f"transition {tid} produced a post-state outside the spec",
                step, scope, seq,
                {"transition": tid, "expected": _state_doc(expected),
                 "observed": _state_doc(post_f)},
            ))
        want_lat = cost.resolve(rule.cost_case)
        if rule.pipelined:
            want_lat /= pipeline
        if abs(lat_f - want_lat) > COST_TOL_NS:
            return _Outcome(post_f, transitions, _violation(
                "cost-mismatch",
                f"transition {tid} charged {lat_f:.3f} ns, spec says "
                f"{rule.cost_case}{'/wp' if rule.pipelined else ''} = {want_lat:.3f} ns",
                step, scope, seq,
                {"transition": tid, "expected_ns": want_lat, "observed_ns": lat_f},
            ))
        socket = scope.agents[agent_index][1]
        want_counters = {f"s{socket}.{c}": 1.0 for c in rule.counters}
        if delta_f != want_counters:
            return _Outcome(post_f, transitions, _violation(
                "counter-mismatch",
                f"transition {tid} bumped {delta_f}, spec says {want_counters}",
                step, scope, seq,
                {"transition": tid, "expected": want_counters, "observed": delta_f},
            ))
        # Stale-read oracle (order matters: sourcing before the write bump).
        stale = None
        if write:
            versions[line_index] += 1
            copies[line_index] = {agent_index: versions[line_index]}
        else:
            if pre[line_index][agent_index] is not None:
                got = copies[line_index].get(agent_index, 0)
            elif key[0] == "dram":
                got = versions[line_index]  # memory is never stale in-scope
            else:
                holders = [i for i, s in enumerate(pre[line_index]) if s is not None]
                dirty = [i for i in holders if pre[line_index][i] == "M"]
                source = dirty[0] if dirty else holders[0]
                got = copies[line_index].get(source, 0)
            if got != versions[line_index]:
                stale = got
            copies[line_index][agent_index] = got
        # Prune shadow copies the protocol just invalidated.
        copies[line_index] = {
            i: v for i, v in copies[line_index].items()
            if post_f[line_index][i] is not None
        }
        if stale is not None:
            return _Outcome(post_f, transitions, _violation(
                "stale-read",
                f"{scope.agents[agent_index][0]} read version {stale} of line "
                f"{line_index} after it reached version {versions[line_index]}",
                step, scope, seq,
                {"read_version": stale, "newest_version": versions[line_index]},
            ))
        transitions.append(tid)
        fast.settle()
        slow.settle()
    return _Outcome(fast.abstract(), transitions, None)


def _delta(before: Dict[str, float], after: Dict[str, float]) -> Dict[str, float]:
    return {
        k: after[k] - before.get(k, 0.0)
        for k in after
        if after[k] != before.get(k, 0.0)
    }


def _state_doc(state: tuple) -> List[List[Optional[str]]]:
    return [list(line) for line in state]


def _shrink(scope: ModelScope, seq: tuple, invariant: str, mutation) -> tuple:
    """Greedy one-op removal keeping the same invariant violation."""
    current = tuple(seq)
    changed = True
    while changed:
        changed = False
        for i in range(len(current)):
            candidate = current[:i] + current[i + 1:]
            if not candidate:
                continue
            out = _run_sequence(scope, candidate, mutation)
            if out.violation is not None and out.violation["invariant"] == invariant:
                current = candidate
                changed = True
                break
    return current


def _all_ops(scope: ModelScope) -> List[Tuple[int, bool, int]]:
    return [
        (agent_index, write, line_index)
        for agent_index in range(len(scope.agents))
        for write in (False, True)
        for line_index in range(len(scope.line_homes))
    ]


def check_model(
    scope: Optional[ModelScope] = None,
    mutation: Optional[str] = None,
    seed: int = 0,
    walks: int = 32,
    walk_depth: int = 12,
    max_counterexamples: int = 3,
) -> Dict[str, Any]:
    """Exhaustively enumerate the scope; returns a ``model-v1`` report.

    BFS over abstract line-state configurations: from every reachable
    state (reached via its shortest witness sequence), every op in the
    scope is probed through a fresh fast/reference twin pair. Seeded
    random walks (``sim/rng``-derived) then re-cover the relation with
    longer mixed sequences. ``mutation`` names a deliberate fabric bug
    from :data:`MUTATIONS` to prove the checker catches it.
    """
    scope = scope or ModelScope()
    if mutation is not None and mutation not in MUTATIONS:
        raise ConfigError(
            f"unknown mutation {mutation!r}; pick from {sorted(MUTATIONS)}"
        )
    ops = _all_ops(scope)
    coverage: Dict[str, int] = {tid: 0 for tid in TRANSITIONS}
    counterexamples: List[Dict[str, Any]] = []
    initial = tuple(
        tuple(None for _ in scope.agents) for _ in scope.line_homes
    )
    witnesses: Dict[tuple, tuple] = {initial: ()}
    frontier = deque([initial])
    probes = 0
    truncated = False
    max_depth = 0

    def record_violation(out: _Outcome, seq: tuple) -> None:
        violation = out.violation
        if len(counterexamples) >= max_counterexamples:
            return
        shrunk = _shrink(scope, seq, violation["invariant"], mutation)
        final = _run_sequence(scope, shrunk, mutation).violation or violation
        counterexamples.append({
            "invariant": final["invariant"],
            "message": final["message"],
            "sequence": [op_to_doc(op, scope) for op in shrunk],
            "step": final["step"],
            "detail": final["detail"],
            "shrunk_from": len(seq),
        })

    while frontier and probes < MAX_PROBES:
        state = frontier.popleft()
        witness = witnesses[state]
        for op in ops:
            if probes >= MAX_PROBES:
                truncated = True
                break
            probes += 1
            seq = witness + (op,)
            out = _run_sequence(scope, seq, mutation)
            if out.violation is not None:
                record_violation(out, seq)
                continue
            coverage[out.transitions[-1]] += 1
            max_depth = max(max_depth, len(seq))
            if out.post not in witnesses:
                witnesses[out.post] = seq
                frontier.append(out.post)
    if frontier:
        truncated = True

    rng = make_rng(seed, "model-walk")
    for _ in range(walks):
        seq = tuple(ops[rng.randrange(len(ops))] for _ in range(walk_depth))
        probes += 1
        out = _run_sequence(scope, seq, mutation)
        if out.violation is not None:
            record_violation(out, seq)
            continue
        for tid in out.transitions:
            coverage[tid] += 1

    missing = sorted(tid for tid, count in coverage.items() if count == 0)
    report = {
        "schema": MODEL_SCHEMA,
        "kind": "model",
        "scope": scope.to_doc(),
        "seed": seed,
        "walks": walks,
        "walk_depth": walk_depth,
        "mutation": mutation,
        "states": len(witnesses),
        "probes": probes,
        "ops": len(ops),
        "max_witness_depth": max_depth,
        "truncated": truncated,
        "transitions": {
            tid: {
                "count": coverage[tid],
                "description": rule.description,
                "observable": rule.observable,
            }
            for tid, rule in sorted(TRANSITIONS.items())
        },
        "coverage": {
            "total": len(TRANSITIONS),
            "reached": len(TRANSITIONS) - len(missing),
            "missing": missing,
        },
        "counterexamples": counterexamples,
    }
    report["ok"] = not counterexamples and not missing and not truncated
    return report


def replay_counterexample(report: Dict[str, Any], index: int = 0) -> Dict[str, Any]:
    """Re-run a report's counterexample; returns the reproduced violation.

    Raises :class:`ModelCheckError` if the sequence no longer violates
    anything (the report is stale against the current fabric).
    """
    entries = report.get("counterexamples", ())
    if not 0 <= index < len(entries):
        raise ConfigError(
            f"report has {len(entries)} counterexample(s); index {index} invalid"
        )
    entry = entries[index]
    scope = ModelScope.from_doc(report["scope"])
    seq = tuple(op_from_doc(doc, scope) for doc in entry["sequence"])
    out = _run_sequence(scope, seq, report.get("mutation"))
    if out.violation is None:
        raise ModelCheckError(
            f"counterexample {index} no longer reproduces "
            f"({entry['invariant']}); the fabric has changed since the report",
            invariant=entry["invariant"],
            sequence=entry["sequence"],
        )
    return out.violation


def raise_on_failure(report: Dict[str, Any]) -> None:
    """Raise :class:`ModelCheckError` when a report is not ok."""
    if report["ok"]:
        return
    if report["counterexamples"]:
        first = report["counterexamples"][0]
        raise ModelCheckError(
            f"model check failed: {first['message']}",
            invariant=first["invariant"],
            sequence=first["sequence"],
            step=first["step"],
            detail=first["detail"],
        )
    missing = report["coverage"]["missing"]
    raise ModelCheckError(
        f"model check incomplete: {len(missing)} spec transition(s) unreached",
        invariant="coverage",
        detail={"missing": missing, "truncated": report["truncated"]},
    )


# ----------------------------------------------------------------------
# Seeded fabric mutations (deliberate bugs the checker must catch)
# ----------------------------------------------------------------------
def _mutate_skip_hitm_forward(fabric: CoherenceFabric) -> None:
    """The dirty holder keeps its M copy after a HITM read transfer."""
    def wrap(inner):
        def mutated(agent, line, write, region):
            holders = fabric._holders.get(line, ())
            dirty = next(
                (h for h in holders if h.peek(line) is LineState.MODIFIED), None
            )
            latency = inner(agent, line, write, region)
            if not write and dirty is not None and dirty is not agent:
                dirty.set_state(line, LineState.MODIFIED)
                holders = fabric._holders.setdefault(line, [])
                if dirty not in holders:
                    holders.append(dirty)
            return latency
        return mutated

    fabric._miss = wrap(fabric._miss)
    fabric._miss_fast = wrap(fabric._miss_fast)


def _mutate_skip_remote_invalidate(fabric: CoherenceFabric) -> None:
    """Store upgrades leave remote copies in place (no invalidation)."""
    inner = fabric._invalidate_others

    def mutated(agent, line):
        survivors = [
            (h, h.peek(line))
            for h in fabric._holders.get(line, ())
            if h is not agent and h.socket != agent.socket
        ]
        latency = inner(agent, line)
        if survivors:
            holders = fabric._holders.setdefault(line, [])
            for holder, state in survivors:
                holder.set_state(line, state)
                if holder not in holders:
                    holders.append(holder)
        return latency

    fabric._invalidate_others = mutated


def _mutate_undercharge_remote_cache(fabric: CoherenceFabric) -> None:
    """Remote-cache fills charged at the local-cache constant."""
    cost = fabric.cost
    fabric.cost = dataclasses.replace(
        cost,
        remote_cache_writer_homed=cost.local_cache,
        remote_cache_reader_homed=cost.local_cache,
    )


#: Named deliberate fabric bugs for ``check --model --mutate``. Each
#: must yield a replayable counterexample; a mutation the checker
#: misses is a hole in the invariant set.
MUTATIONS = {
    "skip-hitm-forward": _mutate_skip_hitm_forward,
    "skip-remote-invalidate": _mutate_skip_remote_invalidate,
    "undercharge-remote-cache": _mutate_undercharge_remote_cache,
}


def format_model_summary(report: Dict[str, Any]) -> str:
    """Human-readable one-screen summary of a model-check report."""
    from repro.analysis.tables import format_table

    cov = report["coverage"]
    lines = [
        f"model check: {report['states']} states, {report['probes']} probes, "
        f"coverage {cov['reached']}/{cov['total']}"
        + (f", mutation={report['mutation']}" if report["mutation"] else ""),
    ]
    rows = [
        [tid, str(info["count"]), info["observable"]]
        for tid, info in sorted(report["transitions"].items())
    ]
    lines.append(format_table(["transition", "count", "observable"], rows))
    if cov["missing"]:
        lines.append("UNREACHED: " + ", ".join(cov["missing"]))
    for i, ce in enumerate(report["counterexamples"]):
        steps = " ; ".join(
            f"{name} {op} L{line}" for name, op, line in ce["sequence"]
        )
        lines.append(
            f"counterexample[{i}] {ce['invariant']} at step {ce['step']}: "
            f"{ce['message']}\n  replay: {steps}"
        )
    lines.append("RESULT: " + ("ok" if report["ok"] else "FAILED"))
    return "\n".join(lines)
