"""Static determinism/protocol-hygiene linter over the ``repro`` tree.

``run_lint`` parses every module under a package root with :mod:`ast`,
runs the :mod:`repro.check.rules` visitors, applies inline waivers, and
returns a :class:`LintReport` whose ``as_report`` dict carries the
``repro.check/lint-v1`` schema for JSON export. This is the engine
behind ``python -m repro check``.

Waivers are inline comments of the form::

    x = something()  # repro: allow(wall-clock) measuring host time

placed on the finding's line or the line directly above it. Waived
findings stay in the report (counted separately) so suppressions are
auditable, not silent.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.check.rules import (
    WAIVER_RE,
    ErrorTaxonomyRule,
    FastpathTwinRule,
    LintRule,
    StaleWaiverRule,
    default_rules,
)
from repro.errors import LintError
from repro.obs.export import LINT_SCHEMA


@dataclass
class LintFinding:
    """One lint diagnostic, waived or active."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    waived: bool = False

    def as_dict(self) -> Dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "waived": self.waived,
        }


@dataclass
class LintReport:
    """All findings over one lint run."""

    findings: List[LintFinding] = field(default_factory=list)
    files: int = 0

    @property
    def active(self) -> List[LintFinding]:
        return [f for f in self.findings if not f.waived]

    @property
    def waived(self) -> List[LintFinding]:
        return [f for f in self.findings if f.waived]

    @property
    def ok(self) -> bool:
        return not self.active

    def as_report(self, config: Optional[Dict] = None) -> Dict:
        counts: Dict[str, int] = {}
        for finding in self.active:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return {
            "schema": LINT_SCHEMA,
            "files": self.files,
            "total": len(self.findings),
            "active": len(self.active),
            "waived": len(self.waived),
            "counts": dict(sorted(counts.items())),
            "findings": [f.as_dict() for f in self.findings],
            "config": dict(config or {}),
        }


def _waived_rules(source: str) -> Dict[int, set]:
    """Map line number -> rule names waived *for* that line.

    A waiver comment covers its own line and the line below it, so both
    end-of-line and stand-alone comment placements work.
    """
    waivers: Dict[int, set] = {}
    for number, text in enumerate(source.splitlines(), start=1):
        match = WAIVER_RE.search(text)
        if match is None:
            continue
        rules = {token.strip() for token in match.group(1).split(",") if token.strip()}
        waivers.setdefault(number, set()).update(rules)
        waivers.setdefault(number + 1, set()).update(rules)
    return waivers


def lint_source(
    source: str, path: str, rules: Iterable[LintRule]
) -> List[LintFinding]:
    """Lint one module's source text; returns waiver-annotated findings."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise LintError(f"cannot parse {path}: {exc}") from exc
    waivers = _waived_rules(source)
    rules = list(rules)
    findings: List[LintFinding] = []
    for rule in rules:
        for line, col, message in rule.check(tree, path, source):
            waived = rule.name in waivers.get(line, ())
            findings.append(
                LintFinding(rule.name, path, line, col, message, waived=waived)
            )
    # Stale-waiver analysis runs last: it audits the waiver comments
    # against the findings every other rule just produced.
    known_rules = frozenset(rule.name for rule in rules)
    for rule in rules:
        if not isinstance(rule, StaleWaiverRule):
            continue
        for line, col, message in rule.check_waivers(
            path, source, findings, known_rules
        ):
            waived = rule.name in waivers.get(line, ())
            findings.append(
                LintFinding(rule.name, path, line, col, message, waived=waived)
            )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def _taxonomy_names(root: str) -> frozenset:
    """Exception names defined by ``errors.py`` at or above ``root``.

    Walking up lets a subsystem-scoped lint (``--root
    src/repro/topology``) share the package-level taxonomy.
    """
    probe = os.path.abspath(root)
    errors_path = os.path.join(probe, "errors.py")
    while not os.path.isfile(errors_path):
        parent = os.path.dirname(probe)
        if parent == probe:
            raise LintError(
                f"no errors.py at or above {root!r}; cannot build taxonomy"
            )
        probe = parent
        errors_path = os.path.join(probe, "errors.py")
    with open(errors_path) as fh:
        tree = ast.parse(fh.read(), filename=errors_path)
    names = set()
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            # Aliases like ``MemoryError_ = AddressSpaceError``.
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return frozenset(names)


def _iter_sources(root: str):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                yield os.path.join(dirpath, filename)


def _tests_have_fingerprint_check(tests_root: str) -> bool:
    for path in _iter_sources(tests_root):
        with open(path) as fh:
            text = fh.read()
        if "REPRO_SIM_SLOWPATH" in text and "fingerprint" in text.lower():
            return True
    return False


def run_lint(
    root: Optional[str] = None,
    tests_root: Optional[str] = None,
    rules: Optional[List[LintRule]] = None,
) -> LintReport:
    """Lint every module under ``root`` (default: the installed package).

    ``tests_root`` enables the run-level fingerprint-test presence check;
    pass None (or a missing directory) to skip it, e.g. when linting an
    installed package without its test tree.
    """
    if root is None:
        import repro

        root = os.path.dirname(os.path.abspath(repro.__file__))
    if not os.path.isdir(root):
        raise LintError(f"lint root {root!r} is not a directory")
    if rules is None:
        rules = default_rules(taxonomy=_taxonomy_names(root))
    if tests_root is not None and not os.path.isdir(tests_root):
        tests_root = None
    report = LintReport()
    prefix = os.path.dirname(root)
    for path in _iter_sources(root):
        with open(path) as fh:
            source = fh.read()
        rel = os.path.relpath(path, prefix)
        report.findings.extend(lint_source(source, rel, rules))
        report.files += 1
    for rule in rules:
        if isinstance(rule, FastpathTwinRule) and tests_root is not None:
            rule.note_tests(_tests_have_fingerprint_check(tests_root))
        for line, col, message in rule.finish(tests_root):
            report.findings.append(
                LintFinding(rule.name, tests_root or root, line, col, message)
            )
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report


# ----------------------------------------------------------------------
# Text rendering (used by ``python -m repro check``)
# ----------------------------------------------------------------------
def format_lint_summary(report: LintReport) -> str:
    from repro.analysis.tables import format_table

    counts: Dict[str, int] = {}
    waived: Dict[str, int] = {}
    for finding in report.findings:
        bucket = waived if finding.waived else counts
        bucket[finding.rule] = bucket.get(finding.rule, 0) + 1
    rules = sorted(set(counts) | set(waived))
    rows = [(rule, counts.get(rule, 0), waived.get(rule, 0)) for rule in rules]
    if not rows:
        rows = [("(clean)", 0, 0)]
    title = (
        f"Lint summary: {len(report.active)} active, "
        f"{len(report.waived)} waived over {report.files} files"
    )
    return format_table(["rule", "active", "waived"], rows, title=title)


def format_lint_findings(report: LintReport, limit: int = 50) -> str:
    from repro.analysis.tables import format_table

    ordered = report.active + report.waived
    rows = [
        (
            f.rule,
            f"{f.path}:{f.line}",
            "waived" if f.waived else "ACTIVE",
            f.message[:70],
        )
        for f in ordered[:limit]
    ]
    if not rows:
        return "Lint clean: no findings."
    shown = len(rows)
    total = len(ordered)
    suffix = "" if shown == total else f" (showing {shown} of {total})"
    return format_table(
        ["rule", "where", "state", "message"],
        rows,
        title=f"Lint findings{suffix}",
    )
