"""Visitor-based lint rules for the CC-NIC reproduction's determinism
and protocol-hygiene contracts.

Each rule is a :class:`LintRule` with a stable ``name`` (used in
``# repro: allow(<name>)`` waivers) and a ``check`` method that yields
``(line, col, message)`` tuples for one parsed module. Rules are pure
AST analyses — nothing is imported or executed — so the linter runs on
any tree the :mod:`ast` module can parse.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from typing import Iterator, Set, Tuple

Finding = Tuple[int, int, str]

#: Zero-cost-detached hook attributes (class-level ``None`` idiom).
HOOK_ATTRS = frozenset({"flight", "faults", "sanitizer", "timeline", "chooser"})

#: Builtin exceptions allowed alongside the repro taxonomy: control-flow
#: and protocol exceptions that are not error reports.
ALLOWED_BUILTIN_RAISES = frozenset(
    {"NotImplementedError", "StopIteration", "SystemExit", "KeyboardInterrupt"}
)

_BANNED_TIME_FNS = frozenset(
    {
        "time", "time_ns", "perf_counter", "perf_counter_ns",
        "monotonic", "monotonic_ns", "process_time", "process_time_ns",
    }
)

_BANNED_DATETIME_FNS = frozenset({"now", "utcnow", "today"})

#: Waiver comment grammar (a ``repro: allow(...)`` clause after a hash).
#: Shared with the linter driver so the grammar has one definition.
WAIVER_RE = re.compile(r"#\s*repro:\s*allow\(([a-z0-9_\-, ]+)\)")


class LintRule:
    """One named static check over a parsed module."""

    name = ""
    description = ""

    def check(self, tree: ast.Module, path: str, source: str) -> Iterator[Finding]:
        raise NotImplementedError

    def finish(self, tests_root) -> Iterator[Finding]:
        """Run-level check after all files; default none."""
        return iter(())


def _is_rng_module(path: str) -> bool:
    normalized = path.replace("\\", "/")
    return normalized.endswith("sim/rng.py")


class WallClockRule(LintRule):
    """No wall-clock reads or unseeded randomness in simulator code.

    Simulated time comes from the discrete-event engine and randomness
    from :func:`repro.sim.rng.make_rng`; anything else makes runs
    non-reproducible. ``random.Random(seed)`` with an explicit seed is
    allowed (that is how ``sim/rng.py`` builds streams); ``sim/rng.py``
    itself is exempt as the one sanctioned randomness source.
    """

    name = "wall-clock"
    description = "wall-clock time or unseeded randomness outside sim/rng.py"

    def check(self, tree, path, source):
        if _is_rng_module(path):
            return
        modules = {}   # local name -> module it refers to
        from_bans = {} # local name -> (module, original function name)
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in ("time", "random", "datetime"):
                        modules[alias.asname or root] = root
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    for alias in node.names:
                        if alias.name in _BANNED_TIME_FNS:
                            from_bans[alias.asname or alias.name] = ("time", alias.name)
                elif node.module == "random":
                    for alias in node.names:
                        if alias.name != "Random":
                            from_bans[alias.asname or alias.name] = ("random", alias.name)
                        else:
                            modules[alias.asname or alias.name] = "random.Random"
                elif node.module == "datetime":
                    for alias in node.names:
                        modules[alias.asname or alias.name] = "datetime.datetime"
        if not modules and not from_bans:
            return
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                bound = from_bans.get(func.id)
                if bound is not None:
                    yield (node.lineno, node.col_offset,
                           f"call to {bound[0]}.{bound[1]} (wall-clock or "
                           "unseeded randomness) in simulator code")
                elif modules.get(func.id) == "random.Random" and not (
                    node.args or node.keywords
                ):
                    yield (node.lineno, node.col_offset,
                           "unseeded random.Random() in simulator code")
            elif isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
                mod = modules.get(func.value.id)
                if mod == "time" and func.attr in _BANNED_TIME_FNS:
                    yield (node.lineno, node.col_offset,
                           f"call to time.{func.attr} (wall-clock) in simulator code")
                elif mod == "random":
                    if func.attr == "Random" and (node.args or node.keywords):
                        continue
                    if func.attr == "Random":
                        yield (node.lineno, node.col_offset,
                               "unseeded random.Random() in simulator code")
                    else:
                        yield (node.lineno, node.col_offset,
                               f"call to random.{func.attr} (module-global RNG) "
                               "in simulator code")
                elif mod in ("datetime", "datetime.datetime") and (
                    func.attr in _BANNED_DATETIME_FNS
                ):
                    yield (node.lineno, node.col_offset,
                           f"call to datetime {func.attr}() (wall-clock) "
                           "in simulator code")
            elif (
                isinstance(func, ast.Attribute)
                and func.attr in _BANNED_DATETIME_FNS
                and isinstance(func.value, ast.Attribute)
                and isinstance(func.value.value, ast.Name)
                and modules.get(func.value.value.id) == "datetime"
            ):
                yield (node.lineno, node.col_offset,
                       f"call to datetime.datetime.{func.attr}() (wall-clock) "
                       "in simulator code")


class FastpathTwinRule(LintRule):
    """Every ``*_fast`` / ``*_slow`` function needs a reference twin.

    The fabric's fingerprint contract rests on fast-path functions
    having a reference implementation to diff against; a twin-less
    fast path cannot be cross-checked. The twin may be the base name
    (``_miss`` for ``_miss_fast``), an underscore variant, or the
    opposite suffix (``_run_slow`` for ``_run_fast``), in the same
    class or module scope.
    """

    name = "fastpath-twin"
    description = "fast-path function without a reference twin"

    def __init__(self) -> None:
        self._saw_fingerprint_test = False

    def check(self, tree, path, source):
        yield from self._check_scope(tree, tree.body)

    def _check_scope(self, tree, body):
        names = {
            node.name
            for node in body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for node in body:
            if isinstance(node, ast.ClassDef):
                yield from self._check_scope(tree, node.body)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                name = node.name
                for suffix, opposite in (("_fast", "_slow"), ("_slow", "_fast")):
                    if not name.endswith(suffix) or len(name) <= len(suffix):
                        continue
                    base = name[: -len(suffix)]
                    candidates = {base, base.lstrip("_"), "_" + base, base + opposite}
                    if not (candidates & names):
                        yield (
                            node.lineno, node.col_offset,
                            f"fast-path function {name!r} has no reference twin "
                            f"(looked for {', '.join(sorted(candidates))})",
                        )

    def note_tests(self, has_fingerprint_test: bool) -> None:
        self._saw_fingerprint_test = has_fingerprint_test

    def finish(self, tests_root):
        if tests_root is not None and not self._saw_fingerprint_test:
            yield (
                1, 0,
                "no test exercises the fingerprint-equality contract "
                "(expected a test file mentioning both REPRO_SIM_SLOWPATH "
                "and fingerprint)",
            )


class HookGuardRule(LintRule):
    """Observability/fault/sanitizer hooks follow the zero-cost idiom.

    Two contracts: a class whose methods read ``self.<hook>`` must
    define the hook as a class-level attribute (so detached instances
    pay one attribute load, no ``__init__`` cost and no AttributeError);
    and any *call* through a hook value must sit under an
    ``is not None`` (or truthiness) guard, so detached runs never
    allocate or dispatch on the hook path.
    """

    name = "zero-cost-hooks"
    description = "hook attribute without class default or unguarded hook call"

    def check(self, tree, path, source):
        classes = {
            node.name: node for node in tree.body if isinstance(node, ast.ClassDef)
        }
        for node in classes.values():
            yield from self._check_class_attrs(node, classes)
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(node)

    # -- class-attribute presence ------------------------------------
    def _class_defines(self, cls, hook, classes, seen) -> bool:
        if cls.name in seen:
            return False
        seen.add(cls.name)
        for stmt in cls.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and target.id == hook:
                        return True
            elif isinstance(stmt, ast.AnnAssign):
                if isinstance(stmt.target, ast.Name) and stmt.target.id == hook:
                    return True
        for base in cls.bases:
            if isinstance(base, ast.Name) and base.id in classes:
                if self._class_defines(classes[base.id], hook, classes, seen):
                    return True
        return False

    def _check_class_attrs(self, cls, classes):
        needed = {}
        for node in ast.walk(cls):
            if (
                isinstance(node, ast.Attribute)
                and node.attr in HOOK_ATTRS
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and isinstance(node.ctx, ast.Load)
            ):
                needed.setdefault(node.attr, node)
        for hook, node in sorted(needed.items()):
            if not self._class_defines(cls, hook, classes, set()):
                yield (
                    node.lineno, node.col_offset,
                    f"class {cls.name!r} reads self.{hook} but defines no "
                    f"class-level '{hook} = None' default",
                )

    # -- guarded-call analysis ----------------------------------------
    @staticmethod
    def _hook_token(expr):
        """Token for a hook-valued expression, or None.

        ``self.<hook>`` -> ('self', hook); a plain name bound from a
        hook attribute is tracked by the caller as a string token.
        """
        if (
            isinstance(expr, ast.Attribute)
            and expr.attr in HOOK_ATTRS
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            return ("self", expr.attr)
        return None

    @classmethod
    def _guard_tokens(cls, test, aliases) -> Tuple[Set, Set]:
        """(tokens proven non-None if true, tokens proven None if true)."""
        pos: Set = set()
        neg: Set = set()
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
            for value in test.values:
                sub_pos, _ = cls._guard_tokens(value, aliases)
                pos |= sub_pos
        elif isinstance(test, ast.Compare) and len(test.ops) == 1:
            token = cls._token_of(test.left, aliases)
            if token is not None and isinstance(
                test.comparators[0], ast.Constant
            ) and test.comparators[0].value is None:
                if isinstance(test.ops[0], ast.IsNot):
                    pos.add(token)
                elif isinstance(test.ops[0], ast.Is):
                    neg.add(token)
        else:
            token = cls._token_of(test, aliases)
            if token is not None:
                pos.add(token)
        return pos, neg

    @classmethod
    def _token_of(cls, expr, aliases):
        token = cls._hook_token(expr)
        if token is not None:
            return token
        if isinstance(expr, ast.Name) and expr.id in aliases:
            return expr.id
        return None

    @staticmethod
    def _terminates(body) -> bool:
        return bool(body) and isinstance(
            body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
        )

    def _check_function(self, func):
        aliases: Set[str] = set()
        # Pre-pass: collect every name ever bound from a hook attribute
        # (assignment order does not matter for alias *identity*).
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Attribute):
                if node.value.attr in HOOK_ATTRS:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            aliases.add(target.id)
        findings = []
        self._scan_body(func.body, frozenset(), aliases, findings)
        return iter(findings)

    def _scan_expr(self, expr, guarded, aliases, findings) -> None:
        if expr is None:
            return
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            if not isinstance(callee, ast.Attribute):
                continue
            token = self._token_of(callee.value, aliases)
            if token is not None and token not in guarded:
                name = token if isinstance(token, str) else f"self.{token[1]}"
                findings.append(
                    (node.lineno, node.col_offset,
                     f"call through hook {name!r} outside an "
                     "'is not None' guard")
                )

    def _scan_body(self, body, guarded, aliases, findings) -> Set:
        """Scan statements; returns the guard set live after the block."""
        guarded = set(guarded)
        for stmt in body:
            if isinstance(stmt, ast.If):
                pos, neg = self._guard_tokens(stmt.test, aliases)
                self._scan_expr(stmt.test, guarded, aliases, findings)
                self._scan_body(stmt.body, guarded | pos, aliases, findings)
                self._scan_body(stmt.orelse, guarded | neg, aliases, findings)
                if neg and self._terminates(stmt.body):
                    # Early-out guard: 'if hook is None: return'.
                    guarded |= neg
                if pos and self._terminates(stmt.orelse):
                    guarded |= pos
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._scan_expr(stmt.iter, guarded, aliases, findings)
                self._scan_body(stmt.body, guarded, aliases, findings)
                self._scan_body(stmt.orelse, guarded, aliases, findings)
            elif isinstance(stmt, ast.While):
                self._scan_expr(stmt.test, guarded, aliases, findings)
                self._scan_body(stmt.body, guarded, aliases, findings)
                self._scan_body(stmt.orelse, guarded, aliases, findings)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    self._scan_expr(item.context_expr, guarded, aliases, findings)
                self._scan_body(stmt.body, guarded, aliases, findings)
            elif isinstance(stmt, ast.Try):
                self._scan_body(stmt.body, guarded, aliases, findings)
                for handler in stmt.handlers:
                    self._scan_body(handler.body, guarded, aliases, findings)
                self._scan_body(stmt.orelse, guarded, aliases, findings)
                self._scan_body(stmt.finalbody, guarded, aliases, findings)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # nested scopes are scanned by the caller's walk
            elif isinstance(stmt, ast.Assign):
                # A re-read of the hook invalidates existing guards on
                # the target alias (the hook may have been detached).
                self._scan_expr(stmt.value, guarded, aliases, findings)
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        guarded.discard(target.id)
            else:
                for child in ast.iter_child_nodes(stmt):
                    if isinstance(child, ast.expr):
                        self._scan_expr(child, guarded, aliases, findings)
        return guarded


class IdKeyRule(LintRule):
    """No iteration over ``id()``-keyed mappings in simulator code.

    ``id()`` values depend on allocation addresses, so iterating such a
    mapping yields an interpreter-dependent order and breaks run
    fingerprints. Key stable identities instead (``buf_id``, names).
    """

    name = "id-keyed-iteration"
    description = "iteration over an id()-keyed mapping"

    @staticmethod
    def _container_token(expr):
        if isinstance(expr, ast.Name):
            return expr.id
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            return ("self", expr.attr)
        return None

    def check(self, tree, path, source):
        id_keyed = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Subscript):
                slice_expr = node.slice
                if (
                    isinstance(slice_expr, ast.Call)
                    and isinstance(slice_expr.func, ast.Name)
                    and slice_expr.func.id == "id"
                ):
                    token = self._container_token(node.value)
                    if token is not None:
                        id_keyed.add(token)
        if not id_keyed:
            return
        for node in ast.walk(tree):
            iter_expr = None
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iter_expr = node.iter
            elif isinstance(node, ast.comprehension):
                iter_expr = node.iter
            if iter_expr is None:
                continue
            target = iter_expr
            if (
                isinstance(target, ast.Call)
                and isinstance(target.func, ast.Attribute)
                and target.func.attr in ("items", "keys", "values")
            ):
                target = target.func.value
            token = self._container_token(target)
            if token in id_keyed:
                name = token if isinstance(token, str) else f"self.{token[1]}"
                yield (
                    iter_expr.lineno, iter_expr.col_offset,
                    f"iteration over id()-keyed mapping {name!r} "
                    "(allocation-order dependent)",
                )


class ErrorTaxonomyRule(LintRule):
    """Exceptions raised in ``repro`` come from the errors.py taxonomy.

    Raising stdlib exceptions directly (``ValueError``, ``RuntimeError``)
    breaks the catch-one-base contract of :class:`repro.errors.ReproError`.
    Control-flow builtins (``StopIteration``, ``SystemExit``, ...) and
    re-raises of caught exception variables are allowed.
    """

    name = "error-taxonomy"
    description = "raise of an exception outside the repro.errors taxonomy"

    def __init__(self, taxonomy=frozenset()) -> None:
        self.taxonomy = frozenset(taxonomy)

    def check(self, tree, path, source):
        allowed = set(self.taxonomy) | set(ALLOWED_BUILTIN_RAISES)
        # Module-local exception classes deriving from the taxonomy
        # (transitively) are allowed; iterate to a fixpoint.
        local = [n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)]
        changed = True
        while changed:
            changed = False
            for cls in local:
                if cls.name in allowed:
                    continue
                for base in cls.bases:
                    base_name = (
                        base.id if isinstance(base, ast.Name)
                        else base.attr if isinstance(base, ast.Attribute)
                        else None
                    )
                    if base_name in allowed:
                        allowed.add(cls.name)
                        changed = True
                        break
        for node in ast.walk(tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            target = node.exc
            if isinstance(target, ast.Call):
                target = target.func
            if isinstance(target, ast.Name):
                name = target.id
            elif isinstance(target, ast.Attribute):
                name = target.attr
            else:
                continue
            if not name[:1].isupper():
                continue  # re-raise of a caught exception variable
            if name not in allowed:
                yield (
                    node.lineno, node.col_offset,
                    f"raise of {name} outside the repro.errors taxonomy",
                )


class UnitsMixingRule(LintRule):
    """No additive arithmetic across time and size quantities.

    Adding or subtracting a ``*_ns`` value and a ``*_bytes`` / ``*_gbps``
    value is dimensionally meaningless — the classic latency-plus-length
    bug. Multiplication and division are how units legitimately convert
    (``bytes / bytes_per_ns``), so only ``+`` and ``-`` are checked; call
    results (e.g. a ``repro.units`` conversion helper) carry no suffix
    and therefore never trip the rule.
    """

    name = "units-mixing"
    description = "additive arithmetic mixing _ns with _bytes/_gbps values"

    _TIME_SUFFIXES = ("_ns",)
    _SIZE_SUFFIXES = ("_bytes", "_gbps")

    @classmethod
    def _operand(cls, expr):
        """(unit kind, identifier) for a suffixed operand, else None."""
        if isinstance(expr, ast.Name):
            ident = expr.id
        elif isinstance(expr, ast.Attribute):
            ident = expr.attr
        else:
            return None
        if ident.endswith(cls._TIME_SUFFIXES):
            return ("time", ident)
        if ident.endswith(cls._SIZE_SUFFIXES):
            return ("size", ident)
        return None

    def check(self, tree, path, source):
        for node in ast.walk(tree):
            if not isinstance(node, ast.BinOp):
                continue
            if not isinstance(node.op, (ast.Add, ast.Sub)):
                continue
            left = self._operand(node.left)
            right = self._operand(node.right)
            if left is None or right is None or left[0] == right[0]:
                continue
            op = "+" if isinstance(node.op, ast.Add) else "-"
            yield (
                node.lineno, node.col_offset,
                f"'{left[1]} {op} {right[1]}' mixes a time (_ns) with a "
                "size (_bytes/_gbps) quantity; convert explicitly first",
            )


class StaleWaiverRule(LintRule):
    """Every ``# repro: allow(rule)`` waiver must still earn its keep.

    A waiver whose line (or the line below, for waivers placed above the
    statement they excuse) produces no finding for the named rule is
    stale: the code was fixed or the rule evolved, and the comment now
    only hides future regressions. Unknown rule names are flagged too.
    Only real comment tokens are inspected, so waiver text quoted in
    docstrings or string literals never counts.
    """

    name = "stale-waiver"
    description = "waiver comment that no longer suppresses any finding"

    def check(self, tree, path, source):
        # The per-file analysis lives in check_waivers, which needs the
        # other rules' findings; the linter driver calls it after they
        # have all run over the file.
        return iter(())

    def check_waivers(self, path, source, findings, known_rules):
        rules_by_line = {}
        for finding in findings:
            rules_by_line.setdefault(finding.line, set()).add(finding.rule)
        try:
            comments = [
                tok
                for tok in tokenize.generate_tokens(io.StringIO(source).readline)
                if tok.type == tokenize.COMMENT
            ]
        except (tokenize.TokenError, IndentationError, SyntaxError):
            return
        for tok in comments:
            match = WAIVER_RE.search(tok.string)
            if match is None:
                continue
            line, col = tok.start
            for rule in match.group(1).replace(",", " ").split():
                if rule == self.name:
                    continue
                if rule not in known_rules:
                    yield (line, col, f"waiver names unknown rule {rule!r}")
                    continue
                covered = rules_by_line.get(line, set()) | rules_by_line.get(
                    line + 1, set()
                )
                if rule not in covered:
                    yield (
                        line, col,
                        f"stale waiver: no {rule!r} finding on this line "
                        "or the next",
                    )


def default_rules(taxonomy=frozenset()):
    """The standard rule set, in report order."""
    return [
        WallClockRule(),
        FastpathTwinRule(),
        HookGuardRule(),
        IdKeyRule(),
        ErrorTaxonomyRule(taxonomy=taxonomy),
        UnitsMixingRule(),
        StaleWaiverRule(),
    ]
