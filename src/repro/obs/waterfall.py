"""Per-packet critical-path waterfalls.

A sampled packet's life on the CC-NIC data path is a chain of causally
ordered events:

    tx_submit -> desc_write -> signal_observed -> nic_fetch
              -> payload_fetch -> wire -> compl_write -> host_reap
              -> rx_read

Each *stage* is named after the event that ends it, and its duration is
the gap since the previous recorded event. Because stage durations are
consecutive differences along one timeline, they telescope: the sum of
all stage durations equals ``rx_read - tx_submit``, i.e. the packet's
end-to-end latency, exactly (up to floating-point rounding). Stages a
packet never hit (e.g. ``compl_write`` under shared buffer management)
are simply absent from its waterfall.

:class:`WaterfallStats` aggregates sampled packets into per-stage
histograms (p50/p99 breakdowns mirroring the paper's latency
decomposition figures) and keeps a bounded number of full per-packet
samples for inspection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.sim.stats import Histogram

#: Causal event order on the data path. ``line_events`` recorded by the
#: flight recorder are a different, line-granular stream; these are the
#: packet-granular checkpoints.
STAGES: Tuple[str, ...] = (
    "tx_submit",
    "desc_write",
    "signal_observed",
    "nic_fetch",
    "payload_fetch",
    "wire",
    "compl_write",
    "host_reap",
    "rx_read",
)

_STAGE_INDEX = {name: i for i, name in enumerate(STAGES)}


@dataclass(frozen=True)
class PacketWaterfall:
    """One sampled packet's full stage breakdown.

    ``stages`` holds ``(stage_name, duration_ns)`` pairs in causal
    order; ``total_ns`` is the end-to-end latency they telescope to.
    """

    pkt_id: int
    t0_ns: float
    total_ns: float
    stages: Tuple[Tuple[str, float], ...]

    def as_dict(self) -> Dict[str, object]:
        return {
            "pkt_id": self.pkt_id,
            "t0_ns": self.t0_ns,
            "total_ns": self.total_ns,
            "stages": [[name, dur] for name, dur in self.stages],
        }


def build_waterfall(pkt_id: int, events: Dict[str, float]) -> PacketWaterfall:
    """Turn a packet's raw ``{stage: timestamp}`` map into a waterfall.

    Events are ordered by :data:`STAGES` (unknown stages are ignored);
    each stage's duration is the delta from the previous event, so the
    durations sum to last-minus-first by construction.
    """
    ordered = sorted(
        ((name, ts) for name, ts in events.items() if name in _STAGE_INDEX),
        key=lambda pair: _STAGE_INDEX[pair[0]],
    )
    stages: List[Tuple[str, float]] = []
    prev_ts = None
    t0 = ordered[0][1] if ordered else 0.0
    for name, ts in ordered:
        if prev_ts is None:
            prev_ts = ts
            continue
        stages.append((name, ts - prev_ts))
        prev_ts = ts
    total = (prev_ts - t0) if prev_ts is not None else 0.0
    return PacketWaterfall(
        pkt_id=pkt_id, t0_ns=t0, total_ns=total, stages=tuple(stages)
    )


@dataclass
class WaterfallStats:
    """Aggregated stage breakdown over all sampled packets."""

    max_samples: int = 32
    completed: int = 0
    incomplete: int = 0
    samples: List[PacketWaterfall] = field(default_factory=list)
    _stage_hists: Dict[str, Histogram] = field(default_factory=dict)
    _total_hist: Histogram = field(default_factory=lambda: Histogram("total"))

    def add(self, waterfall: PacketWaterfall) -> None:
        self.completed += 1
        for name, duration in waterfall.stages:
            hist = self._stage_hists.get(name)
            if hist is None:
                hist = self._stage_hists[name] = Histogram(name)
            hist.record(duration)
        self._total_hist.record(waterfall.total_ns)
        if len(self.samples) < self.max_samples:
            self.samples.append(waterfall)

    def stage_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-stage histogram summaries in causal order, plus total."""
        out: Dict[str, Dict[str, float]] = {}
        for name in STAGES:
            hist = self._stage_hists.get(name)
            if hist is not None and len(hist):
                summary = hist.summary()
                summary["p50"] = hist.median
                out[name] = summary
        if len(self._total_hist):
            summary = self._total_hist.summary()
            summary["p50"] = self._total_hist.median
            out["total"] = summary
        return out

    def as_dict(self) -> Dict[str, object]:
        return {
            "completed": self.completed,
            "incomplete": self.incomplete,
            "stages": self.stage_summary(),
            "samples": [sample.as_dict() for sample in self.samples],
        }
