"""Convenience wiring: instrument a batch of components at once.

Duck-typed on purpose: anything exposing ``instrument(obs)`` is
attached, anything else (including ``None`` slots from optional
components) is skipped, so callers can pass a heterogeneous pile
without filtering first.
"""

from __future__ import annotations

from typing import List

from repro.obs.instrument import Observability


def instrument_all(obs: Observability, *objects) -> List[object]:
    """Call ``instrument(obs)`` on every object that supports it.

    Returns the objects that were actually instrumented, in order.
    """
    attached: List[object] = []
    for obj in objects:
        if obj is None:
            continue
        hook = getattr(obj, "instrument", None)
        if callable(hook):
            hook(obs)
            attached.append(obj)
    return attached
