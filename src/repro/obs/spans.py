"""Simulated-time span tracing with parent linkage.

A :class:`Span` covers an interval of **virtual** time (ns) and may be
nested: while a span is open, newly begun spans and recorded instants
become its children. This generalizes the flat debug
:class:`repro.sim.trace.Tracer` — where that answers "what happened
around t=X", spans answer "what did this ``tx_burst`` spend its 840ns
on" by parenting the per-descriptor coherence transactions under the
burst that issued them.

Nesting uses an explicit open-span stack, which is sound here because
instrumented driver calls are synchronous within one simulator process
step — a span must never stay open across a generator ``yield``, or it
would interleave with other processes.

:meth:`SpanTracer.to_chrome` serializes the timeline as Chrome trace
format (complete ``"X"`` events in µs), loadable in ``chrome://tracing``
or https://ui.perfetto.dev.
"""

from __future__ import annotations

import contextlib
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterator, List, Optional

from repro.errors import ConfigError


@dataclass
class Span:
    """One interval of virtual time, possibly nested under a parent."""

    sid: int
    name: str
    actor: str = ""
    category: str = ""
    start_ns: float = 0.0
    end_ns: Optional[float] = None
    parent: Optional[int] = None
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_ns(self) -> float:
        """Span length; 0 while still open or for instants."""
        if self.end_ns is None:
            return 0.0
        return self.end_ns - self.start_ns

    @property
    def is_instant(self) -> bool:
        """True for zero-duration point events recorded via ``instant``."""
        return bool(self.args.get("_instant"))

    def __str__(self) -> str:
        return (
            f"[{self.start_ns:12.1f}ns +{self.duration_ns:8.1f}] "
            f"{self.actor:<14} {self.name}"
        )


class SpanTracer:
    """Bounded recorder of nested virtual-time spans."""

    enabled = True

    def __init__(self, capacity: int = 200_000) -> None:
        if capacity <= 0:
            raise ConfigError("capacity must be positive")
        self.capacity = capacity
        self._spans: Deque[Span] = deque(maxlen=capacity)
        self._stack: List[Span] = []
        self._next_sid = 0
        self.dropped = 0

    # -- recording -------------------------------------------------------

    def begin(
        self,
        name: str,
        actor: str = "",
        category: str = "",
        start_ns: float = 0.0,
        **args: Any,
    ) -> Span:
        """Open a span at virtual time ``start_ns`` and push it.

        Spans begun before this one ends become its children. Pair
        with :meth:`end`, or use :meth:`span` to scope automatically.
        """
        parent = self._stack[-1].sid if self._stack else None
        span = Span(
            sid=self._next_sid,
            name=name,
            actor=actor,
            category=category,
            start_ns=start_ns,
            parent=parent,
            args=dict(args),
        )
        self._next_sid += 1
        if len(self._spans) == self.capacity:
            self.dropped += 1
        self._spans.append(span)
        self._stack.append(span)
        return span

    def end(self, span: Span, end_ns: float = 0.0) -> None:
        """Close ``span`` at ``end_ns`` and pop it off the open stack."""
        span.end_ns = max(end_ns, span.start_ns)
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break

    @contextlib.contextmanager
    def span(
        self,
        name: str,
        actor: str = "",
        category: str = "",
        start_ns: float = 0.0,
        end_ns: Optional[float] = None,
        **args: Any,
    ) -> Iterator[Span]:
        """Scoped begin/end. ``end_ns`` defaults to the span's own
        ``end_ns`` attribute if the body set one, else ``start_ns`` —
        virtual time is advanced by the caller, not a wall clock, so
        the closing stamp must be stated explicitly."""
        span = self.begin(name, actor, category, start_ns, **args)
        try:
            yield span
        finally:
            close = span.end_ns if span.end_ns is not None else end_ns
            self.end(span, close if close is not None else start_ns)

    def instant(self, name: str, actor: str = "", ts: float = 0.0, **args: Any) -> Span:
        """Record a zero-duration point event under the open span."""
        parent = self._stack[-1].sid if self._stack else None
        args["_instant"] = True
        span = Span(
            sid=self._next_sid,
            name=name,
            actor=actor,
            category="instant",
            start_ns=ts,
            end_ns=ts,
            parent=parent,
            args=args,
        )
        self._next_sid += 1
        if len(self._spans) == self.capacity:
            self.dropped += 1
        self._spans.append(span)
        return span

    # -- queries ---------------------------------------------------------

    def spans(self) -> List[Span]:
        """All retained spans, in begin order."""
        return list(self._spans)

    def children_of(self, span: Span) -> List[Span]:
        """Direct children of ``span``."""
        return [s for s in self._spans if s.parent == span.sid]

    def roots(self) -> List[Span]:
        """Spans with no parent."""
        return [s for s in self._spans if s.parent is None]

    def __len__(self) -> int:
        return len(self._spans)

    def clear(self) -> None:
        self._spans.clear()
        self._stack.clear()
        self.dropped = 0

    # -- fabric hook -----------------------------------------------------

    @contextlib.contextmanager
    def attach_fabric(self, fabric) -> Iterator["SpanTracer"]:
        """Record each coherence access as an instant while active.

        Instants land under whatever span is open at the time — inside
        a traced ``tx_burst`` they become that burst's children, which
        is exactly the descriptor-to-transaction linkage the trace
        viewer shows. Wraps ``fabric.access`` and restores it on exit.

        Fast-path audit: the wrapper is *pure* with respect to the
        fabric — it calls the original bound method (fast path intact
        underneath) and only appends to this tracer — so traced and
        untraced runs produce identical metric fingerprints on both the
        memoized fast path and ``REPRO_SIM_SLOWPATH=1`` (regression
        test: ``test_flight.py::TestSpanTracerFabricAudit``). The
        memoized transition plans are still epoch-invalidated on attach
        and detach, mirroring flight-recorder/fault-injector attach
        semantics: rebuilt plans are deterministic, so this costs one
        rebuild and buys the invariant that any instrumentation
        attachment starts from a clean plan table. Note the fabric's
        ``access_burst`` does not route through ``access`` on either
        path, so burst payload traffic is invisible to this debug hook
        — the flight recorder covers bursts via the per-line reference
        path instead.
        """
        original = fabric.access
        invalidate = getattr(fabric, "invalidate_plans", None)

        def traced(agent, addr, size, write):
            latency = original(agent, addr, size, write)
            region = fabric.space.try_region_of(addr)
            self.instant(
                "write" if write else "read",
                actor=agent.name,
                ts=fabric.sim.now,
                region=region.name if region is not None else "?",
                size=size,
                latency_ns=latency,
            )
            return latency

        if invalidate is not None:
            invalidate()
        fabric.access = traced
        try:
            yield self
        finally:
            fabric.access = original
            if invalidate is not None:
                invalidate()

    # -- export ----------------------------------------------------------

    def to_chrome(self) -> Dict[str, Any]:
        """Chrome-trace-format dict (``{"traceEvents": [...]}``).

        Virtual ns map to trace µs. Each actor becomes a "thread" with
        a metadata name event; closed spans become complete (``"X"``)
        events and instants become ``"i"`` events.
        """
        events: List[Dict[str, Any]] = []
        tids: Dict[str, int] = {}
        for span in self._spans:
            actor = span.actor or "sim"
            tid = tids.get(actor)
            if tid is None:
                tid = len(tids) + 1
                tids[actor] = tid
                events.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": 1,
                        "tid": tid,
                        "args": {"name": actor},
                    }
                )
            args = {k: v for k, v in span.args.items() if not k.startswith("_")}
            if span.parent is not None:
                args["parent"] = span.parent
            common = {
                "name": span.name,
                "cat": span.category or "span",
                "pid": 1,
                "tid": tid,
                "ts": span.start_ns / 1000.0,
                "args": args,
            }
            if span.is_instant:
                events.append({**common, "ph": "i", "s": "t"})
            elif span.end_ns is not None:
                events.append({**common, "ph": "X", "dur": span.duration_ns / 1000.0})
        return {"traceEvents": events, "displayTimeUnit": "ns"}

    def __repr__(self) -> str:
        return f"SpanTracer({len(self._spans)} spans, {len(self._stack)} open)"
