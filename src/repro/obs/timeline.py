"""Windowed time-series telemetry driven by the **virtual** clock.

End-of-run aggregates (``MetricRegistry.snapshot()``) sum away the
transient phenomena coherent-interface studies actually care about: a
briefly saturating UPI direction, a ring that wedges during a fault
window, Zipf-driven hot-key churn. :class:`TimelineSampler` closes that
gap: it registers with the simulator (the same class-attr hook pattern
as ``flight``/``faults``/``sanitizer``), and every ``interval_ns`` of
*simulated* time it closes a window — snapshotting counter deltas,
gauge values, and per-window latency percentiles into per-series ring
buffers.

Contracts:

* **Zero-cost detached.** ``Simulator.timeline`` is a class attribute
  defaulting to ``None``; the engine's only obligation is one attribute
  load and a ``None`` check per clock advance.
* **Fingerprint-invariant attached.** The sampler never schedules
  engine events and never mutates model state: window rolls piggyback
  on clock advances the run performs anyway, and every series read is a
  pure observation. ``events_executed``/``now`` — and therefore the
  merged-document fingerprint — are bit-identical with or without a
  sampler attached.
* **Deterministic merge.** :func:`repro.shard.merge.merge_timelines`
  aligns window boundaries across shards (all shards share one
  ``interval_ns`` and window 0 starts at t=0) and reduces in shard-index
  order, so merged timelines are identical for any worker count.

On top of the series sit :class:`WatchdogRule` checks — link
saturation, latency-window regression against the run median, stalled
progress — whose structured findings land in the run doc, and Perfetto
counter tracks (``export_chrome_trace(..., timeline=...)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import ConfigError
from repro.obs.export import TIMELINE_SCHEMA
from repro.sim.stats import Histogram

#: Default window width: 1 µs of simulated time. Quick scenarios span
#: tens of µs of virtual time (tens of windows); full runs span
#: milliseconds (hundreds to thousands, inside the ring capacity).
DEFAULT_INTERVAL_NS = 1_000.0

#: Default per-series ring capacity (windows retained).
DEFAULT_CAPACITY = 4096


class _CounterSeries:
    """Per-window delta of a cumulative reading, optionally scaled."""

    __slots__ = ("fn", "scale", "prev", "values")

    def __init__(self, fn: Callable[[], float], scale: float) -> None:
        self.fn = fn
        self.scale = scale
        self.prev = float(fn())
        self.values: List[float] = []


class _GaugeSeries:
    """Instantaneous reading at each window close."""

    __slots__ = ("fn", "values")

    def __init__(self, fn: Callable[[], float]) -> None:
        self.fn = fn
        self.values: List[float] = []


class _HistSeries:
    """Per-window sample population, reduced to count/p50/p99 points.

    ``open`` keeps a *stable identity* across window closes (cleared in
    place), so hot paths may cache ``sampler.hist(name).append`` once.
    """

    __slots__ = ("open", "points", "samples")

    def __init__(self) -> None:
        self.open: List[float] = []
        self.points: List[Optional[Dict[str, float]]] = []
        self.samples: List[List[float]] = []


class TimelineSampler:
    """Windowed series over simulated time; see the module docstring.

    The simulator calls :meth:`roll` (through its ``timeline`` hook)
    whenever the clock advances; :meth:`roll` closes every window whose
    right boundary the advance crossed. Window ``w`` therefore holds
    exactly the activity with timestamps in
    ``[w * interval_ns, (w + 1) * interval_ns)`` — cohort members share
    a timestamp, so the fast and reference engine loops close windows
    at identical points.
    """

    def __init__(
        self,
        interval_ns: float = DEFAULT_INTERVAL_NS,
        capacity: Optional[int] = DEFAULT_CAPACITY,
    ) -> None:
        if interval_ns <= 0:
            raise ConfigError(f"timeline interval must be positive, got {interval_ns}")
        if capacity is not None and capacity < 1:
            raise ConfigError(f"timeline capacity must be >= 1, got {capacity}")
        self.interval_ns = float(interval_ns)
        #: Right boundary of the open window; the engine hook compares
        #: the new clock value against this before calling :meth:`roll`.
        self.next_ns = self.interval_ns
        self.capacity = capacity
        #: Absolute index of the first retained window (ring eviction).
        self.start = 0
        #: Number of windows closed so far (absolute, pre-eviction).
        self.windows = 0
        self._counters: Dict[str, _CounterSeries] = {}
        self._gauges: Dict[str, _GaugeSeries] = {}
        self._hists: Dict[str, _HistSeries] = {}
        self._finished = False

    # ------------------------------------------------------------------
    # Series registration
    # ------------------------------------------------------------------
    def counter(self, name: str, fn: Callable[[], float], scale: float = 1.0) -> None:
        """Track the per-window delta of cumulative reading ``fn``.

        ``scale`` multiplies each delta — e.g. ``1 / interval_ns`` turns
        a cumulative busy-time reading into a per-window busy fraction.
        """
        if name in self._counters or name in self._gauges or name in self._hists:
            raise ConfigError(f"duplicate timeline series {name!r}")
        self._counters[name] = _CounterSeries(fn, scale)

    def gauge(self, name: str, fn: Callable[[], float]) -> None:
        """Track an instantaneous reading taken at each window close."""
        if name in self._counters or name in self._gauges or name in self._hists:
            raise ConfigError(f"duplicate timeline series {name!r}")
        self._gauges[name] = _GaugeSeries(fn)

    def hist(self, name: str) -> List[float]:
        """The open-window sample list for histogram series ``name``.

        Created on first use. The returned list object is stable for the
        sampler's lifetime — callers may cache its ``append``.
        """
        series = self._hists.get(name)
        if series is None:
            if name in self._counters or name in self._gauges:
                raise ConfigError(f"duplicate timeline series {name!r}")
            series = self._hists[name] = _HistSeries()
        return series.open

    # ------------------------------------------------------------------
    # Window rolling (called from the engine hook)
    # ------------------------------------------------------------------
    def roll(self, now: float) -> None:
        """Close every window whose right boundary ``now`` reached."""
        while now >= self.next_ns:
            self._close()
            self.next_ns += self.interval_ns

    def finish(self, now: float) -> None:
        """Roll to ``now`` and close the trailing partial window.

        Idempotent. The trailing window is always closed — even when
        empty — so activity stamped exactly at the final boundary (which
        the preceding :meth:`roll` left in the then-open window) is
        never dropped.
        """
        if self._finished:
            return
        self.roll(now)
        self._close()
        self.next_ns += self.interval_ns
        self._finished = True

    def _close(self) -> None:
        for counter in self._counters.values():
            current = float(counter.fn())
            counter.values.append((current - counter.prev) * counter.scale)
            counter.prev = current
        for gauge in self._gauges.values():
            gauge.values.append(float(gauge.fn()))
        for series in self._hists.values():
            window = series.open
            if window:
                pooled = Histogram("window")
                pooled.extend(window)
                series.points.append(
                    {
                        "count": pooled.count,
                        "p50": pooled.percentile(50),
                        "p99": pooled.percentile(99),
                    }
                )
                series.samples.append(list(window))
                del window[:]
            else:
                series.points.append(None)
                series.samples.append([])
        self.windows += 1
        if self.capacity is not None:
            excess = (self.windows - self.start) - self.capacity
            if excess > 0:
                self.start += excess
                for counter in self._counters.values():
                    del counter.values[:excess]
                for gauge in self._gauges.values():
                    del gauge.values[:excess]
                for series in self._hists.values():
                    del series.points[:excess]
                    del series.samples[:excess]

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------
    def to_doc(self, include_samples: bool = False) -> Dict[str, Any]:
        """Schema-stamped JSON-safe document of every retained window.

        ``include_samples=True`` additionally carries each histogram
        window's raw sample list — the form shard workers return so the
        merge can recompute pooled percentiles exactly. Exported and
        merged documents omit samples.
        """
        doc: Dict[str, Any] = {
            "schema": TIMELINE_SCHEMA,
            "interval_ns": self.interval_ns,
            "start": self.start,
            "windows": self.windows - self.start,
            "counters": {
                name: list(self._counters[name].values)
                for name in sorted(self._counters)
            },
            "gauges": {
                name: list(self._gauges[name].values) for name in sorted(self._gauges)
            },
            "histograms": {
                name: [dict(p) if p else None for p in self._hists[name].points]
                for name in sorted(self._hists)
            },
        }
        if include_samples:
            doc["samples"] = {
                name: [list(w) for w in self._hists[name].samples]
                for name in sorted(self._hists)
            }
        return doc

    def counter_tracks(self) -> List[Dict[str, Any]]:
        """Perfetto counter (``"C"``) events for every series."""
        return timeline_counter_tracks(self.to_doc())


def timeline_counter_tracks(doc: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Perfetto counter tracks from a timeline document.

    One ``"C"`` event per series per window, timestamped at the window's
    left boundary (µs, matching Chrome trace convention). Histogram
    series surface their per-window p50/p99; empty windows emit zeros so
    the track returns to baseline instead of interpolating across gaps.
    """
    interval_us = doc["interval_ns"] / 1000.0
    start = doc.get("start", 0)
    events: List[Dict[str, Any]] = []

    def emit(name: str, window: int, args: Dict[str, float]) -> None:
        events.append(
            {
                "name": f"timeline:{name}",
                "ph": "C",
                "ts": (start + window) * interval_us,
                "pid": 0,
                "tid": 0,
                "args": args,
            }
        )

    for kind in ("counters", "gauges"):
        for name in sorted(doc.get(kind, {})):
            for window, value in enumerate(doc[kind][name]):
                emit(name, window, {"value": value})
    for name in sorted(doc.get("histograms", {})):
        for window, point in enumerate(doc["histograms"][name]):
            if point:
                emit(name, window, {"p50": point["p50"], "p99": point["p99"]})
            else:
                emit(name, window, {"p50": 0.0, "p99": 0.0})
    return events


# ----------------------------------------------------------------------
# Standard wiring
# ----------------------------------------------------------------------
def _attach_link(sampler: TimelineSampler, link, prefix: str) -> None:
    """Per-direction busy-fraction counters and queue-pressure gauges.

    Reads go through ``link.stats[d]`` lazily at window close so a
    mid-run ``reset_stats()`` (which swaps the stat objects) cannot
    leave the series holding stale references.
    """
    inv = 1.0 / sampler.interval_ns
    for direction in (0, 1):
        sampler.counter(
            f"{prefix}.{direction}.busy_frac",
            lambda link=link, d=direction: float(link.stats[d].busy_ns),
            scale=inv,
        )
        sampler.counter(
            f"{prefix}.{direction}.messages",
            lambda link=link, d=direction: float(link.stats[d].messages),
        )
        sampler.gauge(
            f"{prefix}.{direction}.rho",
            lambda link=link, d=direction: float(link.rho(d)),
        )


def attach_timeline(sampler: TimelineSampler, setup, net=None) -> TimelineSampler:
    """Register the standard series for a built setup and hook the engine.

    ``setup`` is a :class:`repro.analysis.loopback.LoopbackSetup`;
    ``net`` an optional :class:`repro.topology.net.TopologyNet` whose
    per-edge links get their own series. Covers engine events/sec and
    pending depth, per-link busy-fraction and queue pressure, ring
    occupancy (coherent ``_pairs`` and PCIe ``_queues`` alike), and
    buffer-pool residency; apps contribute latency samples through their
    own ``timeline`` hooks.
    """
    system = setup.system
    sim = system.sim
    sampler.counter("sim.events", lambda: float(sim.events_executed))
    sampler.gauge("sim.pending", lambda: float(sim.pending))
    _attach_link(sampler, system.link, "link")
    interface = setup.interface
    lane = getattr(interface, "link", None)
    if lane is not None and lane is not system.link:
        _attach_link(sampler, lane, "lane")
    pool = getattr(interface, "pool", None)
    if pool is not None and hasattr(pool, "free_full_buffers"):
        sampler.gauge("pool.free_full", lambda: float(pool.free_full_buffers))
    pairs = getattr(interface, "_pairs", None)
    if pairs:
        for index in sorted(pairs):
            pair = pairs[index]
            sampler.gauge(
                f"ring.q{index}.tx_depth",
                lambda q=pair.tx: float(q.tail - q.head),
            )
            sampler.gauge(
                f"ring.q{index}.rx_depth",
                lambda q=pair.rx: float(q.tail - q.head),
            )
    queues = getattr(interface, "_queues", None)
    if queues:
        for index in sorted(queues):
            sampler.gauge(
                f"ring.q{index}.tx_depth",
                lambda q=queues[index]: float(q.host_tail - q.device_fetched),
            )
    if net is not None:
        for edge in net.spec.edges:
            _attach_link(sampler, net.links[edge.name], f"edge.{edge.name}")
    sim.timeline = sampler
    return sampler


def detach_timeline(setup) -> None:
    """Unhook the sampler; the simulator reverts to the zero-cost path."""
    setup.system.sim.timeline = None


# ----------------------------------------------------------------------
# Watchdogs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LinkSaturationRule:
    """Flag windows where a busy-fraction series reaches saturation."""

    threshold: float = 0.9
    suffix: str = ".busy_frac"
    name: str = "link-saturation"

    def check(self, doc: Dict[str, Any]) -> List[Dict[str, Any]]:
        findings = []
        for series, values in doc.get("counters", {}).items():
            if not series.endswith(self.suffix):
                continue
            for window, value in enumerate(values):
                if value >= self.threshold:
                    findings.append(
                        {
                            "rule": self.name,
                            "series": series,
                            "window": doc.get("start", 0) + window,
                            "value": value,
                            "threshold": self.threshold,
                            "detail": f"busy fraction {value:.3f} >= {self.threshold}",
                        }
                    )
        return findings


@dataclass(frozen=True)
class LatencyRegressionRule:
    """Flag windows whose p99 regresses against the run's median p50.

    The baseline is the median of the non-empty windows' p50 values — a
    deterministic function of the document — so a fault window that
    multiplies tail latency stands out without any wall-clock or
    externally supplied reference.
    """

    factor: float = 4.0
    min_windows: int = 4
    name: str = "latency-regression"

    def check(self, doc: Dict[str, Any]) -> List[Dict[str, Any]]:
        findings = []
        for series, points in doc.get("histograms", {}).items():
            populated = [p for p in points if p]
            if len(populated) < self.min_windows:
                continue
            p50s = sorted(p["p50"] for p in populated)
            baseline = p50s[len(p50s) // 2]
            if baseline <= 0:
                continue
            limit = self.factor * baseline
            for window, point in enumerate(points):
                if point and point["p99"] >= limit:
                    findings.append(
                        {
                            "rule": self.name,
                            "series": series,
                            "window": doc.get("start", 0) + window,
                            "value": point["p99"],
                            "threshold": limit,
                            "detail": (
                                f"window p99 {point['p99']:.0f}ns >= "
                                f"{self.factor}x median p50 {baseline:.0f}ns"
                            ),
                        }
                    )
        return findings


@dataclass(frozen=True)
class StalledProgressRule:
    """Flag interior windows where a progress series drops to zero.

    Applies to the engine event counter and to every latency histogram:
    zero windows *between* active windows mean the run wedged (fault
    stalls, drained rings), not that it merely started late (leading
    warmup windows) or ended (trailing windows). A stall must span
    ``min_run`` consecutive windows — a single empty window is usually
    just the batch period beating against the window grid.
    """

    counters: Sequence[str] = ("sim.events",)
    min_run: int = 2
    name: str = "stalled-progress"

    def _stall_runs(self, activity: List[float]) -> List[List[int]]:
        """Interior zero runs of at least ``min_run`` windows."""
        active = [w for w, v in enumerate(activity) if v > 0]
        if len(active) < 2:
            return []
        lo, hi = active[0], active[-1]
        zeros = [w for w in range(lo + 1, hi) if activity[w] <= 0]
        runs: List[List[int]] = []
        for w in zeros:
            if runs and runs[-1][-1] == w - 1:
                runs[-1].append(w)
            else:
                runs.append([w])
        return [run for run in runs if len(run) >= self.min_run]

    def _run_findings(self, series, activity, start, what) -> List[Dict[str, Any]]:
        # One finding per stall *run*, anchored at its first window:
        # per-window findings would drown the report when a long stall
        # spans dozens of windows.
        findings = []
        for run in self._stall_runs(activity):
            findings.append(
                {
                    "rule": self.name,
                    "series": series,
                    "window": start + run[0],
                    "value": float(len(run)),
                    "threshold": float(self.min_run),
                    "detail": f"no {what} for {len(run)} consecutive "
                              f"window(s) [{start + run[0]}.."
                              f"{start + run[-1]}]",
                }
            )
        return findings

    def check(self, doc: Dict[str, Any]) -> List[Dict[str, Any]]:
        findings = []
        start = doc.get("start", 0)
        for series in self.counters:
            values = doc.get("counters", {}).get(series)
            if not values:
                continue
            findings += self._run_findings(series, list(values), start, "progress")
        for series, points in doc.get("histograms", {}).items():
            activity = [float(p["count"]) if p else 0.0 for p in points]
            findings += self._run_findings(series, activity, start, "samples")
        return findings


#: The default rule set ``run_watchdogs`` applies.
DEFAULT_WATCHDOGS = (
    LinkSaturationRule(),
    LatencyRegressionRule(),
    StalledProgressRule(),
)


def run_watchdogs(doc: Dict[str, Any], rules=DEFAULT_WATCHDOGS) -> List[Dict[str, Any]]:
    """Apply watchdog rules to a timeline doc; sorted, structured findings."""
    findings: List[Dict[str, Any]] = []
    for rule in rules:
        findings.extend(rule.check(doc))
    findings.sort(key=lambda f: (f["series"], f["window"], f["rule"]))
    return findings
