"""Unified observability: metrics, simulated-time span tracing, exporters.

``repro.obs`` is the measurement substrate every instrumentable
component registers into. It has three layers:

* :class:`MetricRegistry` — counters, gauges and histograms labeled by
  component (``fabric``, ``pool``, ``driver.q0``, ...). Components
  expose metrics through the :class:`Instrumented` mixin; existing
  :class:`~repro.sim.stats.Counter` bags (the fabric's transaction
  counters, the pool's stats) are *adopted* so the hot paths keep their
  cheap dict increments and the registry reads them lazily at snapshot
  time.
* :class:`SpanTracer` — begin/end spans over **virtual** time with
  parent linkage (a ``tx_burst`` span parents the per-descriptor
  coherence-transaction instants recorded inside it). Generalizes the
  debug :class:`~repro.sim.trace.Tracer`; zero-cost when disabled.
* :class:`FlightRecorder` — cache-line lifecycle recording (ping-pong
  counts, region-classified thrash tables, homing audit) plus sampled
  per-packet critical-path waterfalls; zero-cost when detached, and
  attaching drops the coherence fabric onto its reference path so
  recorded runs stay fingerprint-identical.
* Exporters — serialize a whole run to JSON or CSV, and dump span
  timelines in Chrome trace format (load via ``chrome://tracing`` or
  https://ui.perfetto.dev), with flight counter tracks merged in.

Typical wiring (the CLI's ``--metrics-out`` / ``--trace-out`` flags do
exactly this)::

    from repro.obs import MetricRegistry, Observability, SpanTracer
    from repro.obs import export_chrome_trace, export_metrics_json

    obs = Observability(metrics=MetricRegistry(), tracer=SpanTracer())
    setup = build_interface(icx(), InterfaceKind.CCNIC, obs=obs)
    run_point(setup, 64, 5000, obs=obs)
    export_metrics_json(obs.metrics, "metrics.json")
    export_chrome_trace(obs.tracer, "trace.json")

By default every component carries the shared no-op
:data:`~repro.obs.instrument.OBS_OFF` bundle: nothing is recorded and
the per-call cost is a single attribute load plus a branch.
"""

from repro.obs.instrument import (
    NULL_METRIC,
    OBS_OFF,
    Instrumented,
    NullMetric,
    NullRegistry,
    NullTracer,
    Observability,
)
from repro.obs.registry import (
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricRegistry,
    merge_snapshots,
)
from repro.obs.spans import Span, SpanTracer
from repro.obs.flight import (
    FLIGHT_OFF,
    FlightRecorder,
    NullFlightRecorder,
    attach_flight,
    classify_region,
    detach_flight,
)
from repro.obs.waterfall import STAGES, PacketWaterfall, WaterfallStats
from repro.obs.export import (
    TIMELINE_SCHEMA,
    export_chrome_trace,
    export_flight_json,
    export_lint_json,
    export_metrics_csv,
    export_metrics_json,
    export_sanitize_json,
    export_timeline_json,
    load_flight_json,
    load_lint_json,
    load_metrics_csv,
    load_metrics_json,
    load_sanitize_json,
    load_timeline_json,
    metrics_rows,
)
from repro.obs.timeline import (
    DEFAULT_WATCHDOGS,
    LatencyRegressionRule,
    LinkSaturationRule,
    StalledProgressRule,
    TimelineSampler,
    attach_timeline,
    detach_timeline,
    run_watchdogs,
    timeline_counter_tracks,
)
from repro.obs.wire import instrument_all

__all__ = [
    "CounterMetric",
    "DEFAULT_WATCHDOGS",
    "FLIGHT_OFF",
    "FlightRecorder",
    "GaugeMetric",
    "HistogramMetric",
    "Instrumented",
    "LatencyRegressionRule",
    "LinkSaturationRule",
    "MetricRegistry",
    "NULL_METRIC",
    "NullFlightRecorder",
    "NullMetric",
    "NullRegistry",
    "NullTracer",
    "OBS_OFF",
    "Observability",
    "PacketWaterfall",
    "STAGES",
    "Span",
    "SpanTracer",
    "StalledProgressRule",
    "TIMELINE_SCHEMA",
    "TimelineSampler",
    "WaterfallStats",
    "attach_flight",
    "attach_timeline",
    "classify_region",
    "detach_flight",
    "detach_timeline",
    "merge_snapshots",
    "export_chrome_trace",
    "export_flight_json",
    "export_lint_json",
    "export_metrics_csv",
    "export_metrics_json",
    "export_sanitize_json",
    "export_timeline_json",
    "instrument_all",
    "load_flight_json",
    "load_lint_json",
    "load_metrics_csv",
    "load_metrics_json",
    "load_sanitize_json",
    "load_timeline_json",
    "metrics_rows",
    "run_watchdogs",
    "timeline_counter_tracks",
]
