"""Serialize a run's telemetry to JSON, CSV and Chrome trace format.

Metrics exports carry a ``schema`` marker so loaders can reject files
from incompatible versions. CSV uses one flat row per metric
(``component,metric,value``) so snapshots diff cleanly and load into
pandas/spreadsheets; JSON preserves the nested
``{component: {metric: value}}`` shape of
:meth:`~repro.obs.registry.MetricRegistry.snapshot`.
"""

from __future__ import annotations

import csv
import json
from typing import Any, Dict, List, Tuple

METRICS_SCHEMA = "repro.obs/metrics-v1"

FLIGHT_SCHEMA = "repro.obs/flight-v1"

SANITIZE_SCHEMA = "repro.check/sanitize-v1"

LINT_SCHEMA = "repro.check/lint-v1"

TOPOLOGY_SCHEMA = "repro.topology/stats-v1"

TIMELINE_SCHEMA = "repro.obs/timeline-v1"

MODEL_SCHEMA = "repro.check/model-v1"


def metrics_rows(registry) -> List[Tuple[str, str, float]]:
    """Flatten a registry snapshot into sorted (component, metric, value) rows."""
    rows: List[Tuple[str, str, float]] = []
    for component, section in registry.snapshot().items():
        for name, value in section.items():
            rows.append((component, name, value))
    rows.sort()
    return rows


def export_metrics_json(registry, path: str) -> Dict[str, Any]:
    """Write the registry snapshot as schema-wrapped JSON; returns the doc."""
    doc = {"schema": METRICS_SCHEMA, "metrics": registry.snapshot()}
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return doc


def load_metrics_json(path: str) -> Dict[str, Dict[str, float]]:
    """Read a metrics JSON file back into ``{component: {metric: value}}``."""
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("schema") != METRICS_SCHEMA:
        raise ValueError(  # repro: allow(error-taxonomy) loader contract: stdlib ValueError
            f"not a metrics export: {path} (schema={doc.get('schema')!r})"
        )
    return doc["metrics"]


def export_metrics_csv(registry, path: str) -> int:
    """Write one flat ``component,metric,value`` row per metric; returns row count."""
    rows = metrics_rows(registry)
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["component", "metric", "value"])
        writer.writerows(rows)
    return len(rows)


def load_metrics_csv(path: str) -> Dict[str, Dict[str, float]]:
    """Read a metrics CSV back into ``{component: {metric: value}}``."""
    out: Dict[str, Dict[str, float]] = {}
    with open(path, newline="") as fh:
        reader = csv.DictReader(fh)
        if reader.fieldnames != ["component", "metric", "value"]:
            raise ValueError(  # repro: allow(error-taxonomy) loader contract: stdlib ValueError
                f"not a metrics CSV: {path} (header={reader.fieldnames})"
            )
        for row in reader:
            out.setdefault(row["component"], {})[row["metric"]] = float(row["value"])
    return out


def export_flight_json(report: Dict[str, Any], path: str) -> Dict[str, Any]:
    """Write a flight-recorder report (already schema-stamped) as JSON.

    ``report`` comes from :meth:`repro.obs.flight.FlightRecorder.report`
    and carries ``schema: repro.obs/flight-v1``; the stamp is enforced
    here so hand-built dicts cannot silently produce unloadable files.
    """
    if report.get("schema") != FLIGHT_SCHEMA:
        raise ValueError(  # repro: allow(error-taxonomy) loader contract: stdlib ValueError
            f"flight report missing schema stamp (got {report.get('schema')!r})"
        )
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return report


def load_flight_json(path: str) -> Dict[str, Any]:
    """Read a flight report back; rejects foreign schemas."""
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("schema") != FLIGHT_SCHEMA:
        raise ValueError(  # repro: allow(error-taxonomy) loader contract: stdlib ValueError
            f"not a flight report: {path} (schema={doc.get('schema')!r})"
        )
    return doc


def _export_stamped_json(report: Dict[str, Any], path: str, schema: str, what: str) -> Dict[str, Any]:
    """Write an already-schema-stamped report; reject hand-built dicts."""
    if report.get("schema") != schema:
        raise ValueError(  # repro: allow(error-taxonomy) loader contract mirrors load_flight_json
            f"{what} report missing schema stamp (got {report.get('schema')!r})"
        )
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return report


def _load_stamped_json(path: str, schema: str, what: str) -> Dict[str, Any]:
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("schema") != schema:
        raise ValueError(  # repro: allow(error-taxonomy) loader contract mirrors load_flight_json
            f"not a {what} report: {path} (schema={doc.get('schema')!r})"
        )
    return doc


def export_sanitize_json(report: Dict[str, Any], path: str) -> Dict[str, Any]:
    """Write a sanitizer report (from ``Sanitizer.report``) as JSON."""
    return _export_stamped_json(report, path, SANITIZE_SCHEMA, "sanitizer")


def load_sanitize_json(path: str) -> Dict[str, Any]:
    """Read a sanitizer report back; rejects foreign schemas."""
    return _load_stamped_json(path, SANITIZE_SCHEMA, "sanitizer")


def export_topology_json(report: Dict[str, Any], path: str) -> Dict[str, Any]:
    """Write a per-edge topology stats report as JSON.

    ``report`` comes from
    :meth:`repro.topology.net.TopologyNet.stats_report`, which builds
    each edge's entry from :meth:`LinkStats.to_doc` — no caller
    hand-rolls the dict shape.
    """
    return _export_stamped_json(report, path, TOPOLOGY_SCHEMA, "topology")


def load_topology_json(path: str) -> Dict[str, Any]:
    """Read a topology stats report back; rejects foreign schemas."""
    return _load_stamped_json(path, TOPOLOGY_SCHEMA, "topology")


def export_timeline_json(report: Dict[str, Any], path: str) -> Dict[str, Any]:
    """Write a timeline document as JSON.

    ``report`` comes from
    :meth:`repro.obs.timeline.TimelineSampler.to_doc` or
    :func:`repro.shard.merge.merge_timelines`; both stamp
    ``schema: repro.obs/timeline-v1``.
    """
    return _export_stamped_json(report, path, TIMELINE_SCHEMA, "timeline")


def load_timeline_json(path: str) -> Dict[str, Any]:
    """Read a timeline document back; rejects foreign schemas."""
    return _load_stamped_json(path, TIMELINE_SCHEMA, "timeline")


def export_model_json(report: Dict[str, Any], path: str) -> Dict[str, Any]:
    """Write a model-checker report (from ``check_model``) as JSON."""
    return _export_stamped_json(report, path, MODEL_SCHEMA, "model-check")


def load_model_json(path: str) -> Dict[str, Any]:
    """Read a model-checker report back; rejects foreign schemas."""
    return _load_stamped_json(path, MODEL_SCHEMA, "model-check")


def export_lint_json(report: Dict[str, Any], path: str) -> Dict[str, Any]:
    """Write a lint report (from ``LintReport.as_report``) as JSON."""
    return _export_stamped_json(report, path, LINT_SCHEMA, "lint")


def load_lint_json(path: str) -> Dict[str, Any]:
    """Read a lint report back; rejects foreign schemas."""
    return _load_stamped_json(path, LINT_SCHEMA, "lint")


def export_chrome_trace(tracer, path: str, flight=None, timeline=None) -> int:
    """Write the tracer's span timeline as a Chrome trace JSON file.

    Load in ``chrome://tracing`` or https://ui.perfetto.dev. When a
    :class:`~repro.obs.flight.FlightRecorder` is given, its per-class
    cross-socket-transfer counter tracks are merged into the same
    timeline as Perfetto counter (``"C"``) events; a
    :class:`~repro.obs.timeline.TimelineSampler` (or an already-built
    timeline document) contributes one counter track per windowed
    series. Returns the number of trace events written (including
    metadata rows).
    """
    doc = tracer.to_chrome()
    if flight is not None:
        doc["traceEvents"].extend(flight.counter_tracks())
    if timeline is not None:
        if hasattr(timeline, "counter_tracks"):
            doc["traceEvents"].extend(timeline.counter_tracks())
        else:
            from repro.obs.timeline import timeline_counter_tracks

            doc["traceEvents"].extend(timeline_counter_tracks(timeline))
    with open(path, "w") as fh:
        json.dump(doc, fh)
        fh.write("\n")
    return len(doc["traceEvents"])
