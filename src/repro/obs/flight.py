"""Cache-line flight recorder: line lifecycles + packet critical paths.

The :class:`FlightRecorder` answers the questions CC-NIC's design is
built around — *which cache lines bounce between sockets, and where does
a packet's latency go?* It has two independent recording surfaces:

* **Line events** from the coherence fabric's reference path: every
  access records its transition kind, requester socket, and latency
  into a bounded ring, and is folded into per-line statistics
  (ping-pong counts, cross-socket transfer totals), a region-classified
  thrash table, and a homing audit flagging reader-homed speculative
  memory reads that writer-homing is supposed to eliminate.
* **Packet events** from the driver/agent data path: sampled packets
  accumulate ``{stage: timestamp}`` checkpoints that become
  :class:`~repro.obs.waterfall.PacketWaterfall` breakdowns.

Cost model (mirrors the fault injector's contract from PR-3):

* Detached, the recorder costs nothing — components carry a
  ``flight = None`` class attribute and the fabric's memoized fast path
  has no recorder branch at all.
* :meth:`CoherenceFabric.attach_flight` forces the fabric onto its
  retained reference path and epoch-invalidates the memoized transition
  plans, exactly like fault-injector attach, so instrumented runs stay
  bit-identical to uninstrumented ones (reference and fast paths agree
  by construction).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigError
from repro.obs.waterfall import WaterfallStats, build_waterfall

#: Region classes the thrash table is keyed by. The report enumerates
#: all of them even when empty: with CC-NIC's inlined signals the
#: ``signal`` class legitimately shows zero traffic because signal bits
#:  travel inside descriptor lines.
REGION_CLASSES: Tuple[str, ...] = (
    "descriptor",
    "signal",
    "payload",
    "pool_meta",
    "other",
)


def classify_region(name: str) -> str:
    """Map a :class:`~repro.mem.region.Region` name to a thrash class.

    Covers both interface families: CC-NIC rings (``txq0_ring``...),
    doorbell/head registers (``*_tailreg``/``*_headreg``), the shared
    payload ``pool`` and its ``pool_meta``, and the PCIe NIC's BAR rings
    (``e810_txr0``/``e810_rxr0``) and head writeback lines.
    """
    if name.endswith("_tailreg") or name.endswith("_headreg"):
        return "signal"
    if name.endswith("_ring") or "_txr" in name or "_rxr" in name:
        return "descriptor"
    if "_txh" in name or "_rxh" in name:
        return "signal"
    if name == "pool":
        return "payload"
    if name == "pool_meta":
        return "pool_meta"
    return "other"


class LineStats:
    """Aggregated lifecycle statistics for one cache line."""

    __slots__ = (
        "line",
        "region",
        "cls",
        "home",
        "reads",
        "writes",
        "hits",
        "xfers",
        "pingpongs",
        "spec_reads",
        "drops",
        "dirty_drops",
        "last_xfer_socket",
        "latency_ns",
    )

    def __init__(self, line: int, region: str, cls: str, home: int) -> None:
        self.line = line
        self.region = region
        self.cls = cls
        self.home = home
        self.reads = 0
        self.writes = 0
        self.hits = 0
        self.xfers = 0  # cross-socket transfers
        self.pingpongs = 0  # alternating-socket cross-socket transfers
        self.spec_reads = 0  # reader-homed speculative memory reads
        self.drops = 0  # times some agent lost this line
        self.dirty_drops = 0  # ... while it was MODIFIED
        self.last_xfer_socket: Optional[int] = None
        self.latency_ns = 0.0  # total coherence latency charged to this line

    def as_dict(self) -> Dict[str, object]:
        return {
            "line": self.line,
            "region": self.region,
            "class": self.cls,
            "home": self.home,
            "reads": self.reads,
            "writes": self.writes,
            "hits": self.hits,
            "xfers": self.xfers,
            "pingpongs": self.pingpongs,
            "spec_reads": self.spec_reads,
            "drops": self.drops,
            "dirty_drops": self.dirty_drops,
            "latency_ns": self.latency_ns,
        }


@dataclass
class RegionAudit:
    """Homing audit entry for one region."""

    region: str
    cls: str
    home: int
    cross_fetches: int = 0
    reader_homed_specs: int = 0
    flagged: bool = False

    def as_dict(self) -> Dict[str, object]:
        return {
            "region": self.region,
            "class": self.cls,
            "home": self.home,
            "cross_fetches": self.cross_fetches,
            "reader_homed_specs": self.reader_homed_specs,
            "flagged": self.flagged,
        }


#: Transition kinds whose fill crossed the inter-socket link.
CROSS_SOCKET_KINDS = frozenset(
    {
        "upgrade_remote",
        "dram_remote",
        "cache_remote",
        "cache_remote_hitm",
        "cache_remote_spec",
        "cache_remote_spec_hitm",
    }
)


class FlightRecorder:
    """Bounded-memory recorder for line lifecycles and packet paths.

    Args:
        line_capacity: Ring size for raw line events; older events are
            evicted (``events_dropped`` counts evictions) while the
            per-line aggregates keep counting.
        sample_every: Record every Nth packet (by ``pkt_id``); 1 samples
            everything.
        max_packets: Cap on concurrently + cumulatively tracked packets,
            bounding the per-packet event maps.
        keep_waterfalls: Full per-packet samples retained in the report.
    """

    def __init__(
        self,
        line_capacity: int = 65536,
        sample_every: int = 1,
        max_packets: int = 4096,
        keep_waterfalls: int = 32,
    ) -> None:
        if line_capacity <= 0:
            raise ConfigError(f"line_capacity must be positive, got {line_capacity}")
        if sample_every <= 0:
            raise ConfigError(f"sample_every must be positive, got {sample_every}")
        self.sample_every = sample_every
        self.max_packets = max_packets
        # Raw line-event ring: (ts, line, socket, write, kind, latency).
        self.events: deque = deque(maxlen=line_capacity)
        self.events_seen = 0
        self.events_dropped = 0
        self.lines: Dict[int, LineStats] = {}
        self.audits: Dict[str, RegionAudit] = {}
        # Packet tracking.
        self._active: Dict[int, Dict[str, float]] = {}
        self._started = 0
        self.waterfalls = WaterfallStats(max_samples=keep_waterfalls)

    # ------------------------------------------------------------------
    # Line-event surface (called from the fabric's reference path)
    # ------------------------------------------------------------------
    def line_event(
        self,
        ts: float,
        line: int,
        region,
        socket: int,
        write: bool,
        kind: str,
        latency_ns: float,
    ) -> None:
        """Record one coherence transition for ``line``.

        ``region`` is the owning :class:`~repro.mem.region.Region` (or
        None for unmapped addresses); ``kind`` names the transition the
        fabric resolved (``hit``, ``dram_local``, ``cache_remote_hitm``,
        ...).
        """
        self.events_seen += 1
        if len(self.events) == self.events.maxlen:
            self.events_dropped += 1
        self.events.append((ts, line, socket, write, kind, latency_ns))
        stats = self.lines.get(line)
        if stats is None:
            if region is not None:
                name, home = region.name, region.home
            else:
                name, home = "<unmapped>", -1
            stats = self.lines[line] = LineStats(
                line, name, classify_region(name), home
            )
        if write:
            stats.writes += 1
        else:
            stats.reads += 1
        stats.latency_ns += latency_ns
        if kind == "hit":
            stats.hits += 1
            return
        if kind in CROSS_SOCKET_KINDS:
            stats.xfers += 1
            if (
                stats.last_xfer_socket is not None
                and stats.last_xfer_socket != socket
            ):
                stats.pingpongs += 1
            stats.last_xfer_socket = socket
            audit = self._audit(stats)
            audit.cross_fetches += 1
            if "_spec" in kind:
                stats.spec_reads += 1
                audit.reader_homed_specs += 1
                audit.flagged = True

    def line_drop(self, line: int, socket: int, dirty: bool) -> None:
        """Record a holder losing ``line`` (invalidation or migration)."""
        stats = self.lines.get(line)
        if stats is None:
            return  # never saw an access for it; nothing to attribute
        stats.drops += 1
        if dirty:
            stats.dirty_drops += 1

    def _audit(self, stats: LineStats) -> RegionAudit:
        audit = self.audits.get(stats.region)
        if audit is None:
            audit = self.audits[stats.region] = RegionAudit(
                region=stats.region, cls=stats.cls, home=stats.home
            )
        return audit

    # ------------------------------------------------------------------
    # Packet surface (called from driver/agent/app checkpoints)
    # ------------------------------------------------------------------
    def want(self, pkt_id: int) -> bool:
        """Sampling decision for ``pkt_id`` (deterministic, id-based)."""
        return pkt_id % self.sample_every == 0

    def packet_begin(self, pkt_id: int, ts: float) -> bool:
        """Start tracking a packet at its ``tx_submit`` checkpoint.

        Returns False (and records nothing) once ``max_packets`` packets
        have ever been started, bounding memory on long runs.
        """
        if self._started >= self.max_packets or pkt_id in self._active:
            return False
        self._started += 1
        self._active[pkt_id] = {"tx_submit": ts}
        return True

    def tracked(self, pkt_id: int) -> bool:
        """Whether ``pkt_id`` is currently being traced."""
        return pkt_id in self._active

    def packet_event(self, pkt_id: int, stage: str, ts: float) -> None:
        """Record a stage checkpoint; last write wins for repeated stages."""
        events = self._active.get(pkt_id)
        if events is not None:
            events[stage] = ts

    def packet_finish(self, pkt_id: int, ts: float) -> None:
        """Close a packet's trace at host ``rx_read`` and aggregate it."""
        events = self._active.pop(pkt_id, None)
        if events is None:
            return
        events["rx_read"] = ts
        self.waterfalls.add(build_waterfall(pkt_id, events))

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def top_lines(self, top: int = 10) -> List[LineStats]:
        """Worst thrashing lines: most cross-socket transfers first."""
        return sorted(
            self.lines.values(),
            key=lambda s: (s.xfers, s.pingpongs, s.latency_ns),
            reverse=True,
        )[:top]

    def class_summary(self) -> Dict[str, Dict[str, float]]:
        """Thrash totals per region class; all classes always present."""
        out: Dict[str, Dict[str, float]] = {
            cls: {
                "lines": 0,
                "reads": 0,
                "writes": 0,
                "xfers": 0,
                "pingpongs": 0,
                "spec_reads": 0,
                "latency_ns": 0.0,
            }
            for cls in REGION_CLASSES
        }
        for stats in self.lines.values():
            row = out.setdefault(
                stats.cls,
                {
                    "lines": 0,
                    "reads": 0,
                    "writes": 0,
                    "xfers": 0,
                    "pingpongs": 0,
                    "spec_reads": 0,
                    "latency_ns": 0.0,
                },
            )
            row["lines"] += 1
            row["reads"] += stats.reads
            row["writes"] += stats.writes
            row["xfers"] += stats.xfers
            row["pingpongs"] += stats.pingpongs
            row["spec_reads"] += stats.spec_reads
            row["latency_ns"] += stats.latency_ns
        return out

    def report(
        self,
        top: int = 10,
        config: Optional[Dict[str, Any]] = None,
        scenario: Optional[str] = None,
        spec_fingerprint: Optional[str] = None,
    ) -> Dict:
        """Full flight report (see ``repro.obs/flight-v1`` schema docs).

        ``scenario`` and ``spec_fingerprint`` stamp the report with the
        run it came from; loaders ignore the fields when absent, so
        pre-stamp documents keep loading.
        """
        incomplete = len(self._active)
        self.waterfalls.incomplete = incomplete
        doc: Dict[str, Any] = {
            "schema": "repro.obs/flight-v1",
            "line_events": {
                "seen": self.events_seen,
                "dropped": self.events_dropped,
                "retained": len(self.events),
            },
            "classes": self.class_summary(),
            "thrash": [stats.as_dict() for stats in self.top_lines(top)],
            "homing_audit": [
                audit.as_dict()
                for audit in sorted(self.audits.values(), key=lambda a: a.region)
            ],
            "waterfall": self.waterfalls.as_dict(),
        }
        if config:
            doc["config"] = dict(config)
        if scenario is not None:
            doc["scenario"] = scenario
        if spec_fingerprint is not None:
            doc["spec_fingerprint"] = spec_fingerprint
        return doc

    def counter_tracks(self, buckets: int = 64) -> List[Dict[str, Any]]:
        """Chrome/Perfetto counter events: cross-socket xfers per class.

        Buckets the retained line-event ring into ``buckets`` time bins
        and emits one ``"ph": "C"`` sample per bin so the thrash rate
        shows up as counter tracks alongside the span trace.
        """
        cross = [
            (ts, kind) for ts, _l, _s, _w, kind, _n in self.events
            if kind in CROSS_SOCKET_KINDS
        ]
        if not cross:
            return []
        t0 = cross[0][0]
        t1 = cross[-1][0]
        width = max((t1 - t0) / buckets, 1.0)
        bins: List[Dict[str, int]] = [dict() for _ in range(buckets)]
        classes_seen = set()
        for ts, kind in cross:
            idx = min(int((ts - t0) / width), buckets - 1)
            # Attribute the event to a class via its per-line stats kind
            # is coarse; counter tracks report transition kinds instead.
            bins[idx][kind] = bins[idx].get(kind, 0) + 1
            classes_seen.add(kind)
        events = []
        for idx, bag in enumerate(bins):
            if not bag:
                continue
            ts_us = (t0 + idx * width) / 1000.0
            events.append(
                {
                    "name": "cross_socket_xfers",
                    "ph": "C",
                    "ts": ts_us,
                    "pid": 0,
                    "tid": 0,
                    "args": {kind: bag.get(kind, 0) for kind in sorted(classes_seen)},
                }
            )
        return events


class NullFlightRecorder:
    """No-op stand-in mirroring :data:`repro.obs.instrument.OBS_OFF`.

    Components use a ``flight = None`` class attribute on their fast
    paths (a ``None`` test is the cheapest possible guard); this null
    object exists for call sites that prefer unconditional calls.
    """

    sample_every = 0
    events_seen = 0
    events_dropped = 0

    def line_event(self, *args, **kwargs) -> None:
        pass

    def line_drop(self, *args, **kwargs) -> None:
        pass

    def want(self, pkt_id: int) -> bool:
        return False

    def packet_begin(self, pkt_id: int, ts: float) -> bool:
        return False

    def tracked(self, pkt_id: int) -> bool:
        return False

    def packet_event(self, pkt_id: int, stage: str, ts: float) -> None:
        pass

    def packet_finish(self, pkt_id: int, ts: float) -> None:
        pass

    def report(self, top: int = 10, config=None, scenario=None,
               spec_fingerprint=None) -> Dict:
        return {"schema": "repro.obs/flight-v1", "disabled": True}

    def counter_tracks(self, buckets: int = 64) -> List:
        return []


#: Shared no-op recorder (the ``OBS_OFF`` analogue).
FLIGHT_OFF = NullFlightRecorder()


def attach_flight(recorder: FlightRecorder, *objects: Iterable) -> None:
    """Attach ``recorder`` to each object.

    Objects exposing ``attach_flight`` (the coherence fabric, which must
    also drop onto its reference path) get the method call; everything
    else gets a plain ``flight`` attribute set, mirroring how the fault
    injector attaches.
    """
    for obj in objects:
        hook = getattr(obj, "attach_flight", None)
        if hook is not None:
            hook(recorder)
        else:
            obj.flight = recorder


def detach_flight(*objects: Iterable) -> None:
    """Detach any recorder from each object (restores fast paths)."""
    for obj in objects:
        hook = getattr(obj, "detach_flight", None)
        if hook is not None:
            hook()
        else:
            obj.flight = None
