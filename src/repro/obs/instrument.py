"""The ``Instrumented`` mixin and the disabled-mode null objects.

This module is deliberately dependency-free (it imports nothing from
``repro``): the DES engine itself subclasses :class:`Instrumented`, so
anything imported here sits below every other layer of the package.

Disabled mode is the default and must cost nothing on hot paths:
every component starts with the shared :data:`OBS_OFF` bundle, whose
registry hands out one shared :data:`NULL_METRIC` singleton (all
methods are no-ops) and whose tracer reports ``enabled = False`` so
callers skip span construction entirely.
"""

from __future__ import annotations

import contextlib
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple


class NullMetric:
    """Shared do-nothing stand-in for counters, gauges and histograms."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        """No-op counter increment."""

    def set(self, value: float) -> None:
        """No-op gauge update."""

    def record(self, value: float) -> None:
        """No-op histogram sample."""

    @property
    def value(self) -> float:
        return 0.0

    def __repr__(self) -> str:
        return "<NullMetric>"


#: The one shared no-op metric: disabled components never allocate.
NULL_METRIC = NullMetric()


class NullRegistry:
    """Registry facade used when metrics are disabled."""

    enabled = False

    def unique_component(self, component: str) -> str:
        return component

    def counter(self, component: str, name: str) -> NullMetric:
        return NULL_METRIC

    def counter_cell(self, component: str, name: str) -> list:
        """Detached scratch cell; increments land nowhere observable."""
        return [0.0]

    def gauge(
        self, component: str, name: str, fn: Optional[Callable[[], float]] = None
    ) -> NullMetric:
        return NULL_METRIC

    def histogram(self, component: str, name: str) -> NullMetric:
        return NULL_METRIC

    def adopt_counters(self, component: str, counters: Any) -> None:
        """Ignore an offered :class:`~repro.sim.stats.Counter` bag."""

    def adopt_histogram(self, component: str, name: str, histogram: Any) -> None:
        """Ignore an offered :class:`~repro.sim.stats.Histogram`."""

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        return {}

    def reset(self) -> None:
        """Nothing to reset."""

    def components(self) -> List[str]:
        return []

    def __repr__(self) -> str:
        return "<NullRegistry>"


class NullTracer:
    """Tracer facade used when span tracing is disabled.

    ``enabled`` is False so hot paths skip span bookkeeping entirely;
    the methods still exist (and no-op) for callers that do not guard.
    """

    enabled = False

    def begin(
        self,
        name: str,
        actor: str = "",
        category: str = "",
        start_ns: float = 0.0,
        **args: Any,
    ) -> None:
        return None

    def end(self, span: Any, end_ns: float = 0.0) -> None:
        """No-op span close."""

    def instant(self, name: str, actor: str = "", ts: float = 0.0, **args: Any) -> None:
        """No-op point event."""

    @contextlib.contextmanager
    def span(
        self,
        name: str,
        actor: str = "",
        category: str = "",
        start_ns: float = 0.0,
        end_ns: Optional[float] = None,
        **args: Any,
    ) -> Iterator[None]:
        yield None

    def spans(self) -> Tuple:
        return ()

    def __repr__(self) -> str:
        return "<NullTracer>"


class Observability:
    """Bundle of one metric registry and one span tracer.

    Either half may be omitted; the corresponding null facade is used
    so components never need to check for ``None``.
    """

    __slots__ = ("metrics", "tracer")

    def __init__(self, metrics: Any = None, tracer: Any = None) -> None:
        self.metrics = metrics if metrics is not None else NullRegistry()
        self.tracer = tracer if tracer is not None else NullTracer()

    @property
    def enabled(self) -> bool:
        """True when either metrics or tracing is live."""
        return bool(self.metrics.enabled or self.tracer.enabled)

    def __repr__(self) -> str:
        return f"<Observability metrics={self.metrics!r} tracer={self.tracer!r}>"


#: Shared disabled bundle: the default ``obs`` of every component.
OBS_OFF = Observability()


class Instrumented:
    """Mixin for components that can register telemetry.

    Components subclass this and override :meth:`_register_metrics`
    (and optionally :meth:`_instrument_children` for composites and
    :meth:`_obs_component` for a stable label). Until
    :meth:`instrument` is called, ``self.obs`` is the shared
    :data:`OBS_OFF` bundle — a class attribute, so uninstrumented
    instances carry zero extra per-instance state.
    """

    #: Active observability bundle (class-level default: disabled).
    obs: Observability = OBS_OFF
    #: Registry component label assigned at instrument time.
    obs_name: str = ""
    #: Single-load hot-path guard: False (class attribute) until a live
    #: bundle is attached, so uninstrumented instances pay one attribute
    #: read — no bundle/tracer dereference chain — to skip telemetry.
    obs_enabled: bool = False

    def _obs_component(self) -> str:
        """Default component label; override for stable short names."""
        return type(self).__name__.lower()

    def instrument(self, obs: Observability, name: Optional[str] = None) -> "Instrumented":
        """Attach an observability bundle and register metrics."""
        self.obs = obs
        self.obs_enabled = obs.enabled
        self.obs_name = obs.metrics.unique_component(name or self._obs_component())
        self._register_metrics(obs.metrics)
        self._instrument_children(obs)
        return self

    def _register_metrics(self, registry: Any) -> None:
        """Register this component's metrics; override in subclasses."""

    def _instrument_children(self, obs: Observability) -> None:
        """Cascade instrumentation to owned components; override."""
