"""The live :class:`MetricRegistry` and its metric types.

The registry is component-labeled: each instrumented object owns a
namespace (``fabric``, ``pool``, ``driver.q0``, ...) under which its
metrics live. Three kinds of metric exist:

* :class:`CounterMetric` — monotonically increasing.
* :class:`GaugeMetric` — last-set value, or a *collector* gauge backed
  by a zero-argument callable read lazily at snapshot time. Collector
  gauges are the preferred way to expose values a component already
  maintains as plain attributes (``driver.tx_packets``): the hot path
  stays a bare attribute increment.
* :class:`HistogramMetric` — wraps :class:`repro.sim.stats.Histogram`;
  snapshots flatten its summary into ``name.count``, ``name.mean``, ...

Existing :class:`repro.sim.stats.Counter` bags can also be *adopted*
(:meth:`MetricRegistry.adopt_counters`): the component keeps calling
``counter.add`` exactly as before and the registry copies the bag out
at snapshot time. This is how the coherence fabric's transaction
counters appear in telemetry without touching the fabric hot path —
the registry's ``fabric`` section is always value-equal to
``fabric.snapshot_counters()``.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import ConfigError
from repro.sim.stats import Counter, Histogram

#: Histogram-summary suffixes with non-additive merge semantics (see
#: :func:`merge_snapshots`).
_MIN_SUFFIX = ".min"
_MAX_SUFFIX = ".max"
_WEIGHTED_SUFFIXES = (".mean", ".median", ".p99")


def merge_snapshots(
    snapshots: Iterable[Mapping[str, Mapping[str, float]]],
) -> Dict[str, Dict[str, float]]:
    """Merge per-shard registry snapshots into one, deterministically.

    The merge is **order-independent up to float associativity**: inputs
    are reduced in a canonical order (sorted component, sorted metric
    name, then input position), so the same multiset of snapshots always
    produces the bit-identical merged dict no matter which worker
    finished first. Shard runners that need strict order independence
    therefore sort their inputs by shard index before calling this.

    Per-key semantics, chosen by the flattened metric-name suffix:

    * ``*.min`` → minimum, ``*.max`` → maximum;
    * ``*.mean`` / ``*.median`` / ``*.p99`` → mean weighted by the
      sibling ``*.count`` key (exact for ``.mean``; a documented
      approximation for the quantile keys — callers needing exact merged
      quantiles must merge raw samples, as the shard layer does for
      latency histograms);
    * everything else (counters, gauges, ``*.count``) → sum.
    """
    ordered = list(snapshots)
    components: Dict[str, List[Mapping[str, float]]] = {}
    for snap in ordered:
        for component, section in snap.items():
            components.setdefault(component, []).append(section)
    out: Dict[str, Dict[str, float]] = {}
    for component in sorted(components):
        sections = components[component]
        names = sorted({name for section in sections for name in section})
        merged: Dict[str, float] = {}
        for name in names:
            values = [s[name] for s in sections if name in s]
            if name.endswith(_MIN_SUFFIX):
                merged[name] = min(values)
            elif name.endswith(_MAX_SUFFIX):
                merged[name] = max(values)
            elif name.endswith(_WEIGHTED_SUFFIXES):
                base = name.rsplit(".", 1)[0]
                weights = [s.get(base + ".count", 1.0) for s in sections if name in s]
                total = sum(weights)
                if total <= 0:
                    merged[name] = sum(values) / len(values)
                else:
                    merged[name] = sum(v * w for v, w in zip(values, weights)) / total
            else:
                merged[name] = sum(values)
        out[component] = merged
    return out


class CounterMetric:
    """A single monotonically increasing value.

    The value lives in a one-element list :attr:`cell` so hot paths can
    hoist the metric lookup and increment with ``cell[0] += x`` — one
    list indexing instead of a bound-method call per event. The cell
    object survives :meth:`reset` (it is zeroed in place), so cached
    references never go stale.
    """

    __slots__ = ("component", "name", "cell")

    def __init__(self, component: str, name: str) -> None:
        self.component = component
        self.name = name
        self.cell = [0.0]

    def inc(self, amount: float = 1.0) -> None:
        """Increment by ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ConfigError(f"counter increments must be >= 0, got {amount}")
        self.cell[0] += amount

    @property
    def value(self) -> float:
        return self.cell[0]

    def reset(self) -> None:
        self.cell[0] = 0.0

    def __repr__(self) -> str:
        return f"CounterMetric({self.component}.{self.name}={self.cell[0]:g})"


class GaugeMetric:
    """A last-set value, optionally backed by a collector callable."""

    __slots__ = ("component", "name", "fn", "_value")

    def __init__(
        self,
        component: str,
        name: str,
        fn: Optional[Callable[[], float]] = None,
    ) -> None:
        self.component = component
        self.name = name
        self.fn = fn
        self._value = 0.0

    def set(self, value: float) -> None:
        """Record the current level (ignored by collector gauges)."""
        self._value = value

    @property
    def value(self) -> float:
        if self.fn is not None:
            return float(self.fn())
        return self._value

    def reset(self) -> None:
        self._value = 0.0

    def __repr__(self) -> str:
        kind = "collector" if self.fn is not None else "set"
        return f"GaugeMetric({self.component}.{self.name}, {kind})"


class HistogramMetric:
    """Sample distribution; snapshots flatten the summary statistics."""

    __slots__ = ("component", "name", "hist")

    def __init__(
        self,
        component: str,
        name: str,
        hist: Optional[Histogram] = None,
    ) -> None:
        self.component = component
        self.name = name
        self.hist = hist if hist is not None else Histogram(name)

    def record(self, value: float) -> None:
        """Add one sample."""
        self.hist.record(value)

    @property
    def value(self) -> float:
        """Sample count (histograms have no single scalar value)."""
        return float(self.hist.count)

    def items(self) -> List[Tuple[str, float]]:
        """Flattened ``(suffix, value)`` summary rows; empty if no samples."""
        if not self.hist.count:
            return []
        return [(key, val) for key, val in self.hist.summary().items()]

    def reset(self) -> None:
        self.hist = Histogram(self.name)

    def __repr__(self) -> str:
        return f"HistogramMetric({self.component}.{self.name}, n={self.hist.count})"


class MetricRegistry:
    """Component-labeled registry of counters, gauges and histograms."""

    enabled = True

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, str], object] = {}
        self._adopted: List[Tuple[str, Counter]] = []
        self._component_counts: Dict[str, int] = {}

    # -- component namespace management --------------------------------

    def unique_component(self, component: str) -> str:
        """Reserve a component label, suffixing ``#2``, ``#3``... on reuse.

        Lets two systems (e.g. the kv study's host and device setups)
        share one registry without their metrics colliding.
        """
        n = self._component_counts.get(component, 0) + 1
        self._component_counts[component] = n
        if n == 1:
            return component
        return f"{component}#{n}"

    def components(self) -> List[str]:
        """Sorted component labels with at least one metric."""
        names = {component for component, _ in self._metrics}
        names.update(component for component, _ in self._adopted)
        return sorted(names)

    # -- metric factories -----------------------------------------------

    def counter(self, component: str, name: str) -> CounterMetric:
        """Get-or-create a counter under ``component``."""
        return self._get_or_create(component, name, CounterMetric)

    def counter_cell(self, component: str, name: str) -> list:
        """Mutable ``[value]`` cell of the counter, for hot-path use.

        The cell stays valid across :meth:`reset` — see
        :class:`CounterMetric`.
        """
        return self.counter(component, name).cell

    def gauge(
        self,
        component: str,
        name: str,
        fn: Optional[Callable[[], float]] = None,
    ) -> GaugeMetric:
        """Get-or-create a gauge; pass ``fn`` for a collector gauge."""
        key = (component, name)
        existing = self._metrics.get(key)
        if existing is not None:
            if not isinstance(existing, GaugeMetric):
                raise ConfigError(f"metric {component}.{name} is {type(existing).__name__}")
            if fn is not None:
                existing.fn = fn
            return existing
        metric = GaugeMetric(component, name, fn)
        self._metrics[key] = metric
        return metric

    def histogram(self, component: str, name: str) -> HistogramMetric:
        """Get-or-create a histogram under ``component``."""
        return self._get_or_create(component, name, HistogramMetric)

    def adopt_counters(self, component: str, counters: Counter) -> None:
        """Mirror an existing :class:`Counter` bag under ``component``.

        The owner keeps mutating the bag directly; the registry reads
        it lazily at :meth:`snapshot` time, so adoption adds zero cost
        to the owner's hot path.
        """
        for adopted_component, adopted in self._adopted:
            if adopted_component == component and adopted is counters:
                return
        self._adopted.append((component, counters))

    def adopt_histogram(
        self, component: str, name: str, histogram: Histogram
    ) -> HistogramMetric:
        """Wrap an externally owned :class:`Histogram` as a metric."""
        key = (component, name)
        existing = self._metrics.get(key)
        if isinstance(existing, HistogramMetric):
            existing.hist = histogram
            return existing
        metric = HistogramMetric(component, name, histogram)
        self._metrics[key] = metric
        return metric

    def _get_or_create(self, component: str, name: str, cls):
        key = (component, name)
        existing = self._metrics.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ConfigError(f"metric {component}.{name} is {type(existing).__name__}")
            return existing
        metric = cls(component, name)
        self._metrics[key] = metric
        return metric

    # -- output ----------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """``{component: {metric: value}}`` for everything registered.

        Histograms contribute flattened ``name.count``/``name.mean``/...
        rows; adopted counter bags are copied verbatim. A component with
        no values (only empty histograms or an untouched adopted bag)
        contributes no section at all — the flat CSV form cannot
        represent an empty section, so materializing one here would
        break the JSON/CSV round-trip equivalence the exporters promise.
        """
        out: Dict[str, Dict[str, float]] = {}
        for (component, name), metric in self._metrics.items():
            if isinstance(metric, HistogramMetric):
                rows = metric.items()
                if not rows:
                    continue
                section = out.setdefault(component, {})
                for suffix, value in rows:
                    section[f"{name}.{suffix}"] = value
            else:
                out.setdefault(component, {})[name] = metric.value
        for component, counters in self._adopted:
            bag = counters.snapshot()
            if bag:
                out.setdefault(component, {}).update(bag)
        return out

    @staticmethod
    def merge(
        snapshots: Iterable[Mapping[str, Mapping[str, float]]],
    ) -> Dict[str, Dict[str, float]]:
        """Merge :meth:`snapshot` dicts from several registries.

        See :func:`merge_snapshots` for the per-key reduction rules.
        This is how a partitioned run's per-shard registries combine
        into the one snapshot the exporters write.
        """
        return merge_snapshots(snapshots)

    def reset(self) -> None:
        """Zero owned metrics and adopted counter bags."""
        for metric in self._metrics.values():
            metric.reset()
        for _, counters in self._adopted:
            counters.reset()

    def __repr__(self) -> str:
        return (
            f"MetricRegistry({len(self._metrics)} metrics, "
            f"{len(self._adopted)} adopted bags)"
        )
