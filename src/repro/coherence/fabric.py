"""The coherence protocol engine.

:class:`CoherenceFabric` owns the global view of every cache line: which
agents hold it and in what state. All modelled loads and stores to
write-back memory flow through :meth:`access`, which

* resolves where the data currently lives (own cache, a same-socket
  cache, a remote cache, local or remote DRAM),
* charges the calibrated zero-load latency for that case plus any
  congestion-induced queueing delay on the inter-socket link,
* performs the MESIF state transitions (HitM dirty-ownership transfer,
  downgrades, invalidations, writebacks on eviction),
* counts interconnect transactions per socket (the model of the offcore
  response PMU counters the paper measures in Fig 17), and
* drives the hardware-prefetcher model.

Two timing behaviours are essential to reproducing the paper:

**HitM transfers.** A load that snoops a Modified line in another cache
receives the dirty data *and ownership*; the previous owner is
invalidated. A consumer that reads a producer's fresh line can therefore
clear or overwrite it afterwards without a second interconnect round
trip — this is exactly the two-way single-line communication CC-NIC's
inlined signals exploit (Fig 6b), and it is what makes the measured
remote-request counts drop from 4 to 2 per pingpong (§3.2).

**Store pipelining.** Stores retire into the store buffer, so a writer
is not stalled for the full remote-invalidation round trip; the fabric
charges ``miss_latency / write_pipeline`` to the writer while the state
change (and the reader-visible invalidation) happens immediately.

Multi-line accesses model memory-level parallelism: the first line pays
full latency, subsequent lines overlap and pay ``latency / mlp``.

**Fast path.** When the owning simulator runs its default fast loop (no
``REPRO_SIM_SLOWPATH=1``) and no fault injector is attached, accesses go
through a hot path that memoizes *transition plans* — the resolved cost
constant, precomputed link message rows and counter cells for one
``(operation, line situation, homing, requester socket)`` combination —
so steady-state transitions skip all cost recomputation, message-size
resolution and counter-name formatting. Plans are invalidated when the
cost model is swapped, the link is rescaled, or the counter bag is
reset; attaching fabric-level faults bypasses the fast path entirely so
fault draws keep their reference order, and attaching a flight recorder
(:meth:`CoherenceFabric.attach_flight`) does the same so its recording
hooks live only in the reference implementations. Results are
bit-identical to the reference path (the determinism suite compares
full metric snapshots across both).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.coherence.cache import CacheAgent
from repro.coherence.costs import CostModel
from repro.coherence.state import LineState
from repro.errors import CoherenceError
from repro.interconnect.link import Link
from repro.interconnect.messages import MessageClass
from repro.mem.address import CACHE_LINE_SIZE, lines_spanned
from repro.mem.region import Region
from repro.mem.space import AddressSpace
from repro.obs.instrument import Instrumented
from repro.sim.engine import Simulator
from repro.sim.stats import Counter

#: Default memory-level parallelism for overlapped line streaming.
DEFAULT_MLP = 10.0

#: Default store-buffer pipelining factor for write misses.
DEFAULT_WRITE_PIPELINE = 2.0

# Module-level aliases: enum attribute loads are surprisingly costly on
# the per-line path, and identity comparison against these is exact.
_MODIFIED = LineState.MODIFIED
_EXCLUSIVE = LineState.EXCLUSIVE
_SHARED = LineState.SHARED
_FORWARD = LineState.FORWARD

#: Largest constant stride (in lines) the prefetcher recognizes; module
#: level so the inlined trigger in access()/access_burst() reads a
#: global rather than a class attribute.
_MAX_PREFETCH_STRIDE = 4

# Plan-key packing (small ints hash fastest). Bits: situation code in the
# high bits, then write, homing, requester socket.
_PLAN_DRAM = 0       # + write*2 + socket            -> 0..3
_PLAN_REMOTE = 8     # + write*4 + home_local*2 + socket -> 8..15
_PLAN_UPGRADE = 16   # + socket                      -> 16..17
_PLAN_PREFETCH = 24  # + remote*2 + socket           -> 24..27


class CoherenceFabric(Instrumented):
    """Global MESIF directory plus latency/bandwidth charging.

    Args:
        sim: Simulator supplying virtual time for link queueing.
        space: Address space used to find each line's region (homing).
        cost: Calibrated zero-load latency model.
        link: Inter-socket coherent link (UPI). Direction convention:
            messages *from* socket ``s`` travel on direction ``s``.
        mlp: Memory-level parallelism for multi-line streaming accesses.
        write_pipeline: Store-buffer overlap factor for write misses.
    """

    #: Optional :class:`repro.faults.FaultInjector`. Class-level None so
    #: fault-free runs skip the snoop hooks entirely.
    faults = None

    #: Optional :class:`repro.obs.flight.FlightRecorder`. Class-level
    #: None so detached runs carry no recorder branch on the fast path;
    #: attach via :meth:`attach_flight`, which forces the reference path.
    flight = None

    #: Optional :class:`repro.check.sanitizer.Sanitizer`. Class-level
    #: None; attach via :meth:`attach_sanitizer`, which (like the flight
    #: recorder) forces the reference path so sanitized runs stay
    #: bit-identical to unsanitized ones.
    sanitizer = None

    def __init__(
        self,
        sim: Simulator,
        space: AddressSpace,
        cost: CostModel,
        link: Link,
        mlp: float = DEFAULT_MLP,
        write_pipeline: float = DEFAULT_WRITE_PIPELINE,
    ) -> None:
        if mlp < 1.0:
            raise CoherenceError(f"mlp must be >= 1, got {mlp}")
        if write_pipeline < 1.0:
            raise CoherenceError(f"write_pipeline must be >= 1, got {write_pipeline}")
        self.sim = sim
        self.space = space
        self.link = link
        self.mlp = mlp
        self.write_pipeline = write_pipeline
        self.counters = Counter()
        self._holders: Dict[int, List[CacheAgent]] = {}
        self._agents: List[CacheAgent] = []
        # Local time already elapsed inside the current access/burst; the
        # link uses it so a burst's own messages do not self-contend.
        self._elapsed = 0.0
        # Congestion waits accumulated by the current line access. They
        # are serialization-bound, so the MLP/store-pipelining divisions
        # that apply to latency must not shrink them.
        self._pending_queue = 0.0
        # Fast-path state. Plans memoize resolved cost sequences; the
        # line->region cache is safe because regions are append-only.
        self._fastpath = not sim.slowpath
        self._plans: Dict[int, tuple] = {}
        self._plans_epoch = self.counters.epoch
        self._line_regions: Dict[int, Region] = {}
        self.cost = cost  # property setter caches the hot cost constants
        # One fabric owns the coherent link's serialization figures.
        link.on_scaled = self.invalidate_plans

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def _obs_component(self) -> str:
        return "fabric"

    def _register_metrics(self, registry) -> None:
        # The registry's "fabric" section mirrors snapshot_counters()
        # exactly: the counter bag is adopted, not copied, so the hot
        # path keeps its plain dict increments.
        registry.adopt_counters(self.obs_name, self.counters)

    # ------------------------------------------------------------------
    # Agent management
    # ------------------------------------------------------------------
    def register(self, agent: CacheAgent) -> CacheAgent:
        """Attach an agent to the fabric."""
        self._agents.append(agent)
        return agent

    def new_agent(
        self,
        name: str,
        socket: int,
        capacity_lines: int = 32768,
        prefetch: bool = False,
    ) -> CacheAgent:
        """Create and register a new caching agent."""
        return self.register(CacheAgent(name, socket, capacity_lines, prefetch))

    @property
    def agents(self) -> List[CacheAgent]:
        return list(self._agents)

    def _now(self) -> float:
        return self.sim.now + self._elapsed

    # ------------------------------------------------------------------
    # Cost-model plumbing and plan memoization
    # ------------------------------------------------------------------
    @property
    def cost(self) -> CostModel:
        return self._cost

    @cost.setter
    def cost(self, model: CostModel) -> None:
        """Swap the cost model; caches hot constants, drops stale plans."""
        self._cost = model
        self._l2_hit = model.l2_hit
        self._store_buffer = model.store_buffer
        self._local_invalidate = model.local_invalidate
        self._local_cache = model.local_cache
        self._local_dram = model.local_dram
        self._plans.clear()

    def invalidate_plans(self) -> None:
        """Drop memoized transition plans (link/cost configuration changed)."""
        self._plans.clear()

    def attach_flight(self, recorder) -> None:
        """Attach a flight recorder; all accesses take the reference path.

        Mirrors fault-injector attach: the memoized transition plans are
        epoch-invalidated and the fast path is disabled, so recording
        hooks live only in the reference implementations and recorded
        runs stay bit-identical (the reference path IS the fast path's
        ground truth) to unrecorded ones.
        """
        self.flight = recorder
        self._fastpath = False
        self.invalidate_plans()

    def _reference_clients(self) -> tuple:
        """Every attached hook client that requires the reference path.

        The single source of truth for path restoration: ``detach_*``
        restores the fast path only when *all* of these are detached.
        The timeline sampler is deliberately absent — it hangs off the
        simulator's clock advances and never forces the reference path
        (attached runs are fingerprint-identical on either path); the
        fault injector is also absent because :meth:`access` checks
        ``self.faults`` per call rather than flipping ``_fastpath``.
        """
        return (self.flight, self.sanitizer)

    def _restore_fastpath(self) -> None:
        """Re-enable the fast path iff no reference-path client remains."""
        if all(client is None for client in self._reference_clients()):
            self._fastpath = not self.sim.slowpath

    def detach_flight(self) -> None:
        """Detach any recorder and restore the configured path choice.

        The fast path only returns when no other reference-path client
        (see :meth:`_reference_clients`) is still attached.
        """
        self.flight = None
        self._restore_fastpath()
        self.invalidate_plans()

    def attach_sanitizer(self, sanitizer) -> None:
        """Attach a protocol sanitizer; all accesses take the reference path.

        Same contract as :meth:`attach_flight`: the memoized plans are
        invalidated and the fast path is disabled, so the sanitizer's
        speculative-read hook lives only in the reference
        implementations and sanitized runs stay bit-identical.
        """
        self.sanitizer = sanitizer
        self._fastpath = False
        self.invalidate_plans()

    def detach_sanitizer(self) -> None:
        """Detach the sanitizer; restore the fast path unless another
        reference-path client (see :meth:`_reference_clients`) remains."""
        self.sanitizer = None
        self._restore_fastpath()
        self.invalidate_plans()

    def _plans_live(self) -> Dict[int, tuple]:
        """Plan table, dropped first if the counter bag was reset."""
        if self.counters.epoch != self._plans_epoch:
            self._plans.clear()
            self._plans_epoch = self.counters.epoch
        return self._plans

    def _msg_row(self, cls: MessageClass, direction: int, charge: bool = True) -> tuple:
        """Precomputed half of a :meth:`Link.occupy_pair` plan.

        Embeds the direction's live statistics cells; building a row is
        the same moment the reference path would first send the message,
        so the per-class cell appears in the same order either way. Two
        rows concatenate into one flat 16-field plan.
        """
        link = self.link
        payload = cls.payload_bytes(0)
        wire = int((payload + link.header_overhead) * 1.0)
        ser = wire / link.bandwidth
        st = link.stats[direction]
        return (direction, cls, payload, wire, ser, charge,
                st.agg, st.class_cell(cls))

    def _build_dram_plan(self, write: bool, socket: int) -> tuple:
        """Remote-homed DRAM fill: snoop out, data-class back."""
        cls = MessageClass.RFO if write else MessageClass.READ
        msgs = (
            self._msg_row(MessageClass.SNOOP, socket)
            + self._msg_row(cls, 1 - socket)
        )
        cell = self.counters.cell(f"s{socket}.rfo" if write else f"s{socket}.read")
        return (self._cost.remote_dram, msgs, cell)

    def _build_remote_plan(self, write: bool, home_local: bool, socket: int) -> tuple:
        """Fetch from a remote cache (both homings of the Fig 7 cases)."""
        if home_local:
            base = self._cost.resolve("remote_cache_reader_homed")
            spec_cell = self.counters.cell(f"s{socket}.spec_mem_read")
        else:
            base = self._cost.resolve("remote_cache_writer_homed")
            spec_cell = None
        cls = MessageClass.RFO if write else MessageClass.READ
        msgs = (
            self._msg_row(MessageClass.SNOOP, socket)
            + self._msg_row(cls, 1 - socket)
        )
        cell = self.counters.cell(f"s{socket}.rfo" if write else f"s{socket}.read")
        return (base, msgs, cell, spec_cell)

    def _build_upgrade_plan(self, socket: int) -> tuple:
        """Remote invalidation on a store upgrade: snoop out, ack back."""
        msgs = (
            self._msg_row(MessageClass.SNOOP, socket)
            + self._msg_row(MessageClass.ACK, 1 - socket)
        )
        cell = self.counters.cell(f"s{socket}.rfo")
        return (self._cost.remote_invalidate, msgs, cell)

    def _build_prefetch_plan(self, remote: bool, socket: int) -> tuple:
        """Speculative line fetch; bandwidth-only when remote."""
        if remote:
            msgs = (
                self._msg_row(MessageClass.SNOOP, socket, charge=False)
                + self._msg_row(MessageClass.PREFETCH, 1 - socket, charge=False)
            )
            cell = self.counters.cell(f"s{socket}.prefetch_remote")
        else:
            msgs = ()
            cell = self.counters.cell(f"s{socket}.prefetch_local")
        return (0.0, msgs, cell)

    def _resolve_region(self, addr: int) -> Region:
        """Region of ``addr`` (validated WB); caches by line number."""
        region = self.space.region_of(addr)
        if not region.memtype.is_cacheable:
            raise CoherenceError(
                f"coherent access to non-WB region {region.name!r} ({region.memtype})"
            )
        self._line_regions[addr // CACHE_LINE_SIZE] = region
        return region

    # ------------------------------------------------------------------
    # Public access API
    # ------------------------------------------------------------------
    def read(self, agent: CacheAgent, addr: int, size: int = 8) -> float:
        """Modelled load; returns latency in ns."""
        return self.access(agent, addr, size, write=False)

    def write(self, agent: CacheAgent, addr: int, size: int = 8) -> float:
        """Modelled cacheable store; returns latency in ns."""
        return self.access(agent, addr, size, write=True)

    def access(self, agent: CacheAgent, addr: int, size: int, write: bool) -> float:
        """Load or store ``size`` bytes at ``addr`` on behalf of ``agent``.

        Returns the latency charged to the issuing agent in ns. The
        first line pays full (possibly pipelined, for writes) latency;
        further lines of a multi-line access overlap via ``mlp``.
        """
        if not self._fastpath or self.faults is not None:
            return self._access_slow(agent, addr, size, write)
        if size <= 0:
            raise CoherenceError(f"access size must be positive, got {size}")
        first = addr // CACHE_LINE_SIZE
        last = (addr + size - 1) // CACHE_LINE_SIZE
        if first == last:
            # Hot path: the overwhelming majority of modelled accesses
            # (descriptors, signal words, header probes) touch one line.
            # Region resolution is deferred to the paths that need it
            # (miss fill, prefetch bound check): a hit implies the line
            # was installed by an earlier miss, which already validated
            # cacheability, so skipping the lookup cannot change what an
            # unreachable non-WB hit would have raised.
            lines = agent._lines
            state = lines.get(first)
            if state is not None:
                agent.hits += 1
                lines.move_to_end(first)
                if not write:
                    total = self._l2_hit
                elif state is _MODIFIED or state is _EXCLUSIVE:
                    # Assigning an existing key keeps its (just-moved)
                    # position, so no second move_to_end.
                    lines[first] = _MODIFIED
                    total = self._store_buffer / self.write_pipeline
                else:
                    self._pending_queue = 0.0
                    latency = self._invalidate_others(agent, first)
                    agent.set_state(first, _MODIFIED)
                    if latency == 0.0:
                        latency = self._local_invalidate
                    total = latency / self.write_pipeline + self._pending_queue
                if not agent.prefetch:
                    return total
                region = self._line_regions.get(first)
                if region is None:
                    region = self._resolve_region(addr)
            else:
                region = self._line_regions.get(first)
                if region is None:
                    region = self._resolve_region(addr)
                agent.misses += 1
                self._pending_queue = 0.0
                latency = self._miss_fast(agent, first, write, region)
                if write:
                    latency /= self.write_pipeline
                total = latency + self._pending_queue
            if agent.prefetch:
                # Inline twin of _maybe_prefetch (stride tracking and
                # arming rule unchanged).
                sstate = agent.stream_state.get(region.base)
                if sstate is None:
                    agent.stream_state[region.base] = [first, 0]
                else:
                    stride = first - sstate[0]
                    last_stride = sstate[1]
                    sstate[0] = first
                    sstate[1] = stride
                    if 0 < stride <= _MAX_PREFETCH_STRIDE and (
                        last_stride == 0 or last_stride == stride
                    ):
                        target = first + stride
                        if target * 64 < region.end and target not in lines:
                            self._prefetch_line(agent, target, region)
            return total
        region = self._line_regions.get(first)
        if region is None:
            region = self._resolve_region(addr)
        total = 0.0
        for index, line in enumerate(range(first, last + 1)):
            self._pending_queue = 0.0
            latency = self._line_access_fast(agent, line, write, region)
            if write:
                latency /= self.write_pipeline
            if index > 0:
                latency /= self.mlp
            total += latency + self._pending_queue
            if agent.prefetch:
                self._maybe_prefetch(agent, line, region)
        return total

    def _access_slow(self, agent: CacheAgent, addr: int, size: int, write: bool) -> float:
        """Reference implementation of :meth:`access` (pre-plan path)."""
        if size <= 0:
            raise CoherenceError(f"access size must be positive, got {size}")
        region = self.space.region_of(addr)
        if not region.memtype.is_cacheable:
            raise CoherenceError(
                f"coherent access to non-WB region {region.name!r} ({region.memtype})"
            )
        self._elapsed = 0.0
        first = addr // CACHE_LINE_SIZE
        last = (addr + size - 1) // CACHE_LINE_SIZE
        if first == last:
            # Hot path: the overwhelming majority of modelled accesses
            # (descriptors, signal words, header probes) touch one line.
            self._pending_queue = 0.0
            latency = self._line_access(agent, first, write, region)
            if write:
                latency /= self.write_pipeline
            total = latency + self._pending_queue
            self._elapsed = total
            self._maybe_prefetch(agent, first, region)
            self._elapsed = 0.0
            return total
        total = 0.0
        for index, line in enumerate(range(first, last + 1)):
            self._pending_queue = 0.0
            latency = self._line_access(agent, line, write, region)
            if write:
                latency /= self.write_pipeline
            if index > 0:
                latency /= self.mlp
            total += latency + self._pending_queue
            self._elapsed = total
            self._maybe_prefetch(agent, line, region)
        self._elapsed = 0.0
        return total

    def access_burst(
        self,
        agent: CacheAgent,
        spans: List[tuple],
        write: bool,
    ) -> float:
        """Independent accesses issued back-to-back by one core.

        ``spans`` is a list of ``(addr, size)`` pairs with no data
        dependence between them (e.g. the payloads of a received burst).
        A real out-of-order core overlaps such misses in its fill
        buffers, so only the first line pays full latency; every further
        line pays ``latency / mlp``. Bandwidth and protocol state are
        charged for every line exactly as in :meth:`access`.
        """
        if not self._fastpath or self.faults is not None:
            return self._access_burst_slow(agent, spans, write)
        total = 0.0
        first = True
        regions = self._line_regions
        write_pipeline = self.write_pipeline
        mlp = self.mlp
        l2_hit = self._l2_hit
        store_buffer = self._store_buffer
        lines = agent._lines
        prefetch = agent.prefetch
        stream = agent.stream_state
        for addr, size in spans:
            if size <= 0:
                raise CoherenceError(f"access size must be positive, got {size}")
            line = addr // CACHE_LINE_SIZE
            last_line = (addr + size - 1) // CACHE_LINE_SIZE
            if prefetch:
                region = regions.get(line)
                if region is None:
                    region = self._resolve_region(addr)
            else:
                # Non-prefetching agents (the NIC) only need the region
                # for a miss fill; all-hit spans skip the lookup. A hit
                # implies an earlier validated install, so deferral
                # cannot change reachable error behaviour.
                region = None
            while True:
                # Inline twin of the hit cases in _line_access_fast:
                # payload bursts are overwhelmingly warm-line traffic.
                # (A while walk, not range(): most spans are one line,
                # and burst payloads dominate the span count.)
                state = lines.get(line)
                if state is not None and (
                    not write or state is _MODIFIED or state is _EXCLUSIVE
                ):
                    agent.hits += 1
                    if write:
                        lines[line] = _MODIFIED
                    lines.move_to_end(line)
                    latency = l2_hit if not write else store_buffer
                    pending = 0.0
                else:
                    self._pending_queue = 0.0
                    if state is None:
                        agent.misses += 1
                        if region is None:
                            region = regions.get(addr // CACHE_LINE_SIZE)
                            if region is None:
                                region = self._resolve_region(addr)
                        latency = self._miss_fast(agent, line, write, region)
                    else:
                        # Write hit on a shared line: upgrade in place
                        # (same sequence as _line_access_fast).
                        agent.hits += 1
                        lines.move_to_end(line)
                        latency = self._invalidate_others(agent, line)
                        agent.set_state(line, _MODIFIED)
                        if latency == 0.0:
                            latency = self._local_invalidate
                    pending = self._pending_queue
                if write:
                    latency /= write_pipeline
                if first:
                    first = False
                else:
                    latency /= mlp
                total += latency + pending
                if prefetch:
                    # Inline twin of _maybe_prefetch (see access()).
                    sstate = stream.get(region.base)
                    if sstate is None:
                        stream[region.base] = [line, 0]
                    else:
                        stride = line - sstate[0]
                        last_stride = sstate[1]
                        sstate[0] = line
                        sstate[1] = stride
                        if 0 < stride <= _MAX_PREFETCH_STRIDE and (
                            last_stride == 0 or last_stride == stride
                        ):
                            target = line + stride
                            if target * 64 < region.end and target not in lines:
                                self._prefetch_line(agent, target, region)
                if line == last_line:
                    break
                line += 1
        return total

    def _access_burst_slow(
        self,
        agent: CacheAgent,
        spans: List[tuple],
        write: bool,
    ) -> float:
        """Reference implementation of :meth:`access_burst`."""
        total = 0.0
        first = True
        self._elapsed = 0.0
        for addr, size in spans:
            if size <= 0:
                raise CoherenceError(f"access size must be positive, got {size}")
            region = self.space.region_of(addr)
            if not region.memtype.is_cacheable:
                raise CoherenceError(
                    f"coherent access to non-WB region {region.name!r}"
                )
            for line in range(addr // CACHE_LINE_SIZE,
                              (addr + size - 1) // CACHE_LINE_SIZE + 1):
                self._pending_queue = 0.0
                latency = self._line_access(agent, line, write, region)
                if write:
                    latency /= self.write_pipeline
                if first:
                    first = False
                else:
                    latency /= self.mlp
                total += latency + self._pending_queue
                self._elapsed = total
                self._maybe_prefetch(agent, line, region)
        self._elapsed = 0.0
        return total

    def nt_store(self, agent: CacheAgent, addr: int, size: int) -> float:
        """Non-temporal (cache-bypassing) store.

        Data goes straight to the home memory controller. Cached copies
        anywhere are invalidated. Sustained throughput is limited by the
        NT fill-buffer drain, modelled as inflated wire bytes on the link
        (``1 / nt_link_efficiency``).
        """
        if size <= 0:
            raise CoherenceError(f"nt_store size must be positive, got {size}")
        region = self.space.region_of(addr)
        total = 0.0
        self._elapsed = 0.0
        inflate = 1.0 / self.cost.nt_link_efficiency
        first = True
        for line in lines_spanned(addr, size):
            self._pending_queue = 0.0
            latency = self._invalidate_others(agent, line)
            if first:
                first = False
            else:
                latency /= self.mlp
            latency += self._pending_queue
            dropped = agent.drop(line)
            if dropped is not None:
                self._forget_holder(agent, line)
            # NT stores drain through the core's limited fill buffers:
            # each line occupies a buffer until the home memory
            # controller accepts it, so a sustained stream is paced by
            # the (pipelined) memory round trip — unlike cacheable
            # stores, which retire into the local cache.
            drain = self.cost.remote_dram if region.home != agent.socket \
                else self.cost.local_dram
            latency += self.cost.store_buffer + drain / self.mlp
            total += latency
            if region.home != agent.socket:
                total += self.link.occupy(
                    MessageClass.WRITEBACK,
                    direction=agent.socket,
                    inflate=inflate,
                    actor=agent.name,
                )
                self._count(agent.socket, "nt_store")
            self._elapsed = total
        self._elapsed = 0.0
        return total

    def flush(self, agent: CacheAgent, addr: int, size: int) -> float:
        """CLFLUSHOPT: invalidate the lines from every cache.

        Charged per line to the caller; dirty lines are written back to
        their home.
        """
        region = self.space.region_of(addr)
        total = 0.0
        for line in lines_spanned(addr, size):
            holders = self._holders.get(line)
            if holders:
                for holder in list(holders):
                    state = holder.drop(line)
                    if state is LineState.MODIFIED and region.home != holder.socket:
                        self.link.occupy(
                            MessageClass.WRITEBACK,
                            direction=holder.socket,
                            charge_queueing=False,
                            actor=holder.name,
                        )
                        self._count(holder.socket, "writeback")
                self._holders.pop(line, None)
            total += self.cost.clflush
        return total

    # ------------------------------------------------------------------
    # Introspection helpers (used heavily by tests)
    # ------------------------------------------------------------------
    def state_in(self, agent: CacheAgent, addr: int) -> Optional[LineState]:
        """State of the line containing ``addr`` in ``agent``'s cache."""
        return agent.peek(addr // 64)

    def holders_of(self, addr: int) -> List[CacheAgent]:
        """Agents currently caching the line containing ``addr``."""
        return list(self._holders.get(addr // 64, ()))

    def snapshot_counters(self) -> Dict[str, float]:
        """Copy of the transaction counters (offcore-response model)."""
        return self.counters.snapshot()

    def check_invariants(self) -> None:
        """Verify protocol invariants; raises CoherenceError on violation.

        Invariants:
          * at most one agent holds a given line in M or E;
          * if any agent holds M/E, no other agent holds the line at all;
          * the holders index matches per-agent tag maps.
        """
        for line, holders in self._holders.items():
            exclusive = [
                h for h in holders if h.peek(line) in (LineState.MODIFIED, LineState.EXCLUSIVE)
            ]
            if len(exclusive) > 1:
                raise CoherenceError(
                    f"line {line:#x} exclusively held by multiple agents: "
                    f"{[h.name for h in exclusive]}"
                )
            if exclusive and len(holders) > 1:
                raise CoherenceError(
                    f"line {line:#x} held M/E by {exclusive[0].name} but shared "
                    f"by {[h.name for h in holders]}"
                )
            for holder in holders:
                if not holder.holds(line):
                    raise CoherenceError(
                        f"holders index lists {holder.name} for line {line:#x} "
                        "but the agent does not hold it"
                    )
        for agent in self._agents:
            for line in agent.lines():
                if agent not in self._holders.get(line, ()):
                    raise CoherenceError(
                        f"{agent.name} holds line {line:#x} missing from index"
                    )

    # ------------------------------------------------------------------
    # Protocol internals
    # ------------------------------------------------------------------
    def _line_access(
        self, agent: CacheAgent, line: int, write: bool, region: Region
    ) -> float:
        state = agent.lookup(line)
        if state is not None:
            return self._hit(agent, line, state, write, region)
        agent.misses += 1
        return self._miss(agent, line, write, region)

    def _hit(
        self, agent: CacheAgent, line: int, state: LineState, write: bool,
        region: Region,
    ) -> float:
        agent.hits += 1
        flight = self.flight
        if not write:
            if flight is not None:
                flight.line_event(
                    self._now(), line, region, agent.socket, False, "hit",
                    self.cost.l2_hit,
                )
            return self.cost.l2_hit
        if state.is_writable:
            agent.set_state(line, LineState.MODIFIED)
            if flight is not None:
                flight.line_event(
                    self._now(), line, region, agent.socket, True, "hit",
                    self.cost.store_buffer,
                )
            return self.cost.store_buffer
        # Shared/Forward: upgrade requires invalidating other sharers.
        if flight is not None:
            # Remote-ness must be read before _invalidate_others mutates
            # the holders list.
            remote = any(
                h is not agent and h.socket != agent.socket
                for h in self._holders.get(line, ())
            )
        latency = self._invalidate_others(agent, line)
        agent.set_state(line, LineState.MODIFIED)
        if latency == 0.0:
            latency = self.cost.local_invalidate
        if flight is not None:
            kind = "upgrade_remote" if remote else "upgrade_local"
            flight.line_event(
                self._now(), line, region, agent.socket, True, kind, latency
            )
        return latency

    def _miss(
        self, agent: CacheAgent, line: int, write: bool, region: Region
    ) -> float:
        holders = self._holders.get(line, [])
        local_holder: Optional[CacheAgent] = None
        remote_holder: Optional[CacheAgent] = None
        dirty_holder: Optional[CacheAgent] = None
        for holder in holders:
            if holder.socket == agent.socket:
                local_holder = holder
            else:
                remote_holder = holder
            if holder.peek(line) is LineState.MODIFIED:
                dirty_holder = holder

        if local_holder is None and remote_holder is None:
            return self._fill_from_dram(agent, line, write, region)

        # Data is sourced from the nearest cache; a dirty copy always
        # responds (HitM), wherever it is.
        source = dirty_holder if dirty_holder is not None else (local_holder or remote_holder)
        crosses_link = source.socket != agent.socket
        if crosses_link:
            if region.home == agent.socket:
                latency = self.cost.remote_cache_reader_homed
                self._count(agent.socket, "spec_mem_read")
                kind = "cache_remote_spec"
                if self.sanitizer is not None:
                    self.sanitizer.spec_read(
                        self._now(), line, region, agent, write
                    )
            else:
                latency = self.cost.remote_cache_writer_homed
                kind = "cache_remote"
            cls = MessageClass.RFO if write else MessageClass.READ
            self._pending_queue += self.link.occupy(
                MessageClass.SNOOP, direction=agent.socket, actor=agent.name
            )
            self._pending_queue += self.link.occupy(
                cls, direction=1 - agent.socket, actor=agent.name
            )
            self._count(agent.socket, "rfo" if write else "read")
            if self.faults is not None:
                self._pending_queue += self._snoop_disruption(agent)
        else:
            latency = self.cost.local_cache
            kind = "cache_local"

        if write:
            # The RFO itself invalidates every other copy; no extra
            # round trip is charged beyond the fetch above.
            self._drop_others(agent, line)
            self._install(agent, line, LineState.MODIFIED, region)
        elif dirty_holder is not None:
            # HitM: dirty data and ownership migrate to the requester.
            dirty_holder.drop(line)
            self._forget_holder(dirty_holder, line)
            self._install(agent, line, LineState.MODIFIED, region)
        else:
            self._downgrade_owners(line)
            self._install(agent, line, LineState.SHARED, region)
        if self.flight is not None:
            if dirty_holder is not None and crosses_link:
                kind += "_hitm"
            self.flight.line_event(
                self._now(), line, region, agent.socket, write, kind, latency
            )
        return latency

    def _line_access_fast(
        self, agent: CacheAgent, line: int, write: bool, region: Region
    ) -> float:
        """Plan-backed twin of :meth:`_line_access` (+ :meth:`_hit`)."""
        lines = agent._lines
        state = lines.get(line)
        if state is not None:
            agent.hits += 1
            lines.move_to_end(line)
            if not write:
                return self._l2_hit
            if state is _MODIFIED or state is _EXCLUSIVE:
                # Assigning an existing key keeps its (just-moved)
                # position, so no second move_to_end.
                lines[line] = _MODIFIED
                return self._store_buffer
            latency = self._invalidate_others(agent, line)
            agent.set_state(line, _MODIFIED)
            if latency == 0.0:
                latency = self._local_invalidate
            return latency
        agent.misses += 1
        return self._miss_fast(agent, line, write, region)

    def _miss_fast(
        self, agent: CacheAgent, line: int, write: bool, region: Region
    ) -> float:
        """Plan-backed twin of :meth:`_miss` + :meth:`_fill_from_dram`.

        The holders scan and all MESIF state transitions are the same
        code path as the reference implementation; only the latency,
        link-message and counter bookkeeping comes from a memoized plan.
        """
        holders = self._holders.get(line)
        if not holders:
            if region.home == agent.socket:
                latency = self._local_dram
            else:
                plans = self._plans
                if self.counters.epoch != self._plans_epoch:
                    plans.clear()
                    self._plans_epoch = self.counters.epoch
                key = _PLAN_DRAM + (2 if write else 0) + agent.socket
                plan = plans.get(key)
                if plan is None:
                    plan = plans[key] = self._build_dram_plan(write, agent.socket)
                base, msgs, cell = plan
                latency = self.link.occupy_pair(msgs, agent.name, base)
                cell[0] += 1.0
            self._install(agent, line, _MODIFIED if write else _EXCLUSIVE, region)
            return latency
        local_holder: Optional[CacheAgent] = None
        remote_holder: Optional[CacheAgent] = None
        dirty_holder: Optional[CacheAgent] = None
        for holder in holders:
            if holder.socket == agent.socket:
                local_holder = holder
            else:
                remote_holder = holder
            if holder._lines.get(line) is _MODIFIED:
                dirty_holder = holder
        source = dirty_holder if dirty_holder is not None else (local_holder or remote_holder)
        if source.socket != agent.socket:
            plans = self._plans
            if self.counters.epoch != self._plans_epoch:
                plans.clear()
                self._plans_epoch = self.counters.epoch
            home_local = region.home == agent.socket
            key = (
                _PLAN_REMOTE
                + (4 if write else 0)
                + (2 if home_local else 0)
                + agent.socket
            )
            plan = plans.get(key)
            if plan is None:
                plan = plans[key] = self._build_remote_plan(
                    write, home_local, agent.socket
                )
            latency, msgs, cell, spec_cell = plan
            if spec_cell is not None:
                spec_cell[0] += 1.0
            self._pending_queue = self.link.occupy_pair(
                msgs, agent.name, self._pending_queue
            )
            cell[0] += 1.0
        else:
            latency = self._local_cache
        if write:
            # Inline _drop_others over the fetched holders list: the
            # requester missed, so it is never on the list, and every
            # copy goes — drop the whole entry rather than removing
            # holders one by one (_install re-creates it).
            for holder in holders:
                holder._lines.pop(line, None)
            del self._holders[line]
            self._install(agent, line, _MODIFIED, region)
        elif dirty_holder is not None:
            # Inline drop + _forget_holder: the holders list is already
            # in hand and the dirty holder is known to be on it.
            dirty_holder._lines.pop(line, None)
            holders.remove(dirty_holder)
            if not holders:
                del self._holders[line]
            self._install(agent, line, _MODIFIED, region)
        else:
            # Inline _downgrade_owners over the fetched holders list.
            for holder in holders:
                hstate = holder._lines.get(line)
                if hstate is _EXCLUSIVE or hstate is _FORWARD:
                    holder.set_state(line, _SHARED)
            self._install(agent, line, _SHARED, region)
        return latency

    def _fill_from_dram(
        self, agent: CacheAgent, line: int, write: bool, region: Region
    ) -> float:
        if region.home == agent.socket:
            latency = self.cost.local_dram
            kind = "dram_local"
        else:
            latency = self.cost.remote_dram
            kind = "dram_remote"
            cls = MessageClass.RFO if write else MessageClass.READ
            latency += self.link.occupy(MessageClass.SNOOP, direction=agent.socket, actor=agent.name)
            latency += self.link.occupy(cls, direction=1 - agent.socket, actor=agent.name)
            self._count(agent.socket, "rfo" if write else "read")
            if self.faults is not None:
                latency += self._snoop_disruption(agent)
        new_state = LineState.MODIFIED if write else LineState.EXCLUSIVE
        self._install(agent, line, new_state, region)
        if self.flight is not None:
            self.flight.line_event(
                self._now(), line, region, agent.socket, write, kind, latency
            )
        return latency

    def _downgrade_owners(self, line: int) -> None:
        """A clean read sourced from another cache: E/F owners fall to S."""
        for holder in self._holders.get(line, ()):
            state = holder.peek(line)
            if state in (LineState.EXCLUSIVE, LineState.FORWARD):
                holder.set_state(line, LineState.SHARED)

    def _drop_others(self, agent: CacheAgent, line: int) -> None:
        """Silently drop all other copies (covered by an in-flight RFO)."""
        holders = self._holders.get(line)
        if not holders:
            return
        for holder in list(holders):
            if holder is agent:
                continue
            holder.drop(line)
            holders.remove(holder)

    def _invalidate_others(self, agent: CacheAgent, line: int) -> float:
        """Drop the line from all *other* caches; returns invalidation latency.

        Local-only invalidations are cheap; any remote holder costs one
        interconnect round trip (counted as an RFO-class transaction).
        """
        holders = self._holders.get(line)
        if not holders:
            return 0.0
        remote = False
        found_other = False
        for holder in list(holders):
            if holder is agent:
                continue
            found_other = True
            holder.drop(line)
            holders.remove(holder)
            if holder.socket != agent.socket:
                remote = True
        if not found_other:
            return 0.0
        if remote:
            if self._fastpath and self.faults is None:
                plans = self._plans
                if self.counters.epoch != self._plans_epoch:
                    plans.clear()
                    self._plans_epoch = self.counters.epoch
                key = _PLAN_UPGRADE + agent.socket
                plan = plans.get(key)
                if plan is None:
                    plan = plans[key] = self._build_upgrade_plan(agent.socket)
                base, msgs, cell = plan
                self._pending_queue = self.link.occupy_pair(
                    msgs, agent.name, self._pending_queue
                )
                cell[0] += 1.0
                return base
            self._pending_queue += self.link.occupy(
                MessageClass.SNOOP, direction=agent.socket, actor=agent.name
            )
            self._pending_queue += self.link.occupy(
                MessageClass.ACK, direction=1 - agent.socket, actor=agent.name
            )
            self._count(agent.socket, "rfo")
            if self.faults is not None:
                self._pending_queue += self._snoop_disruption(agent)
            return self.cost.remote_invalidate
        return self.cost.local_invalidate

    def _install(
        self, agent: CacheAgent, line: int, state: LineState, region: Region
    ) -> None:
        lines = agent._lines
        # Every caller installs on a miss (the agent does not hold the
        # line), so the insert already lands in MRU position.
        lines[line] = state
        holders = self._holders.get(line)
        if holders is None:
            self._holders[line] = [agent]
        elif agent not in holders:
            holders.append(agent)
        if len(lines) > agent.capacity_lines:
            # Inline evict_victim + _forget_holder: at steady state this
            # runs on every install.
            vline, vstate = lines.popitem(last=False)
            agent.evictions += 1
            vholders = self._holders.get(vline)
            if vholders is not None and agent in vholders:
                vholders.remove(agent)
                if not vholders:
                    del self._holders[vline]
            if vstate is _MODIFIED:
                vregion = self._line_regions.get(vline)
                if vregion is None:
                    vregion = self.space.try_region_of(vline * 64)
                vhome = vregion.home if vregion is not None else agent.socket
                if vhome != agent.socket:
                    self.link.occupy(
                        MessageClass.WRITEBACK,
                        direction=agent.socket,
                        charge_queueing=False,
                        actor=agent.name,
                    )
                    self._count(agent.socket, "writeback")

    def _forget_holder(self, agent: CacheAgent, line: int) -> None:
        holders = self._holders.get(line)
        if holders and agent in holders:
            holders.remove(agent)
            if not holders:
                self._holders.pop(line, None)

    # ------------------------------------------------------------------
    # Prefetcher model (DCU IP: detects +1 line strides within a region)
    # ------------------------------------------------------------------
    #: Largest constant stride (in lines) the prefetcher recognizes.
    MAX_PREFETCH_STRIDE = _MAX_PREFETCH_STRIDE

    def _maybe_prefetch(self, agent: CacheAgent, line: int, region: Region) -> None:
        if not agent.prefetch:
            return
        state = agent.stream_state.get(region.base)
        if state is None:
            agent.stream_state[region.base] = [line, 0]
            return
        last = state[0]
        last_stride = state[1]
        stride = line - last
        state[0] = line
        state[1] = stride
        # DCU-IP style: a small positive stride arms the prefetcher for
        # the next element of the stream (a changed stride disarms it
        # until it repeats).
        if stride <= 0 or stride > self.MAX_PREFETCH_STRIDE:
            return
        if last_stride != 0 and last_stride != stride:
            return
        target = line + stride
        if target * 64 >= region.end:
            return
        if agent.holds(target):
            return
        self._prefetch_line(agent, target, region)

    def _prefetch_line(self, agent: CacheAgent, line: int, region: Region) -> None:
        """Fetch a line into the cache off the critical path."""
        holders = self._holders.get(line)
        dirty_holder = None
        if holders:
            socket = agent.socket
            crosses = False
            for holder in holders:
                if holder._lines.get(line) is _MODIFIED:
                    dirty_holder = holder
                if holder.socket != socket:
                    crosses = True
        else:
            crosses = region.home != agent.socket
        if self._fastpath and self.faults is None:
            plans = self._plans
            if self.counters.epoch != self._plans_epoch:
                plans.clear()
                self._plans_epoch = self.counters.epoch
            key = _PLAN_PREFETCH + (2 if crosses else 0) + agent.socket
            plan = plans.get(key)
            if plan is None:
                plan = plans[key] = self._build_prefetch_plan(crosses, agent.socket)
            _base, msgs, cell = plan
            if msgs:
                self.link.occupy_pair(msgs, agent.name)
            cell[0] += 1.0
        elif crosses:
            # Request is control-only; the data line returns on the
            # opposite direction.
            self.link.occupy(
                MessageClass.SNOOP,
                direction=agent.socket,
                charge_queueing=False,
                actor=agent.name,
            )
            self.link.occupy(
                MessageClass.PREFETCH,
                direction=1 - agent.socket,
                charge_queueing=False,
                actor=agent.name,
            )
            self._count(agent.socket, "prefetch_remote")
        else:
            self._count(agent.socket, "prefetch_local")
        if dirty_holder is not None:
            # Inline drop + _forget_holder (holders list is in hand).
            dirty_holder._lines.pop(line, None)
            holders.remove(dirty_holder)
            if not holders:
                del self._holders[line]
            self._install(agent, line, LineState.MODIFIED, region)
        else:
            if holders:
                # Inline _downgrade_owners over the fetched list.
                for holder in holders:
                    hstate = holder._lines.get(line)
                    if hstate is _EXCLUSIVE or hstate is _FORWARD:
                        holder.set_state(line, _SHARED)
            self._install(agent, line, LineState.SHARED, region)

    # ------------------------------------------------------------------
    def _snoop_disruption(self, agent: CacheAgent) -> float:
        """Extra snoop latency from the fault injector, if any.

        A delayed response just adds its ``extra_ns``. A NACK makes the
        requester re-issue the snoop after the turnaround, so the retry
        message is charged on the link a second time.
        """
        # repro: allow(zero-cost-hooks) every caller guards on self.faults
        fault = self.faults.snoop_decide(self.sim.now)
        if fault is None:
            return 0.0
        extra = fault.extra_ns
        if fault.reissue:
            extra += self.link.occupy(
                MessageClass.SNOOP, direction=agent.socket, actor=agent.name
            )
            self._count(agent.socket, "snoop_retry")
        return extra

    def _count(self, socket: int, what: str) -> None:
        self.counters.add(f"s{socket}.{what}")

    def __repr__(self) -> str:
        return f"<CoherenceFabric agents={len(self._agents)} lines={len(self._holders)}>"
