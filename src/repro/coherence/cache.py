"""Per-agent cache model.

A :class:`CacheAgent` stands for one caching entity: a CPU core's private
cache hierarchy (L1+L2 folded together) or a coherent device's on-chip
cache. Tags are an LRU-ordered map from line number to
:class:`~repro.coherence.state.LineState`. Capacity eviction reports the
victim so the fabric can write back dirty data.

The agent also hosts the per-core DCU-IP-style prefetcher state (last
line touched per stream) used by :mod:`repro.coherence.prefetch`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, Optional, Tuple

from repro.coherence.state import LineState
from repro.errors import CoherenceError


class CacheAgent:
    """One caching agent participating in the coherence protocol.

    Args:
        name: Diagnostic label ("host-core0", "nic-agent", ...).
        socket: Socket index this agent's cache lives on.
        capacity_lines: Maximum number of lines held (LRU beyond that).
        prefetch: Whether the hardware prefetcher is enabled.
    """

    #: Optional :class:`repro.obs.flight.FlightRecorder`; class-level
    #: None keeps detached :meth:`drop` to a single attribute test.
    #: Capacity evictions are bookkept inline by the fabric and are not
    #: reported here — the recorder sees protocol-driven losses
    #: (invalidations and HitM ownership migrations).
    #:
    #: The protocol sanitizer (:mod:`repro.check`) deliberately has no
    #: agent-level hook: ownership and ordering are protocol concepts,
    #: so it observes rings, the pool and the fabric's speculative-read
    #: path instead of individual tag operations.
    flight = None

    def __init__(
        self,
        name: str,
        socket: int,
        capacity_lines: int = 32768,
        prefetch: bool = False,
    ) -> None:
        if capacity_lines <= 0:
            raise CoherenceError(f"agent {name!r}: capacity must be positive")
        self.name = name
        self.socket = socket
        self.capacity_lines = capacity_lines
        self.prefetch = prefetch
        self._lines: "OrderedDict[int, LineState]" = OrderedDict()
        # Prefetcher stream state: region base -> last line touched.
        self.stream_state: Dict[int, int] = {}
        # Statistics.
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    # Tag operations
    # ------------------------------------------------------------------
    def lookup(self, line: int) -> Optional[LineState]:
        """State of ``line`` if present (refreshes LRU position)."""
        state = self._lines.get(line)
        if state is not None:
            self._lines.move_to_end(line)
        return state

    def peek(self, line: int) -> Optional[LineState]:
        """State of ``line`` without touching LRU order."""
        return self._lines.get(line)

    def set_state(self, line: int, state: LineState) -> None:
        """Install or update ``line`` (refreshes LRU position)."""
        self._lines[line] = state
        self._lines.move_to_end(line)

    def drop(self, line: int) -> Optional[LineState]:
        """Remove ``line``; returns its former state (None if absent)."""
        state = self._lines.pop(line, None)
        if self.flight is not None and state is not None:
            self.flight.line_drop(line, self.socket, state is LineState.MODIFIED)
        return state

    def evict_victim(self) -> Optional[Tuple[int, LineState]]:
        """Pop the LRU line if over capacity; None when within capacity."""
        if len(self._lines) <= self.capacity_lines:
            return None
        line, state = self._lines.popitem(last=False)
        self.evictions += 1
        return line, state

    def holds(self, line: int) -> bool:
        """True if the line is present in any state."""
        return line in self._lines

    def __len__(self) -> int:
        return len(self._lines)

    def lines(self) -> Iterator[int]:
        """All resident line numbers, LRU-first."""
        return iter(self._lines)

    def clear(self) -> None:
        """Drop every line (used for test isolation)."""
        self._lines.clear()
        self.stream_state.clear()

    def __repr__(self) -> str:
        return (
            f"<CacheAgent {self.name!r} S{self.socket} "
            f"{len(self._lines)}/{self.capacity_lines} lines>"
        )
