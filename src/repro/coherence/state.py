"""MESIF cache-line states.

UPI implements MESIF: Modified, Exclusive, Shared, Invalid, plus Forward
(one designated sharer that responds to snoops with data, avoiding a
memory fetch). Invalid lines are simply absent from a cache's tag map,
so ``LineState`` only has the four present states.
"""

from __future__ import annotations

import enum


class LineState(enum.Enum):
    """State of a cache line within one caching agent."""

    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    FORWARD = "F"

    @property
    def is_writable(self) -> bool:
        """M and E lines can be written without a coherence transaction."""
        return self in (LineState.MODIFIED, LineState.EXCLUSIVE)

    @property
    def is_dirty(self) -> bool:
        """Only M lines hold data newer than memory."""
        return self is LineState.MODIFIED

    @property
    def can_forward(self) -> bool:
        """M, E and F holders respond to snoops with data."""
        return self in (LineState.MODIFIED, LineState.EXCLUSIVE, LineState.FORWARD)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value
