"""Cache-state inspection utilities.

Answers "where does this region's data live right now" — used when
debugging interface designs (is the descriptor ring bouncing? did the
recycling stack keep buffers warm?) and by tests asserting cache-state
outcomes.
"""

from __future__ import annotations

from collections import Counter as StdCounter
from dataclasses import dataclass, field
from typing import Dict, List

from repro.coherence.fabric import CoherenceFabric
from repro.coherence.state import LineState
from repro.mem.region import Region


@dataclass
class RegionCensus:
    """Distribution of one region's lines across caches and states."""

    region: str
    total_lines: int
    uncached_lines: int
    by_agent: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def cached_fraction(self) -> float:
        if self.total_lines == 0:
            return 0.0
        return 1.0 - self.uncached_lines / self.total_lines

    def holder_names(self) -> List[str]:
        return sorted(self.by_agent)

    def lines_held_by(self, agent_name: str) -> int:
        return sum(self.by_agent.get(agent_name, {}).values())

    def __str__(self) -> str:
        parts = [f"{self.region}: {self.cached_fraction:.0%} cached"]
        for agent in self.holder_names():
            states = ", ".join(
                f"{state}:{count}" for state, count in sorted(self.by_agent[agent].items())
            )
            parts.append(f"  {agent}: {states}")
        return "\n".join(parts)


def census(fabric: CoherenceFabric, region: Region) -> RegionCensus:
    """Count the region's lines by (agent, state)."""
    first = region.base // 64
    last = (region.end - 1) // 64
    total = last - first + 1
    by_agent: Dict[str, StdCounter] = {}
    cached = set()
    for line in range(first, last + 1):
        for holder in fabric.holders_of(line * 64):
            state = holder.peek(line)
            if state is None:
                continue
            cached.add(line)
            by_agent.setdefault(holder.name, StdCounter())[state.value] += 1
    return RegionCensus(
        region=region.name,
        total_lines=total,
        uncached_lines=total - len(cached),
        by_agent={name: dict(counts) for name, counts in by_agent.items()},
    )


def dirty_lines(fabric: CoherenceFabric, region: Region) -> int:
    """Number of the region's lines held Modified anywhere."""
    first = region.base // 64
    last = (region.end - 1) // 64
    count = 0
    for line in range(first, last + 1):
        for holder in fabric.holders_of(line * 64):
            if holder.peek(line) is LineState.MODIFIED:
                count += 1
                break
    return count


def sharing_degree(fabric: CoherenceFabric, region: Region) -> float:
    """Average number of caches holding each cached line."""
    first = region.base // 64
    last = (region.end - 1) // 64
    holders_total = 0
    cached_lines = 0
    for line in range(first, last + 1):
        holders = fabric.holders_of(line * 64)
        if holders:
            cached_lines += 1
            holders_total += len(holders)
    if cached_lines == 0:
        return 0.0
    return holders_total / cached_lines
