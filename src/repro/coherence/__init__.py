"""MESIF coherence protocol model: caches, fabric, costs, prefetching."""

from repro.coherence.cache import CacheAgent
from repro.coherence.costs import CostModel
from repro.coherence.fabric import CoherenceFabric
from repro.coherence.state import LineState

__all__ = ["CacheAgent", "CoherenceFabric", "CostModel", "LineState"]
