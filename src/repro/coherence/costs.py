"""Latency cost model for coherence transactions.

The fields are calibrated per platform from the paper's own
microbenchmarks (Fig 7's access-latency measurements and the §2.2 PCIe
numbers). Values are *zero-load* latencies; queueing delay on a congested
link is added on top by the fabric.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

#: Field order used by :meth:`CostModel.signature`.
_FIELDS = (
    "l2_hit",
    "local_cache",
    "local_dram",
    "remote_dram",
    "remote_cache_writer_homed",
    "remote_cache_reader_homed",
    "local_invalidate",
    "remote_invalidate",
    "store_buffer",
    "clflush",
    "nt_link_efficiency",
)


@dataclass(frozen=True, slots=True)
class CostModel:
    """Zero-load access latencies (ns) and protocol efficiency knobs.

    Attributes:
        l2_hit: Load/store hit in the agent's own cache.
        local_cache: Line found in another cache on the same socket.
        local_dram: Line fetched from same-socket DRAM.
        remote_dram: Line fetched from the other socket's DRAM.
        remote_cache_writer_homed: Line in a remote cache, memory homed
            on the *remote* (writer) socket — the fast "rh" case of Fig 7.
        remote_cache_reader_homed: Same but homed on the requester's
            socket ("lh"): slightly slower and triggers a speculative
            local memory read.
        local_invalidate: Store upgrade invalidating same-socket sharers.
        remote_invalidate: Store upgrade invalidating remote sharers
            (one interconnect round trip).
        store_buffer: Cost of a store that hits an owned (M/E) line —
            effectively the store-buffer drain cost.
        clflush: Per-line cost of CLFLUSHOPT.
        nt_link_efficiency: Effective fraction of link bandwidth achieved
            by non-temporal streaming stores (Fig 9 shows caching stores
            reach 1.6-1.8x the NT rate; this models NT partial-write and
            ordering inefficiency).
    """

    l2_hit: float
    local_cache: float
    local_dram: float
    remote_dram: float
    remote_cache_writer_homed: float
    remote_cache_reader_homed: float
    local_invalidate: float
    remote_invalidate: float
    store_buffer: float = 1.0
    clflush: float = 80.0
    nt_link_efficiency: float = 0.55

    def __post_init__(self) -> None:
        for field_name in (
            "l2_hit",
            "local_cache",
            "local_dram",
            "remote_dram",
            "remote_cache_writer_homed",
            "remote_cache_reader_homed",
            "local_invalidate",
            "remote_invalidate",
            "store_buffer",
            "clflush",
        ):
            if getattr(self, field_name) < 0:
                raise ConfigError(f"cost {field_name} must be non-negative")
        if not 0.0 < self.nt_link_efficiency <= 1.0:
            raise ConfigError("nt_link_efficiency must be in (0, 1]")
        if self.l2_hit > self.local_dram:
            raise ConfigError("l2_hit should not exceed local_dram")
        if self.local_dram > self.remote_dram:
            raise ConfigError("local_dram should not exceed remote_dram")

    def resolve(self, case: str) -> float:
        """Zero-load latency for a named miss-resolution case.

        Plan builders (the fabric's memoized transition plans) name
        their cost terms symbolically; this is the single point where
        those names bind to calibrated numbers.
        """
        if case not in _FIELDS:
            raise ConfigError(f"unknown cost case {case!r}")
        return getattr(self, case)

    def signature(self) -> tuple:
        """Value tuple identifying this model for memoization.

        Two models with equal signatures price every transition
        identically, so cached cost plans keyed on (or guarded by) the
        signature stay valid across model swaps that change nothing.
        """
        return tuple(getattr(self, name) for name in _FIELDS)

    def scaled_remote(self, factor: float) -> "CostModel":
        """New model with all cross-socket latencies scaled by ``factor``.

        Used by the Fig 21 sensitivity study (uncore down-clocking mainly
        stretches remote-access latency).
        """
        if factor <= 0:
            raise ConfigError("scale factor must be positive")
        return CostModel(
            l2_hit=self.l2_hit,
            local_cache=self.local_cache,
            local_dram=self.local_dram,
            remote_dram=self.remote_dram * factor,
            remote_cache_writer_homed=self.remote_cache_writer_homed * factor,
            remote_cache_reader_homed=self.remote_cache_reader_homed * factor,
            local_invalidate=self.local_invalidate,
            remote_invalidate=self.remote_invalidate * factor,
            store_buffer=self.store_buffer,
            clflush=self.clflush,
            nt_link_efficiency=self.nt_link_efficiency,
        )
