"""Rack-scale scenarios: registered ScenarioSpecs over topologies.

``kv_rack_zipf`` is the headline scenario: a sharded KV service behind
the ToR load balancer serving Zipf traffic from many simulated client
hosts across eight CC-NIC servers. The scenario's partition is
per-host — shard ``i`` simulates server host ``i`` plus its slice of
the key space — so ``python -m repro perf --scenario kv_rack_zipf
--shards N`` executes the rack on ``N`` workers and merges fingerprints
deterministically, exactly like the single-box scenarios.

``mesh_2x2_loopback`` is the small fabric-shape smoke: per-host CC-NIC
loopback with every packet echoed off the ToR through the 2x2 switch
mesh, exercising multi-hop routes and fabric-edge accounting.
"""

from __future__ import annotations

from repro.shard.spec import ScenarioSpec, register_scenario

register_scenario(ScenarioSpec(
    name="kv_rack_zipf",
    workload="kv",
    description="rack-scale sharded KV behind the ToR, Zipf client hosts",
    topology="rack8",
    n_clients=64,
    n_ops=4000,
    n_ops_quick=960,
    n_keys=32768,
    offered_mops=50.0,
    shards=8,
))

register_scenario(ScenarioSpec(
    name="mesh_2x2_loopback",
    workload="loopback",
    description="per-host loopback echoed off the ToR across a 2x2 mesh",
    topology="mesh_2x2",
    pkt_size=256,
    n_packets=8000,
    n_packets_quick=1600,
    inflight=32,
    shards=4,
))
