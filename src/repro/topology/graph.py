"""Typed topology graph: CC-NIC hosts, coherent switches, one ToR.

A :class:`TopologySpec` is the declarative description of a multi-host
coherent fabric: **nodes** (dual-socket CC-NIC hosts, coherent switches,
and exactly one top-of-rack node fronting the NIC-side fabric) and
**edges** (point-to-point links with per-edge latency/bandwidth, drawn
from the :mod:`~repro.topology.generators` presets the same way
:class:`~repro.platform.presets.PlatformSpec` fixes intra-host costs).

Like :class:`~repro.shard.spec.ScenarioSpec`, a topology spec is a
frozen dataclass of plain values: it pickles across process boundaries,
round-trips through JSON (:meth:`TopologySpec.to_doc` /
:meth:`TopologySpec.from_doc`), and validates eagerly via
:class:`~repro.errors.ConfigError` so a malformed graph fails at
registration time, not mid-run. The runtime counterpart — one
:class:`~repro.interconnect.link.Link` per edge plus hop-by-hop routing
— lives in :mod:`repro.topology.net`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ConfigError

#: Node kinds a topology graph is built from.
NODE_KINDS = ("host", "switch", "tor")


@dataclass(frozen=True)
class NodeSpec:
    """One vertex: a CC-NIC host, a coherent switch, or the ToR."""

    name: str
    kind: str = "host"

    def validate(self) -> "NodeSpec":
        if not self.name:
            raise ConfigError("topology node needs a name")
        if self.kind not in NODE_KINDS:
            raise ConfigError(
                f"node {self.name!r}: unknown kind {self.kind!r} "
                f"(choose from {', '.join(NODE_KINDS)})"
            )
        return self

    def to_doc(self) -> Dict:
        return {"name": self.name, "kind": self.kind}

    @classmethod
    def from_doc(cls, doc: Dict) -> "NodeSpec":
        return cls(**doc).validate()


@dataclass(frozen=True)
class EdgeSpec:
    """One full-duplex link between two nodes.

    Direction 0 of the runtime :class:`~repro.interconnect.link.Link`
    carries ``a -> b`` traffic, direction 1 carries ``b -> a``; the
    endpoint order is therefore part of the spec, even though routing
    treats the edge as undirected.
    """

    a: str
    b: str
    latency_ns: float
    gbps: float
    header_overhead: int = 12

    @property
    def name(self) -> str:
        """Stable edge label, ``"<a>~<b>"``."""
        return f"{self.a}~{self.b}"

    def validate(self) -> "EdgeSpec":
        if not self.a or not self.b:
            raise ConfigError("topology edge needs two endpoint names")
        if self.a == self.b:
            raise ConfigError(f"edge {self.name!r}: self-loops are not allowed")
        if self.latency_ns < 0:
            raise ConfigError(f"edge {self.name!r}: negative latency")
        if self.gbps <= 0:
            raise ConfigError(f"edge {self.name!r}: bandwidth must be positive")
        if self.header_overhead < 0:
            raise ConfigError(f"edge {self.name!r}: negative header overhead")
        return self

    def to_doc(self) -> Dict:
        return {
            "a": self.a,
            "b": self.b,
            "latency_ns": self.latency_ns,
            "gbps": self.gbps,
            "header_overhead": self.header_overhead,
        }

    @classmethod
    def from_doc(cls, doc: Dict) -> "EdgeSpec":
        return cls(**doc).validate()


@dataclass(frozen=True)
class TopologySpec:
    """A validated, serializable multi-host fabric graph."""

    name: str
    nodes: Tuple[NodeSpec, ...]
    edges: Tuple[EdgeSpec, ...]
    description: str = ""

    # ------------------------------------------------------------------
    def validate(self) -> "TopologySpec":
        """Raise :class:`ConfigError` on an inconsistent graph."""
        if not self.name:
            raise ConfigError("topology spec needs a name")
        names = set()
        for node in self.nodes:
            node.validate()
            if node.name in names:
                raise ConfigError(
                    f"topology {self.name!r}: duplicate node {node.name!r}"
                )
            names.add(node.name)
        hosts = self.host_names()
        if not hosts:
            raise ConfigError(f"topology {self.name!r}: needs at least one host")
        tors = [n.name for n in self.nodes if n.kind == "tor"]
        if len(tors) != 1:
            raise ConfigError(
                f"topology {self.name!r}: needs exactly one ToR node "
                f"(found {len(tors)})"
            )
        seen_pairs = set()
        for edge in self.edges:
            edge.validate()
            for endpoint in (edge.a, edge.b):
                if endpoint not in names:
                    raise ConfigError(
                        f"topology {self.name!r}: edge {edge.name!r} references "
                        f"unknown node {endpoint!r}"
                    )
            pair = (edge.a, edge.b) if edge.a < edge.b else (edge.b, edge.a)
            if pair in seen_pairs:
                raise ConfigError(
                    f"topology {self.name!r}: duplicate edge between "
                    f"{pair[0]!r} and {pair[1]!r}"
                )
            seen_pairs.add(pair)
        self._check_connected(names)
        return self

    def _check_connected(self, names: set) -> None:
        """Every node must be reachable from the ToR."""
        adjacency = self.adjacency()
        frontier = [self.tor_name()]
        reached = {frontier[0]}
        while frontier:
            node = frontier.pop()
            for neighbor in adjacency.get(node, ()):
                if neighbor not in reached:
                    reached.add(neighbor)
                    frontier.append(neighbor)
        unreachable = sorted(names - reached)
        if unreachable:
            raise ConfigError(
                f"topology {self.name!r}: node(s) unreachable from the ToR: "
                f"{', '.join(unreachable)}"
            )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def host_names(self) -> List[str]:
        """Host node names, in declaration order (shard ``i`` = host ``i``)."""
        return [node.name for node in self.nodes if node.kind == "host"]

    def tor_name(self) -> str:
        """Name of the (single) top-of-rack node."""
        for node in self.nodes:
            if node.kind == "tor":
                return node.name
        raise ConfigError(f"topology {self.name!r}: no ToR node")

    def adjacency(self) -> Dict[str, List[str]]:
        """Neighbor lists, each sorted by name (the routing tie-break)."""
        neighbors: Dict[str, List[str]] = {node.name: [] for node in self.nodes}
        for edge in self.edges:
            neighbors[edge.a].append(edge.b)
            neighbors[edge.b].append(edge.a)
        for adjacent in neighbors.values():
            adjacent.sort()
        return neighbors

    def edge_index(self) -> Dict[Tuple[str, str], Tuple[EdgeSpec, int]]:
        """``(src, dst) -> (edge, direction)`` for both orientations."""
        index: Dict[Tuple[str, str], Tuple[EdgeSpec, int]] = {}
        for edge in self.edges:
            index[(edge.a, edge.b)] = (edge, 0)
            index[(edge.b, edge.a)] = (edge, 1)
        return index

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_doc(self) -> Dict:
        """Plain-dict form (JSON-safe)."""
        doc: Dict = {
            "name": self.name,
            "nodes": [node.to_doc() for node in self.nodes],
            "edges": [edge.to_doc() for edge in self.edges],
        }
        if self.description:
            doc["description"] = self.description
        return doc

    @classmethod
    def from_doc(cls, doc: Dict) -> "TopologySpec":
        """Rebuild a spec from :meth:`to_doc` output."""
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = set(doc) - known
        if unknown:
            raise ConfigError(
                f"unknown topology spec field(s): {', '.join(sorted(unknown))}"
            )
        return cls(
            name=doc.get("name", ""),
            nodes=tuple(NodeSpec.from_doc(n) for n in doc.get("nodes", ())),
            edges=tuple(EdgeSpec.from_doc(e) for e in doc.get("edges", ())),
            description=doc.get("description", ""),
        ).validate()
