"""Process-global registry of named topology specs.

Mirrors the scenario registry in :mod:`repro.shard.spec`: built-in
topologies are registered when :mod:`repro.topology` is imported, user
topologies join via :func:`register_topology`, and
:class:`~repro.shard.spec.ScenarioSpec` validation resolves its
``topology`` field here — so a scenario naming an unregistered topology
fails at registration time with the full list of known names.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ConfigError
from repro.topology.graph import TopologySpec

_REGISTRY: Dict[str, TopologySpec] = {}


def register_topology(spec: TopologySpec, replace: bool = False) -> TopologySpec:
    """Add a named topology to the registry; returns it for chaining."""
    spec.validate()
    if not replace and spec.name in _REGISTRY:
        raise ConfigError(f"topology {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def unregister_topology(name: str) -> None:
    """Remove a registered topology (primarily for tests)."""
    _REGISTRY.pop(name, None)


def topology(name: str) -> TopologySpec:
    """Look up a registered topology by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown topology {name!r} (choose from {', '.join(topology_names())})"
        )


def topology_names() -> List[str]:
    """Registered topology names, in registration order."""
    return list(_REGISTRY)


def topology_descriptions() -> Dict[str, str]:
    """``{name: description}`` for every registered topology."""
    return {name: spec.description for name, spec in _REGISTRY.items()}
