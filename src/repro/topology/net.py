"""Runtime topology: one Link per edge, plus a hop-by-hop Router.

:class:`TopologyNet` instantiates the fabric a
:class:`~repro.topology.graph.TopologySpec` describes on a live
simulator: every edge becomes a real
:class:`~repro.interconnect.link.Link` (named ``edge:<a>~<b>``), so
cross-host traffic gets the same serialization, M/D/1 queueing,
per-edge :class:`~repro.interconnect.link.LinkStats`, and fault-injector
hooks intra-host coherence traffic gets today — nothing about the cost
model is topology-specific.

:class:`Router` walks the build-time
:class:`~repro.topology.routing.RouteTables` and charges a message
hop-by-hop through each edge's :meth:`Link.one_way` accounting. The
timing contract is **charge-at-send**: every hop's wait + serialization
+ propagation is resolved against the sender's current window state, so
the returned delay is a pure function of simulator state at the call —
this is what keeps sharded runs bit-identical across worker counts and
fast/slow engine paths (no fabric fast path is involved).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.interconnect.link import Link
from repro.interconnect.messages import MessageClass
from repro.obs.export import TOPOLOGY_SCHEMA
from repro.topology.graph import TopologySpec
from repro.topology.routing import RouteTables
from repro.units import gbps_to_bytes_per_ns


class TopologyNet:
    """A topology spec instantiated on one simulator."""

    def __init__(self, sim, spec: TopologySpec) -> None:
        spec.validate()
        self.sim = sim
        self.spec = spec
        self.tables = RouteTables.build(spec)
        #: Edge label ("<a>~<b>") -> runtime Link ("edge:<a>~<b>").
        self.links: Dict[str, Link] = {}
        #: (src, dst) node pair -> (Link, direction) for one hop.
        self._hop: Dict[Tuple[str, str], Tuple[Link, int]] = {}
        for edge in spec.edges:
            link = Link(
                sim,
                name=f"edge:{edge.name}",
                latency_ns=edge.latency_ns,
                bandwidth_bytes_per_ns=gbps_to_bytes_per_ns(edge.gbps),
                header_overhead=edge.header_overhead,
            )
            self.links[edge.name] = link
            self._hop[(edge.a, edge.b)] = (link, 0)
            self._hop[(edge.b, edge.a)] = (link, 1)
        self.router = Router(self)

    # ------------------------------------------------------------------
    def hop(self, src: str, dst: str) -> Tuple[Link, int]:
        """The (link, direction) carrying one ``src -> dst`` hop."""
        try:
            return self._hop[(src, dst)]
        except KeyError:
            raise ConfigError(
                f"topology {self.spec.name!r}: no edge between "
                f"{src!r} and {dst!r}"
            )

    def attach_faults(self, faults) -> None:
        """Attach one fault injector to every edge link.

        Plan events with ``target="edge:<a>~<b>"`` hit one edge;
        untargeted link events hit the whole fabric.
        """
        for edge in self.spec.edges:
            self.links[edge.name].faults = faults

    def reset_stats(self) -> None:
        for edge in self.spec.edges:
            self.links[edge.name].reset_stats()

    # ------------------------------------------------------------------
    # Snapshots and export
    # ------------------------------------------------------------------
    def stats_flat(self) -> Dict[str, float]:
        """Flat ``{"<edge>:<dir>:<field>": value}`` per-edge counters.

        Flat by contract: a sharded run's snapshot merges this dict with
        the key-wise-sum reduction of
        :func:`repro.shard.merge._merge_scalar_maps`, so the values must
        be plain numbers and the keys stable strings.
        """
        flat: Dict[str, float] = {}
        for edge in self.spec.edges:
            link = self.links[edge.name]
            for direction in (0, 1):
                stats = link.stats[direction]
                prefix = f"{edge.name}:{direction}"
                flat[f"{prefix}:messages"] = stats.messages
                flat[f"{prefix}:wire"] = stats.wire_bytes
                flat[f"{prefix}:busy"] = stats.busy_ns
        return flat

    def stats_report(self, config: Optional[Dict] = None) -> Dict:
        """Schema-stamped per-edge report for ``obs.export_topology_json``."""
        return {
            "schema": TOPOLOGY_SCHEMA,
            "topology": self.spec.name,
            "edges": {
                edge.name: [
                    self.links[edge.name].stats[0].to_doc(),
                    self.links[edge.name].stats[1].to_doc(),
                ]
                for edge in self.spec.edges
            },
            "config": config or {},
        }

    def publish_metrics(self, registry) -> None:
        """Register per-edge collector gauges under ``topology.*``.

        Collector gauges read the live :class:`LinkStats` lazily at
        snapshot time, so publishing adds zero cost to the per-message
        hot path.
        """
        for edge in self.spec.edges:
            link = self.links[edge.name]
            for direction in (0, 1):
                stats = link.stats[direction]
                prefix = f"{edge.name}.{direction}"
                registry.gauge(
                    "topology", f"{prefix}.messages",
                    fn=lambda s=stats: float(s.messages),
                )
                registry.gauge(
                    "topology", f"{prefix}.wire_bytes",
                    fn=lambda s=stats: float(s.wire_bytes),
                )
                registry.gauge(
                    "topology", f"{prefix}.busy_ns",
                    fn=lambda s=stats: s.busy_ns,
                )


class Router:
    """Charges messages along shortest paths, one Link hop at a time."""

    def __init__(self, net: TopologyNet) -> None:
        self.net = net
        # (src, dst) -> tuple of (link, direction) hops; filled lazily,
        # pure derivation from the route tables so caching is safe.
        self._paths: Dict[Tuple[str, str], Tuple[Tuple[Link, int], ...]] = {}

    def path_hops(self, src: str, dst: str) -> Tuple[Tuple[Link, int], ...]:
        """The (link, direction) sequence of the ``src -> dst`` route."""
        key = (src, dst)
        hops = self._paths.get(key)
        if hops is None:
            nodes = self.net.tables.path(src, dst)
            hops = tuple(
                self.net.hop(a, b) for a, b in zip(nodes, nodes[1:])
            )
            self._paths[key] = hops
        return hops

    def hop_count(self, src: str, dst: str) -> int:
        return len(self.path_hops(src, dst))

    def charge(
        self,
        src: str,
        dst: str,
        cls: MessageClass,
        payload_bytes: Optional[int] = None,
        actor: str = "net",
    ) -> float:
        """Deliver one message ``src -> dst``; return the total delay.

        Every hop books wait + serialization + propagation through its
        edge's :meth:`Link.one_way` at the *current* simulator time
        (charge-at-send): per-edge occupancy, per-class stats, and any
        attached fault injector all see the message exactly as intra-
        host link traffic would.
        """
        total = 0.0
        for link, direction in self.path_hops(src, dst):
            total += link.one_way(
                cls, direction, payload_bytes=payload_bytes, actor=actor
            )
        return total

    def broadcast_from(
        self, src: str, dsts: List[str], cls: MessageClass,
        payload_bytes: Optional[int] = None, actor: str = "net",
    ) -> float:
        """Charge one copy per destination; return the slowest delivery."""
        worst = 0.0
        for dst in dsts:
            delay = self.charge(src, dst, cls, payload_bytes, actor)
            if delay > worst:
                worst = delay
        return worst
