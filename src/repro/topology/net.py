"""Runtime topology: one Link per edge, plus a hop-by-hop Router.

:class:`TopologyNet` instantiates the fabric a
:class:`~repro.topology.graph.TopologySpec` describes on a live
simulator: every edge becomes a real
:class:`~repro.interconnect.link.Link` (named ``edge:<a>~<b>``), so
cross-host traffic gets the same serialization, M/D/1 queueing,
per-edge :class:`~repro.interconnect.link.LinkStats`, and fault-injector
hooks intra-host coherence traffic gets today — nothing about the cost
model is topology-specific.

:class:`Router` walks the build-time
:class:`~repro.topology.routing.RouteTables` and charges a message
hop-by-hop through each edge's :meth:`Link.one_way` accounting. The
timing contract is **charge-at-send**: every hop's wait + serialization
+ propagation is resolved against the sender's current window state, so
the returned delay is a pure function of simulator state at the call —
this is what keeps sharded runs bit-identical across worker counts and
fast/slow engine paths (no fabric fast path is involved).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.interconnect.link import Link
from repro.interconnect.messages import MessageClass
from repro.obs.export import TOPOLOGY_SCHEMA
from repro.topology.graph import TopologySpec
from repro.topology.routing import RouteTables
from repro.units import gbps_to_bytes_per_ns


class TopologyNet:
    """A topology spec instantiated on one simulator."""

    def __init__(self, sim, spec: TopologySpec) -> None:
        spec.validate()
        self.sim = sim
        self.spec = spec
        self.tables = RouteTables.build(spec)
        #: Edge label ("<a>~<b>") -> runtime Link ("edge:<a>~<b>").
        self.links: Dict[str, Link] = {}
        #: (src, dst) node pair -> (Link, direction) for one hop.
        self._hop: Dict[Tuple[str, str], Tuple[Link, int]] = {}
        for edge in spec.edges:
            link = Link(
                sim,
                name=f"edge:{edge.name}",
                latency_ns=edge.latency_ns,
                bandwidth_bytes_per_ns=gbps_to_bytes_per_ns(edge.gbps),
                header_overhead=edge.header_overhead,
            )
            self.links[edge.name] = link
            self._hop[(edge.a, edge.b)] = (link, 0)
            self._hop[(edge.b, edge.a)] = (link, 1)
        self.router = Router(self)

    # ------------------------------------------------------------------
    def hop(self, src: str, dst: str) -> Tuple[Link, int]:
        """The (link, direction) carrying one ``src -> dst`` hop."""
        try:
            return self._hop[(src, dst)]
        except KeyError:
            raise ConfigError(
                f"topology {self.spec.name!r}: no edge between "
                f"{src!r} and {dst!r}"
            )

    def attach_faults(self, faults) -> None:
        """Attach one fault injector to every edge link.

        Plan events with ``target="edge:<a>~<b>"`` hit one edge;
        untargeted link events hit the whole fabric.
        """
        for edge in self.spec.edges:
            self.links[edge.name].faults = faults

    def reset_stats(self) -> None:
        for edge in self.spec.edges:
            self.links[edge.name].reset_stats()

    # ------------------------------------------------------------------
    # Snapshots and export
    # ------------------------------------------------------------------
    def stats_flat(self) -> Dict[str, float]:
        """Flat ``{"<edge>:<dir>:<field>": value}`` per-edge counters.

        Flat by contract: a sharded run's snapshot merges this dict with
        the key-wise-sum reduction of
        :func:`repro.shard.merge._merge_scalar_maps`, so the values must
        be plain numbers and the keys stable strings.
        """
        flat: Dict[str, float] = {}
        for edge in self.spec.edges:
            link = self.links[edge.name]
            for direction in (0, 1):
                stats = link.stats[direction]
                prefix = f"{edge.name}:{direction}"
                flat[f"{prefix}:messages"] = stats.messages
                flat[f"{prefix}:wire"] = stats.wire_bytes
                flat[f"{prefix}:busy"] = stats.busy_ns
        return flat

    def stats_report(self, config: Optional[Dict] = None) -> Dict:
        """Schema-stamped per-edge report for ``obs.export_topology_json``."""
        return {
            "schema": TOPOLOGY_SCHEMA,
            "topology": self.spec.name,
            "edges": {
                edge.name: [
                    self.links[edge.name].stats[0].to_doc(),
                    self.links[edge.name].stats[1].to_doc(),
                ]
                for edge in self.spec.edges
            },
            "config": config or {},
        }

    def publish_metrics(self, registry) -> None:
        """Register per-edge collector gauges under ``topology.*``.

        Collector gauges read the live :class:`LinkStats` lazily at
        snapshot time, so publishing adds zero cost to the per-message
        hot path.
        """
        for edge in self.spec.edges:
            link = self.links[edge.name]
            for direction in (0, 1):
                stats = link.stats[direction]
                prefix = f"{edge.name}.{direction}"
                registry.gauge(
                    "topology", f"{prefix}.messages",
                    fn=lambda s=stats: float(s.messages),
                )
                registry.gauge(
                    "topology", f"{prefix}.wire_bytes",
                    fn=lambda s=stats: float(s.wire_bytes),
                )
                registry.gauge(
                    "topology", f"{prefix}.busy_ns",
                    fn=lambda s=stats: s.busy_ns,
                )


class Router:
    """Charges messages along shortest paths, one Link hop at a time.

    On the fast path (engine not in slowpath mode) the per-hop
    :meth:`Link.one_way` calls are replaced by memoized *charge plans*:
    one flat row per hop (built by :meth:`Link.plan_one_way`) carrying
    the resolved payload/wire/serialization figures plus the live
    statistics and utilization-window cells, so :meth:`charge` runs the
    window accounting straight-line with no per-hop validation, payload
    resolution, or class-cell dict lookup. Plans embed state that
    :meth:`Link.scaled` and :meth:`Link.reset_stats` replace, so the
    Router claims every edge link's ``on_scaled`` slot (edge links have
    no other consumer — the coherence fabric only owns the intra-host
    links) and drops all plans when any edge is rescaled or reset,
    mirroring the epoch invalidation of the fabric's transition plans.
    A fault injector attached to an edge is honoured per charge: any
    hop whose link carries ``faults`` falls back to :meth:`Link.one_way`
    so fault draws keep their order.
    """

    def __init__(self, net: TopologyNet) -> None:
        self.net = net
        # (src, dst) -> tuple of (link, direction) hops; filled lazily,
        # pure derivation from the route tables so caching is safe.
        self._paths: Dict[Tuple[str, str], Tuple[Tuple[Link, int], ...]] = {}
        # (src, dst, cls, payload_bytes) -> tuple of plan_one_way rows.
        self._plans: Dict[tuple, tuple] = {}
        self._fastpath = not net.sim.slowpath
        if self._fastpath:
            for link in net.links.values():
                link.on_scaled = self._invalidate_plans

    def _invalidate_plans(self) -> None:
        """Drop every memoized charge plan (an edge was rescaled/reset)."""
        self._plans.clear()

    def path_hops(self, src: str, dst: str) -> Tuple[Tuple[Link, int], ...]:
        """The (link, direction) sequence of the ``src -> dst`` route."""
        key = (src, dst)
        hops = self._paths.get(key)
        if hops is None:
            nodes = self.net.tables.path(src, dst)
            hops = tuple(
                self.net.hop(a, b) for a, b in zip(nodes, nodes[1:])
            )
            self._paths[key] = hops
        return hops

    def hop_count(self, src: str, dst: str) -> int:
        return len(self.path_hops(src, dst))

    def charge(
        self,
        src: str,
        dst: str,
        cls: MessageClass,
        payload_bytes: Optional[int] = None,
        actor: str = "net",
    ) -> float:
        """Deliver one message ``src -> dst``; return the total delay.

        Every hop books wait + serialization + propagation against its
        edge at the *current* simulator time (charge-at-send): per-edge
        occupancy, per-class stats, and any attached fault injector all
        see the message exactly as intra-host link traffic would. The
        fast path replays :meth:`Link.one_way`'s accounting from a
        memoized plan — same window rolls, same per-actor demand
        updates, same wait arithmetic in the same evaluation order — so
        it is bit-identical to :meth:`_charge_slow`.
        """
        if not self._fastpath:
            return self._charge_slow(src, dst, cls, payload_bytes, actor)
        key = (src, dst, cls, payload_bytes)
        plan = self._plans.get(key)
        if plan is None:
            plan = tuple(
                link.plan_one_way(cls, direction, payload_bytes)
                for link, direction in self.path_hops(src, dst)
            )
            self._plans[key] = plan
        t = self.net.sim.now
        window = Link.WINDOW_NS
        cap = Link.RHO_CAP
        live_floor = window / 4
        total = 0.0
        for (link, d, payload, wire, ser, lat, ser_lat, agg, cell,
             win_busy, win_by, win_start, rho_settled, rho_by) in plan:
            if link.faults is not None:
                # Fault draws must keep their per-message order; let the
                # reference path book this hop.
                total += link.one_way(
                    cls, d, payload_bytes=payload_bytes, actor=actor
                )
                continue
            elapsed = t - win_start[d]
            if elapsed >= window:
                rho_settled[d] = min(cap, win_busy[d] / elapsed)
                rho_by[d] = {
                    a: min(cap, busy / elapsed)
                    for a, busy in win_by[d].items()
                }
                win_start[d] = t
                win_busy[d] = 0.0
                win_by[d] = {}
            busy = win_busy[d] + ser
            win_busy[d] = busy
            by = win_by[d]
            try:
                mine = by[actor] + ser
            except KeyError:
                mine = ser
            by[actor] = mine
            agg[0] += 1
            agg[1] += payload
            agg[2] += wire
            agg[3] += ser
            cell[0] += 1
            cell[1] += wire
            try:
                settled_others = rho_settled[d] - rho_by[d][actor]
            except KeyError:
                settled_others = rho_settled[d]
            if busy == mine and settled_others <= 0.0:
                # Sole actor in the window and nothing settled: the wait
                # is exactly 0.0, so the hop contributes its precomputed
                # (ser + latency) — identical to (0.0 + ser) + latency.
                total += ser_lat
                continue
            if settled_others < 0.0:
                settled_others = 0.0
            live_elapsed = t - win_start[d] + ser
            if live_elapsed < live_floor:
                live_elapsed = live_floor
            live_others = (busy - mine) / live_elapsed
            rho_others = settled_others if settled_others >= live_others else live_others
            if rho_others > cap:
                rho_others = cap
            if rho_others <= 0.0:
                total += ser_lat
                continue
            mm1 = ser * rho_others / (1.0 - rho_others)
            own = mine if mine >= ser else ser
            settled_total = rho_settled[d]
            live_total = busy / live_elapsed
            rho_total = settled_total if settled_total >= live_total else live_total
            if rho_total > 1.0:
                rho_total = 1.0
            over = busy / own - 1.0
            if over < 0.0:
                over = 0.0
            fair = ser * over * rho_total * rho_total
            wait = mm1 if mm1 <= fair else fair
            total += wait + ser + lat
        return total

    def _charge_slow(
        self,
        src: str,
        dst: str,
        cls: MessageClass,
        payload_bytes: Optional[int],
        actor: str,
    ) -> float:
        """Reference hop walk: one :meth:`Link.one_way` call per hop."""
        total = 0.0
        for link, direction in self.path_hops(src, dst):
            total += link.one_way(
                cls, direction, payload_bytes=payload_bytes, actor=actor
            )
        return total

    def broadcast_from(
        self, src: str, dsts: List[str], cls: MessageClass,
        payload_bytes: Optional[int] = None, actor: str = "net",
    ) -> float:
        """Charge one copy per destination; return the slowest delivery."""
        worst = 0.0
        for dst in dsts:
            delay = self.charge(src, dst, cls, payload_bytes, actor)
            if delay > worst:
                worst = delay
        return worst
