"""Deterministic shortest-path route tables over a topology graph.

Routes are computed once, at build time, by breadth-first search from
every *destination* with neighbors expanded in sorted-name order: the
BFS parent of node ``u`` in the tree rooted at ``dst`` is exactly the
next hop ``u`` forwards toward ``dst``, and the lexicographic expansion
order makes the equal-cost tie-break a pure function of the graph — two
builds of the same :class:`~repro.topology.graph.TopologySpec` always
produce byte-identical tables (covered by the determinism tests).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Tuple

from repro.errors import ConfigError
from repro.topology.graph import TopologySpec


class RouteTables:
    """Next-hop tables for every (src, dst) pair of a validated spec."""

    def __init__(self, next_hop: Dict[str, Dict[str, str]]) -> None:
        self.next_hop = next_hop

    @classmethod
    def build(cls, spec: TopologySpec) -> "RouteTables":
        """BFS from each destination; O(nodes * edges), build-time only."""
        adjacency = spec.adjacency()
        next_hop: Dict[str, Dict[str, str]] = {
            name: {} for name in adjacency
        }
        for dst in adjacency:
            parent: Dict[str, str] = {}
            frontier = deque((dst,))
            visited = {dst}
            while frontier:
                node = frontier.popleft()
                for neighbor in adjacency[node]:
                    if neighbor not in visited:
                        visited.add(neighbor)
                        parent[neighbor] = node
                        frontier.append(neighbor)
            for src, hop in parent.items():
                next_hop[src][dst] = hop
        return cls(next_hop)

    # ------------------------------------------------------------------
    def path(self, src: str, dst: str) -> Tuple[str, ...]:
        """Node sequence from ``src`` to ``dst``, both endpoints included."""
        if src not in self.next_hop:
            raise ConfigError(f"unknown route source {src!r}")
        if dst not in self.next_hop:
            raise ConfigError(f"unknown route destination {dst!r}")
        nodes = [src]
        node = src
        while node != dst:
            node = self.next_hop[node][dst]
            nodes.append(node)
        return tuple(nodes)

    def hop_count(self, src: str, dst: str) -> int:
        """Number of edges crossed from ``src`` to ``dst``."""
        return len(self.path(src, dst)) - 1

    def to_doc(self) -> Dict[str, Dict[str, str]]:
        """JSON-safe copy with sorted keys (for determinism tests)."""
        return {
            src: {dst: hop for dst, hop in sorted(table.items())}
            for src, table in sorted(self.next_hop.items())
        }
