"""Multi-host coherent-fabric topologies (racks of CC-NIC hosts).

The single-box platform model (:mod:`repro.platform`) scales out here:
a typed graph of CC-NIC hosts, coherent switches, and one top-of-rack
node (:mod:`~repro.topology.graph`), declarative generators for the
standard shapes (:mod:`~repro.topology.generators`), deterministic
shortest-path route tables (:mod:`~repro.topology.routing`), and a
runtime net that charges cross-host messages hop-by-hop through real
:class:`~repro.interconnect.link.Link` instances
(:mod:`~repro.topology.net`).

Importing this package registers the built-in topologies (``rack8``,
``mesh_2x2``, ``torus_4x4``, ``fat_tree_4``) and the rack scenarios
(``kv_rack_zipf``, ``mesh_2x2_loopback``) — the scenario registration
order below matters: scenario validation resolves topology names, so
topologies must be registered first. See ``docs/TOPOLOGY.md``.
"""

from repro.topology.generators import (
    FABRIC_EDGE,
    HOST_EDGE,
    TOR_EDGE,
    EdgePreset,
    fat_tree,
    mesh,
    single_switch,
    torus,
)
from repro.topology.graph import EdgeSpec, NodeSpec, TopologySpec
from repro.topology.net import Router, TopologyNet
from repro.topology.registry import (
    register_topology,
    topology,
    topology_descriptions,
    topology_names,
    unregister_topology,
)
from repro.topology.routing import RouteTables

# Built-in topologies: registered before the scenarios that name them.
register_topology(single_switch(8))          # "rack8"
register_topology(mesh(2, 2))                # "mesh_2x2"
register_topology(torus(4, 4))               # "torus_4x4"
register_topology(fat_tree(4))               # "fat_tree_4"

# Imported last, for its register_scenario() side effects.
from repro.topology import scenarios as _scenarios  # noqa: E402,F401

__all__ = [
    "EdgePreset",
    "EdgeSpec",
    "FABRIC_EDGE",
    "HOST_EDGE",
    "NodeSpec",
    "RouteTables",
    "Router",
    "TOR_EDGE",
    "TopologyNet",
    "TopologySpec",
    "fat_tree",
    "mesh",
    "register_topology",
    "single_switch",
    "topology",
    "topology_descriptions",
    "topology_names",
    "torus",
    "unregister_topology",
]
