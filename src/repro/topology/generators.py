"""Declarative topology generators and per-edge link presets.

Each generator returns a validated :class:`~repro.topology.graph.TopologySpec`;
nothing is instantiated until :class:`~repro.topology.net.TopologyNet`
turns the edges into :class:`~repro.interconnect.link.Link` objects.

Edge presets play the role :class:`~repro.platform.presets.PlatformSpec`
plays intra-host: fixed latency/bandwidth points for each edge class of
a CXL-style multi-device coherent fabric. Host ports are CXL 2.0 x16
class (~64 GB/s usable), switch-to-switch fabric hops are wider and add
a switch traversal, and the ToR uplink is the NIC-side fat pipe the
rack's external traffic funnels through.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ConfigError
from repro.topology.graph import EdgeSpec, NodeSpec, TopologySpec


@dataclass(frozen=True)
class EdgePreset:
    """Latency/bandwidth point for one edge class."""

    latency_ns: float
    gbps: float
    header_overhead: int = 12

    def edge(self, a: str, b: str) -> EdgeSpec:
        """An :class:`EdgeSpec` between ``a`` and ``b`` at this preset."""
        return EdgeSpec(
            a=a,
            b=b,
            latency_ns=self.latency_ns,
            gbps=self.gbps,
            header_overhead=self.header_overhead,
        )


#: Host <-> switch port: CXL 2.0 x16 class, one switch traversal.
HOST_EDGE = EdgePreset(latency_ns=70.0, gbps=504.0)
#: Switch <-> switch fabric hop: wider lanes, retimer + traversal.
FABRIC_EDGE = EdgePreset(latency_ns=90.0, gbps=800.0)
#: ToR uplink into the NIC-side fabric: the rack's fat pipe.
TOR_EDGE = EdgePreset(latency_ns=60.0, gbps=1600.0)


def _hosts(names: List[str]) -> List[NodeSpec]:
    return [NodeSpec(name=name, kind="host") for name in names]


def single_switch(
    n_hosts: int,
    name: str = "",
    host_edge: EdgePreset = HOST_EDGE,
) -> TopologySpec:
    """``n_hosts`` CC-NIC hosts hanging off one ToR-resident switch.

    The single switch *is* the top-of-rack node: every host is one hop
    from the load balancer, which makes this the canonical rack shape
    for the sharded KV scenarios.
    """
    if n_hosts < 1:
        raise ConfigError("single_switch: n_hosts must be >= 1")
    hosts = [f"h{i}" for i in range(n_hosts)]
    return TopologySpec(
        name=name or f"rack{n_hosts}",
        nodes=tuple(_hosts(hosts) + [NodeSpec(name="tor0", kind="tor")]),
        edges=tuple(host_edge.edge(host, "tor0") for host in hosts),
        description=f"{n_hosts} hosts on one ToR-resident coherent switch",
    ).validate()


def _grid(
    x: int,
    y: int,
    wrap: bool,
    name: str,
    host_edge: EdgePreset,
    fabric_edge: EdgePreset,
    tor_edge: EdgePreset,
    description: str,
) -> TopologySpec:
    """Common body of :func:`mesh` and :func:`torus`."""
    if x < 1 or y < 1:
        raise ConfigError("mesh/torus dimensions must be >= 1")
    nodes: List[NodeSpec] = []
    edges: List[EdgeSpec] = []
    for j in range(y):
        for i in range(x):
            nodes.append(NodeSpec(name=f"h{i}_{j}", kind="host"))
    for j in range(y):
        for i in range(x):
            nodes.append(NodeSpec(name=f"s{i}_{j}", kind="switch"))
            edges.append(host_edge.edge(f"h{i}_{j}", f"s{i}_{j}"))
    seen = set()

    def connect(ai: int, aj: int, bi: int, bj: int) -> None:
        pair = tuple(sorted((f"s{ai}_{aj}", f"s{bi}_{bj}")))
        if pair[0] == pair[1] or pair in seen:
            return  # wraparound collapses onto an existing edge (dim <= 2)
        seen.add(pair)
        edges.append(fabric_edge.edge(f"s{ai}_{aj}", f"s{bi}_{bj}"))

    for j in range(y):
        for i in range(x):
            if i + 1 < x:
                connect(i, j, i + 1, j)
            elif wrap:
                connect(i, j, 0, j)
            if j + 1 < y:
                connect(i, j, i, j + 1)
            elif wrap:
                connect(i, j, i, 0)
    nodes.append(NodeSpec(name="tor0", kind="tor"))
    edges.append(tor_edge.edge("s0_0", "tor0"))
    return TopologySpec(
        name=name,
        nodes=tuple(nodes),
        edges=tuple(edges),
        description=description,
    ).validate()


def mesh(
    x: int,
    y: int,
    name: str = "",
    host_edge: EdgePreset = HOST_EDGE,
    fabric_edge: EdgePreset = FABRIC_EDGE,
    tor_edge: EdgePreset = TOR_EDGE,
) -> TopologySpec:
    """An ``x`` by ``y`` switch mesh, one host per switch, ToR at (0,0)."""
    return _grid(
        x, y, wrap=False,
        name=name or f"mesh_{x}x{y}",
        host_edge=host_edge, fabric_edge=fabric_edge, tor_edge=tor_edge,
        description=f"{x}x{y} coherent-switch mesh, one host per switch",
    )


def torus(
    x: int,
    y: int,
    name: str = "",
    host_edge: EdgePreset = HOST_EDGE,
    fabric_edge: EdgePreset = FABRIC_EDGE,
    tor_edge: EdgePreset = TOR_EDGE,
) -> TopologySpec:
    """A mesh with wraparound rows/columns (shorter worst-case paths)."""
    return _grid(
        x, y, wrap=True,
        name=name or f"torus_{x}x{y}",
        host_edge=host_edge, fabric_edge=fabric_edge, tor_edge=tor_edge,
        description=f"{x}x{y} coherent-switch torus, one host per switch",
    )


def fat_tree(
    k: int,
    name: str = "",
    host_edge: EdgePreset = HOST_EDGE,
    fabric_edge: EdgePreset = FABRIC_EDGE,
    tor_edge: EdgePreset = TOR_EDGE,
) -> TopologySpec:
    """A standard k-ary fat tree (k pods, k^3/4 hosts), ToR on core 0.

    Pod ``p`` has ``k/2`` edge switches (``p<p>e<i>``) and ``k/2``
    aggregation switches (``p<p>a<i>``); ``(k/2)^2`` core switches
    (``c<i>``) join the pods. Each edge switch serves ``k/2`` hosts.
    The ToR — where external rack traffic enters — hangs off core 0.
    """
    if k < 2 or k % 2:
        raise ConfigError(f"fat_tree: k must be even and >= 2, got {k}")
    half = k // 2
    nodes: List[NodeSpec] = []
    edges: List[EdgeSpec] = []
    for p in range(k):
        for e in range(half):
            for h in range(half):
                nodes.append(NodeSpec(name=f"p{p}e{e}h{h}", kind="host"))
    for p in range(k):
        for e in range(half):
            nodes.append(NodeSpec(name=f"p{p}e{e}", kind="switch"))
            for h in range(half):
                edges.append(host_edge.edge(f"p{p}e{e}h{h}", f"p{p}e{e}"))
        for a in range(half):
            nodes.append(NodeSpec(name=f"p{p}a{a}", kind="switch"))
            for e in range(half):
                edges.append(fabric_edge.edge(f"p{p}e{e}", f"p{p}a{a}"))
    for c in range(half * half):
        nodes.append(NodeSpec(name=f"c{c}", kind="switch"))
        # Core c connects to aggregation switch c // half of every pod.
        for p in range(k):
            edges.append(fabric_edge.edge(f"p{p}a{c // half}", f"c{c}"))
    nodes.append(NodeSpec(name="tor0", kind="tor"))
    edges.append(tor_edge.edge("c0", "tor0"))
    return TopologySpec(
        name=name or f"fat_tree_{k}",
        nodes=tuple(nodes),
        edges=tuple(edges),
        description=f"k={k} fat tree ({k * half * half} hosts), ToR on core 0",
    ).validate()
