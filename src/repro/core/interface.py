"""The CC-NIC interface object: pool + queue pairs + NIC agents.

This is the top-level object applications construct. It owns the shared
buffer pool, creates one queue pair per application thread, and spawns
one NIC-side agent process per pair when started.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.agent import NicQueueAgent
from repro.core.config import CcnicConfig
from repro.core.driver import CcnicDriver
from repro.core.pool import BufferPool
from repro.core.ring import CoherentQueue
from repro.errors import NicError
from repro.obs.instrument import Instrumented, Observability
from repro.platform.system import System


@dataclass
class QueuePair:
    """TX/RX descriptor rings (plus bookkeeping rings) for one thread."""

    tx: CoherentQueue
    rx: CoherentQueue
    tx_comp: Optional[CoherentQueue] = None
    rx_post: Optional[CoherentQueue] = None
    rx_posted: int = 0
    agent: Optional[NicQueueAgent] = field(default=None, repr=False)


class CcnicInterface(Instrumented):
    """A CC-NIC device instance on a simulated system.

    Args:
        system: The simulated two-socket server.
        config: Feature flags and sizing (defaults: fully optimized).
        seed: Seed for the pool's non-sequential fill order.
    """

    #: Optional :class:`repro.faults.FaultInjector` consulted by the
    #: NIC agents for stall/reset events. Class-level None: fault-free.
    faults = None

    def __init__(self, system: System, config: Optional[CcnicConfig] = None, seed: int = 0) -> None:
        self.system = system
        self.config = config or CcnicConfig()
        self.pool = BufferPool(system, self.config, seed=seed)
        self._pairs: Dict[int, QueuePair] = {}
        self._started = False

    # ------------------------------------------------------------------
    def pair(self, index: int) -> QueuePair:
        """Get or lazily create queue pair ``index``."""
        existing = self._pairs.get(index)
        if existing is not None:
            return existing
        if self._started:
            raise NicError("cannot add queue pairs after start()")
        config = self.config
        host = self.system.HOST_SOCKET
        nic = self.system.nic_socket
        tx_home = host if config.writer_homed_rings else nic
        rx_home = nic if config.writer_homed_rings else host
        pair = QueuePair(
            tx=CoherentQueue(
                self.system,
                f"txq{index}",
                layout=config.desc_layout,
                inline_signals=config.inline_signals,
                slots=config.ring_slots,
                home_socket=tx_home,
            ),
            rx=CoherentQueue(
                self.system,
                f"rxq{index}",
                layout=config.desc_layout,
                inline_signals=config.inline_signals,
                slots=config.ring_slots,
                home_socket=rx_home,
            ),
        )
        if not config.nic_buffer_mgmt:
            pair.tx_comp = CoherentQueue(
                self.system,
                f"txcomp{index}",
                layout=config.desc_layout,
                inline_signals=True,
                slots=config.ring_slots,
                home_socket=rx_home,
            )
            pair.rx_post = CoherentQueue(
                self.system,
                f"rxpost{index}",
                layout=config.desc_layout,
                inline_signals=True,
                slots=config.ring_slots,
                home_socket=tx_home,
            )
        self._pairs[index] = pair
        return pair

    def driver(self, index: int, host_agent=None) -> CcnicDriver:
        """Create the host-side driver for queue pair ``index``."""
        if host_agent is None:
            host_agent = self.system.new_host_core(f"host-q{index}")
        return CcnicDriver(self, index, host_agent)

    def start(self) -> None:
        """Spawn one NIC agent process per queue pair."""
        if self._started:
            raise NicError("interface already started")
        self._started = True
        for index, pair in sorted(self._pairs.items()):
            agent = NicQueueAgent(self, index)
            pair.agent = agent
            self.system.sim.spawn(agent.run(), name=f"ccnic-agent-q{index}")

    @property
    def queue_count(self) -> int:
        return len(self._pairs)

    @property
    def link(self):
        """The interconnect host-NIC traffic crosses (UPI)."""
        return self.system.link

    # ------------------------------------------------------------------
    def _obs_component(self) -> str:
        return "ccnic"

    def _register_metrics(self, registry) -> None:
        registry.gauge(self.obs_name, "queue_count", fn=lambda: float(self.queue_count))

    def _instrument_children(self, obs: Observability) -> None:
        self.pool.instrument(obs)
        for _index, pair in sorted(self._pairs.items()):
            for queue in (pair.tx, pair.rx, pair.tx_comp, pair.rx_post):
                if queue is not None:
                    queue.instrument(obs)
            if pair.agent is not None:
                pair.agent.instrument(obs)

    def __repr__(self) -> str:
        return f"<CcnicInterface queues={len(self._pairs)} {self.config.desc_layout.value}>"
