"""The shared packet-buffer pool with CC-NIC's allocation optimizations.

The pool owns one host-homed region of MTU-sized (4KB) buffers. Three of
the paper's design features live here:

* **Shared management** (§3.4): both host and NIC agents allocate and
  free directly; the pool's index lines are coherent shared memory, so
  every spill to the shared structure costs modelled accesses (and
  produces the contention the paper measures when sharing is disabled).
* **Recycling stacks** (§3.3): per-side LIFO stacks of recently freed
  buffers. A buffer freed by the NIC after TX was just read by the NIC
  (HitM pulled it into the NIC cache), so reusing it for an RX write
  hits cache instead of invalidating a remote copy. Symmetrically for
  the host with RX buffers reused for TX.
* **Small-buffer subdivision** (§3.3): 4KB buffers split into 32x128B
  buffers for small packets, shrinking the interface's cache footprint.
* **Non-sequential fill** (§3.3): the initial free list is shuffled so
  consecutive allocations do not touch adjacent lines, defeating the
  remote prefetcher's contention with producer writes.

Disabling a feature reverts to PCIe-like behaviour: FIFO reuse through
the shared structure (maximally cache-cold), one 4KB buffer per packet,
host-only management.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Sequence

from repro.coherence.cache import CacheAgent
from repro.core.buffers import Buffer
from repro.core.config import CcnicConfig
from repro.errors import PoolError
from repro.obs.instrument import Instrumented
from repro.platform.system import System
from repro.sim.rng import make_rng
from repro.sim.stats import Counter


class BufferPool(Instrumented):
    """Shared pool of packet buffers over a simulated memory region."""

    #: Cycles of core work per buffer handled in an alloc/free batch.
    CYCLES_PER_BUF = 8
    #: Cycles for the local recycling-stack fast path, per buffer.
    CYCLES_STACK = 4

    #: Optional :class:`repro.check.sanitizer.Sanitizer`. Class-level
    #: ``None`` keeps detached runs at one attribute load per call.
    sanitizer = None

    def __init__(self, system: System, config: CcnicConfig, seed: int = 0) -> None:
        self.system = system
        self.config = config
        self.region = system.alloc_host(
            "pool", config.pool_buffers * config.buf_size
        )
        # Shared metadata: a free-list ring of 8B buffer pointers plus a
        # head/tail index line. Touched only on the shared (slow) path.
        self.meta = system.alloc_host("pool_meta", 64 + config.pool_buffers * 8)
        self._index_addr = self.meta.base
        self._entries_base = self.meta.base + 64
        self._head = 0  # shared-ring cursor for cost modelling

        buffers = [
            Buffer(addr=self.region.base + i * config.buf_size, capacity=config.buf_size)
            for i in range(config.pool_buffers)
        ]
        if config.nonseq_alloc:
            make_rng(seed, "pool-fill").shuffle(buffers)
        self._shared: Deque[Buffer] = deque(buffers)
        self._shared_small: Deque[Buffer] = deque()
        # Per-side recycling stacks, keyed by agent name.
        self._stacks: Dict[str, List[Buffer]] = {}
        self._small_stacks: Dict[str, List[Buffer]] = {}
        self.stats = Counter()
        # Hot-path counter cells, refetched when the bag is reset (its
        # epoch changes); see _cells_live().
        self._cells_epoch = -1
        self._refresh_cells()
        # Per-buffer work charges, precomputed (cycles() is pure).
        self._cycles_buf = system.cycles(self.CYCLES_PER_BUF)
        self._cycles_stack = system.cycles(self.CYCLES_STACK)

    # ------------------------------------------------------------------
    # Hot-path counter cells
    # ------------------------------------------------------------------
    def _refresh_cells(self) -> None:
        stats = self.stats
        self._c_alloc_ops = stats.cell("alloc_ops")
        self._c_alloc_bufs = stats.cell("alloc_bufs")
        self._c_free_ops = stats.cell("free_ops")
        self._c_free_bufs = stats.cell("free_bufs")
        self._c_stack_alloc = stats.cell("stack_alloc")
        self._c_stack_free = stats.cell("stack_free")
        self._c_shared_alloc = stats.cell("shared_alloc")
        self._c_shared_free = stats.cell("shared_free")
        self._cells_epoch = stats.epoch

    def _cells_live(self) -> None:
        """Revalidate cached cells after a Counter.reset() (epoch bump)."""
        if self.stats.epoch != self._cells_epoch:
            self._refresh_cells()

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def _obs_component(self) -> str:
        return "pool"

    def _register_metrics(self, registry) -> None:
        registry.adopt_counters(self.obs_name, self.stats)
        registry.gauge(
            self.obs_name, "free_full_buffers", fn=lambda: float(len(self._shared))
        )
        registry.gauge(
            self.obs_name,
            "free_small_buffers",
            fn=lambda: float(len(self._shared_small)),
        )

    # ------------------------------------------------------------------
    # Public API (Fig 5 semantics: costs returned, never raised mid-op)
    # ------------------------------------------------------------------
    def alloc(
        self,
        agent: CacheAgent,
        sizes: Sequence[int],
    ) -> tuple:
        """Allocate one buffer per requested payload size.

        Small sizes get 128B subdivided buffers when the feature is on.
        Returns ``(buffers, ns)``; fewer buffers than requested indicates
        pool exhaustion (mirroring DPDK's partial alloc semantics).
        """
        config = self.config
        out: List[Buffer] = []
        ns = 0.0
        if self.stats.epoch != self._cells_epoch:
            self._refresh_cells()
        recycling = config.buf_recycling
        small_on = config.small_buffers
        small_threshold = config.small_threshold
        stacks = self._stacks
        small_stacks = self._small_stacks
        name = agent.name
        cycles_stack = self._cycles_stack
        c_stack_alloc = self._c_stack_alloc
        for size in sizes:
            if size <= 0:
                raise PoolError(f"cannot allocate for payload of {size}B")
            want_small = small_on and size <= small_threshold
            # Recycling-stack hit inlined (the steady-state path);
            # anything else goes through _alloc_one.
            buf = None
            if recycling:
                stack = (small_stacks if want_small else stacks).get(name)
                if stack:
                    c_stack_alloc[0] += 1.0
                    buf = stack.pop()
                    ns += cycles_stack
            if buf is None:
                buf, cost = self._alloc_one(agent, want_small)
                ns += cost
                if buf is None:
                    break
            buf._allocated = True
            buf.data_len = 0
            buf.seg_next = None
            out.append(buf)
        self._c_alloc_ops[0] += 1.0
        self._c_alloc_bufs[0] += len(out)
        san = self.sanitizer
        if san is not None and out:
            san.pool_alloc(self, agent, out)
        return out, ns

    def free(self, agent: CacheAgent, bufs: Sequence[Buffer]) -> float:
        """Return buffers to the pool; returns the ns cost."""
        ns = 0.0
        if self.stats.epoch != self._cells_epoch:
            self._refresh_cells()
        recycling = self.config.buf_recycling
        recycle_max = self.config.recycle_stack_max
        stacks = self._stacks
        small_stacks = self._small_stacks
        name = agent.name
        cycles_stack = self._cycles_stack
        c_stack_free = self._c_stack_free
        san = self.sanitizer
        for buf in bufs:
            if san is not None:
                # Before the state flip, so double frees are recorded
                # even though the pool then raises.
                san.pool_free(self, agent, buf)
            if not buf._allocated:
                raise PoolError(f"double free of buffer {buf.buf_id}")
            buf._allocated = False
            buf.seg_next = None
            # Recycling-stack push inlined (the steady-state path);
            # stack-full and non-recycling frees go through _free_one.
            if recycling:
                table = small_stacks if buf.small else stacks
                stack = table.get(name)
                if stack is None:
                    stack = table[name] = []
                if len(stack) < recycle_max:
                    stack.append(buf)
                    c_stack_free[0] += 1.0
                    ns += cycles_stack
                    continue
            ns += self._free_one(agent, buf)
        self._c_free_ops[0] += 1.0
        self._c_free_bufs[0] += len(bufs)
        return ns

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _stack_for(self, agent: CacheAgent, small: bool) -> List[Buffer]:
        table = self._small_stacks if small else self._stacks
        stack = table.get(agent.name)
        if stack is None:
            stack = table[agent.name] = []
        return stack

    def _alloc_one(self, agent: CacheAgent, want_small: bool) -> tuple:
        config = self.config
        cycles = self._cycles_buf
        if config.buf_recycling:
            stack = self._stack_for(agent, want_small)
            if stack:
                self._c_stack_alloc[0] += 1.0
                return stack.pop(), self._cycles_stack
        if want_small:
            if self._shared_small:
                return self._shared_small.popleft(), cycles + self._shared_access(
                    agent, 1, write=False
                )
            parent, cost = self._alloc_one(agent, want_small=False)
            if parent is None:
                return None, cost
            smalls = self._subdivide(parent)
            keep = smalls.pop()
            if config.buf_recycling:
                self._stack_for(agent, small=True).extend(smalls)
            else:
                self._shared_small.extend(smalls)
            self.stats.add("subdivisions")
            return keep, cost + cycles
        if not self._shared:
            self.stats.add("exhausted")
            return None, cycles
        self._c_shared_alloc[0] += 1.0
        buf = self._shared.popleft()
        return buf, cycles + self._shared_access(agent, 1, write=False)

    def _free_one(self, agent: CacheAgent, buf: Buffer) -> float:
        config = self.config
        if config.buf_recycling:
            stack = self._stack_for(agent, buf.small)
            if len(stack) < config.recycle_stack_max:
                stack.append(buf)
                self._c_stack_free[0] += 1.0
                return self._cycles_stack
        target = self._shared_small if buf.small else self._shared
        target.append(buf)
        self._c_shared_free[0] += 1.0
        return self._cycles_buf + self._shared_access(agent, 1, write=True)

    def _subdivide(self, parent: Buffer) -> List[Buffer]:
        """Split a 4KB buffer into 128B small buffers."""
        config = self.config
        count = config.buf_size // config.small_buf_size
        return [
            Buffer(
                addr=parent.addr + i * config.small_buf_size,
                capacity=config.small_buf_size,
                small=True,
            )
            for i in range(count)
        ]

    def _shared_access(self, agent: CacheAgent, count: int, write: bool) -> float:
        """Model touching the shared free-list: index line + entries."""
        fabric = self.system.fabric
        ns = fabric.write(agent, self._index_addr, 8)  # atomic cursor update
        entries = self._entries_base + (self._head % self.config.pool_buffers) * 8
        span = min(count * 8, self.config.pool_buffers * 8 - (self._head % self.config.pool_buffers) * 8)
        ns += fabric.access(agent, entries, max(8, span), write=write)
        self._head += count
        return ns

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stack_depth(self, agent: CacheAgent, small: bool = False) -> int:
        """Current recycling-stack depth for an agent."""
        table = self._small_stacks if small else self._stacks
        return len(table.get(agent.name, ()))

    @property
    def free_full_buffers(self) -> int:
        """Full-size buffers available on the shared list."""
        return len(self._shared)

    def __repr__(self) -> str:
        return (
            f"<BufferPool {self.config.pool_buffers}x{self.config.buf_size}B "
            f"shared={len(self._shared)} smalls={len(self._shared_small)}>"
        )
