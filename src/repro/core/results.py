"""Typed result objects for the data-plane burst API.

The driver methods historically returned bare tuples (``(bufs, ns)``,
``(sent, ns)``, ``(entries, ns)``), which made call sites positional and
easy to mis-unpack. These frozen dataclasses name the fields — every
result carries ``count`` and ``ns``, plus the payload (``bufs`` or
``entries``) where one exists.

Backward compatibility: each class still tuple-unpacks exactly like the
old return value (``sent, ns = driver.tx_burst(...)``) via ``__iter__``.
That path is deprecated and now emits a one-shot
:class:`DeprecationWarning` per result class — once per process, not per
burst, so a hot loop that still unpacks warns exactly once instead of
drowning the run. New code should use the named attributes.

These objects are constructed on every burst call, including the empty
polls that dominate a latency-bound run, so they are kept deliberately
lean: two fields, ``count`` derived lazily, and the payload sequence
stored as passed (drivers hand over a fresh list they never reuse).
"""

from __future__ import annotations

import sys
import warnings
from dataclasses import dataclass
from typing import Any, Iterator, Sequence, Set, Tuple

from repro.core.buffers import Buffer

#: Result classes that already warned about tuple unpacking (one-shot).
_WARNED_CLASSES: Set[str] = set()


def _warn_tuple_unpack(cls_name: str) -> None:
    """Emit the tuple-unpack DeprecationWarning once per result class."""
    if cls_name in _WARNED_CLASSES:
        return
    _WARNED_CLASSES.add(cls_name)
    warnings.warn(
        f"tuple-unpacking {cls_name} is deprecated; use the named "
        f"attributes instead (e.g. result.count, result.ns)",
        DeprecationWarning,
        stacklevel=3,
    )


def reset_tuple_unpack_warnings() -> None:
    """Re-arm the one-shot unpack warnings (for tests)."""
    _WARNED_CLASSES.clear()

# slots=True (3.10+) makes construction and attribute reads measurably
# cheaper; on 3.9 the classes simply carry an instance dict instead.
_DATACLASS_KW = {"frozen": True}
if sys.version_info >= (3, 10):
    _DATACLASS_KW["slots"] = True


@dataclass(**_DATACLASS_KW)
class AllocResult:
    """Outcome of a buffer allocation.

    ``count`` may be smaller than the number of requested sizes: pool
    exhaustion yields a partial allocation (DPDK mempool semantics),
    never an exception.
    """

    bufs: Sequence[Buffer]
    ns: float

    @property
    def count(self) -> int:
        return len(self.bufs)

    def __bool__(self) -> bool:
        return len(self.bufs) > 0

    def __iter__(self) -> Iterator[Any]:
        """Deprecated tuple-unpack compatibility: ``bufs, ns = ...``."""
        _warn_tuple_unpack("AllocResult")
        yield list(self.bufs)
        yield self.ns


@dataclass(**_DATACLASS_KW)
class TxResult:
    """Outcome of a TX burst: packets accepted onto the ring."""

    count: int
    ns: float

    def __bool__(self) -> bool:
        return self.count > 0

    def __iter__(self) -> Iterator[Any]:
        """Deprecated tuple-unpack compatibility: ``sent, ns = ...``."""
        _warn_tuple_unpack("TxResult")
        yield self.count
        yield self.ns


@dataclass(**_DATACLASS_KW)
class RxResult:
    """Outcome of an RX poll: ``entries`` is (packet, buffer) pairs."""

    entries: Sequence[Tuple[Any, Buffer]]
    ns: float

    @property
    def count(self) -> int:
        return len(self.entries)

    def __bool__(self) -> bool:
        return len(self.entries) > 0

    def __iter__(self) -> Iterator[Any]:
        """Deprecated tuple-unpack compatibility: ``entries, ns = ...``."""
        _warn_tuple_unpack("RxResult")
        yield list(self.entries)
        yield self.ns
