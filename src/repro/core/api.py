"""Functional data-plane API mirroring the paper's Figure 5.

The C interface::

    int  ccnic_buf_alloc(struct ccnic_pool *pool, struct ccnic_buf **bufs, unsigned count);
    void ccnic_buf_free(struct ccnic_pool *pool, struct ccnic_buf **bufs, unsigned count);
    int  ccnic_tx_burst(int txq_index, struct ccnic_buf **bufs, unsigned count);
    int  ccnic_rx_burst(int rxq_index, struct ccnic_buf **bufs, unsigned count);

maps to these functions. The C ``count`` argument is implied here by
``len(sizes)`` (buf_alloc) or the entry list length (tx_burst), so it is
not a separate parameter. Because this is a simulation, each call also
returns the nanoseconds of host-core time it cost (the ``ns`` field of
the result); simulation processes yield that value.

Semantics match DPDK mempool/ethdev burst APIs: partial success returns
a smaller count — an exhausted pool or a full ring is an expected
outcome, never an exception. (Submitting a malformed buffer, e.g. one
without a payload, is a programming error and does raise.)

Results are typed (:class:`~repro.core.results.AllocResult`,
:class:`~repro.core.results.TxResult`,
:class:`~repro.core.results.RxResult`); the old tuple unpacking still
works but is deprecated.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.coherence.cache import CacheAgent
from repro.core.buffers import Buffer
from repro.core.driver import CcnicDriver
from repro.core.pool import BufferPool
from repro.core.results import AllocResult, RxResult, TxResult
from repro.workloads.packets import Packet


def buf_alloc(
    pool: BufferPool,
    agent: CacheAgent,
    sizes: Sequence[int],
) -> AllocResult:
    """Allocate one buffer per payload size.

    An exhausted pool yields fewer buffers than requested
    (``result.count < len(sizes)``); it never raises.
    """
    bufs, ns = pool.alloc(agent, sizes)
    return AllocResult(bufs, ns)


def buf_free(pool: BufferPool, agent: CacheAgent, bufs: Sequence[Buffer]) -> float:
    """Return buffers to the pool."""
    return pool.free(agent, bufs)


def tx_burst(
    driver: CcnicDriver,
    entries: Sequence[Tuple[Buffer, Packet]],
) -> TxResult:
    """Submit a burst of (buffer, packet) pairs on the driver's TX queue."""
    return driver.tx_burst(entries)


def rx_burst(
    driver: CcnicDriver,
    count: int,
) -> RxResult:
    """Receive up to ``count`` packets from the driver's RX queue."""
    return driver.rx_burst(count)
