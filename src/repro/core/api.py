"""Functional data-plane API mirroring the paper's Figure 5.

The C interface::

    int  ccnic_buf_alloc(struct ccnic_pool *pool, struct ccnic_buf **bufs, unsigned count);
    void ccnic_buf_free(struct ccnic_pool *pool, struct ccnic_buf **bufs, unsigned count);
    int  ccnic_tx_burst(int txq_index, struct ccnic_buf **bufs, unsigned count);
    int  ccnic_rx_burst(int rxq_index, struct ccnic_buf **bufs, unsigned count);

maps to these functions. Because this is a simulation, each call also
returns the nanoseconds of host-core time it cost; simulation processes
yield that value. Semantics match DPDK mempool/ethdev burst APIs:
partial success returns a count, never raises.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.coherence.cache import CacheAgent
from repro.core.buffers import Buffer
from repro.core.driver import CcnicDriver
from repro.core.pool import BufferPool
from repro.workloads.packets import Packet


def buf_alloc(
    pool: BufferPool,
    agent: CacheAgent,
    count: int,
    sizes: Sequence[int],
) -> Tuple[List[Buffer], float]:
    """Allocate up to ``count`` buffers sized for the given payloads."""
    if len(sizes) != count:
        raise ValueError(f"expected {count} sizes, got {len(sizes)}")
    return pool.alloc(agent, sizes)


def buf_free(pool: BufferPool, agent: CacheAgent, bufs: Sequence[Buffer]) -> float:
    """Return buffers to the pool."""
    return pool.free(agent, bufs)


def tx_burst(
    driver: CcnicDriver,
    entries: Sequence[Tuple[Buffer, Packet]],
) -> Tuple[int, float]:
    """Submit a burst of (buffer, packet) pairs on the driver's TX queue."""
    return driver.tx_burst(entries)


def rx_burst(
    driver: CcnicDriver,
    count: int,
) -> Tuple[List[Tuple[Packet, Buffer]], float]:
    """Receive up to ``count`` packets from the driver's RX queue."""
    return driver.rx_burst(count)
