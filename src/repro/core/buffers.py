"""Packet buffer handles.

A :class:`Buffer` is a handle to a chunk of pool memory. Buffers never
hold payload bytes — only addresses and capacities; payload *accesses*
are what the coherence model charges for.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import PoolError

_buffer_ids = itertools.count()


@dataclass
class Buffer:
    """A packet buffer carved out of the shared pool.

    Attributes:
        addr: Byte address of the payload start (cache-line aligned for
            full buffers; small buffers are 128B-aligned).
        capacity: Usable payload bytes.
        small: True for subdivided 128B small buffers.
        data_len: Length of the payload currently written (set on TX
            submit and on RX delivery).
        seg_next: Optional chained segment for multi-segment TX
            (the KV store's zero-copy gets use header + payload chains).
        external: True for segments that reference application memory
            (DPDK extbuf-style zero-copy); they are not pool-managed and
            are never freed to the pool.
    """

    addr: int
    capacity: int
    small: bool = False
    data_len: int = 0
    external: bool = False
    buf_id: int = field(default_factory=lambda: next(_buffer_ids))
    seg_next: Optional["Buffer"] = None
    _allocated: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise PoolError(f"buffer capacity must be positive, got {self.capacity}")
        if self.addr < 0:
            raise PoolError(f"buffer address must be non-negative, got {self.addr}")

    def set_payload(self, length: int) -> None:
        """Record the written payload length (must fit the buffer)."""
        if length <= 0 or length > self.capacity:
            raise PoolError(
                f"payload of {length}B does not fit buffer of {self.capacity}B"
            )
        self.data_len = length

    def chain(self, other: "Buffer") -> "Buffer":
        """Append a segment for multi-segment TX; returns self."""
        self.seg_next = other
        return self

    def segments(self):
        """Iterate this buffer and any chained segments."""
        node: Optional[Buffer] = self
        while node is not None:
            yield node
            node = node.seg_next

    @property
    def total_len(self) -> int:
        """Payload length across all chained segments."""
        if self.seg_next is None:
            return self.data_len
        return sum(seg.data_len for seg in self.segments())
