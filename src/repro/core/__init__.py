"""CC-NIC: the paper's cache-coherence-optimized host-NIC interface.

The public data-plane API mirrors the paper's Figure 5 (DPDK mempool /
ethdev semantics)::

    from repro.core import CcnicInterface, CcnicConfig
    from repro.core.api import buf_alloc, buf_free, tx_burst, rx_burst

    nic = CcnicInterface(system, CcnicConfig())
    nic.start()
    bufs, ns = buf_alloc(nic.pool, host_agent, count=4, sizes=[64] * 4)
    sent, ns = tx_burst(nic, 0, bufs)
    pkts, ns = rx_burst(nic, 0, 32)

Every operation returns the nanoseconds it cost the calling core, which
driver processes yield to the simulator.
"""

from repro.core.buffers import Buffer
from repro.core.config import CcnicConfig, DescLayout
from repro.core.interface import CcnicInterface
from repro.core.pool import BufferPool

__all__ = ["Buffer", "BufferPool", "CcnicConfig", "CcnicInterface", "DescLayout"]
