"""CC-NIC: the paper's cache-coherence-optimized host-NIC interface.

The public data-plane API mirrors the paper's Figure 5 (DPDK mempool /
ethdev semantics)::

    from repro.core import CcnicInterface, CcnicConfig
    from repro.core.api import buf_alloc, buf_free, tx_burst, rx_burst

    nic = CcnicInterface(system, CcnicConfig())
    driver = nic.driver(0)
    nic.start()
    alloc = buf_alloc(nic.pool, driver.agent, sizes=[64] * 4)
    tx = tx_burst(driver, [(buf, pkt) for buf in alloc.bufs])
    rx = rx_burst(driver, 32)

Every operation returns a typed result (:class:`~repro.core.results.AllocResult`,
:class:`~repro.core.results.TxResult`, :class:`~repro.core.results.RxResult`)
carrying both the payload and the nanoseconds the call cost the calling
core, which driver processes yield to the simulator.
"""

from repro.core.buffers import Buffer
from repro.core.config import CcnicConfig, DescLayout
from repro.core.interface import CcnicInterface
from repro.core.nic import NicDriver, NicInterface
from repro.core.pool import BufferPool
from repro.core.results import (
    AllocResult,
    RxResult,
    TxResult,
    reset_tuple_unpack_warnings,
)

__all__ = [
    "AllocResult",
    "Buffer",
    "BufferPool",
    "CcnicConfig",
    "CcnicInterface",
    "DescLayout",
    "NicDriver",
    "NicInterface",
    "RxResult",
    "TxResult",
    "reset_tuple_unpack_warnings",
]
