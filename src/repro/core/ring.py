"""Descriptor rings over coherent memory.

A :class:`CoherentQueue` is one producer-consumer descriptor ring plus
its signaling mechanism. It is used four ways:

* CC-NIC TX (host produces, NIC consumes; host-homed ring),
* CC-NIC RX (NIC produces, host consumes; NIC-homed ring),
* the unoptimized-UPI baseline's TX/RX rings (E810 layout: packed 16B
  descriptors, separate head/tail register lines, host-homed).

All timing comes from coherence-fabric accesses issued on behalf of the
calling agent; the ring itself stores only logical contents. The layouts
and signaling modes reproduce the paper's Fig 14:

* **OPT** (inline signals): groups of up to four 16B descriptors share a
  cache line with one inlined signal. Partial groups are zero-padded and
  the consumer skips the blanks (the paper's blank-skip rule), so every
  line is written exactly once by the producer, read once and cleared
  once by the consumer.
* **PACK** (inline signals): 16B descriptors individually signalled;
  producer and consumer interleave on the same line and it thrashes.
* **PAD** (inline signals): one descriptor per line; no thrash, but 4x
  the metadata footprint and no per-line batching amortization.
* **Register signaling** (any layout): descriptors carry no signal; the
  producer publishes a tail register line, the consumer polls it and
  publishes a head register after consuming. Two extra shared lines,
  each bouncing between the sockets (Fig 6a).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.coherence.cache import CacheAgent
from repro.core.config import DescLayout
from repro.errors import NicError
from repro.obs.instrument import Instrumented
from repro.platform.system import System

#: Sentinel marking zero-padded slots under the blank-skip rule.
_SKIPPED = object()

#: Descriptor size in bytes (8B address + 8B packed metadata, §2.1).
DESC_BYTES = 16

#: Descriptors per cache line for the grouped layout.
GROUP = 4


@dataclass(slots=True)
class WorkItem:
    """One descriptor's logical content.

    ``visible_at`` is stamped by the producer: the virtual time at which
    the descriptor's store has actually retired (the producer yields its
    accumulated cost *after* calling produce, so consumers must not see
    the item earlier).
    """

    buf: Any          # Buffer (or head of a segment chain for multi-seg TX)
    length: int       # payload bytes
    pkt: Any          # opaque packet handle carried through the queue
    seq: int = 0
    visible_at: float = 0.0
    trace: Any = None  # flight-recorder packet id riding the descriptor


# Overlap accounting for independent line operations in one call: the
# first operation pays full latency; subsequent independent line
# operations issued back-to-back by the same core overlap in its fill
# buffers and pay ``cost / mlp`` (mirroring
# :meth:`~repro.coherence.fabric.CoherenceFabric.access_burst`). The
# producer/consumer loops below track this with two locals (``first``,
# ``mlp``) rather than a meter object — produce/poll run once per
# simulated burst, so the allocation showed up in profiles.


class CoherentQueue(Instrumented):
    """One descriptor ring between a producer and a consumer agent."""

    #: Cycles of core work to build or parse one descriptor.
    CYCLES_PER_DESC = 12

    #: Optional :class:`repro.check.sanitizer.Sanitizer`. Class-level
    #: ``None`` keeps detached runs at one attribute load per call.
    sanitizer = None

    def __init__(
        self,
        system: System,
        name: str,
        layout: DescLayout,
        inline_signals: bool,
        slots: int,
        home_socket: int,
        reg_home_socket: Optional[int] = None,
    ) -> None:
        if slots < GROUP or slots % GROUP:
            raise NicError(f"queue {name!r}: slots must be a multiple of {GROUP}")
        self.system = system
        self.name = name
        self.layout = layout
        self.inline_signals = inline_signals
        self.n_slots = slots
        bytes_per_slot = 64 if layout is DescLayout.PAD else DESC_BYTES
        self.region = system.alloc_on(f"{name}_ring", slots * bytes_per_slot, home_socket)
        self._bytes_per_slot = bytes_per_slot
        reg_home = home_socket if reg_home_socket is None else reg_home_socket
        if inline_signals:
            self.tail_reg = None
            self.head_reg = None
        else:
            self.tail_reg = system.alloc_on(f"{name}_tailreg", 64, reg_home)
            self.head_reg = system.alloc_on(f"{name}_headreg", 64, reg_home)
        self._slots: List[Optional[Any]] = [None] * slots
        self.tail = 0           # producer position (monotonic slot count)
        self.head = 0           # consumer position (monotonic slot count)
        self.tail_value = 0     # register-mode published tail
        self.head_value = 0     # register-mode published head
        self._producer_head_cache = 0  # producer's last-read head register
        self._tail_visible_at = 0.0    # when the published tail retires
        self.produced = 0
        self.consumed = 0
        # Hot-path constants: cycles() is pure in its argument, so the
        # per-descriptor charges are precomputed. The grouped table holds
        # cycles(CYCLES_PER_DESC * k) exactly as produce() charges a
        # k-descriptor group (NOT k * cycles(CYCLES_PER_DESC), which can
        # differ in floating point).
        self._cycles_desc = system.cycles(self.CYCLES_PER_DESC)
        self._cycles_group = tuple(
            system.cycles(self.CYCLES_PER_DESC * k) for k in range(GROUP + 1)
        )
        # The signalling protocol is fixed at construction, so the poll
        # strategy binds once instead of re-dispatching per call.
        self._grouped = inline_signals and layout is DescLayout.OPT
        self._poll_impl = (
            self._poll_grouped if self._grouped
            else self._poll_per_descriptor if inline_signals
            else self._poll_register
        )

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def _obs_component(self) -> str:
        return f"queue.{self.name}"

    def _register_metrics(self, registry) -> None:
        registry.gauge(self.obs_name, "produced", fn=lambda: float(self.produced))
        registry.gauge(self.obs_name, "consumed", fn=lambda: float(self.consumed))
        registry.gauge(self.obs_name, "depth", fn=lambda: float(self.tail - self.head))

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------
    def slot_addr(self, index: int) -> int:
        """Byte address of slot ``index`` (indices are monotonic)."""
        return self.region.base + (index % self.n_slots) * self._bytes_per_slot

    def line_addr(self, index: int) -> int:
        """Cache-line base address containing slot ``index``."""
        addr = self.slot_addr(index)
        return addr - (addr % 64)

    def space(self) -> int:
        """Free slots from the producer's perspective."""
        if self.inline_signals:
            return self.n_slots - (self.tail - self.head)
        return self.n_slots - (self.tail - self._producer_head_cache)

    @property
    def grouped(self) -> bool:
        """True when the OPT grouped-line protocol applies."""
        return self._grouped

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def produce(
        self,
        agent: CacheAgent,
        items: List[WorkItem],
        base_ns: float = 0.0,
        bounds: Optional[List[int]] = None,
    ) -> Tuple[int, float]:
        """Write descriptors for ``items``; returns (accepted, ns).

        ``base_ns`` is time the producer has already accumulated in the
        current simulation step before calling produce; item visibility
        is stamped relative to it so earlier work (payload writes,
        allocation) delays when consumers can observe the descriptors.

        ``bounds`` marks atomic packet boundaries (item counts after
        each whole packet): a multi-segment packet's descriptors are
        either all accepted or none, never split across a full ring.
        """
        fabric = self.system.fabric
        ns = 0.0
        accepted = 0
        if not self.inline_signals and self.space() < len(items):
            # E810-style drivers refresh their cached head copy when the
            # ring looks full.
            ns += fabric.read(agent, self.head_reg.base, 8)
            self._producer_head_cache = self.head_value
        if bounds:
            limit = 0
            for bound in bounds:
                if bound <= self.space():
                    limit = bound
            items = items[:limit]
        remaining = list(items)
        mlp = fabric.mlp
        first = True
        now = self.system.sim.now
        san = self.sanitizer
        if self._grouped:
            # Invariant: tail is always group-aligned; each produce call
            # writes whole lines, zero-padding partial groups. Alignment
            # also means a group never wraps, so one modulo per group
            # suffices and the line address is computed inline.
            slots = self._slots
            n_slots = self.n_slots
            cycles_group = self._cycles_group
            region_base = self.region.base
            bps = self._bytes_per_slot
            while remaining and n_slots - (self.tail - self.head) >= GROUP:
                group = remaining[:GROUP]
                del remaining[: len(group)]
                base = self.tail
                i0 = base % n_slots
                for offset in range(GROUP):
                    value = group[offset] if offset < len(group) else _SKIPPED
                    slots[i0 + offset] = value
                self.tail = base + GROUP
                addr = region_base + i0 * bps
                cost = fabric.access(agent, addr - (addr % 64), 64, True)
                if first:
                    first = False
                    ns += cost
                else:
                    ns += cost / mlp
                ns += cycles_group[len(group)]
                visible = now + base_ns + ns
                for item in group:
                    item.visible_at = visible
                if san is not None:
                    san.group_publish(self, agent, base, group, visible)
                accepted += len(group)
        else:
            cycles_desc = self._cycles_desc
            while remaining and self.space() > 0:
                item = remaining.pop(0)
                self._slots[self.tail % self.n_slots] = item
                cost = fabric.write(agent, self.slot_addr(self.tail), self._bytes_per_slot)
                if first:
                    first = False
                    ns += cost
                else:
                    ns += cost / mlp
                ns += cycles_desc
                item.visible_at = now + base_ns + ns
                if san is not None:
                    san.slot_publish(self, agent, self.tail, item, item.visible_at)
                self.tail += 1
                accepted += 1
        if accepted and not self.inline_signals:
            self.tail_value = self.tail
            ns += fabric.write(agent, self.tail_reg.base, 8)
            self._tail_visible_at = self.system.sim.now + base_ns + ns
            if san is not None:
                san.signal_publish(self, agent, self.tail_value, self._tail_visible_at)
        self.produced += accepted
        return accepted, ns

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    def poll(self, agent: CacheAgent, max_items: int) -> Tuple[List[WorkItem], float]:
        """Consume up to ``max_items`` descriptors; returns (items, ns).

        An empty poll still pays for reading the signal (the next ring
        line for inlined signals, the tail register otherwise); repeated
        empty polls hit the consumer's own cache until the producer's
        next write invalidates the copy — the coherence protocol *is*
        the signal (§3.2). Grouped polls consume whole lines, so up to
        three extra descriptors beyond ``max_items`` may be returned;
        callers treat the group as the batching granule, as the paper
        does.
        """
        if max_items <= 0:
            raise NicError("max_items must be positive")
        items, ns = self._poll_impl(agent, max_items)
        self.consumed += len(items)
        return items, ns

    def _poll_register(self, agent: CacheAgent, max_items: int) -> Tuple[List[WorkItem], float]:
        fabric = self.system.fabric
        sim = self.system.sim
        ns = fabric.read(agent, self.tail_reg.base, 8)
        out: List[WorkItem] = []
        if sim.now < self._tail_visible_at:
            return out, ns  # the producer's tail store has not retired
        available = self.tail_value - self.head
        if available <= 0:
            return out, ns
        take = min(available, max_items)
        mlp = fabric.mlp
        first = True
        cycles_desc = self._cycles_desc
        san = self.sanitizer
        if san is not None:
            san.signal_observe(self, agent, "tail", sim.now)
        while len(out) < take:
            index = self.head % self.n_slots
            item = self._slots[index]
            if item is None:
                raise NicError(f"queue {self.name!r}: hole under the tail register")
            cost = fabric.read(agent, self.slot_addr(self.head), self._bytes_per_slot)
            if first:
                first = False
                ns += cost
            else:
                ns += cost / mlp
            ns += cycles_desc
            if san is not None:
                san.slot_consume(self, agent, self.head, item, sim.now, True)
            self._slots[index] = None
            out.append(item)
            self.head += 1
        self.head_value = self.head
        ns += fabric.write(agent, self.head_reg.base, 8)
        return out, ns

    def _poll_grouped(self, agent: CacheAgent, max_items: int) -> Tuple[List[WorkItem], float]:
        fabric = self.system.fabric
        ns = 0.0
        out: List[WorkItem] = []
        mlp = fabric.mlp
        first = True
        now = self.system.sim.now
        slots = self._slots
        n_slots = self.n_slots
        cycles_desc = self._cycles_desc
        region_base = self.region.base
        bps = self._bytes_per_slot
        append = out.append
        while len(out) < max_items:
            base = self.head  # group-aligned, so the group never wraps
            i0 = base % n_slots
            addr = region_base + i0 * bps
            line = addr - (addr % 64)
            cost = fabric.access(agent, line, 64, False)
            if first:
                first = False
                ns += cost
            else:
                ns += cost / mlp
            first_slot = slots[i0]
            if first_slot is None:
                break  # unproduced line: this read was the (cheap) signal poll
            # Slots only ever hold WorkItem, _SKIPPED, or None (handled
            # above), so a sentinel identity test replaces isinstance.
            if first_slot is not _SKIPPED and first_slot.visible_at > now:
                break  # written, but the store has not retired yet
            san = self.sanitizer
            if san is not None:
                san.signal_observe(self, agent, base, now)
            for index in (i0, i0 + 1, i0 + 2, i0 + 3):
                entry = slots[index]
                slots[index] = None
                if entry is not _SKIPPED and entry is not None:
                    if san is not None:
                        san.slot_consume(self, agent, base + index - i0, entry, now, True)
                    append(entry)
                    ns += cycles_desc
                elif san is not None:
                    san.slot_consume(
                        self, agent, base + index - i0, None, now, False,
                        blank=entry is _SKIPPED,
                    )
            # Clearing the line is the completion signal back to the
            # producer (Fig 6b): one write frees the group for reuse.
            cost = fabric.access(agent, line, 64, True)
            ns += cost / mlp
            self.head = base + GROUP
        return out, ns

    def _poll_per_descriptor(self, agent: CacheAgent, max_items: int) -> Tuple[List[WorkItem], float]:
        fabric = self.system.fabric
        ns = 0.0
        out: List[WorkItem] = []
        mlp = fabric.mlp
        first = True
        now = self.system.sim.now
        cycles_desc = self._cycles_desc
        san = self.sanitizer
        while len(out) < max_items:
            index = self.head % self.n_slots
            item = self._slots[index]
            cost = fabric.read(agent, self.slot_addr(self.head), self._bytes_per_slot)
            if first:
                first = False
                ns += cost
            else:
                ns += cost / mlp
            if item is None:
                break
            if item.visible_at > now:
                break
            cost = fabric.write(agent, self.slot_addr(self.head), self._bytes_per_slot)
            ns += cost / mlp
            ns += cycles_desc
            if san is not None:
                san.signal_observe(self, agent, self.head, now)
                san.slot_consume(self, agent, self.head, item, now, True)
            self._slots[index] = None
            out.append(item)
            self.head += 1
        return out, ns

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def reinitialize(self) -> List[WorkItem]:
        """Drop all unconsumed descriptors; return them for reclamation.

        Used by the driver watchdog after a NIC reset: in-flight
        descriptors are abandoned and their buffers must be freed by the
        caller. Positions advance to ``head = tail`` (rather than
        rewinding to zero) so the grouped layout's alignment invariant
        and the monotonic-position convention both survive.
        """
        abandoned: List[WorkItem] = []
        for index in range(self.head, self.tail):
            entry = self._slots[index % self.n_slots]
            if isinstance(entry, WorkItem):
                abandoned.append(entry)
        self._slots = [None] * self.n_slots
        self.head = self.tail
        self.head_value = self.head
        self.tail_value = self.tail
        self._producer_head_cache = self.head
        self._tail_visible_at = 0.0
        if self.sanitizer is not None:
            self.sanitizer.queue_reset(self)
        return abandoned

    def __repr__(self) -> str:
        return (
            f"<CoherentQueue {self.name!r} {self.layout.value} "
            f"inline={self.inline_signals} head={self.head} tail={self.tail}>"
        )
