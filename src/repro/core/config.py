"""CC-NIC configuration: the paper's design decisions as feature flags.

Each flag corresponds to a design feature evaluated in §5.4/§5.5; the
defaults are the fully-optimized CC-NIC. The ablation benchmarks flip
them one at a time:

* ``inline_signals`` — Fig 14a: ready flag inside the descriptor versus
  separate head/tail doorbell registers.
* ``desc_layout`` — Fig 14b: OPT (4x16B descriptors + one signal per
  cache line, blank-skip rule), PACK (16B descriptors packed with
  per-descriptor signals: thrash), PAD (one descriptor per line).
* ``buf_recycling`` — §3.3: reuse most-recently-freed TX buffers as RX
  buffers and vice versa via host-/NIC-local stacks.
* ``small_buffers`` — §3.3: subdivide 4KB MTU buffers into 32x128B
  buffers for small packets.
* ``nic_buffer_mgmt`` — §3.4: the NIC allocates RX buffers and frees TX
  buffers itself through the shared pool.
* ``nonseq_alloc`` — §3.3: fill the pool so repeated allocations do not
  return sequential addresses (defeats harmful remote prefetch).
* ``writer_homed_rings`` — §3.2: TX ring homed on the host socket, RX
  ring on the NIC socket.
* ``caching_stores`` — §3.3: write payloads with normal cacheable
  stores (cache-to-cache transfers) instead of non-temporal stores.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigError


class DescLayout(enum.Enum):
    """Descriptor ring memory layouts evaluated in Fig 14b."""

    OPT = "opt"    # 4 descriptors + 1 signal per cache line (CC-NIC)
    PACK = "pack"  # 4 packed descriptors, per-descriptor signals (E810-like)
    PAD = "pad"    # 1 descriptor padded to a full cache line

    @property
    def descs_per_line(self) -> int:
        return 1 if self is DescLayout.PAD else 4


@dataclass(frozen=True)
class CcnicConfig:
    """Feature flags and sizing for a CC-NIC interface instance."""

    inline_signals: bool = True
    desc_layout: DescLayout = DescLayout.OPT
    buf_recycling: bool = True
    small_buffers: bool = True
    nic_buffer_mgmt: bool = True
    nonseq_alloc: bool = True
    writer_homed_rings: bool = True
    caching_stores: bool = True

    ring_slots: int = 512
    pool_buffers: int = 2048
    buf_size: int = 4096
    small_buf_size: int = 128
    small_threshold: int = 128    # packets at or below this use small buffers
    tx_batch: int = 32
    rx_batch: int = 32
    wire_delay_ns: float = 20.0   # NIC-internal loopback turnaround
    recycle_stack_max: int = 256  # per-side recycling stack depth

    def __post_init__(self) -> None:
        if self.ring_slots < 4 or self.ring_slots % 4:
            raise ConfigError("ring_slots must be a positive multiple of 4")
        if self.pool_buffers <= 0:
            raise ConfigError("pool_buffers must be positive")
        if self.buf_size < 64 or self.buf_size % 64:
            raise ConfigError("buf_size must be a positive multiple of 64")
        if self.small_buf_size <= 0 or self.buf_size % self.small_buf_size:
            raise ConfigError("small_buf_size must divide buf_size")
        if self.tx_batch <= 0 or self.rx_batch <= 0:
            raise ConfigError("batch sizes must be positive")
        if self.wire_delay_ns < 0:
            raise ConfigError("wire_delay_ns must be non-negative")
        if self.small_threshold > self.small_buf_size:
            raise ConfigError("small_threshold cannot exceed small_buf_size")
