"""Host-side CC-NIC driver.

One :class:`CcnicDriver` serves one application thread with a private
TX/RX queue pair (the paper's per-thread queue configuration). All
methods return the nanoseconds of host-core time they cost; application
processes yield those to the simulator.

With ``nic_buffer_mgmt`` disabled (Fig 15's final ablation step), the
driver also performs PCIe-style bookkeeping: it posts blank RX buffers
to the NIC through an extra ring and reaps TX completions to free
buffers — the "extra bookkeeping passes over the queues" of §3.4.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.coherence.cache import CacheAgent
from repro.core.buffers import Buffer
from repro.core.recovery import RecoverableDriver
from repro.core.results import AllocResult, RxResult, TxResult
from repro.core.ring import WorkItem
from repro.errors import NicError
from repro.obs.instrument import Instrumented
from repro.workloads.packets import Packet

#: Marker on continuation descriptors of multi-segment TX packets.
CONTINUATION = "cont"


class CcnicDriver(RecoverableDriver, Instrumented):
    """Host-side API for one queue pair of a :class:`CcnicInterface`."""

    #: Optional :class:`repro.obs.flight.FlightRecorder`; class-level
    #: None so detached bursts pay one attribute test per burst.
    flight = None

    #: Optional :class:`repro.check.sanitizer.Sanitizer`; same
    #: zero-cost-detached idiom as :attr:`flight`.
    sanitizer = None

    def __init__(self, interface, queue_index: int, host_agent: CacheAgent) -> None:
        self.interface = interface
        self.queue_index = queue_index
        self.agent = host_agent
        self.pair = interface.pair(queue_index)
        self._seq = 0
        self.tx_packets = 0
        self.rx_packets = 0
        self.tx_ns = 0.0
        self.rx_ns = 0.0
        self._init_recovery_state()
        self._agent_losses_taken = 0

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def _obs_component(self) -> str:
        return f"driver.q{self.queue_index}"

    def _register_metrics(self, registry) -> None:
        registry.gauge(self.obs_name, "tx_packets", fn=lambda: float(self.tx_packets))
        registry.gauge(self.obs_name, "rx_packets", fn=lambda: float(self.rx_packets))
        registry.gauge(self.obs_name, "tx_ns", fn=lambda: self.tx_ns)
        registry.gauge(self.obs_name, "rx_ns", fn=lambda: self.rx_ns)
        self._register_recovery_metrics(registry)

    # ------------------------------------------------------------------
    # Buffers and payloads
    # ------------------------------------------------------------------
    def alloc(self, sizes: Sequence[int]) -> AllocResult:
        """Allocate one buffer per payload size (partial on exhaustion)."""
        bufs, ns = self.interface.pool.alloc(self.agent, sizes)
        return AllocResult(bufs, ns)

    def free(self, bufs: Sequence[Buffer]) -> float:
        """Return buffers to the pool."""
        return self.interface.pool.free(self.agent, bufs)

    def write_payload(self, buf: Buffer, size: int) -> float:
        """Write ``size`` payload bytes into ``buf`` (full payload access).

        Uses cacheable stores by default (cache-to-cache transfer path);
        with ``caching_stores`` disabled, uses non-temporal stores that
        bypass the cache (the Fig 9 comparison case).
        """
        buf.set_payload(size)
        san = self.sanitizer
        if san is not None:
            san.buf_access(self.agent, buf, write=True)
        fabric = self.interface.system.fabric
        if self.interface.config.caching_stores:
            return fabric.write(self.agent, buf.addr, size)
        return fabric.nt_store(self.agent, buf.addr, size)

    def read_payload(self, buf: Buffer) -> float:
        """Read a received buffer's full payload."""
        return self.read_payloads([buf])

    def read_payloads(self, bufs: Sequence[Buffer]) -> float:
        """Read a burst of received payloads.

        The reads are independent, so they overlap in the core's fill
        buffers (charged via the fabric's burst-access model).
        """
        san = self.sanitizer
        if san is not None:
            for buf in bufs:
                san.buf_access(self.agent, buf, write=False)
        fabric = self.interface.system.fabric
        spans = [
            (seg.addr, seg.data_len)
            for buf in bufs
            for seg in buf.segments()
            if seg.data_len
        ]
        if not spans:
            return 0.0
        return fabric.access_burst(self.agent, spans, write=False)

    def write_payloads(self, sized: Sequence[Tuple[Buffer, int]]) -> float:
        """Write a burst of TX payloads (overlapped independent stores)."""
        fabric = self.interface.system.fabric
        san = self.sanitizer
        spans = []
        for buf, size in sized:
            buf.set_payload(size)
            if san is not None:
                san.buf_access(self.agent, buf, write=True)
            spans.append((buf.addr, size))
        if not spans:
            return 0.0
        if self.interface.config.caching_stores:
            return fabric.access_burst(self.agent, spans, write=True)
        return sum(fabric.nt_store(self.agent, addr, size) for addr, size in spans)

    # ------------------------------------------------------------------
    # TX / RX
    # ------------------------------------------------------------------
    def tx_burst(
        self,
        entries: Sequence[Tuple[Buffer, Packet]],
        base_ns: float = 0.0,
    ) -> TxResult:
        """Submit packets for transmission.

        Args:
            entries: (buffer, packet) pairs; each buffer's ``data_len``
                must be set (via :meth:`write_payload`). Multi-segment
                buffers occupy one extra descriptor slot per extra
                segment, as the paper notes for zero-copy KV gets.
            base_ns: Time already accumulated by the caller this step;
                descriptor visibility is delayed by it.

        Returns:
            :class:`TxResult`; packets beyond ring capacity are not
            submitted and their descriptors are untouched.
        """
        tracer = span = None
        if self.obs_enabled:
            tracer = self.obs.tracer
            if tracer.enabled:
                span = tracer.begin(
                    "tx_burst",
                    actor=self.agent.name,
                    category="driver",
                    start_ns=self.interface.system.sim.now + base_ns,
                    packets=len(entries),
                )
        items: List[WorkItem] = []
        bounds: List[int] = []  # item count after each whole packet
        for buf, pkt in entries:
            if buf.data_len <= 0:
                raise NicError(f"buffer {buf.buf_id} submitted without payload")
            self._seq += 1
            items.append(WorkItem(buf=buf, length=buf.total_len, pkt=pkt, seq=self._seq))
            seg = buf.seg_next  # single-segment packets skip the chain walk
            while seg is not None:
                items.append(WorkItem(buf=buf, length=0, pkt=CONTINUATION, seq=self._seq))
                seg = seg.seg_next
            bounds.append(len(items))
        accepted_items, ns = self.pair.tx.produce(
            self.agent, items, base_ns=base_ns, bounds=bounds
        )
        accepted_packets = 0
        for bound in bounds:
            if bound <= accepted_items:
                accepted_packets += 1
        self.tx_packets += accepted_packets
        self.tx_ns += ns
        flight = self.flight
        if flight is not None and accepted_items:
            # Ride the trace id on each accepted packet's head descriptor
            # so the NIC agent can attribute its fetch. Stamping after
            # produce() is safe: consumers gate on visible_at, which is
            # strictly in this step's future.
            prev = 0
            for (_buf, pkt), bound in zip(entries, bounds):
                if bound > accepted_items:
                    break
                head = items[prev]
                prev = bound
                pid = getattr(pkt, "pkt_id", None)
                if pid is None or not flight.want(pid):
                    continue
                submit_ns = getattr(pkt, "tx_ns", 0.0) or (
                    self.interface.system.sim.now + base_ns
                )
                if flight.packet_begin(pid, submit_ns):
                    head.trace = pid
                    flight.packet_event(pid, "desc_write", head.visible_at)
        if span is not None:
            span.args["accepted"] = accepted_packets
            tracer.end(span, self.interface.system.sim.now + base_ns + ns)
        return TxResult(accepted_packets, ns)

    def rx_burst(self, max_packets: int) -> RxResult:
        """Poll the RX ring for up to ``max_packets`` received packets."""
        tracer = span = None
        if self.obs_enabled:
            tracer = self.obs.tracer
            if tracer.enabled:
                span = tracer.begin(
                    "rx_burst",
                    actor=self.agent.name,
                    category="driver",
                    start_ns=self.interface.system.sim.now,
                )
        items, ns = self.pair.rx.poll(self.agent, max_packets)
        out = [(item.pkt, item.buf) for item in items if item.pkt is not CONTINUATION]
        self.rx_packets += len(out)
        self.rx_ns += ns
        flight = self.flight
        if flight is not None and items:
            reap_ns = self.interface.system.sim.now + ns
            for item in items:
                if item.trace is not None:
                    flight.packet_event(item.trace, "host_reap", reap_ns)
        if span is not None:
            span.args["received"] = len(out)
            tracer.end(span, self.interface.system.sim.now + ns)
        return RxResult(out, ns)

    # ------------------------------------------------------------------
    # Recovery (inert until configure_recovery is called)
    # ------------------------------------------------------------------
    def watchdog(self) -> float:
        """Reset the queue pair if the TX ring has stopped making progress.

        Called from the application's housekeeping pass; returns the ns
        the check (and any reset) cost. A wedged NIC leaves descriptors
        parked with the consumed count frozen — exactly what
        :class:`RingWatchdog` watches for.
        """
        if self._watchdog is None:
            return 0.0
        sim = self.interface.system.sim
        tx = self.pair.tx
        if not self._watchdog.stalled(sim.now, tx.tail - tx.head, tx.consumed):
            return 0.0
        ns = self._reset_rings()
        self._watchdog.reset(sim.now)
        return ns

    def _reset_rings(self) -> float:
        """Reinitialize every ring of the pair and revive the NIC agent.

        Abandoned descriptors are reclaimed: their buffers (including
        blanks the device had fetched) go back to the pool, and every
        abandoned data packet is counted so the application can write
        the loss off against its in-flight window.
        """
        pair = self.pair
        lost_packets = 0
        to_free: List[Buffer] = []
        for queue in (pair.tx, pair.rx, pair.tx_comp, pair.rx_post):
            if queue is None:
                continue
            for item in queue.reinitialize():
                if item.pkt is not None and item.pkt is not CONTINUATION:
                    lost_packets += 1
                if item.buf is not None:
                    to_free.append(item.buf)
        pair.rx_posted = 0
        if pair.agent is not None:
            to_free.extend(pair.agent.reinit())
        ns = self._free_abandoned(to_free)
        self.watchdog_resets += 1
        self.reset_dropped += lost_packets
        self._reset_losses += lost_packets
        return ns

    def take_reset_losses(self) -> int:
        """Packets lost to NIC resets since the last call.

        Covers descriptors abandoned during ring reinitialization and
        packets the device dropped from the wire while wedged; the
        traffic generator writes these off so its closed-loop window
        refills instead of deadlocking.
        """
        lost = self._reset_losses
        self._reset_losses = 0
        agent = self.pair.agent
        if agent is not None:
            lost += agent.lost_packets - self._agent_losses_taken
            self._agent_losses_taken = agent.lost_packets
        return lost

    # ------------------------------------------------------------------
    # PCIe-style bookkeeping (only when shared management is disabled)
    # ------------------------------------------------------------------
    def housekeeping(self, post_target: int = 64) -> float:
        """Reap TX completions and post blank RX buffers.

        A no-op under CC-NIC's shared buffer management; the traffic
        generator calls it each loop iteration so ablations change cost,
        not control flow.
        """
        if self.interface.config.nic_buffer_mgmt:
            return 0.0
        ns = 0.0
        # Reap TX completions: the NIC cannot free, so it passes used
        # buffers back and the host returns them to the pool.
        done, poll_ns = self.pair.tx_comp.poll(self.agent, post_target)
        ns += poll_ns
        if done:
            ns += self.free([item.buf for item in done])
        # Post blank RX buffers up to the target.
        deficit = post_target - self.pair.rx_posted
        if deficit > 0:
            blank = self.alloc([self.interface.config.buf_size] * deficit)
            ns += blank.ns
            if blank.bufs:
                items = [WorkItem(buf=b, length=0, pkt=None) for b in blank.bufs]
                accepted, produce_ns = self.pair.rx_post.produce(
                    self.agent, items, base_ns=ns
                )
                ns += produce_ns
                self.pair.rx_posted += accepted
                if accepted < blank.count:
                    ns += self.free(list(blank.bufs[accepted:]))
        return ns
