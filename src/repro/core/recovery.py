"""Recovery policy shared by both driver families.

The paper's data plane has no recovery story — coherent memory never
loses a descriptor. Under injected faults it needs one, and the shape is
the classic NIC driver triad:

* **bounded retry with exponential backoff** — a full ring is normally
  transient backpressure; the driver retries submission with a doubling
  backoff and gives up (raising
  :class:`~repro.errors.RingTimeoutError`) once the budget is spent, at
  which point the application sheds the packets instead of crashing.
* **ring watchdog** — a wedged NIC leaves descriptors in the ring with
  the consumer cursor frozen. The watchdog detects "non-empty ring, no
  consumption progress for ``watchdog_ns``" and triggers a full queue
  reinitialization (abandoned descriptors reclaimed, device unwedged).
* **in-flight write-off** — packets that were on the wire during a
  reset are gone; the traffic generator writes them off as lost after
  ``inflight_timeout_ns`` so closed-loop windows refill.

All knobs live in one frozen :class:`RecoveryPolicy` so experiments can
sweep them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.buffers import Buffer
from repro.core.results import TxResult
from repro.errors import FaultError, RingTimeoutError
from repro.workloads.packets import Packet


@dataclass(frozen=True)
class RecoveryPolicy:
    """Tunable recovery budgets (all times in simulated ns)."""

    #: First retry backoff after a zero-accept submission.
    backoff_base_ns: float = 500.0
    #: Backoff ceiling for the exponential doubling.
    backoff_cap_ns: float = 20_000.0
    #: Consecutive zero-accept submissions before RingTimeoutError.
    max_retries: int = 10
    #: No-progress interval after which the watchdog resets a queue.
    watchdog_ns: float = 60_000.0
    #: Age after which the generator writes off an in-flight packet.
    inflight_timeout_ns: float = 120_000.0

    def __post_init__(self) -> None:
        if self.backoff_base_ns <= 0:
            raise FaultError("backoff_base_ns must be positive")
        if self.backoff_cap_ns < self.backoff_base_ns:
            raise FaultError("backoff_cap_ns must be >= backoff_base_ns")
        if self.max_retries < 1:
            raise FaultError("max_retries must be >= 1")
        if self.watchdog_ns <= 0:
            raise FaultError("watchdog_ns must be positive")
        if self.inflight_timeout_ns <= 0:
            raise FaultError("inflight_timeout_ns must be positive")

    def backoff_ns(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based), capped."""
        if attempt < 1:
            raise FaultError(f"attempt must be >= 1, got {attempt}")
        return min(self.backoff_cap_ns, self.backoff_base_ns * (2.0 ** (attempt - 1)))


class RingWatchdog:
    """Detects a stalled descriptor ring by watching consumption progress.

    The driver feeds it ``(now, depth, consumed)`` each housekeeping
    pass; it reports a stall when the ring has stayed non-empty with an
    unchanged consumed count for at least ``policy.watchdog_ns``.
    """

    def __init__(self, policy: RecoveryPolicy) -> None:
        self.policy = policy
        self._last_consumed = -1
        self._stalled_since: float = -1.0

    def stalled(self, now: float, depth: int, consumed: int) -> bool:
        """Update progress state; True when the stall budget is exhausted."""
        if depth <= 0 or consumed != self._last_consumed:
            self._last_consumed = consumed
            self._stalled_since = now
            return False
        if self._stalled_since < 0:
            self._stalled_since = now
            return False
        return now - self._stalled_since >= self.policy.watchdog_ns

    def reset(self, now: float) -> None:
        """Restart the stall clock (called after a recovery action)."""
        self._last_consumed = -1
        self._stalled_since = now


class RecoverableDriver:
    """Mixin giving a driver family the shared recovery machinery.

    Provides :meth:`configure_recovery` and the bounded-backoff
    :meth:`tx_submit`; subclasses supply ``tx_burst``/``free`` (the
    common burst API) plus their own ``watchdog`` / ring-reset logic,
    which is where the two families genuinely differ.
    """

    def _init_recovery_state(self) -> None:
        """Initialize recovery bookkeeping (call from ``__init__``)."""
        self.recovery: Optional[RecoveryPolicy] = None
        self._watchdog: Optional[RingWatchdog] = None
        self._tx_zero_accepts = 0
        self.tx_retries = 0
        self.tx_timeouts = 0
        self.watchdog_resets = 0
        self.reset_dropped = 0
        self._reset_losses = 0

    def _register_recovery_metrics(self, registry) -> None:
        registry.gauge(self.obs_name, "tx_retries", fn=lambda: float(self.tx_retries))
        registry.gauge(self.obs_name, "tx_timeouts", fn=lambda: float(self.tx_timeouts))
        registry.gauge(
            self.obs_name, "watchdog_resets", fn=lambda: float(self.watchdog_resets)
        )
        registry.gauge(
            self.obs_name, "reset_dropped", fn=lambda: float(self.reset_dropped)
        )

    def configure_recovery(self, policy: RecoveryPolicy) -> None:
        """Enable timeout/retry/watchdog handling with ``policy``'s budgets."""
        self.recovery = policy
        self._watchdog = RingWatchdog(policy)
        self._tx_zero_accepts = 0

    def tx_submit(
        self,
        entries: Sequence[Tuple[Buffer, Packet]],
        base_ns: float = 0.0,
    ) -> TxResult:
        """``tx_burst`` with bounded exponential-backoff retry.

        A zero-accept submission (full ring) is charged an exponential
        backoff, folded into the returned ``ns`` so the caller's next
        yield spans it — in a discrete-event loop the retry *must*
        happen on a later step, or the consumer never gets a chance to
        drain the ring. After ``max_retries`` consecutive zero-accepts
        the ring is declared dead and :class:`RingTimeoutError` is
        raised; the caller sheds the burst instead of spinning forever.
        """
        if self.recovery is None:
            return self.tx_burst(entries, base_ns=base_ns)
        tx = self.tx_burst(entries, base_ns=base_ns)
        if tx.count or not entries:
            self._tx_zero_accepts = 0
            return tx
        self._tx_zero_accepts += 1
        if self._tx_zero_accepts > self.recovery.max_retries:
            self._tx_zero_accepts = 0
            self.tx_timeouts += 1
            raise RingTimeoutError(
                f"queue {self.queue_index}: TX ring accepted nothing for "
                f"{self.recovery.max_retries} consecutive attempts"
            )
        self.tx_retries += 1
        backoff = self.recovery.backoff_ns(self._tx_zero_accepts)
        return TxResult(0, tx.ns + backoff)

    def _free_abandoned(self, bufs: Sequence[Buffer]) -> float:
        """Free reclaimed buffers exactly once each.

        Multi-segment packets appear once per descriptor, chains must be
        expanded, external (application-owned) segments are not pool
        memory, and a buffer may already have been freed through another
        path — so dedupe by identity and honor the allocation flag.
        """
        seen = set()
        unique: List[Buffer] = []
        for buf in bufs:
            for seg in buf.segments():
                if id(seg) in seen or seg.external or not seg._allocated:
                    continue
                seen.add(id(seg))
                unique.append(seg)
        if not unique:
            return 0.0
        return self.free(unique)
