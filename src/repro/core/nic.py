"""Structural typing for NIC interfaces and drivers.

Both :class:`~repro.core.interface.CcnicInterface` and
:class:`~repro.nicmodels.pcie_nic.PcieNicInterface` (and their drivers)
satisfy these protocols, which is what lets the traffic generator, the
application studies and :class:`~repro.analysis.loopback.LoopbackSetup`
stay interface-agnostic. The protocols are ``runtime_checkable`` so
tests can assert conformance with ``isinstance``.

These protocols deliberately omit the optional observation hooks
(``flight``, ``faults``, ``sanitizer`` class attributes on the concrete
types): ``runtime_checkable`` isinstance checks would then demand them
on every implementation, and the hooks are an attach-time concern of
:mod:`repro.analysis.profile` / :mod:`repro.analysis.checks`, not part
of the data-plane surface.
"""

from __future__ import annotations

from typing import Protocol, Sequence, Tuple, runtime_checkable

from repro.core.buffers import Buffer
from repro.core.results import AllocResult, RxResult, TxResult


@runtime_checkable
class NicDriver(Protocol):
    """Host-side burst API one application thread drives."""

    def alloc(self, sizes: Sequence[int]) -> AllocResult:
        """Allocate one buffer per payload size (partial on exhaustion)."""
        ...

    def free(self, bufs: Sequence[Buffer]) -> float:
        """Return buffers to the pool; returns the ns cost."""
        ...

    def write_payload(self, buf: Buffer, size: int) -> float:
        """Write ``size`` payload bytes into ``buf``."""
        ...

    def write_payloads(self, sized: Sequence[Tuple[Buffer, int]]) -> float:
        """Write a burst of TX payloads (overlapped stores)."""
        ...

    def read_payload(self, buf: Buffer) -> float:
        """Read one received payload."""
        ...

    def read_payloads(self, bufs: Sequence[Buffer]) -> float:
        """Read a burst of received payloads (overlapped loads)."""
        ...

    def tx_burst(self, entries, base_ns: float = 0.0) -> TxResult:
        """Submit (buffer, packet) pairs for transmission."""
        ...

    def rx_burst(self, max_packets: int) -> RxResult:
        """Poll for received packets."""
        ...

    def housekeeping(self) -> float:
        """Per-iteration driver bookkeeping (no-op where unneeded)."""
        ...


@runtime_checkable
class NicInterface(Protocol):
    """A NIC device instance: queue factory plus device-side engines."""

    def driver(self, index: int) -> NicDriver:
        """Create the host-side driver for queue ``index``."""
        ...

    def start(self) -> None:
        """Spawn the device-side engine processes."""
        ...

    @property
    def queue_count(self) -> int:
        """Number of queues created so far."""
        ...

    @property
    def link(self):
        """The interconnect host-NIC traffic crosses (UPI or PCIe)."""
        ...
