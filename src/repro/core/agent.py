"""The NIC-side agent: the device half of the CC-NIC interface.

One agent process serves one queue pair, emulating the paper's software
NIC (§4): it polls the TX ring for new descriptors, reads payloads over
the coherent interconnect, loops packets back through a small wire
delay, allocates RX buffers, writes received payloads, and produces RX
descriptors. With shared buffer management it frees TX buffers straight
into its recycling stack (so subsequent RX writes land in NIC-warm
lines); without it, it forwards completions to the host and consumes
pre-posted blank buffers, exactly like a PCIe NIC.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Tuple

from repro.coherence.cache import CacheAgent
from repro.core.buffers import Buffer
from repro.core.ring import WorkItem
from repro.obs.instrument import Instrumented
from repro.workloads.packets import Packet

#: Cycles of NIC-side packet processing per packet (header parse, DMA
#: engine bookkeeping of the modelled ASIC).
NIC_CYCLES_PER_PKT = 13

#: Idle poll gap when an iteration finds no work, in ns.
IDLE_GAP_NS = 12.0


class NicQueueAgent(Instrumented):
    """Device-side processing loop for one queue pair."""

    #: Optional :class:`repro.obs.flight.FlightRecorder`; class-level
    #: None so detached iterations pay one attribute test per batch.
    flight = None

    #: Optional :class:`repro.check.sanitizer.Sanitizer`; same
    #: zero-cost-detached idiom as :attr:`flight`.
    sanitizer = None

    def __init__(self, interface, queue_index: int) -> None:
        self.interface = interface
        self.queue_index = queue_index
        self.pair = interface.pair(queue_index)
        self.agent: CacheAgent = interface.system.new_nic_core(
            f"nic-q{queue_index}"
        )
        # Loopback by default; applications may set a transmit sink to
        # model real peers (the KV store's clients) and inject arrivals.
        self.on_transmit = None
        # Packets "on the wire": (arrival time, packet).
        self._wire: Deque[Tuple[float, Packet]] = deque()
        # Blank buffers consumed from the host's rx_post ring.
        self._blanks: Deque[Buffer] = deque()
        self.tx_packets = 0
        self.rx_packets = 0
        self.busy_ns = 0.0
        # Fault state: a reset wedges the device (it stops serving its
        # rings and drops arrivals) until the host driver's watchdog
        # calls reinit(). lost_packets counts wire drops from resets.
        self.wedged = False
        self.lost_packets = 0
        # Per-packet processing charge, precomputed (cycles() is pure).
        self._pkt_ns = interface.system.cycles(NIC_CYCLES_PER_PKT)

    # ------------------------------------------------------------------
    def _obs_component(self) -> str:
        return f"nic_agent.q{self.queue_index}"

    def _register_metrics(self, registry) -> None:
        registry.gauge(self.obs_name, "tx_packets", fn=lambda: float(self.tx_packets))
        registry.gauge(self.obs_name, "rx_packets", fn=lambda: float(self.rx_packets))
        registry.gauge(self.obs_name, "busy_ns", fn=lambda: self.busy_ns)
        registry.gauge(
            self.obs_name, "lost_packets", fn=lambda: float(self.lost_packets)
        )

    # ------------------------------------------------------------------
    def run(self):
        """Generator body for the simulator (the NIC polling loop)."""
        sim = self.interface.system.sim
        config = self.interface.config
        interface = self.interface
        # Hot-loop hoists over construction-time-stable state; faults is
        # re-read each iteration because injectors may attach mid-run.
        tx_poll = self.pair.tx.poll
        tx_batch = config.tx_batch
        agent = self.agent
        assemble = self._assemble
        take_arrived = self._take_arrived
        while True:
            faults = interface.faults
            if faults is not None:
                fault = faults.nic_decide(self.queue_index, sim.now)
                if fault is not None:
                    if fault.kind == "nic_reset":
                        self._device_reset()
                    yield fault.duration_ns
                    continue
                if self.wedged:
                    # Arrivals fall on the floor until the host watchdog
                    # reinitializes this queue.
                    self.lost_packets += len(self._take_arrived(sim.now))
                    yield IDLE_GAP_NS
                    continue
            busy = False
            ns = 0.0
            # --- TX: consume descriptors, read payloads, transmit.
            items, poll_ns = tx_poll(agent, tx_batch)
            ns += poll_ns
            flight = self.flight
            if flight is not None and items:
                # The coherence protocol is the signal: the poll that
                # returned these items observed the producer's
                # invalidation at sim.now and finished fetching the
                # descriptor lines poll_ns later.
                fetch_ns = sim.now + poll_ns
                for item in items:
                    if item.trace is not None:
                        flight.packet_event(item.trace, "signal_observed", sim.now)
                        flight.packet_event(item.trace, "nic_fetch", fetch_ns)
            packets = assemble(items)
            if packets:
                busy = True
                ns += self._transmit(packets, sim.now + ns)
            # --- RX: deliver packets that have finished the wire delay.
            arrived = take_arrived(sim.now + ns)
            if arrived:
                busy = True
                ns += self._receive(arrived, base_ns=ns)
            if busy:
                self.busy_ns += ns
            if ns:
                yield ns
            if not busy:
                yield IDLE_GAP_NS

    # ------------------------------------------------------------------
    # Fault handling
    # ------------------------------------------------------------------
    def _device_reset(self) -> None:
        """Lose all on-chip state: wire packets drop, the device wedges.

        Blank buffers the device had already fetched from the rx_post
        ring stay parked in ``_blanks`` — they are host pool memory, and
        :meth:`reinit` hands them back so the watchdog can free them.
        """
        self.wedged = True
        self.lost_packets += len(self._wire)
        self._wire.clear()

    def reinit(self) -> List[Buffer]:
        """Host-driven recovery: unwedge and surrender orphaned blanks."""
        self.wedged = False
        orphaned = list(self._blanks)
        self._blanks.clear()
        return orphaned

    # ------------------------------------------------------------------
    # TX path
    # ------------------------------------------------------------------
    def _assemble(self, items: List[WorkItem]) -> List[Tuple[Packet, Buffer]]:
        """Group continuation descriptors with their head descriptor."""
        from repro.core.driver import CONTINUATION

        packets = []
        for item in items:
            if item.pkt is CONTINUATION:
                continue  # payload handled via the head item's chain
            packets.append((item.pkt, item.buf))
        return packets

    def _transmit(self, packets: List[Tuple[Packet, Buffer]], now: float) -> float:
        """Read payloads, free TX buffers, place packets on the wire."""
        config = self.interface.config
        fabric = self.interface.system.fabric
        tracer = span = None
        if self.obs_enabled:
            tracer = self.obs.tracer
            if tracer.enabled:
                span = tracer.begin(
                    "nic_tx",
                    actor=self.agent.name,
                    category="nic",
                    start_ns=now,
                    packets=len(packets),
                )
        ns = 0.0
        to_free: List[Buffer] = []
        spans = []
        san = self.sanitizer
        for _pkt, buf in packets:
            if san is not None:
                san.buf_access(self.agent, buf, write=False)
            seg = buf
            while seg is not None:
                if seg.data_len:
                    spans.append((seg.addr, seg.data_len))
                seg = seg.seg_next
        ns += fabric.access_burst(self.agent, spans, write=False)
        flight = self.flight
        payload_ns = now + ns
        pkt_ns = self._pkt_ns
        for pkt, buf in packets:
            ns += pkt_ns
            seg = buf
            while seg is not None:
                if not seg.external:
                    to_free.append(seg)
                seg = seg.seg_next
            arrival = now + ns + config.wire_delay_ns
            if self.on_transmit is not None:
                self.on_transmit(pkt, arrival)
            else:
                self._wire.append((arrival, pkt))
            if flight is not None:
                pid = getattr(pkt, "pkt_id", None)
                if pid is not None and flight.tracked(pid):
                    flight.packet_event(pid, "payload_fetch", payload_ns)
                    flight.packet_event(pid, "wire", arrival)
            self.tx_packets += 1
        if config.nic_buffer_mgmt:
            ns += self.interface.pool.free(self.agent, to_free)
        else:
            comp_items = [WorkItem(buf=b, length=0, pkt=None) for b in to_free]
            _, comp_ns = self.pair.tx_comp.produce(self.agent, comp_items, base_ns=ns)
            ns += comp_ns
        if span is not None:
            tracer.end(span, now + ns)
        return ns

    # ------------------------------------------------------------------
    # RX path
    # ------------------------------------------------------------------
    def inject(self, pkt: Packet, when: float = 0.0) -> None:
        """Deliver an externally generated packet to this queue's RX path."""
        self._wire.append((when, pkt))

    def _take_arrived(self, now: float) -> List[Packet]:
        arrived = []
        while self._wire and self._wire[0][0] <= now:
            arrived.append(self._wire.popleft()[1])
        return arrived

    def _receive(self, packets: List[Packet], base_ns: float = 0.0) -> float:
        """Write received payloads and produce RX descriptors.

        Shared buffer management lets the NIC pick buffer sizes *after*
        seeing the burst (small buffers for small packets) — impossible
        for a PCIe NIC whose blanks were posted in advance (§3.4).
        """
        config = self.interface.config
        fabric = self.interface.system.fabric
        tracer = span = None
        if self.obs_enabled:
            tracer = self.obs.tracer
            if tracer.enabled:
                span = tracer.begin(
                    "nic_rx",
                    actor=self.agent.name,
                    category="nic",
                    start_ns=self.interface.system.sim.now + base_ns,
                    packets=len(packets),
                )
        ns = 0.0
        items: List[WorkItem] = []
        spans: List[Tuple[int, int]] = []
        san = self.sanitizer
        for position, pkt in enumerate(packets):
            buf, alloc_ns = self._rx_chain(pkt.size)
            ns += alloc_ns
            if buf is None:
                # No blanks posted: requeue this and all later packets.
                self._wire.extendleft(
                    (0.0, waiting) for waiting in reversed(packets[position:])
                )
                break
            if san is not None:
                san.buf_access(self.agent, buf, write=True)
            for seg in buf.segments():
                if config.caching_stores:
                    spans.append((seg.addr, seg.data_len))
                else:
                    ns += fabric.nt_store(self.agent, seg.addr, seg.data_len)
            ns += self._pkt_ns
            items.append(WorkItem(buf=buf, length=pkt.size, pkt=pkt))
        if spans:
            ns += fabric.access_burst(self.agent, spans, write=True)
        if items:
            accepted, produce_ns = self.pair.rx.produce(
                self.agent, items, base_ns=base_ns + ns
            )
            ns += produce_ns
            flight = self.flight
            if flight is not None:
                # Requeued items are re-received later and get recorded
                # on eventual acceptance, keeping the chain monotone.
                for item in items[:accepted]:
                    pid = getattr(item.pkt, "pkt_id", None)
                    if pid is not None and flight.tracked(pid):
                        item.trace = pid
                        flight.packet_event(pid, "compl_write", item.visible_at)
            # Ring backpressure: requeue anything not accepted.
            for item in items[accepted:]:
                self._wire.appendleft((0.0, item.pkt))
                self.interface.pool.free(self.agent, [item.buf])
            self.rx_packets += accepted
        if span is not None:
            tracer.end(span, self.interface.system.sim.now + base_ns + ns)
        return ns

    def _rx_chain(self, size: int):
        """Buffers for one received packet; jumbo frames chain segments."""
        config = self.interface.config
        if size <= config.buf_size:
            buf, ns = self._rx_buffer(size)
            if buf is not None:
                buf.set_payload(size)
            return buf, ns
        head = None
        prev = None
        ns = 0.0
        remaining = size
        acquired = []
        while remaining > 0:
            seg, seg_ns = self._rx_buffer(min(remaining, config.buf_size))
            ns += seg_ns
            if seg is None:
                # Cannot finish the chain: return what we took.
                ns += self.interface.pool.free(self.agent, acquired) if acquired else 0.0
                return None, ns
            seg.seg_next = None
            seg.set_payload(min(remaining, config.buf_size))
            acquired.append(seg)
            if head is None:
                head = seg
            else:
                prev.seg_next = seg
            prev = seg
            remaining -= seg.data_len
        return head, ns

    def _rx_buffer(self, size: int):
        """Allocate (shared mgmt) or dequeue a posted blank (host mgmt)."""
        config = self.interface.config
        if config.nic_buffer_mgmt:
            bufs, ns = self.interface.pool.alloc(self.agent, [size])
            return (bufs[0] if bufs else None), ns
        ns = 0.0
        if not self._blanks:
            blanks, poll_ns = self.pair.rx_post.poll(self.agent, config.rx_batch)
            ns += poll_ns
            for item in blanks:
                self._blanks.append(item.buf)
            self.pair.rx_posted -= len(blanks)
        if not self._blanks:
            return None, ns
        return self._blanks.popleft(), ns
