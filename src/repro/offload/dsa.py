"""On-chip bulk-copy engine (Intel DSA-style), the paper's §6 extension.

The Discussion suggests CPU-initiated bulk transfers through an on-chip
DMA engine (Data Streaming Accelerator) could raise efficiency for
large-packet workloads: the core submits a copy descriptor and keeps
working while the engine moves the data through the same coherent
fabric.

The model: a :class:`DsaEngine` is a fabric agent of its own. ``submit``
charges the core a small descriptor cost (an ENQCMD-style doorbell) and
returns a :class:`DsaCompletion`; the engine process performs the copy
(reads source lines, writes destination lines — all through the
coherence protocol, so invalidations and cache-state effects are
faithful) and flags the completion, which the core may poll.

Large CC-NIC payload writes can be routed through the engine via
``CcnicDriver.write_payloads_dsa``: profitable when payloads exceed a
few cache lines, because the copy leaves the core free — the paper's
"efficient hardware transfers could benefit large-packet workloads".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from repro.coherence.cache import CacheAgent
from repro.errors import ConfigError
from repro.platform.system import System

#: Core-side cost of submitting one descriptor (ENQCMD + fencing), ns.
SUBMIT_NS = 35.0

#: Engine fixed startup latency per descriptor, ns.
ENGINE_STARTUP_NS = 180.0

#: Engine internal processing rate, bytes/ns (on-chip copy bandwidth).
ENGINE_BYTES_PER_NS = 30.0

#: Idle poll gap of the engine loop, ns.
ENGINE_IDLE_NS = 40.0


@dataclass
class DsaCompletion:
    """Handle to one submitted copy; ``done`` flips when the copy lands."""

    src: int
    dst: int
    size: int
    submitted_ns: float
    done: bool = False
    finished_ns: Optional[float] = None

    @property
    def latency_ns(self) -> float:
        if self.finished_ns is None:
            raise ConfigError("copy has not completed")
        return self.finished_ns - self.submitted_ns


@dataclass
class _Work:
    completion: DsaCompletion
    ready_at: float = 0.0


class DsaEngine:
    """One socket's bulk-copy engine.

    Args:
        system: The simulated platform.
        socket: Socket whose engine this is (copies run through a
            caching agent on this socket).
        name: Diagnostic label.
    """

    def __init__(self, system: System, socket: int = 0, name: str = "dsa") -> None:
        self.system = system
        self.agent: CacheAgent = system.fabric.new_agent(
            f"{name}-s{socket}", socket=socket, capacity_lines=8192
        )
        self._queue: Deque[_Work] = deque()
        self._started = False
        self.copies = 0
        self.bytes_copied = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the engine process."""
        if self._started:
            raise ConfigError("engine already started")
        self._started = True
        self.system.sim.spawn(self._run(), name=f"{self.agent.name}-engine")

    def submit(self, src: int, dst: int, size: int) -> tuple:
        """Queue one copy; returns (completion, core-side ns).

        The core pays only the descriptor submission; the copy itself is
        performed asynchronously by the engine.
        """
        if size <= 0:
            raise ConfigError(f"copy size must be positive, got {size}")
        if not self._started:
            raise ConfigError("engine not started")
        completion = DsaCompletion(
            src=src, dst=dst, size=size, submitted_ns=self.system.sim.now
        )
        self._queue.append(_Work(completion=completion))
        return completion, SUBMIT_NS

    # ------------------------------------------------------------------
    def _run(self):
        sim = self.system.sim
        fabric = self.system.fabric
        while True:
            if not self._queue:
                yield ENGINE_IDLE_NS
                continue
            work = self._queue.popleft()
            comp = work.completion
            ns = ENGINE_STARTUP_NS
            # The engine reads the source and writes the destination
            # through the coherence fabric: ownership moves exactly as
            # it would for a hardware engine on the ring.
            ns += fabric.access(self.agent, comp.src, comp.size, write=False)
            ns += fabric.access(self.agent, comp.dst, comp.size, write=True)
            ns += comp.size / ENGINE_BYTES_PER_NS
            yield ns
            comp.done = True
            comp.finished_ns = sim.now
            self.copies += 1
            self.bytes_copied += comp.size

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Copies queued but not yet completed."""
        return len(self._queue)

    def __repr__(self) -> str:
        return f"<DsaEngine {self.agent.name} copies={self.copies}>"


def breakeven_bytes(system: System) -> int:
    """Approximate copy size above which offloading beats CPU stores.

    The core's alternative is a pipelined store stream at roughly
    ``store_buffer + line/mlp`` per line; the engine costs a fixed
    submission + startup. Below the breakeven, just store.
    """
    cost = system.cost
    per_line_cpu = cost.store_buffer + cost.local_dram / (
        system.spec.write_pipeline * system.spec.mlp
    )
    fixed = SUBMIT_NS
    lines = max(1, int(fixed / max(per_line_cpu, 0.1)))
    return lines * 64
