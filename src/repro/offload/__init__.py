"""Extension features from the paper's Discussion (§6): DMA offload."""

from repro.offload.dsa import DsaEngine, DsaCompletion

__all__ = ["DsaCompletion", "DsaEngine"]
