"""Command-line interface: ``python -m repro <command>``.

Commands mirror the measurement tooling used throughout the evaluation:

``loopback``
    Run a loopback measurement on one interface and print latency and
    throughput (closed-loop or offered-rate).
``microbench``
    Print the §2.2/§3.2 microbenchmark tables (Figs 2, 3, 7, 8).
``counters``
    Run a batched loopback and print per-packet coherence-transaction
    counts (Fig 17 style).
``kv`` / ``rpc``
    Run the application studies and print thread-count results.
``profile``
    Run an instrumented loopback with the cache-line flight recorder
    attached and print the per-packet critical-path waterfall plus the
    region-classified thrash tables.
``table1``
    Print the interconnect bandwidth comparison.
``faults``
    Run a fault-injection loopback (canned or file-supplied plan) and
    print the injection and recovery summary.
``timeline``
    Run a registered scenario sharded (or load an exported document)
    and render every windowed series as a sparkline table plus the
    watchdog findings. Run-shaped commands grow the same telemetry via
    ``--timeline-out``/``--timeline-interval``.
``check``
    Run the static determinism/protocol-hygiene linter over the source
    tree (``repro.check``). The runtime half of the suite attaches to
    loopback/kv/rpc runs via ``--sanitize`` / ``--sanitize strict``.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys
from typing import List, Optional

from repro.analysis import InterfaceKind, format_table
from repro.analysis.loopback import build_interface, run_point, wire_bytes_per_packet
from repro.core.recovery import RecoveryPolicy
from repro.errors import ConfigError, SanitizerError
from repro.faults import FAULT_KINDS, FaultInjector, FaultPlan
from repro.obs import (
    FlightRecorder,
    MetricRegistry,
    Observability,
    SpanTracer,
    export_chrome_trace,
    export_flight_json,
    export_metrics_csv,
    export_metrics_json,
    export_timeline_json,
    load_timeline_json,
)
from repro.obs.timeline import DEFAULT_INTERVAL_NS
from repro.analysis.microbench import (
    PINGPONG_CASES,
    access_latency_cases,
    mmio_read_latency,
    pingpong,
    wc_store_latency,
    wc_write_throughput,
)
from repro.platform import icx, spr, table1_rows
from repro.platform.presets import PlatformSpec


def _platform(name: str) -> PlatformSpec:
    if name == "icx":
        return icx()
    if name == "spr":
        return spr()
    raise SystemExit(f"unknown platform {name!r} (use icx or spr)")


def _kind(name: str) -> InterfaceKind:
    try:
        return InterfaceKind(name)
    except ValueError:
        choices = ", ".join(k.value for k in InterfaceKind)
        raise SystemExit(f"unknown interface {name!r} (use one of: {choices})")


# ----------------------------------------------------------------------
# Telemetry plumbing (shared by loopback / counters / kv / rpc)
# ----------------------------------------------------------------------
def _add_obs_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="write a metric-registry snapshot (CSV if FILE ends in .csv, else JSON)",
    )
    sub.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write the span timeline in Chrome trace format",
    )


def _check_writable(path: Optional[str]) -> None:
    """Fail fast on an unwritable destination rather than after the run."""
    if path is None:
        return
    parent = os.path.dirname(path) or "."
    if not os.path.isdir(parent):
        raise SystemExit(f"error: cannot write {path!r}: no such directory {parent!r}")


def _make_obs(
    args: argparse.Namespace, force_metrics: bool = False
) -> Optional[Observability]:
    """Build the run's observability bundle, or None when disabled."""
    want_metrics = force_metrics or args.metrics_out is not None
    want_trace = args.trace_out is not None
    if not (want_metrics or want_trace):
        return None
    _check_writable(args.metrics_out)
    _check_writable(args.trace_out)
    return Observability(
        metrics=MetricRegistry() if want_metrics else None,
        tracer=SpanTracer() if want_trace else None,
    )


def _export_obs(
    obs: Optional[Observability], args: argparse.Namespace, flight=None,
    timeline=None,
) -> None:
    if obs is None:
        return
    if args.metrics_out:
        if args.metrics_out.endswith(".csv"):
            count = export_metrics_csv(obs.metrics, args.metrics_out)
        else:
            doc = export_metrics_json(obs.metrics, args.metrics_out)
            count = sum(len(section) for section in doc["metrics"].values())
        print(f"wrote {count} metrics to {args.metrics_out}")
    if args.trace_out:
        events = export_chrome_trace(
            obs.tracer, args.trace_out, flight=flight, timeline=timeline
        )
        print(f"wrote {events} trace events to {args.trace_out}")


# ----------------------------------------------------------------------
# Flight-recorder plumbing (shared by profile / loopback / kv / rpc)
# ----------------------------------------------------------------------
def _add_flight_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--flight-out", default=None, metavar="FILE",
        help="write the cache-line flight-recorder report (JSON)",
    )


def _make_flight(args: argparse.Namespace) -> Optional[FlightRecorder]:
    """Build a flight recorder when ``--flight-out`` asks for one."""
    if getattr(args, "flight_out", None) is None:
        return None
    _check_writable(args.flight_out)
    return FlightRecorder()


def _spec_fingerprint(config: dict) -> str:
    """Deterministic fingerprint of a run's config block.

    The same hash :func:`repro.shard.merge.fingerprint` uses for metric
    documents, so a flight/sanitize report can be matched to the run
    shape that produced it.
    """
    from repro.shard.merge import fingerprint

    return fingerprint(config)


def _export_flight(
    flight, args: argparse.Namespace, config: dict, scenario: str = None
) -> None:
    if flight is None or not getattr(args, "flight_out", None):
        return
    report = flight.report(
        config=config, scenario=scenario,
        spec_fingerprint=_spec_fingerprint(config),
    )
    export_flight_json(report, args.flight_out)
    print(f"wrote flight report to {args.flight_out}")


# ----------------------------------------------------------------------
# Timeline plumbing (shared by loopback / faults / counters / kv / rpc /
# profile, plus the ``timeline`` command itself)
# ----------------------------------------------------------------------
def _add_heartbeat_arg(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--heartbeat", type=float, default=None, metavar="SEC",
        help="print a wall-clock progress line to stderr every SEC seconds "
             "while shards run (operator-only; never touches results)",
    )


def _make_timeline(args: argparse.Namespace):
    """Build a timeline sampler when ``--timeline-out`` asks for one."""
    if getattr(args, "timeline_out", None) is None:
        return None
    from repro.obs.timeline import TimelineSampler

    _check_writable(args.timeline_out)
    return TimelineSampler(interval_ns=args.timeline_interval)


def _export_timeline(sampler, args: argparse.Namespace, scenario: str = None) -> None:
    """Run the watchdogs over a finished sampler and write its document."""
    if sampler is None or not getattr(args, "timeline_out", None):
        return
    from repro.obs.timeline import run_watchdogs

    doc = sampler.to_doc()
    if scenario is not None:
        doc["scenario"] = scenario
    doc["findings"] = run_watchdogs(doc)
    export_timeline_json(doc, args.timeline_out)
    print(f"wrote timeline ({doc['windows']} window(s), "
          f"{len(doc['findings'])} finding(s)) to {args.timeline_out}")


def _export_merged_timeline(doc, args: argparse.Namespace) -> None:
    """Write a sharded run's merged timeline document (findings included)."""
    if doc is None or not getattr(args, "timeline_out", None):
        return
    export_timeline_json(doc, args.timeline_out)
    print(f"wrote merged timeline ({doc['windows']} window(s), "
          f"{len(doc['findings'])} finding(s)) to {args.timeline_out}")


#: Sparkline ramp: blank for zero, full block for the series maximum.
_SPARK = " ▁▂▃▄▅▆▇█"


def _sparkline(values: list, width: int = 60) -> str:
    """One series as a unicode sparkline, bucket-averaged down to width."""
    if not values:
        return ""
    if len(values) > width:
        step = len(values) / width
        buckets = []
        for i in range(width):
            lo = int(i * step)
            hi = max(lo + 1, int((i + 1) * step))
            chunk = values[lo:hi]
            buckets.append(sum(chunk) / len(chunk))
        values = buckets
    top = max(values)
    if top <= 0:
        return _SPARK[0] * len(values)
    scale = (len(_SPARK) - 1) / top
    return "".join(
        _SPARK[min(len(_SPARK) - 1, int(v * scale + 0.5))] for v in values
    )


def _timeline_rows(doc: dict) -> list:
    """``(series, last, max, sparkline)`` rows for every timeline series.

    Histogram series expand to ``.count`` and ``.p99`` rows (empty
    windows render as zero so the sparkline keeps its time axis).
    """
    def fmt(value):
        return f"{value:.4g}"

    rows = []
    for kind in ("counters", "gauges"):
        for name, values in sorted(doc.get(kind, {}).items()):
            if not values:
                continue
            rows.append((name, fmt(values[-1]), fmt(max(values)),
                         _sparkline(values)))
    for name, points in sorted(doc.get("histograms", {}).items()):
        counts = [p["count"] if p else 0 for p in points]
        p99s = [p["p99"] if p else 0.0 for p in points]
        if not counts:
            continue
        rows.append((f"{name}.count", fmt(counts[-1]), fmt(max(counts)),
                     _sparkline(counts)))
        rows.append((f"{name}.p99", fmt(p99s[-1]), fmt(max(p99s)),
                     _sparkline(p99s)))
    return rows


def _findings_rows(findings: list) -> list:
    return [
        (f["rule"], f["series"], f["window"],
         f"{f['value']:.4g}", f"{f['threshold']:.4g}", f["detail"])
        for f in findings
    ]


# ----------------------------------------------------------------------
# Sanitizer plumbing (shared by loopback / kv / rpc)
# ----------------------------------------------------------------------
def _add_sanitize_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--sanitize", nargs="?", const="on", choices=["on", "strict"],
        default=None,
        help="attach the protocol sanitizer (reference fabric path; "
             "'strict' raises on the first violation)",
    )
    sub.add_argument(
        "--sanitize-out", default=None, metavar="FILE",
        help="write the sanitizer report (JSON, repro.check/sanitize-v1)",
    )


def _make_sanitizer(args: argparse.Namespace):
    """Build a sanitizer when ``--sanitize``/``--sanitize-out`` ask for one."""
    if (
        getattr(args, "sanitize", None) is None
        and getattr(args, "sanitize_out", None) is None
    ):
        return None
    from repro.check import Sanitizer

    _check_writable(getattr(args, "sanitize_out", None))
    return Sanitizer(strict=getattr(args, "sanitize", None) == "strict")


def _report_sanitizer(
    sanitizer, args: argparse.Namespace, config: dict, scenario: str = None
) -> int:
    """Print + export the sanitizer report; non-zero when it found races."""
    if sanitizer is None:
        return 0
    from repro.analysis.checks import format_rule_summary, format_violation_table
    from repro.obs.export import export_sanitize_json

    report = sanitizer.report(
        config=config, scenario=scenario,
        spec_fingerprint=_spec_fingerprint(config),
    )
    print()
    print(format_rule_summary(report))
    if report["findings"]:
        print()
        print(format_violation_table(report))
    if getattr(args, "sanitize_out", None):
        export_sanitize_json(report, args.sanitize_out)
        print(f"wrote sanitizer report to {args.sanitize_out}")
    return 1 if report["total"] else 0


def _print_sanitizer_error(exc) -> None:
    print(f"SANITIZER: {exc}")
    print(f"  rule:     {exc.rule}")
    if exc.addr is not None:
        print(f"  addr:     {exc.addr:#x}")
    if exc.agents:
        print(f"  agents:   {', '.join(exc.agents)}")
    if exc.sim_time is not None:
        print(f"  sim time: {exc.sim_time:.1f} ns")


# ----------------------------------------------------------------------
# Fault-injection plumbing (shared by loopback / kv / rpc / faults)
# ----------------------------------------------------------------------
def _add_fault_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--fault-plan", default=None, metavar="FILE",
        help="inject faults from a JSON/TOML plan ('canned' for the built-in)",
    )
    sub.add_argument(
        "--fault-seed", type=int, default=0, metavar="N",
        help="seed for the fault injector's RNG stream",
    )


def _load_plan(path: str) -> FaultPlan:
    if path == "canned":
        return FaultPlan.canned()
    if not os.path.isfile(path):
        raise SystemExit(f"error: fault plan {path!r}: no such file")
    return FaultPlan.load(path)


def _make_faults(args: argparse.Namespace):
    """Build (injector, recovery) from the fault args, or (None, None)."""
    if getattr(args, "fault_plan", None) is None:
        return None, None
    plan = _load_plan(args.fault_plan)
    only = getattr(args, "only", None)
    if only:
        plan = plan.restricted(only)
        if not len(plan):
            raise SystemExit(f"error: plan has no events of kind(s) {only}")
    faults = FaultInjector(plan, seed=args.fault_seed)
    return faults, RecoveryPolicy()


def _fault_summary_rows(setup, result, faults) -> list:
    rows = [
        ("dropped packets", result.dropped),
        ("faults injected", faults.total_injected()),
    ]
    for kind, value in sorted(faults.counters.snapshot().items()):
        rows.append((kind, value))
    driver = setup.driver
    rows += [
        ("tx retries", driver.tx_retries),
        ("tx timeouts", driver.tx_timeouts),
        ("watchdog resets", driver.watchdog_resets),
    ]
    return rows


@contextlib.contextmanager
def _maybe_trace_fabric(obs: Optional[Observability], fabric):
    """Record per-access coherence instants while tracing is on."""
    if obs is not None and obs.tracer.enabled:
        with obs.tracer.attach_fabric(fabric):
            yield
    else:
        yield


# ----------------------------------------------------------------------
# Shared run-shape flags (loopback / profile / faults / counters / kv / rpc)
# ----------------------------------------------------------------------
def _run_flags(**overrides) -> argparse.ArgumentParser:
    """The common run-shape flag block, defined once.

    Returned as an argparse *parent* parser: every command that takes a
    run shape (platform, interface, packet size, counts, queue depth,
    batch) inherits identical spellings and defaults from here. Per-
    command defaults are overridden via ``set_defaults`` — argparse
    gives a parent's ``set_defaults`` precedence over the inherited
    ``add_argument`` defaults, so e.g. ``faults`` keeps its 256B/6000-
    packet shape without re-declaring any flag.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--platform", default="icx", choices=["icx", "spr"])
    parent.add_argument("--interface", default="ccnic",
                        help="comparison point (ccnic/unopt/e810/cx6)")
    parent.add_argument("--size", type=int, default=64, metavar="BYTES",
                        help="packet (or object header) size in bytes")
    parent.add_argument("--packets", type=int, default=5000, metavar="N",
                        help="packets (or RPC ops) to run")
    parent.add_argument("--inflight", type=int, default=64, metavar="N",
                        help="closed-loop window depth")
    parent.add_argument("--batch", type=int, default=32, metavar="N",
                        help="tx/rx burst size")
    parent.add_argument(
        "--timeline-out", default=None, metavar="FILE",
        help="write the windowed timeline document "
             "(JSON, repro.obs/timeline-v1)",
    )
    parent.add_argument(
        "--timeline-interval", type=float, default=DEFAULT_INTERVAL_NS,
        metavar="NS",
        help="timeline window width in simulated nanoseconds "
             f"(default {DEFAULT_INTERVAL_NS:.0f})",
    )
    if overrides:
        parent.set_defaults(**overrides)
    return parent


def _add_shard_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="partition the run into N per-queue-pair shards and execute "
             "them across worker processes (merged metrics are bit-identical "
             "for any worker count)",
    )


class _SnapshotRegistry:
    """Adapter giving a merged snapshot dict the exporter interface."""

    def __init__(self, snapshot: dict) -> None:
        self._snapshot = snapshot

    def snapshot(self) -> dict:
        return self._snapshot


def _export_merged_metrics(metrics: Optional[dict], args: argparse.Namespace) -> None:
    """Write a sharded run's merged metric snapshot via the exporters."""
    if metrics is None or not getattr(args, "metrics_out", None):
        return
    view = _SnapshotRegistry(metrics)
    if args.metrics_out.endswith(".csv"):
        count = export_metrics_csv(view, args.metrics_out)
    else:
        doc = export_metrics_json(view, args.metrics_out)
        count = sum(len(section) for section in doc["metrics"].values())
    print(f"wrote {count} merged metrics to {args.metrics_out}")


def _reject_with_shards(args: argparse.Namespace, flags: dict) -> None:
    """Fail fast on per-process flags that cannot cross shard workers."""
    for flag, (value, default) in flags.items():
        if value != default:
            raise SystemExit(f"error: {flag} is not supported with --shards")


def _sharded_summary_rows(run) -> list:
    merged = run.doc["merged"]
    rows = [
        ("shards", run.n_shards),
        ("workers", run.workers),
        ("lookahead [ns]", run.lookahead_ns),
        ("events", run.events),
        ("sim time [ns]", run.sim_ns),
        ("median latency [ns]", merged.get("median_ns", float("nan"))),
        ("p99 latency [ns]", merged.get("p99_ns", float("nan"))),
        ("merged fingerprint", run.fingerprint),
    ]
    return rows


# ----------------------------------------------------------------------
def _loopback_sharded(args: argparse.Namespace) -> int:
    from repro.shard import ScenarioSpec, run_sharded

    _kind(args.interface)  # validate before the spec does
    _reject_with_shards(args, {
        "--same-socket": (args.same_socket, False),
        "--latency-factor": (args.latency_factor, 1.0),
        "--bandwidth-factor": (args.bandwidth_factor, 1.0),
        "--trace-out": (args.trace_out, None),
        "--flight-out": (args.flight_out, None),
        "--sanitize": (args.sanitize, None),
        "--sanitize-out": (args.sanitize_out, None),
    })
    _check_writable(args.metrics_out)
    _check_writable(args.timeline_out)
    try:
        spec = ScenarioSpec(
            name=f"loopback_cli_{args.size}b",
            workload="loopback",
            platform=args.platform,
            interface=args.interface,
            pkt_size=args.size,
            n_packets=args.packets,
            inflight=None if args.rate else args.inflight,
            offered_mpps=args.rate,
            tx_batch=args.batch,
            rx_batch=args.batch,
            fault_plan=args.fault_plan,
            fault_seed=args.fault_seed,
            shards=args.shards,
        ).validate()
    except ConfigError as exc:
        raise SystemExit(f"error: {exc}")
    run = run_sharded(
        spec, with_metrics=args.metrics_out is not None, progress=print,
        timeline_interval=(
            args.timeline_interval if args.timeline_out is not None else None
        ),
        heartbeat_s=args.heartbeat,
    )
    merged = run.doc["merged"]
    rows = [
        ("received packets", merged["received"]),
        ("dropped packets", merged["dropped"]),
        ("throughput [Mpps]", merged["mpps"]),
    ] + _sharded_summary_rows(run)
    if args.fault_plan is not None:
        rows.append(("faults injected", merged.get("injected", 0)))
    print(format_table(
        ["Metric", "Value"],
        rows,
        title=f"{args.interface} sharded loopback, {args.size}B packets "
              f"on {args.platform}",
    ))
    _export_merged_metrics(run.metrics, args)
    _export_merged_timeline(run.timeline, args)
    return 0


def cmd_loopback(args: argparse.Namespace) -> int:
    if args.shards is not None and args.shards > 1:
        return _loopback_sharded(args)
    spec = _platform(args.platform)
    kind = _kind(args.interface)
    obs = _make_obs(args)
    faults, recovery = _make_faults(args)
    flight = _make_flight(args)
    sanitizer = _make_sanitizer(args)
    timeline = _make_timeline(args)
    setup = build_interface(
        spec,
        kind,
        same_socket=args.same_socket,
        link_latency_factor=args.latency_factor,
        link_bandwidth_factor=args.bandwidth_factor,
        obs=obs,
        faults=faults,
    )
    if flight is not None:
        from repro.analysis.profile import attach_recorder

        attach_recorder(setup, flight)
    if sanitizer is not None:
        from repro.analysis.checks import attach_sanitizer

        attach_sanitizer(setup, sanitizer)
    if timeline is not None:
        from repro.obs.timeline import attach_timeline

        attach_timeline(timeline, setup)
    sanitize_config = {
        "command": "loopback", "platform": spec.name, "interface": kind.value,
        "pkt_size": args.size, "n_packets": args.packets,
        "mode": getattr(args, "sanitize", None) or "on",
    }
    try:
        with _maybe_trace_fabric(obs, setup.system.fabric):
            result = run_point(
                setup,
                pkt_size=args.size,
                n_packets=args.packets,
                inflight=None if args.rate else args.inflight,
                offered_mpps=args.rate,
                tx_batch=args.batch,
                rx_batch=args.batch,
                obs=obs,
                recovery=recovery,
                flight=flight,
                timeline=timeline,
            )
    except SanitizerError as exc:
        _print_sanitizer_error(exc)
        _report_sanitizer(sanitizer, args, sanitize_config,
                          scenario=f"loopback_cli_{args.size}b")
        return 2
    if timeline is not None:
        timeline.finish(setup.system.sim.now)
    d0, d1 = wire_bytes_per_packet(setup, result)
    rows = [
        ("received packets", result.received),
        ("throughput [Mpps]", result.mpps),
        ("throughput [Gbps]", result.gbps),
        ("min latency [ns]", result.latency.minimum),
        ("median latency [ns]", result.latency.median),
        ("p99 latency [ns]", result.latency.percentile(99)),
        ("wire bytes/pkt (dir0)", d0),
        ("wire bytes/pkt (dir1)", d1),
    ]
    if faults is not None:
        rows += _fault_summary_rows(setup, result, faults)
    print(format_table(
        ["Metric", "Value"],
        rows,
        title=f"{kind.value} loopback, {args.size}B packets on {spec.name}",
    ))
    _export_obs(obs, args, flight=flight, timeline=timeline)
    scenario = f"loopback_cli_{args.size}b"
    _export_flight(flight, args, config={
        "command": "loopback", "platform": spec.name, "interface": kind.value,
        "pkt_size": args.size, "n_packets": args.packets,
    }, scenario=scenario)
    _export_timeline(timeline, args, scenario=scenario)
    return _report_sanitizer(sanitizer, args, sanitize_config, scenario=scenario)


def cmd_faults(args: argparse.Namespace) -> int:
    """Fault-injection smoke run: canned plan, loopback, full summary."""
    spec = _platform(args.platform)
    kind = _kind(args.interface)
    obs = _make_obs(args)
    if args.fault_plan is None:
        args.fault_plan = "canned"
    faults, recovery = _make_faults(args)
    timeline = _make_timeline(args)
    setup = build_interface(spec, kind, obs=obs, faults=faults)
    if timeline is not None:
        from repro.obs.timeline import attach_timeline

        attach_timeline(timeline, setup)
    with _maybe_trace_fabric(obs, setup.system.fabric):
        result = run_point(
            setup,
            pkt_size=args.size,
            n_packets=args.packets,
            inflight=args.inflight,
            tx_batch=args.batch,
            rx_batch=args.batch,
            obs=obs,
            recovery=recovery,
            timeline=timeline,
        )
    if timeline is not None:
        timeline.finish(setup.system.sim.now)
    completed = result.received + result.dropped
    rows = [
        ("plan", faults.plan.name),
        ("fault seed", args.fault_seed),
        ("offered packets", args.packets),
        ("completed (rx+dropped)", completed),
        ("received packets", result.received),
        ("goodput [Mpps]", result.mpps),
        ("median latency [ns]", result.latency.median),
    ]
    rows += _fault_summary_rows(setup, result, faults)
    print(format_table(
        ["Metric", "Value"],
        rows,
        title=f"{kind.value} fault injection on {spec.name}",
    ))
    _export_obs(obs, args, timeline=timeline)
    _export_timeline(timeline, args, scenario=f"faults_cli_{faults.plan.name}")
    if completed < args.packets or result.received == 0:
        print("FAIL: run did not recover (incomplete window or zero goodput)")
        return 1
    return 0


def cmd_microbench(args: argparse.Namespace) -> int:
    spec = _platform(args.platform)
    print(format_table(
        ["Access target", "Latency [ns]"],
        list(access_latency_cases(spec).items()),
        title=f"Fig 7 access latency ({spec.name})",
    ))
    print()
    print(format_table(
        ["Layout", "RTT [ns]"],
        [(case, pingpong(spec, case, 120).median) for case in PINGPONG_CASES],
        title="Fig 8 pingpong",
    ))
    print()
    print(format_table(
        ["Bytes/barrier", "WC MMIO", "WC DRAM", "WB DRAM"],
        [
            (size,
             wc_write_throughput(spec, "wc_mmio", size),
             wc_write_throughput(spec, "wc_dram", size),
             wc_write_throughput(spec, "wb_dram", size))
            for size in (64, 512, 4096)
        ],
        title="Fig 2 streaming-write throughput [Gbps]",
    ))
    print()
    points = dict(wc_store_latency(spec, "e810"))
    print(format_table(
        ["Stores", "Cumulative ns"],
        [(n, points[n]) for n in (8, 24, 32, 64)],
        title="Fig 3 WC store latency (E810)",
    ))
    print()
    lat = mmio_read_latency(spec)
    print(format_table(
        ["Load", "Latency [ns]"], list(lat.items()), title="MMIO reads"
    ))
    return 0


def cmd_counters(args: argparse.Namespace) -> int:
    spec = _platform(args.platform)
    kind = _kind(args.interface)
    # This command always runs with a live registry: the table below is
    # read from the registry's "fabric" section, not the fabric object.
    obs = _make_obs(args, force_metrics=True)
    timeline = _make_timeline(args)
    setup = build_interface(spec, kind, obs=obs)
    if timeline is not None:
        from repro.obs.timeline import attach_timeline

        attach_timeline(timeline, setup)
    with _maybe_trace_fabric(obs, setup.system.fabric):
        result = run_point(setup, args.size, args.packets, inflight=args.inflight,
                           tx_batch=args.batch, rx_batch=args.batch, obs=obs,
                           timeline=timeline)
    if timeline is not None:
        timeline.finish(setup.system.sim.now)
    counters = obs.metrics.snapshot().get("fabric", {})
    nic = setup.system.nic_socket
    rows = [
        (name.split(".", 1)[1], counters[name] / result.received)
        for name in sorted(counters)
        if name.startswith(f"s{nic}.")
    ]
    print(format_table(
        ["NIC-socket transaction", "per packet"],
        rows,
        title=f"{kind.value} batched {args.size}B loopback "
              f"({result.received} packets)",
    ))
    _export_obs(obs, args, timeline=timeline)
    _export_timeline(timeline, args, scenario=f"counters_cli_{args.size}b")
    return 0


def _kv_sharded(args: argparse.Namespace) -> int:
    from repro.shard import ScenarioSpec, run_sharded

    if args.interface == "both":
        raise SystemExit(
            "error: --shards runs one comparison point; pick --interface "
            "ccnic/unopt/e810/cx6"
        )
    _kind(args.interface)
    _reject_with_shards(args, {
        "--trace-out": (args.trace_out, None),
        "--flight-out": (args.flight_out, None),
        "--sanitize": (args.sanitize, None),
        "--sanitize-out": (args.sanitize_out, None),
    })
    _check_writable(args.metrics_out)
    _check_writable(args.timeline_out)
    try:
        spec = ScenarioSpec(
            name=f"kv_cli_{args.distribution}",
            workload="kv",
            platform=args.platform,
            interface=args.interface,
            distribution=args.distribution,
            n_ops=args.packets,
            tx_batch=args.batch,
            fault_plan=args.fault_plan,
            fault_seed=args.fault_seed,
            shards=args.shards,
        ).validate()
    except ConfigError as exc:
        raise SystemExit(f"error: {exc}")
    run = run_sharded(
        spec, with_metrics=args.metrics_out is not None, progress=print,
        timeline_interval=(
            args.timeline_interval if args.timeline_out is not None else None
        ),
        heartbeat_s=args.heartbeat,
    )
    merged = run.doc["merged"]
    rows = [
        ("completed ops", merged["ops"]),
        ("throughput [Mops]", merged["mops"]),
    ] + _sharded_summary_rows(run)
    print(format_table(
        ["Metric", "Value"],
        rows,
        title=f"{args.interface} sharded KV store ({args.distribution}) "
              f"on {args.platform}",
    ))
    _export_merged_metrics(run.metrics, args)
    _export_merged_timeline(run.timeline, args)
    return 0


def _study_kinds(args: argparse.Namespace) -> tuple:
    """Comparison points a thread study runs, per ``--interface``."""
    if args.interface == "both":
        return (InterfaceKind.CX6, InterfaceKind.CCNIC)
    return (_kind(args.interface),)


def cmd_kv(args: argparse.Namespace) -> int:
    if args.shards is not None and args.shards > 1:
        return _kv_sharded(args)
    from repro.apps.kvstore import KvWorkload, kv_thread_study

    spec = _platform(args.platform)
    workload = KvWorkload.ads() if args.distribution == "ads" else KvWorkload.geo()
    obs = _make_obs(args)
    flight = _make_flight(args)
    sanitizer = _make_sanitizer(args)
    timeline = _make_timeline(args)
    scenario = f"kv_cli_{args.distribution}"
    sanitize_config = {
        "command": "kv", "platform": spec.name, "interface": args.interface,
        "distribution": args.distribution, "n_ops": args.packets,
        "mode": getattr(args, "sanitize", None) or "on",
    }
    rows = []
    kinds = _study_kinds(args)
    for kind in kinds:
        # Fresh injector per comparison point: one-shot NIC events and
        # the RNG stream must not be shared between the two systems.
        faults, _recovery = _make_faults(args)
        # The flight recorder, sanitizer and timeline cover one system
        # only (the coherent point when two run): mixing line addresses
        # or windowed series from two systems would corrupt the thrash
        # table, the happens-before state and the per-series rings.
        instrument = kind.is_coherent or len(kinds) == 1
        try:
            study = kv_thread_study(
                spec, kind, workload, n_ops=args.packets, batch=args.batch,
                obs=obs, faults=faults,
                flight=flight if kind.is_coherent else None,
                sanitizer=sanitizer if kind.is_coherent else None,
                timeline=timeline if instrument else None,
            )
        except SanitizerError as exc:
            _print_sanitizer_error(exc)
            _report_sanitizer(sanitizer, args, sanitize_config,
                              scenario=scenario)
            return 2
        rows.append((kind.value, study.per_thread_mops, study.peak_mops,
                     study.threads_to_saturate(spec)))
    print(format_table(
        ["Interface", "Per-thread [Mops]", "Peak [Mops]", "Threads to saturate"],
        rows,
        title=f"KV store ({args.distribution}) on {spec.name}",
    ))
    _export_obs(obs, args, flight=flight, timeline=timeline)
    _export_flight(flight, args, config={
        "command": "kv", "platform": spec.name, "interface": args.interface,
        "distribution": args.distribution, "n_ops": args.packets,
    }, scenario=scenario)
    _export_timeline(timeline, args, scenario=scenario)
    return _report_sanitizer(sanitizer, args, sanitize_config, scenario=scenario)


def cmd_rpc(args: argparse.Namespace) -> int:
    from repro.apps.tas import rpc_thread_study

    spec = _platform(args.platform)
    obs = _make_obs(args)
    flight = _make_flight(args)
    sanitizer = _make_sanitizer(args)
    timeline = _make_timeline(args)
    scenario = "rpc_cli"
    sanitize_config = {
        "command": "rpc", "platform": spec.name, "interface": args.interface,
        "n_ops": args.packets, "mode": getattr(args, "sanitize", None) or "on",
    }
    rows = []
    kinds = _study_kinds(args)
    for kind in kinds:
        # Fresh injector per comparison point (see cmd_kv).
        faults, _recovery = _make_faults(args)
        instrument = kind.is_coherent or len(kinds) == 1
        try:
            study = rpc_thread_study(
                spec, kind, n_ops=args.packets, batch=args.batch,
                obs=obs, faults=faults,
                flight=flight if kind.is_coherent else None,
                sanitizer=sanitizer if kind.is_coherent else None,
                timeline=timeline if instrument else None,
            )
        except SanitizerError as exc:
            _print_sanitizer_error(exc)
            _report_sanitizer(sanitizer, args, sanitize_config,
                              scenario=scenario)
            return 2
        rows.append((kind.value, study.per_thread_mops, study.peak_mops,
                     study.threads_to_saturate()))
    print(format_table(
        ["Interface", "Per-thread [Mops]", "Peak [Mops]", "Threads for 95%"],
        rows,
        title=f"TCP echo RPC (TAS-like) on {spec.name}",
    ))
    _export_obs(obs, args, flight=flight, timeline=timeline)
    _export_flight(flight, args, config={
        "command": "rpc", "platform": spec.name, "interface": args.interface,
        "n_ops": args.packets,
    }, scenario=scenario)
    _export_timeline(timeline, args, scenario=scenario)
    return _report_sanitizer(sanitizer, args, sanitize_config, scenario=scenario)


def cmd_profile(args: argparse.Namespace) -> int:
    from repro.analysis.profile import (
        format_class_table,
        format_homing_audit,
        format_sample_waterfall,
        format_thrash_table,
        format_waterfall_table,
        run_profile,
    )

    spec = _platform(args.platform)
    kind = _kind(args.interface)
    _check_writable(args.flight_out)
    obs = _make_obs(args)
    timeline = _make_timeline(args)
    scenario = f"profile_cli_{kind.value}"
    run = run_profile(
        spec,
        kind,
        pkt_size=args.size,
        n_packets=args.packets,
        inflight=args.inflight,
        tx_batch=args.batch,
        rx_batch=args.batch,
        sample_every=args.sample_every,
        top=args.top,
        obs=obs,
        timeline=timeline,
        scenario=scenario,
    )
    report = run.report
    print(
        f"{kind.value} profile on {spec.name}: {run.result.received} packets, "
        f"{run.result.mpps:.2f} Mpps, median latency "
        f"{run.result.latency.median:.0f} ns\n"
    )
    print(format_waterfall_table(report))
    print()
    print(format_class_table(report))
    print()
    print(format_thrash_table(report))
    print()
    print(format_homing_audit(report))
    print()
    print(format_sample_waterfall(report))
    if args.flight_out:
        export_flight_json(report, args.flight_out)
        print(f"wrote flight report to {args.flight_out}")
    _export_obs(obs, args, flight=run.recorder, timeline=timeline)
    _export_timeline(timeline, args, scenario=scenario)
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    from repro.analysis.validate import validate_calibration

    report = validate_calibration(include_end_to_end=not args.fast)
    print(report.summary())
    if report.ok:
        print("\ncalibration OK")
        return 0
    print(f"\n{len(report.failures())} anchor(s) drifted")
    return 1


def cmd_forwarding(args: argparse.Namespace) -> int:
    from repro.apps.forwarding import forwarding_study

    spec = _platform(args.platform)
    results = forwarding_study(spec, pkt_size=args.size, n_packets=args.packets)
    rows = [
        (mode, r.mpps, r.wire_bytes_per_pkt, r.latency.median)
        for mode, r in results.items()
    ]
    print(format_table(
        ["Mode", "Rate [Mpps]", "Wire bytes/pkt", "Median lat [ns]"],
        rows,
        title=f"Middlebox forwarding over CC-NIC ({args.size}B, {spec.name})",
    ))
    return 0


def cmd_perf(args: argparse.Namespace) -> int:
    import importlib

    import repro.topology  # noqa: F401  registers the rack topology scenarios
    from repro.analysis import perf
    from repro.shard import scenario, scenario_names

    for module in args.register or ():
        # Imported for its register_scenario() side effects: the module's
        # scenarios become runnable by name like the built-ins.
        try:
            importlib.import_module(module)
        except ImportError as exc:
            raise SystemExit(f"error: cannot import --register {module!r}: {exc}")
    registered = scenario_names()
    scenarios = args.scenario or registered
    for name in scenarios:
        if name not in registered:
            raise SystemExit(
                f"error: unknown scenario {name!r} "
                f"(registered: {', '.join(registered)})"
            )
    if args.profile:
        # Profile mode replaces the suite: one sequential scenario under
        # cProfile, artifacts written next to the BENCH document.
        name = scenarios[0] if args.scenario else "loopback_64b"
        if name not in registered:
            raise SystemExit(f"error: unknown scenario {name!r}")
        print(f"profiling {name}{' (quick)' if args.quick else ''} ...")
        doc = perf.profile_scenario(name, quick=args.quick)
        print(perf.format_profile(doc))
        for path in perf.write_profile(doc, bench_path=args.out):
            print(f"wrote {path}")
        return 0
    if args.compare == "none":
        compare = ()
    elif args.compare == "all":
        compare = tuple(scenarios)
    else:
        compare = ("loopback_64b",) if "loopback_64b" in scenarios else ()
    if args.shards is not None:
        # Fail before any scenario runs: a worker count wider than a
        # scenario's fixed partition cannot be satisfied, only silently
        # clamped — which would misreport the benchmark configuration.
        if args.shards < 1:
            raise SystemExit("error: --shards must be >= 1")
        for name in scenarios:
            width = scenario(name).shards
            if args.shards > width:
                raise SystemExit(
                    f"error: --shards {args.shards} exceeds the fixed "
                    f"partition of scenario {name!r} ({width} shard(s))"
                )
    try:
        doc = perf.run_suite(
            scenarios, quick=args.quick, compare=compare, repeat=args.repeat,
            progress=print, shards=args.shards,
        )
    except ConfigError as exc:
        raise SystemExit(f"error: {exc}")
    rows = []
    for name, entry in doc["scenarios"].items():
        speedup = entry.get("speedup")
        rows.append((
            name,
            f"{entry['wall_s']:.3f}",
            entry["events"],
            f"{entry['events_per_sec']:.0f}",
            entry.get("n_shards", 1),
            entry["peak_rss_kb"],
            f"{speedup:.2f}x" if speedup else "-",
        ))
    workers = doc.get("shards")
    mode = "quick" if args.quick else "full"
    if workers:
        mode += f", {workers} worker(s)"
    print(format_table(
        ["Scenario", "Wall [s]", "Events", "Events/sec", "Shards",
         "Peak RSS [KB]", "Speedup"],
        rows,
        title=f"Simulator self-benchmark ({mode})",
    ))
    # Diff against the *committed* trajectory document before
    # write_bench overwrites it below.
    committed = perf.load_bench(args.out) if compare else None
    if committed is not None:
        delta_rows = perf.bench_delta_rows(doc, committed)
        if delta_rows:
            print()
            print(format_table(
                ["Scenario", "Committed ev/s", "This run ev/s", "Delta"],
                delta_rows,
                title=f"events/sec vs committed {args.out}",
            ))
    path = perf.write_bench(doc, args.out)
    print(f"wrote {path}")
    status = 0
    baseline = perf.load_baseline(args.baseline)
    if baseline is None:
        print(f"no baseline at {args.baseline}; regression check skipped")
        # Still fail on a fast/slow fingerprint divergence.
        failures = perf.check_regression(doc, {"scenarios": {}})
    else:
        failures = perf.check_regression(doc, baseline, tolerance=args.tolerance)
    for msg in failures:
        print(f"FAIL: {msg}")
        status = 1
    if not failures and baseline is not None:
        print(f"regression check OK (tolerance {args.tolerance:.0%})")
    return status


def cmd_timeline(args: argparse.Namespace) -> int:
    """Render a run's windowed timeline as sparkline tables + findings."""
    from repro.obs.timeline import run_watchdogs

    if args.load is not None:
        doc = load_timeline_json(args.load)
        title = doc.get("scenario") or args.load
    else:
        import repro.topology  # noqa: F401  registers the rack scenarios

        from repro.shard import run_sharded, scenario, scenario_names

        _check_writable(args.out)
        registered = scenario_names()
        if args.scenario not in registered:
            raise SystemExit(
                f"error: unknown scenario {args.scenario!r} "
                f"(registered: {', '.join(registered)})"
            )
        run = run_sharded(
            scenario(args.scenario),
            workers=args.workers,
            quick=args.quick,
            timeline_interval=args.interval,
            heartbeat_s=args.heartbeat,
            progress=print,
        )
        # Copy before stamping: the run object keeps its merged doc
        # pristine (and the hook-guard lint tracks `.timeline` reads).
        doc = dict(run.timeline)
        doc["scenario"] = args.scenario
        title = (f"{args.scenario}, {run.n_shards} shard(s), "
                 f"fingerprint {run.fingerprint}")
    findings = doc.get("findings")
    if findings is None:
        findings = run_watchdogs(doc)
        doc["findings"] = findings
    print(format_table(
        ["Series", "Last", "Max", "Sparkline"],
        _timeline_rows(doc),
        title=f"timeline: {title} — {doc['windows']} window(s) of "
              f"{doc['interval_ns']:.0f} ns",
    ))
    print()
    if findings:
        print(format_table(
            ["Rule", "Series", "Window", "Value", "Threshold", "Detail"],
            _findings_rows(findings),
            title=f"watchdog findings ({len(findings)})",
        ))
    else:
        print("watchdogs: no findings")
    if args.out:
        export_timeline_json(doc, args.out)
        print(f"wrote timeline to {args.out}")
    return 0


def _cmd_check_model(args: argparse.Namespace) -> int:
    from repro.check import (
        MUTATIONS,
        check_model,
        format_model_summary,
        replay_counterexample,
    )
    from repro.errors import ModelCheckError
    from repro.obs.export import export_model_json

    if args.mutate is not None and args.mutate not in MUTATIONS:
        known = ", ".join(sorted(MUTATIONS))
        print(f"unknown mutation {args.mutate!r} (known: {known})")
        return 2
    _check_writable(args.model_out)
    report = check_model(mutation=args.mutate)
    print(format_model_summary(report))
    if args.model_out:
        export_model_json(report, args.model_out)
        print(f"wrote model report to {args.model_out}")
    if args.mutate is None:
        return 0 if report["ok"] else 1
    # A mutation run passes iff the checker caught the seeded bug and
    # the shrunk counterexample still reproduces on replay.
    if not report["counterexamples"]:
        print(f"mutation {args.mutate!r} NOT caught by the model checker")
        return 1
    try:
        violation = replay_counterexample(report, 0)
    except ModelCheckError as exc:
        print(f"counterexample did not replay: {exc}")
        return 1
    print(
        f"mutation {args.mutate!r} caught: {violation['invariant']} "
        "counterexample reproduces on replay"
    )
    return 0


def _cmd_check_explore(args: argparse.Namespace) -> int:
    from repro.check import check_explore, format_explore_summary

    kwargs = {}
    if args.explore_scenario:
        kwargs["scenarios"] = tuple(args.explore_scenario)
    if args.explore_ops is not None:
        kwargs["ops"] = args.explore_ops
    if args.explore_deviations is not None:
        kwargs["max_deviations"] = args.explore_deviations
    if args.explore_max_schedules is not None:
        kwargs["max_schedules"] = args.explore_max_schedules
    report = check_explore(**kwargs)
    print(format_explore_summary(report))
    return 0 if report["ok"] else 1


def cmd_check(args: argparse.Namespace) -> int:
    import repro
    from repro.check import (
        format_lint_findings,
        format_lint_summary,
        run_lint,
    )
    from repro.obs.export import export_lint_json

    status = 0
    ran_subcheck = False
    if args.model or args.mutate is not None:
        status = max(status, _cmd_check_model(args))
        ran_subcheck = True
    if args.explore:
        status = max(status, _cmd_check_explore(args))
        ran_subcheck = True
    if ran_subcheck:
        return status

    root = args.root or os.path.dirname(os.path.abspath(repro.__file__))
    tests_root = args.tests
    if tests_root is None:
        # Default to the sibling tests/ tree of a source checkout, when
        # present; an installed package skips the fingerprint-test check.
        candidate = os.path.join(os.path.dirname(os.path.dirname(root)), "tests")
        tests_root = candidate if os.path.isdir(candidate) else None
    _check_writable(args.json)
    report = run_lint(root=root, tests_root=tests_root)
    print(format_lint_summary(report))
    if report.findings:
        print()
        print(format_lint_findings(report, limit=args.limit))
    if args.json:
        export_lint_json(
            report.as_report(config={"root": root, "tests_root": tests_root}),
            args.json,
        )
        print(f"wrote lint report to {args.json}")
    return 0 if report.ok else 1


def cmd_table1(_args: argparse.Namespace) -> int:
    print(format_table(
        ["Protocol", "GT/s", "1 Link GB/s", "Max Total GB/s"],
        table1_rows(),
        title="Table 1. PCIe, CXL and UPI bandwidth",
    ))
    return 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CC-NIC reproduction measurement tools",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lb = sub.add_parser("loopback", help="loopback latency/throughput",
                        parents=[_run_flags()])
    lb.add_argument("--rate", type=float, default=None,
                    help="offered rate in Mpps (open loop)")
    lb.add_argument("--same-socket", action="store_true")
    lb.add_argument("--latency-factor", type=float, default=1.0)
    lb.add_argument("--bandwidth-factor", type=float, default=1.0)
    _add_shard_args(lb)
    _add_heartbeat_arg(lb)
    _add_obs_args(lb)
    _add_fault_args(lb)
    _add_flight_args(lb)
    _add_sanitize_args(lb)
    lb.set_defaults(func=cmd_loopback)

    pr = sub.add_parser("profile", help="flight-recorder critical-path profile",
                        parents=[_run_flags(packets=3000)])
    pr.add_argument("--sample-every", type=int, default=1, metavar="N",
                    help="trace every Nth packet's critical path")
    pr.add_argument("--top", type=int, default=10, metavar="N",
                    help="rows in the thrashing-lines table")
    _add_obs_args(pr)
    _add_flight_args(pr)
    pr.set_defaults(func=cmd_profile)

    # Fault runs span the recovery windows (~10x a clean loopback's
    # simulated time), so their default window is coarser.
    fl = sub.add_parser("faults", help="fault-injection loopback study",
                        parents=[_run_flags(size=256, packets=6000,
                                            timeline_interval=2000.0)])
    fl.add_argument(
        "--only", action="append", metavar="KIND", choices=list(FAULT_KINDS),
        help="restrict the plan to these fault kinds (repeatable)",
    )
    _add_obs_args(fl)
    _add_fault_args(fl)
    fl.set_defaults(func=cmd_faults)

    mb = sub.add_parser("microbench", help="Figs 2/3/7/8 microbenchmarks")
    mb.add_argument("--platform", default="icx", choices=["icx", "spr"])
    mb.set_defaults(func=cmd_microbench)

    ct = sub.add_parser("counters", help="Fig 17 coherence counters",
                        parents=[_run_flags(packets=4000, inflight=128)])
    _add_obs_args(ct)
    ct.set_defaults(func=cmd_counters)

    # The app studies probe a single fast-path thread for a few tens of
    # microseconds of simulated time; halve the window to keep the
    # latency series populated.
    kv = sub.add_parser("kv", help="KV store thread study",
                        parents=[_run_flags(interface="both", packets=2000,
                                            timeline_interval=500.0)])
    kv.add_argument("--distribution", default="ads", choices=["ads", "geo"])
    kv.add_argument("--ops", dest="packets", type=int, metavar="N",
                    help="alias for --packets (RPC op count)")
    _add_shard_args(kv)
    _add_heartbeat_arg(kv)
    _add_obs_args(kv)
    _add_fault_args(kv)
    _add_flight_args(kv)
    _add_sanitize_args(kv)
    kv.set_defaults(func=cmd_kv)

    rpc = sub.add_parser("rpc", help="TCP RPC thread study",
                         parents=[_run_flags(interface="both", packets=2000,
                                             timeline_interval=500.0)])
    rpc.add_argument("--ops", dest="packets", type=int, metavar="N",
                     help="alias for --packets (RPC op count)")
    _add_obs_args(rpc)
    _add_fault_args(rpc)
    _add_flight_args(rpc)
    _add_sanitize_args(rpc)
    rpc.set_defaults(func=cmd_rpc)

    pf = sub.add_parser("perf", help="simulator self-benchmark (events/sec)")
    pf.add_argument("--quick", action="store_true",
                    help="small scenario sizes (CI smoke)")
    pf.add_argument(
        "--scenario", action="append", metavar="NAME",
        help="run only these scenarios (repeatable; default: every "
             "registered scenario — see --register)",
    )
    pf.add_argument(
        "--register", action="append", metavar="MODULE",
        help="import MODULE before running so its register_scenario() "
             "calls add user scenarios to the registry (repeatable)",
    )
    _add_shard_args(pf)
    pf.add_argument(
        "--compare", nargs="?", const="all", default="loopback",
        choices=["none", "loopback", "all"],
        help="which scenarios also run the determinism comparison: against "
             "REPRO_SIM_SLOWPATH=1, or against a single-process rerun when "
             "--shards is set (default: loopback; bare --compare means all)",
    )
    pf.add_argument("--out", default="BENCH_sim_perf.json", metavar="FILE")
    pf.add_argument("--baseline", default="benchmarks/perf/baseline.json",
                    metavar="FILE")
    pf.add_argument("--repeat", type=int, default=1, metavar="N",
                    help="time each scenario N times, keep the fastest "
                         "(repeats must fingerprint identically)")
    pf.add_argument("--tolerance", type=float, default=0.30, metavar="FRAC",
                    help="allowed events/sec drop vs. baseline (default 0.30)")
    pf.add_argument(
        "--profile", action="store_true",
        help="instead of the suite, run one scenario (first --scenario, "
             "default loopback_64b) under cProfile and write top-25 "
             "cumulative JSON/text artifacts next to --out",
    )
    pf.set_defaults(func=cmd_perf)

    tm = sub.add_parser(
        "timeline",
        help="windowed timeline sparklines + watchdog findings",
    )
    tm.add_argument("--scenario", default="faults_canned", metavar="NAME",
                    help="registered scenario to run (default: faults_canned)")
    tm.add_argument("--workers", type=int, default=None, metavar="N",
                    help="worker processes for the sharded run")
    tm.add_argument("--quick", action="store_true",
                    help="small scenario sizes (CI smoke)")
    tm.add_argument("--interval", type=float, default=DEFAULT_INTERVAL_NS,
                    metavar="NS",
                    help="window width in simulated nanoseconds "
                         f"(default {DEFAULT_INTERVAL_NS:.0f})")
    tm.add_argument("--load", default=None, metavar="FILE",
                    help="render an exported timeline document instead of "
                         "running a scenario")
    tm.add_argument("--out", default=None, metavar="FILE",
                    help="write the merged timeline document "
                         "(JSON, repro.obs/timeline-v1)")
    _add_heartbeat_arg(tm)
    tm.set_defaults(func=cmd_timeline)

    ck = sub.add_parser(
        "check", help="static lint, protocol model check, schedule explore"
    )
    ck.add_argument("--root", default=None, metavar="DIR",
                    help="package root to lint (default: installed repro)")
    ck.add_argument("--tests", default=None, metavar="DIR",
                    help="tests tree for the fingerprint-test presence check")
    ck.add_argument("--json", default=None, metavar="FILE",
                    help="write the lint report (JSON, repro.check/lint-v1)")
    ck.add_argument("--limit", type=int, default=50, metavar="N",
                    help="max findings rows to print (default 50)")
    ck.add_argument("--model", action="store_true",
                    help="run the small-scope protocol model checker")
    ck.add_argument("--model-out", default=None, metavar="FILE",
                    help="write the model report (JSON, repro.check/model-v1)")
    ck.add_argument("--mutate", default=None, metavar="NAME",
                    help="run the model checker against a seeded protocol "
                         "mutation; passes iff a counterexample is found "
                         "and replays (see repro.check.MUTATIONS)")
    ck.add_argument("--explore", action="store_true",
                    help="explore intra-cohort dispatch schedules on small "
                         "scenarios and check fingerprint stability")
    ck.add_argument("--explore-scenario", action="append", default=None,
                    metavar="NAME",
                    help="scenario to explore (repeatable; default "
                         "loopback_64b and kv_zipf)")
    ck.add_argument("--explore-ops", type=int, default=None, metavar="N",
                    help="operations per explored scenario run")
    ck.add_argument("--explore-deviations", type=int, default=None,
                    metavar="N",
                    help="max deviations from the canonical schedule")
    ck.add_argument("--explore-max-schedules", type=int, default=None,
                    metavar="N",
                    help="cap on explored schedules per scenario")
    ck.set_defaults(func=cmd_check)

    t1 = sub.add_parser("table1", help="interconnect bandwidth table")
    t1.set_defaults(func=cmd_table1)

    val = sub.add_parser("validate", help="calibration self-check")
    val.add_argument("--fast", action="store_true",
                     help="skip the end-to-end loopback anchors")
    val.set_defaults(func=cmd_validate)

    fwd = sub.add_parser("forwarding", help="§6 network-function study")
    fwd.add_argument("--platform", default="icx", choices=["icx", "spr"])
    fwd.add_argument("--size", type=int, default=1500)
    fwd.add_argument("--packets", type=int, default=2000)
    fwd.set_defaults(func=cmd_forwarding)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        return 0


if __name__ == "__main__":
    sys.exit(main())
