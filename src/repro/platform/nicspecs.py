"""PCIe NIC hardware parameter sets.

These capture the host-visible behaviour of the two NICs the paper
measures on the ICX server. Timing constants are calibrated against the
paper's §2.2 microbenchmarks and §5.3 loopback results:

* MMIO read round trip ~982ns (8B) / ~1026ns (64B) on ICX + E810;
* write-combining buffer file exhausts at ~24 in-flight 64B buffers,
  after which stores stall >15x longer (Fig 3);
* minimum loopback latency 3.8us (E810) / 2.1us (CX6);
* maximum 64B loopback rate 192Mpps (E810) / 76Mpps (CX6);
* both NICs rated 2x100GbE, on a 252Gbps PCIe 4.0 x16 link.

The CX6 reaches lower minimum latency because it supports writing the
descriptor (with inline payload) directly via MMIO for latency-critical
traffic, skipping the descriptor-DMA round trip; its packet pipeline has
a lower peak rate in this loopback configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class NicHardwareSpec:
    """Host-visible performance model of one PCIe NIC.

    Attributes:
        name: Marketing-ish name used in output tables.
        pcie_one_way_ns: One-way PCIe traversal (MMIO/DMA/doorbell).
        mmio_read_rtt_ns: Host load from BAR space, full round trip.
        dma_rtt_ns: Device-initiated read round trip (request + data).
        pipeline_ns: Internal packet-processing latency per direction.
        pps_capacity: Peak loopback packets/second of the packet engine.
        line_rate_gbps: Ethernet-side rated throughput.
        wc_buffers: Host CPU write-combining buffers usable toward this
            device (platform property, kept here for convenience).
        wc_evict_stall_ns: Store stall when the WC buffer file is full
            and a buffer must be flushed to this device (Fig 3 cliff).
        inline_descriptors: Whether the NIC accepts descriptors (and
            small payloads) via MMIO writes, skipping descriptor DMA
            (the CX6 low-latency path).
        doorbell_coalesce_ns: Device-side delay coalescing doorbells.
    """

    name: str
    pcie_one_way_ns: float
    mmio_read_rtt_ns: float
    dma_rtt_ns: float
    pipeline_ns: float
    pps_capacity: float
    line_rate_gbps: float
    wc_buffers: int = 24
    wc_evict_stall_ns: float = 450.0
    inline_descriptors: bool = False
    doorbell_coalesce_ns: float = 0.0

    def __post_init__(self) -> None:
        if self.pcie_one_way_ns <= 0 or self.dma_rtt_ns <= 0:
            raise ConfigError(f"{self.name}: latencies must be positive")
        if self.pps_capacity <= 0 or self.line_rate_gbps <= 0:
            raise ConfigError(f"{self.name}: capacities must be positive")
        if self.wc_buffers <= 0:
            raise ConfigError(f"{self.name}: wc_buffers must be positive")


#: Intel E810-2CQDA2: descriptor-DMA interface; higher packet engine rate.
E810 = NicHardwareSpec(
    name="E810",
    pcie_one_way_ns=450.0,
    mmio_read_rtt_ns=982.0,
    dma_rtt_ns=950.0,
    pipeline_ns=1330.0,
    pps_capacity=195e6,
    line_rate_gbps=200.0,
    wc_buffers=24,
    wc_evict_stall_ns=500.0,
    inline_descriptors=False,
    doorbell_coalesce_ns=200.0,
)

#: Nvidia ConnectX-6 Dx: MMIO-inline descriptor path at low load; lower
#: peak loopback packet rate in this (non-forwarding) configuration.
CX6 = NicHardwareSpec(
    name="CX6",
    pcie_one_way_ns=450.0,
    mmio_read_rtt_ns=1010.0,
    dma_rtt_ns=950.0,
    pipeline_ns=1000.0,
    pps_capacity=78e6,
    line_rate_gbps=200.0,
    wc_buffers=24,
    wc_evict_stall_ns=280.0,
    inline_descriptors=True,
    doorbell_coalesce_ns=0.0,
)
