"""Server platform presets: Ice Lake (ICX) and Sapphire Rapids (SPR).

All latency constants are calibrated to the paper's own measurements
(Fig 7 access latencies, §2.2 MMIO latencies, the measured maximum UPI
data throughput of 443Gbps on ICX and 1020Gbps on SPR). Everything the
benchmark suite reports downstream is *derived* from these plus the
protocol mechanics — no end-to-end result is pinned.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

from repro.coherence.costs import CostModel
from repro.errors import ConfigError
from repro.mem.address import CACHE_LINE_SIZE
from repro.platform.nicspecs import CX6, E810, NicHardwareSpec
from repro.units import gbps_to_bytes_per_ns


@dataclass(frozen=True)
class PlatformSpec:
    """Everything needed to instantiate a two-socket simulated server.

    Attributes:
        name: "icx" or "spr".
        cores_per_socket: Physical cores per CPU.
        freq_ghz: Core frequency (converts per-op cycle costs to ns).
        l2_bytes: Per-core private L2 capacity.
        llc_bytes: Shared last-level cache capacity (per socket).
        cost: Coherence latency cost model.
        upi_latency_ns: One-way UPI message propagation latency.
        upi_data_gbps: Measured maximum UPI *data* throughput (after
            protocol overhead) — the ceiling the paper reports from mlc.
        upi_header_overhead: Protocol header bytes per message; the raw
            wire bandwidth is sized so data throughput peaks at
            ``upi_data_gbps``.
        pcie_gbps: Host PCIe 4.0 x16 data rate (for NIC baselines).
        ht_speedup: Throughput factor from enabling both hyperthreads of
            a core relative to one thread.
        nics: PCIe NICs installed in this server.
    """

    name: str
    cores_per_socket: int
    freq_ghz: float
    l2_bytes: int
    llc_bytes: int
    cost: CostModel
    upi_latency_ns: float
    upi_data_gbps: float
    upi_header_overhead: int = 12
    pcie_gbps: float = 252.0
    ht_speedup: float = 1.3
    mlp: float = 10.0             # per-core miss-level parallelism
    write_pipeline: float = 2.0   # store-buffer overlap on write misses
    ipc: float = 1.0              # relative core width (cycles -> ns scale)
    nics: Tuple[NicHardwareSpec, ...] = field(default=(E810, CX6))

    def __post_init__(self) -> None:
        if self.cores_per_socket <= 0:
            raise ConfigError("cores_per_socket must be positive")
        if self.freq_ghz <= 0:
            raise ConfigError("freq_ghz must be positive")
        if self.l2_bytes < CACHE_LINE_SIZE or self.llc_bytes < self.l2_bytes:
            raise ConfigError("cache sizes are inconsistent")
        if self.upi_data_gbps <= 0 or self.pcie_gbps <= 0:
            raise ConfigError("link rates must be positive")

    # ------------------------------------------------------------------
    @property
    def l2_lines(self) -> int:
        """Per-core L2 capacity in cache lines."""
        return self.l2_bytes // CACHE_LINE_SIZE

    @property
    def llc_lines(self) -> int:
        """Per-socket LLC capacity in cache lines."""
        return self.llc_bytes // CACHE_LINE_SIZE

    def cycles_to_ns(self, cycles: float) -> float:
        """Convert a core-cycle count to nanoseconds.

        ``ipc`` captures relative pipeline width across generations, so
        per-descriptor instruction costs are stated once in cycles and
        scale sensibly between platforms.
        """
        return cycles / (self.freq_ghz * self.ipc)

    @property
    def upi_wire_bytes_per_ns(self) -> float:
        """Raw wire rate sized so 64B-line data tops out at upi_data_gbps."""
        data = gbps_to_bytes_per_ns(self.upi_data_gbps)
        return data * (CACHE_LINE_SIZE + self.upi_header_overhead) / CACHE_LINE_SIZE

    @property
    def pcie_wire_bytes_per_ns(self) -> float:
        """PCIe link rate in bytes/ns (TLP headers charged separately)."""
        return gbps_to_bytes_per_ns(self.pcie_gbps)

    def nic(self, name: str) -> NicHardwareSpec:
        """Installed NIC by name (case-insensitive)."""
        for spec in self.nics:
            if spec.name.lower() == name.lower():
                return spec
        raise ConfigError(f"platform {self.name!r} has no NIC named {name!r}")

    def with_cost(self, cost: CostModel) -> "PlatformSpec":
        """Copy of this spec with a different cost model (sensitivity)."""
        return replace(self, cost=cost)


def icx() -> PlatformSpec:
    """Dual Ice Lake Xeon Gold 6346: 16 cores @ 3.1GHz, 3x11.2GT/s UPI.

    Fig 7 calibration (ns): local DRAM 72, remote DRAM 144, local L2 48,
    remote L2 114 (writer-homed) / 119 (reader-homed). Measured UPI data
    ceiling 443Gbps.
    """
    cost = CostModel(
        l2_hit=5.0,
        local_cache=48.0,
        local_dram=72.0,
        remote_dram=144.0,
        remote_cache_writer_homed=114.0,
        remote_cache_reader_homed=119.0,
        local_invalidate=30.0,
        remote_invalidate=100.0,
        store_buffer=1.5,
        clflush=80.0,
        nt_link_efficiency=1.0 / 1.8,
    )
    return PlatformSpec(
        name="icx",
        cores_per_socket=16,
        freq_ghz=3.1,
        l2_bytes=1_310_720,        # 1.25 MiB
        llc_bytes=36 * 1024 * 1024,
        cost=cost,
        upi_latency_ns=50.0,
        upi_data_gbps=443.0,
        mlp=10.0,
    )


def spr() -> PlatformSpec:
    """Dual Sapphire Rapids: 56 cores @ 2.0GHz, 4x16GT/s UPI.

    Fig 7 calibration (ns): local DRAM 108, remote DRAM 191, local L2 82,
    remote L2 171 (writer-homed) / 174 (reader-homed). Measured UPI data
    ceiling 1020Gbps (the paper's terabit interconnect).
    """
    cost = CostModel(
        l2_hit=8.0,
        local_cache=82.0,
        local_dram=108.0,
        remote_dram=191.0,
        remote_cache_writer_homed=171.0,
        remote_cache_reader_homed=174.0,
        local_invalidate=40.0,
        remote_invalidate=150.0,
        store_buffer=2.0,
        clflush=90.0,
        nt_link_efficiency=1.0 / 1.6,
    )
    return PlatformSpec(
        name="spr",
        cores_per_socket=56,
        freq_ghz=2.0,
        l2_bytes=2 * 1024 * 1024,
        llc_bytes=105 * 1024 * 1024,
        cost=cost,
        upi_latency_ns=75.0,
        upi_data_gbps=1020.0,
        mlp=26.0,
        ipc=1.6,
    )


def cxl() -> PlatformSpec:
    """Projected CXL-attached NIC platform (the paper's §5.9 target).

    The paper evaluates CC-NIC on UPI but argues the design carries to
    CXL: the CXL Consortium expects 170-250ns access latency for
    CXL-attached memory, and CXL.mem prototypes measure ~1.5x cross-UPI
    remote-DRAM latency. This preset projects the SPR host onto a CXL
    2.0 x16 device link: remote (device-side) latencies stretched 1.3x
    toward the middle of that range, device-link data bandwidth at the
    Table 1 CXL 2.0 rate (63 GB/s = 504 Gbps).

    Everything local to the host socket is unchanged — only the
    host-device path differs, which is exactly the axis Fig 21 sweeps.
    """
    base = spr()
    factor = 1.3
    cost = CostModel(
        l2_hit=base.cost.l2_hit,
        local_cache=base.cost.local_cache,
        local_dram=base.cost.local_dram,
        remote_dram=base.cost.remote_dram * factor,          # ~248ns
        remote_cache_writer_homed=base.cost.remote_cache_writer_homed * factor,
        remote_cache_reader_homed=base.cost.remote_cache_reader_homed * factor,
        local_invalidate=base.cost.local_invalidate,
        remote_invalidate=base.cost.remote_invalidate * factor,
        store_buffer=base.cost.store_buffer,
        clflush=base.cost.clflush,
        nt_link_efficiency=base.cost.nt_link_efficiency,
    )
    return replace(
        base,
        name="cxl",
        cost=cost,
        upi_latency_ns=base.upi_latency_ns * factor,
        upi_data_gbps=504.0,   # CXL 2.0 x16 (Table 1: 63 GB/s)
    )
