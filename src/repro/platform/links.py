"""Interconnect generation data (the paper's Table 1).

Bandwidths as published: per-link GB/s and the maximum total GB/s for
the widest deployed configuration (x16 for PCIe/CXL; 3 links for Ice
Lake UPI, 4 for Sapphire Rapids UPI).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class LinkGeneration:
    """One row of Table 1."""

    protocol: str
    gts: float              # transfer rate, GT/s
    one_link_gbs: float     # one link/lane bandwidth, GB/s
    max_total_gbs: float    # widest configuration bandwidth, GB/s
    config: str             # the configuration the max applies to


LINK_GENERATIONS: Tuple[LinkGeneration, ...] = (
    LinkGeneration("PCIe 4.0", 16.0, 2.0, 31.5, "x16"),
    LinkGeneration("PCIe 5.0, CXL 1.0-2.0", 32.0, 3.9, 63.0, "x16"),
    LinkGeneration("PCIe 6.0, CXL 3.0", 64.0, 7.6, 121.0, "x16"),
    LinkGeneration("Ice Lake UPI", 11.2, 22.4, 67.2, "x3"),
    LinkGeneration("Sapphire Rapids UPI", 16.0, 48.0, 192.0, "x4"),
)


def table1_rows() -> List[Tuple[str, float, float, float]]:
    """Rows of Table 1 as (protocol, GT/s, one-link GB/s, max GB/s)."""
    return [
        (g.protocol, g.gts, g.one_link_gbs, g.max_total_gbs)
        for g in LINK_GENERATIONS
    ]
