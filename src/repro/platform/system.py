"""System builder: a simulated two-socket server.

A :class:`System` bundles the simulator, address space, UPI link and
coherence fabric, and knows which socket plays "host" and which plays
"NIC" (the paper's software-NIC methodology, §4). The same-socket
deployment of Fig 18 is a constructor flag; the Fig 21 sensitivity study
uses the latency/bandwidth scale factors.
"""

from __future__ import annotations

from typing import Optional

from repro.coherence.cache import CacheAgent
from repro.coherence.fabric import CoherenceFabric
from repro.interconnect.link import Link
from repro.mem.memtype import MemType
from repro.mem.region import Region
from repro.mem.space import AddressSpace
from repro.platform.presets import PlatformSpec
from repro.sim.engine import Simulator


class System:
    """A ready-to-use simulated dual-socket server.

    Args:
        spec: Platform preset (``icx()`` or ``spr()``).
        same_socket: Deploy the NIC agents on the host socket (Fig 18),
            eliminating all cross-UPI communication.
        prefetch_host: Enable the hardware prefetcher on host agents
            (the paper's default setting for all main results).
        prefetch_nic: Enable the prefetcher on NIC agents.
        link_latency_factor: Multiplier on cross-socket access latency
            (Fig 21a sensitivity).
        link_bandwidth_factor: Multiplier on UPI wire bandwidth
            (Fig 21b sensitivity).
    """

    HOST_SOCKET = 0
    NIC_SOCKET = 1

    def __init__(
        self,
        spec: PlatformSpec,
        same_socket: bool = False,
        prefetch_host: bool = True,
        prefetch_nic: bool = False,
        link_latency_factor: float = 1.0,
        link_bandwidth_factor: float = 1.0,
    ) -> None:
        self.spec = spec
        self.same_socket = same_socket
        self.prefetch_host = prefetch_host
        self.prefetch_nic = prefetch_nic
        self.sim = Simulator()
        self.space = AddressSpace()
        self.link = Link(
            self.sim,
            name="upi",
            latency_ns=spec.upi_latency_ns * link_latency_factor,
            bandwidth_bytes_per_ns=spec.upi_wire_bytes_per_ns * link_bandwidth_factor,
            header_overhead=spec.upi_header_overhead,
        )
        cost = spec.cost
        if link_latency_factor != 1.0:
            cost = cost.scaled_remote(link_latency_factor)
        self.cost = cost
        self.fabric = CoherenceFabric(
            sim=self.sim,
            space=self.space,
            cost=cost,
            link=self.link,
            mlp=spec.mlp,
            write_pipeline=spec.write_pipeline,
        )

    # ------------------------------------------------------------------
    # Agents
    # ------------------------------------------------------------------
    @property
    def nic_socket(self) -> int:
        """Socket index hosting the (software) NIC."""
        return self.HOST_SOCKET if self.same_socket else self.NIC_SOCKET

    def _core_capacity(self) -> int:
        """Effective per-core caching capacity in lines.

        Agents model a core's private L2 *plus* its share of the
        socket's LLC: the fabric has no separate LLC level, and without
        the share, working sets that in hardware spill harmlessly into
        the multi-megabyte LLC would thrash to DRAM across the
        interconnect. Detailed simulations run only a few agents per
        socket, so a quarter of the LLC per agent is conservative.
        """
        return self.spec.l2_lines + self.spec.llc_lines // 4

    def new_host_core(self, name: str, prefetch: Optional[bool] = None) -> CacheAgent:
        """A host CPU core's caching agent."""
        enabled = self.prefetch_host if prefetch is None else prefetch
        return self.fabric.new_agent(
            name, self.HOST_SOCKET, capacity_lines=self._core_capacity(),
            prefetch=enabled,
        )

    def new_nic_core(self, name: str, prefetch: Optional[bool] = None) -> CacheAgent:
        """A NIC-side processing agent (a core of the software NIC)."""
        enabled = self.prefetch_nic if prefetch is None else prefetch
        return self.fabric.new_agent(
            name, self.nic_socket, capacity_lines=self._core_capacity(),
            prefetch=enabled,
        )

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def alloc_host(self, name: str, size: int, memtype: MemType = MemType.WRITEBACK) -> Region:
        """Allocate memory homed on the host socket."""
        return self.space.allocate(name, size, home=self.HOST_SOCKET, memtype=memtype)

    def alloc_nic(self, name: str, size: int, memtype: MemType = MemType.WRITEBACK) -> Region:
        """Allocate memory homed on the NIC socket (coherent device memory)."""
        return self.space.allocate(name, size, home=self.nic_socket, memtype=memtype)

    def alloc_on(self, name: str, size: int, socket: int) -> Region:
        """Allocate write-back memory homed on an explicit socket."""
        return self.space.allocate(name, size, home=socket, memtype=MemType.WRITEBACK)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def cycles(self, count: float) -> float:
        """Core-cycle count converted to ns on this platform."""
        return self.spec.cycles_to_ns(count)

    @property
    def now(self) -> float:
        return self.sim.now

    def __repr__(self) -> str:
        mode = "same-socket" if self.same_socket else "cross-UPI"
        return f"<System {self.spec.name} {mode}>"
