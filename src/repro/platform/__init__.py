"""Platform presets and system builders (ICX, SPR, PCIe NIC specs)."""

from repro.platform.links import LINK_GENERATIONS, LinkGeneration, table1_rows
from repro.platform.nicspecs import CX6, E810, NicHardwareSpec
from repro.platform.presets import PlatformSpec, cxl, icx, spr
from repro.platform.system import System

__all__ = [
    "CX6",
    "E810",
    "LINK_GENERATIONS",
    "LinkGeneration",
    "NicHardwareSpec",
    "PlatformSpec",
    "System",
    "cxl",
    "icx",
    "spr",
    "table1_rows",
]
