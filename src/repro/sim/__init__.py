"""Discrete-event simulation engine and statistics utilities."""

from repro.sim.engine import Delay, Process, Simulator
from repro.sim.stats import Counter, Histogram, RateMeter
from repro.sim.rng import make_rng

__all__ = [
    "Counter",
    "Delay",
    "Histogram",
    "Process",
    "RateMeter",
    "Simulator",
    "make_rng",
]
