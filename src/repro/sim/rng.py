"""Seeded random number generation.

Every stochastic component takes an explicit ``random.Random`` so whole
experiments are reproducible from one seed. ``make_rng`` derives stable
per-component streams from a root seed and a label; ``derive_seed``
exposes the same derivation as an integer, which is how the shard layer
gives every shard of a partitioned run an independent, reproducible
seed family (`shard i` of root seed ``s`` always gets the same streams,
no matter how many worker processes execute the partition).
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(seed: int, label: str = "") -> int:
    """Derive a stable 64-bit child seed from ``(seed, label)``.

    Distinct labels give independent seeds; the same pair always gives
    the same seed, regardless of Python hash randomization or process
    boundaries.
    """
    digest = hashlib.sha256(f"{seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def make_rng(seed: int, label: str = "") -> random.Random:
    """Create a ``random.Random`` stream derived from ``(seed, label)``."""
    return random.Random(derive_seed(seed, label))
