"""Seeded random number generation.

Every stochastic component takes an explicit ``random.Random`` so whole
experiments are reproducible from one seed. ``make_rng`` derives stable
per-component streams from a root seed and a label.
"""

from __future__ import annotations

import hashlib
import random


def make_rng(seed: int, label: str = "") -> random.Random:
    """Create a ``random.Random`` stream derived from ``(seed, label)``.

    Distinct labels give independent streams; the same pair always gives
    the same stream, regardless of Python hash randomization.
    """
    digest = hashlib.sha256(f"{seed}:{label}".encode("utf-8")).digest()
    derived = int.from_bytes(digest[:8], "big")
    return random.Random(derived)
