"""Bucketed (calendar) event queue for large pending-event counts.

A classic calendar queue maps each event to a "day" ``floor(when /
width)`` and stores days round-robin across a fixed number of buckets.
Popping scans forward from the current day; with a width near the mean
inter-event gap, each pop touches O(1) buckets, beating a binary heap's
O(log n) once tens of thousands of events are pending.

The engine only migrates to a :class:`CalendarQueue` on its fast path
(see :class:`repro.sim.engine.Simulator`); ordering is the same total
order the heap uses — ``(when, seq)`` via list comparison of the
``[when, seq, kind, payload]`` records — so the schedule is identical.

Two invariants the engine guarantees make the cursor scan correct:

* pushes never go backwards in time past the last popped record, so no
  record ever lands on a day earlier than the cursor;
* records with equal ``when`` share a day (and therefore a bucket),
  where insertion order is the ``seq`` tie-break.
"""

from __future__ import annotations

from bisect import insort
from typing import Iterable, List

#: Fallback day width (ns) when the seed records give no usable estimate.
_DEFAULT_WIDTH = 64.0


class CalendarQueue:
    """Priority queue over mutable ``[when, seq, ...]`` event records."""

    #: Bucket-count bounds; the count is a power of two near the seed size.
    MIN_BUCKETS = 64
    MAX_BUCKETS = 1 << 15
    #: Rebuild with more buckets when length exceeds this many per bucket.
    RESIZE_FACTOR = 4

    def __init__(self, records: Iterable[list], width: float = 0.0) -> None:
        records = list(records)
        self._width = width if width > 0.0 else self._estimate_width(records)
        nb = max(1, len(records)).bit_length()
        self._nb = max(self.MIN_BUCKETS, min(self.MAX_BUCKETS, 1 << nb))
        self._buckets: List[list] = [[] for _ in range(self._nb)]
        self._len = 0
        if records:
            earliest = min(records)
            self._day = int(earliest[0] / self._width)
        else:
            self._day = 0
        for rec in records:
            self.push(rec)

    @staticmethod
    def _estimate_width(records: list) -> float:
        """Day width targeting a few events per bucket-day."""
        if len(records) < 2:
            return _DEFAULT_WIDTH
        whens = sorted(rec[0] for rec in records)
        span = whens[-1] - whens[0]
        if span <= 0.0:
            return _DEFAULT_WIDTH
        return max(span / (len(whens) - 1), 1e-6) * 3.0

    # ------------------------------------------------------------------
    def push(self, rec: list) -> None:
        """Insert a record, keeping its bucket sorted by ``(when, seq)``."""
        insort(self._buckets[int(rec[0] / self._width) % self._nb], rec)
        self._len += 1
        if self._len > self._nb * self.RESIZE_FACTOR and self._nb < self.MAX_BUCKETS:
            self._rebuild()

    def pop(self) -> list:
        """Remove and return the globally earliest record."""
        if not self._len:
            raise IndexError(  # repro: allow(error-taxonomy) container contract mirrors list.pop
                "pop from empty CalendarQueue"
            )
        nb = self._nb
        width = self._width
        buckets = self._buckets
        day = self._day
        for offset in range(nb):
            d = day + offset
            bucket = buckets[d % nb]
            if bucket and bucket[0][0] < (d + 1) * width:
                self._day = d
                self._len -= 1
                return bucket.pop(0)
        # Sparse stretch: no event within the next full bucket cycle.
        # Jump the cursor straight to the earliest record.
        best = None
        for bucket in buckets:
            if bucket and (best is None or bucket[0] < best[0]):
                best = bucket
        rec = best.pop(0)
        self._len -= 1
        self._day = int(rec[0] / width)
        return rec

    def _rebuild(self) -> None:
        """Re-bucket everything with a larger table and fresh width."""
        records = [rec for bucket in self._buckets for rec in bucket]
        self.__init__(records)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._len

    def __bool__(self) -> bool:
        return self._len > 0

    def __repr__(self) -> str:
        return (
            f"<CalendarQueue len={self._len} buckets={self._nb} "
            f"width={self._width:.3g}ns day={self._day}>"
        )
