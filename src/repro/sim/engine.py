"""A small discrete-event simulation engine.

The engine advances a virtual nanosecond clock and interleaves *processes*.
A process is a Python generator that yields the number of nanoseconds it
wants to sleep before its next step::

    def poller(sim):
        while True:
            work_ns = do_poll()
            yield work_ns

    sim = Simulator()
    sim.spawn(poller(sim), name="poller")
    sim.run(until=10_000)

Yielding ``0`` (or any non-negative float) reschedules the process after
that much virtual time; other processes scheduled earlier run first.
Processes end by returning. The engine is deterministic: ties in time are
broken by spawn order, then scheduling order.
"""

from __future__ import annotations

import heapq
from typing import Callable, Generator, Iterable, Optional

from repro.errors import SimulationError
from repro.obs.instrument import Instrumented

#: Type of the generators the engine runs.
ProcessBody = Generator[float, None, None]


class Delay(float):
    """Explicit wrapper for a yielded delay; plain floats work too."""


class Process:
    """Handle to a spawned process.

    Attributes:
        name: Human-readable label, used in error messages.
        done: True once the generator has returned or was stopped.
    """

    _ids = 0

    def __init__(self, body: ProcessBody, name: str):
        if not hasattr(body, "send"):
            raise SimulationError(
                f"process {name!r} must be a generator, got {type(body).__name__}"
            )
        self.body = body
        self.name = name
        self.done = False
        Process._ids += 1
        self.pid = Process._ids

    def stop(self) -> None:
        """Prevent any further steps of this process."""
        self.done = True
        self.body.close()

    def __repr__(self) -> str:
        state = "done" if self.done else "running"
        return f"<Process {self.name!r} pid={self.pid} {state}>"


class Simulator(Instrumented):
    """Event loop owning the virtual clock.

    The clock starts at 0.0 ns and only moves forward. All model objects
    that need the current time should hold a reference to the simulator
    and read :attr:`now`.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list = []
        self._seq = 0
        self._processes: list[Process] = []
        self.events_executed = 0

    def _obs_component(self) -> str:
        return "sim"

    def _register_metrics(self, registry) -> None:
        registry.gauge(self.obs_name, "now_ns", fn=lambda: self.now)
        registry.gauge(
            self.obs_name, "events_executed", fn=lambda: float(self.events_executed)
        )
        registry.gauge(self.obs_name, "pending_events", fn=lambda: float(self.pending))
        registry.gauge(
            self.obs_name,
            "alive_processes",
            fn=lambda: float(len(list(self.alive_processes()))),
        )

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def spawn(self, body: ProcessBody, name: str = "proc", delay: float = 0.0) -> Process:
        """Register a generator as a process; first step runs after ``delay``."""
        proc = Process(body, name)
        self._processes.append(proc)
        self._schedule(self.now + delay, self._step, proc)
        return proc

    def call_at(self, when: float, fn: Callable[[], None]) -> None:
        """Run a plain callback at absolute virtual time ``when``."""
        if when < self.now:
            raise SimulationError(f"cannot schedule in the past: {when} < {self.now}")
        self._schedule(when, self._call, fn)

    def call_after(self, delay: float, fn: Callable[[], None]) -> None:
        """Run a plain callback ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self._schedule(self.now + delay, self._call, fn)

    def _schedule(self, when: float, kind: Callable, payload) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, kind, payload))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> float:
        """Run events until the queue drains or a bound is hit.

        Args:
            until: Stop once the clock would pass this absolute time.
            max_events: Stop after this many events (safety valve).
            stop_when: Checked after every event; True stops the run.

        Returns:
            The virtual time at which the run stopped.
        """
        executed = 0
        while self._heap:
            when, _seq, kind, payload = self._heap[0]
            if until is not None and when > until:
                self.now = until
                break
            heapq.heappop(self._heap)
            self.now = when
            kind(payload)
            self.events_executed += 1
            executed += 1
            if stop_when is not None and stop_when():
                break
            if max_events is not None and executed >= max_events:
                break
        return self.now

    def _call(self, fn: Callable[[], None]) -> None:
        fn()

    def _step(self, proc: Process) -> None:
        if proc.done:
            return
        try:
            delay = next(proc.body)
        except StopIteration:
            proc.done = True
            return
        if delay is None or float(delay) < 0:
            proc.done = True
            raise SimulationError(
                f"process {proc.name!r} yielded invalid delay {delay!r}"
            )
        self._schedule(self.now + float(delay), self._step, proc)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of events currently queued."""
        return len(self._heap)

    def alive_processes(self) -> Iterable[Process]:
        """Processes that have not finished."""
        return [p for p in self._processes if not p.done]

    def __repr__(self) -> str:
        return f"<Simulator now={self.now:.1f}ns pending={self.pending}>"
