"""A small discrete-event simulation engine.

The engine advances a virtual nanosecond clock and interleaves *processes*.
A process is a Python generator that yields the number of nanoseconds it
wants to sleep before its next step::

    def poller(sim):
        while True:
            work_ns = do_poll()
            yield work_ns

    sim = Simulator()
    sim.spawn(poller(sim), name="poller")
    sim.run(until=10_000)

Yielding ``0`` (or any non-negative float) reschedules the process after
that much virtual time; other processes scheduled earlier run first.
Processes end by returning. The engine is deterministic: ties in time are
broken by spawn order, then scheduling order.

Two execution paths produce bit-identical schedules:

* The default fast path reuses one mutable event record per process step
  instead of allocating a fresh tuple, dispatches a rescheduled step
  directly when it is strictly earlier than every queued event (the
  dominant single-runnable-process case), and transparently switches to a
  bucketed :class:`~repro.sim.calqueue.CalendarQueue` when the pending
  event count grows large.
* Setting ``REPRO_SIM_SLOWPATH=1`` in the environment (or passing
  ``slowpath=True``) selects the straightforward heap-per-event loop the
  engine originally shipped with. It exists as an escape hatch and as the
  reference implementation the determinism tests compare against.

``events_executed`` counts an event as executed the moment it is taken
off the queue, *before* its handler runs. If a process step raises, the
failing event is therefore included in the count, ``now`` holds its
timestamp, and ``stop_when`` is not consulted for it — the exception
propagates out of :meth:`Simulator.run` with the simulator in that
consistent state.
"""

from __future__ import annotations

import heapq
import os
from typing import Callable, Generator, Iterable, Optional

from repro.errors import SimulationError
from repro.obs.instrument import Instrumented
from repro.sim.calqueue import CalendarQueue

#: Type of the generators the engine runs.
ProcessBody = Generator[float, None, None]

#: Event-record kind codes. Records are mutable lists
#: ``[when, seq, kind, payload]``; ``seq`` is unique per simulator so
#: record comparison never reaches the payload.
_STEP = 0
_CALL = 1


def slowpath_requested() -> bool:
    """True when ``REPRO_SIM_SLOWPATH=1`` asks for the reference loop."""
    return os.environ.get("REPRO_SIM_SLOWPATH", "") == "1"


class Delay(float):
    """Explicit wrapper for a yielded delay; plain floats work too."""


class Process:
    """Handle to a spawned process.

    Attributes:
        name: Human-readable label, used in error messages.
        done: True once the generator has returned or was stopped.
        pid: Per-simulator id (spawn order, starting at 1), assigned by
            :meth:`Simulator.spawn`. There is deliberately no global
            fallback counter: pids are a per-simulator namespace, and a
            shared class-level counter would leak spawn history between
            simulators living in one interpreter.
        footprint: Optional frozenset of opaque tokens naming the state
            this process touches. Two same-timestamp steps whose
            footprints are disjoint commute, which lets the cohort
            explorer (:mod:`repro.check.explore`) prune redundant
            dispatch orders. ``None`` (the default) means "unknown" and
            is never treated as disjoint from anything.
    """

    __slots__ = ("body", "name", "done", "pid", "footprint")

    def __init__(
        self,
        body: ProcessBody,
        name: str,
        pid: Optional[int] = None,
        footprint: Optional[frozenset] = None,
    ):
        if not hasattr(body, "send"):
            raise SimulationError(
                f"process {name!r} must be a generator, got {type(body).__name__}"
            )
        if pid is None:
            raise SimulationError(
                f"process {name!r} constructed without a pid; create processes "
                "through Simulator.spawn(), which assigns per-simulator ids"
            )
        self.body = body
        self.name = name
        self.done = False
        self.pid = pid
        self.footprint = None if footprint is None else frozenset(footprint)

    def stop(self) -> None:
        """Prevent any further steps of this process."""
        self.done = True
        self.body.close()

    def __repr__(self) -> str:
        state = "done" if self.done else "running"
        return f"<Process {self.name!r} pid={self.pid} {state}>"


class Simulator(Instrumented):
    """Event loop owning the virtual clock.

    The clock starts at 0.0 ns and only moves forward. All model objects
    that need the current time should hold a reference to the simulator
    and read :attr:`now`.

    Args:
        slowpath: Force the reference event loop. ``None`` (default)
            consults the ``REPRO_SIM_SLOWPATH`` environment variable at
            construction, so fast and reference simulators can coexist
            in one interpreter.
    """

    #: Pending-event count at which the fast path migrates the heap into
    #: a bucketed calendar queue (O(1)-ish hold/pop under heavy load).
    CALENDAR_THRESHOLD = 4096

    #: Optional :class:`repro.obs.timeline.TimelineSampler`; when
    #: attached, window rolls piggyback on clock advances. Never
    #: scheduled as an event, so ``events_executed``/``now`` — and run
    #: fingerprints — are identical with or without it.
    timeline = None

    #: Optional cohort-dispatch chooser ``(when, records) -> index``,
    #: used by :mod:`repro.check.explore` to permute intra-cohort
    #: dispatch order. Class-level ``None`` so unexplored runs pay one
    #: attribute load in :meth:`run`; attaching forces the reference
    #: loop (the fast loop's cohort draining assumes seq order). The
    #: ``records`` argument is the seq-ordered list of every pending
    #: ``[when, seq, kind, payload]`` record tied at ``when``; returning
    #: ``0`` everywhere reproduces the canonical schedule exactly.
    chooser = None

    def __init__(self, slowpath: Optional[bool] = None) -> None:
        self.now: float = 0.0
        self._heap: list = []
        self._cal: Optional[CalendarQueue] = None
        self._held: Optional[list] = None
        self._seq = 0
        self._processes: list[Process] = []
        self._done_count = 0
        self._pid_counter = 0
        self.events_executed = 0
        if slowpath is None:
            slowpath = slowpath_requested()
        self.slowpath = bool(slowpath)

    def _obs_component(self) -> str:
        return "sim"

    def _register_metrics(self, registry) -> None:
        registry.gauge(self.obs_name, "now_ns", fn=lambda: self.now)
        registry.gauge(
            self.obs_name, "events_executed", fn=lambda: float(self.events_executed)
        )
        registry.gauge(self.obs_name, "pending_events", fn=lambda: float(self.pending))
        # Non-mutating by contract: alive_processes() compacts the
        # process table, and a metrics read must never perturb the
        # simulator's compaction bookkeeping.
        registry.gauge(
            self.obs_name,
            "alive_processes",
            fn=lambda: float(sum(1 for p in self._processes if not p.done)),
        )

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def spawn(
        self,
        body: ProcessBody,
        name: str = "proc",
        delay: float = 0.0,
        footprint: Optional[frozenset] = None,
    ) -> Process:
        """Register a generator as a process; first step runs after ``delay``.

        ``footprint`` optionally names the state the process touches
        (see :class:`Process`); it only matters to the cohort explorer.
        """
        self._pid_counter += 1
        proc = Process(body, name, pid=self._pid_counter, footprint=footprint)
        self._processes.append(proc)
        self._schedule(self.now + delay, _STEP, proc)
        return proc

    def call_at(self, when: float, fn: Callable[[], None]) -> None:
        """Run a plain callback at absolute virtual time ``when``."""
        if when < self.now:
            raise SimulationError(f"cannot schedule in the past: {when} < {self.now}")
        self._schedule(when, _CALL, fn)

    def call_after(self, delay: float, fn: Callable[[], None]) -> None:
        """Run a plain callback ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self._schedule(self.now + delay, _CALL, fn)

    def _schedule(self, when: float, kind: int, payload) -> None:
        self._seq += 1
        rec = [when, self._seq, kind, payload]
        cal = self._cal
        if cal is not None:
            cal.push(rec)
            return
        heap = self._heap
        heapq.heappush(heap, rec)
        if (
            len(heap) >= self.CALENDAR_THRESHOLD
            and not self.slowpath
            and self.chooser is None
        ):
            self._cal = CalendarQueue(heap)
            self._heap = []

    def _requeue(self, rec: list) -> None:
        """Return a popped-but-unexecuted record to the pending set."""
        cal = self._cal
        if cal is not None:
            cal.push(rec)
        else:
            heapq.heappush(self._heap, rec)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> float:
        """Run events until the queue drains or a bound is hit.

        Args:
            until: Stop once the clock would pass this absolute time.
            max_events: Stop after this many events (safety valve).
            stop_when: Checked after every event; True stops the run.

        Returns:
            The virtual time at which the run stopped.

        ``events_executed`` is incremented when an event is dequeued,
        before its handler runs: if the handler raises, the failing
        event is counted, ``now`` is its timestamp, and ``stop_when``
        is not called for it.
        """
        if self.slowpath or self.chooser is not None:
            if self._cal is not None:
                # A chooser attached after the fast path migrated to the
                # calendar queue: fold the pending set back into a heap
                # so the reference loop sees every record.
                cal = self._cal
                self._cal = None
                heap = self._heap
                while len(cal):
                    heapq.heappush(heap, cal.pop())
            return self._run_slow(until, max_events, stop_when)
        return self._run_fast(until, max_events, stop_when)

    def _run_slow(
        self,
        until: Optional[float],
        max_events: Optional[int],
        stop_when: Optional[Callable[[], bool]],
    ) -> float:
        """Reference loop: one heappop + one handler call per event.

        With a :attr:`chooser` attached, every set of timestamp-tied
        records becomes a *choice point*: the tied records are popped in
        seq order, the chooser picks which one dispatches now, and the
        rest are requeued (seq keys unchanged, so relative order among
        the survivors is preserved). A chooser that always returns 0
        reproduces this loop's canonical schedule event-for-event.
        """
        executed = 0
        heap = self._heap
        while heap:
            rec = heap[0]
            when = rec[0]
            if until is not None and when > until:
                self.now = until
                break
            chooser = self.chooser
            if chooser is not None:
                tied = []
                while heap and heap[0][0] == when:
                    tied.append(heapq.heappop(heap))
                if len(tied) > 1:
                    index = chooser(when, tied)
                    if not isinstance(index, int) or not 0 <= index < len(tied):
                        raise SimulationError(
                            f"chooser returned invalid cohort index {index!r} "
                            f"for {len(tied)} tied records at t={when}"
                        )
                    rec = tied.pop(index)
                    for other in tied:
                        self._requeue(other)
                else:
                    rec = tied[0]
            else:
                heapq.heappop(heap)
            self.now = when
            tl = self.timeline
            if tl is not None and when >= tl.next_ns:
                tl.roll(when)
            self.events_executed += 1
            executed += 1
            if rec[2] == _STEP:
                self._step(rec[3])
            else:
                rec[3]()
            if stop_when is not None and stop_when():
                break
            if max_events is not None and executed >= max_events:
                break
        return self.now

    def _run_fast(
        self,
        until: Optional[float],
        max_events: Optional[int],
        stop_when: Optional[Callable[[], bool]],
    ) -> float:
        """Fast loop: cohort draining, record reuse, direct dispatch.

        Produces the exact event order of :meth:`_run_slow`:

        * Same-timestamp records drain as one *cohort* per outer
          iteration: the clock is written once and ``until`` compared
          once per cohort instead of per event. Both are exact — every
          member shares the timestamp those checks saw. Dispatch stays
          seq-ordered because members are taken off the queue one at a
          time, so an event a handler schedules *at the cohort's
          timestamp* joins the live cohort at its seq position.
        * ``stop_when`` is still consulted after every event: it may
          have side effects (it is allowed to schedule), so a
          per-cohort check would diverge from the reference loop.
        * A record is only held for direct dispatch when it is
          *strictly* earlier than every queued event, so seq
          tie-breaking is preserved, and any event a ``stop_when``
          callback schedules ahead of the held record demotes it back
          onto the heap.
        """
        executed = 0
        events = self.events_executed
        heap = self._heap
        heappush = heapq.heappush
        heappop = heapq.heappop
        rec: Optional[list] = None
        try:
            while True:
                if rec is None:
                    cal = self._cal
                    if cal is not None:
                        if not len(cal):
                            self._cal = None
                            continue
                        rec = cal.pop()
                    elif heap:
                        rec = heappop(heap)
                    else:
                        break
                when = rec[0]
                if until is not None and when > until:
                    self._requeue(rec)
                    rec = None
                    self.now = until
                    break
                self.now = when
                tl = self.timeline
                if tl is not None and when >= tl.next_ns:
                    tl.roll(when)
                # ---- cohort at `when`: dispatch rec and every queued
                # same-timestamp successor without re-checking `until`
                # or rewriting the clock.
                while True:
                    events += 1
                    self.events_executed = events
                    executed += 1
                    cur = rec
                    rec = None
                    if cur[2] == _STEP:
                        proc = cur[3]
                        if proc.done:
                            self._note_done()
                        else:
                            try:
                                delay = proc.body.send(None)
                            except StopIteration:
                                proc.done = True
                                self._note_done()
                            else:
                                try:
                                    invalid = delay is None or delay < 0
                                except TypeError:
                                    invalid = True
                                if invalid:
                                    proc.done = True
                                    self._note_done()
                                    raise SimulationError(
                                        f"process {proc.name!r} yielded invalid "
                                        f"delay {delay!r}"
                                    )
                                nxt = when + delay
                                self._seq += 1
                                cur[0] = nxt
                                cur[1] = self._seq
                                cal = self._cal
                                if cal is not None:
                                    cal.push(cur)
                                elif heap and nxt >= heap[0][0]:
                                    heappush(heap, cur)
                                else:
                                    rec = cur
                    else:
                        cur[3]()
                    if stop_when is not None:
                        self._held = rec
                        stopped = stop_when()
                        self._held = None
                        if stopped:
                            return self.now
                        if rec is not None and heap and heap[0] < rec:
                            heappush(heap, rec)
                            rec = None
                    if max_events is not None and executed >= max_events:
                        return self.now
                    if rec is None:
                        # Pull the next record; a non-tie is carried to
                        # the outer loop as the next cohort's head (no
                        # extra peek or requeue on the common path).
                        cal = self._cal
                        if cal is not None:
                            if not len(cal):
                                self._cal = None
                                break
                            rec = cal.pop()
                        elif heap:
                            rec = heappop(heap)
                        else:
                            break
                    if rec[0] != when:
                        break
            return self.now
        finally:
            self._held = None
            if rec is not None:
                self._requeue(rec)

    def _call(self, fn: Callable[[], None]) -> None:
        fn()

    def _step(self, proc: Process) -> None:
        if proc.done:
            self._note_done()
            return
        try:
            delay = next(proc.body)
        except StopIteration:
            proc.done = True
            self._note_done()
            return
        try:
            invalid = delay is None or delay < 0
        except TypeError:
            invalid = True
        if invalid:
            proc.done = True
            self._note_done()
            raise SimulationError(
                f"process {proc.name!r} yielded invalid delay {delay!r}"
            )
        self._schedule(self.now + delay, _STEP, proc)

    def _note_done(self) -> None:
        """Account one finished process; compact the table when mostly dead."""
        self._done_count += 1
        if self._done_count >= 64 and self._done_count * 2 >= len(self._processes):
            self._processes = [p for p in self._processes if not p.done]
            self._done_count = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of events currently queued (including any held record)."""
        n = len(self._heap)
        if self._cal is not None:
            n += len(self._cal)
        if self._held is not None:
            n += 1
        return n

    def alive_processes(self) -> Iterable[Process]:
        """Processes that have not finished (compacts the table)."""
        alive = [p for p in self._processes if not p.done]
        self._processes = list(alive)
        self._done_count = 0
        return alive

    def __repr__(self) -> str:
        return f"<Simulator now={self.now:.1f}ns pending={self.pending}>"
