"""Event tracing for simulation debugging.

A :class:`Tracer` records timestamped events from any component that
accepts one; the loopback and application harnesses do not trace by
default (tracing at packet rates is voluminous), but attaching a tracer
to a fabric or driver during debugging answers "what exactly happened
around t=X" without print statements.

Usage::

    tracer = Tracer(capacity=10000)
    with tracer.attach_fabric(system.fabric):
        run_loopback(...)
    for event in tracer.between(1000, 2000):
        print(event)
"""

from __future__ import annotations

import contextlib
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Iterator, List


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event."""

    when: float
    category: str
    actor: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.when:12.1f}ns] {self.category:<10} {self.actor:<14} {self.detail}"


class Tracer:
    """Bounded in-memory event recorder."""

    def __init__(self, capacity: int = 100_000) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.dropped = 0
        self._filters: List[Callable[[TraceEvent], bool]] = []

    # ------------------------------------------------------------------
    def record(self, when: float, category: str, actor: str, detail: str) -> None:
        """Append one event (oldest events roll off past capacity)."""
        event = TraceEvent(when=when, category=category, actor=actor, detail=detail)
        for keep in self._filters:
            if not keep(event):
                return
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)

    def add_filter(self, keep: Callable[[TraceEvent], bool]) -> None:
        """Only record events for which every filter returns True."""
        self._filters.append(keep)

    # ------------------------------------------------------------------
    def events(self) -> List[TraceEvent]:
        """All retained events, oldest first."""
        return list(self._events)

    def between(self, start: float, end: float) -> List[TraceEvent]:
        """Events with ``start <= when < end``."""
        return [e for e in self._events if start <= e.when < end]

    def by_category(self, category: str) -> List[TraceEvent]:
        """Events of one category."""
        return [e for e in self._events if e.category == category]

    def __len__(self) -> int:
        return len(self._events)

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0

    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def attach_fabric(self, fabric) -> Iterator["Tracer"]:
        """Record every coherence access while the context is active.

        Wraps ``fabric.access`` (and therefore read/write/access_burst's
        per-line work goes through the same path); restores the original
        method on exit.
        """
        original = fabric.access

        def traced(agent, addr, size, write):
            latency = original(agent, addr, size, write)
            region = fabric.space.try_region_of(addr)
            name = region.name if region is not None else "?"
            self.record(
                fabric.sim.now,
                "write" if write else "read",
                agent.name,
                f"{name}+{addr - (region.base if region else 0):#x} "
                f"{size}B -> {latency:.1f}ns",
            )
            return latency

        fabric.access = traced
        try:
            yield self
        finally:
            fabric.access = original
