"""Event tracing for simulation debugging.

A :class:`Tracer` records timestamped events from any component that
accepts one; the loopback and application harnesses do not trace by
default (tracing at packet rates is voluminous), but attaching a tracer
to a fabric or driver during debugging answers "what exactly happened
around t=X" without print statements.

The tracer is a thin adapter over the unified
:class:`repro.obs.spans.SpanTracer` spine: every ``record`` becomes a
zero-duration instant span, so legacy debug traces and ``repro.obs``
span timelines share one bounded store, one drop accounting and one
Chrome-trace exporter. The flat :class:`TraceEvent` query API
(``between``, ``by_category``) is preserved on top.

Usage::

    tracer = Tracer(capacity=10000)
    with tracer.attach_fabric(system.fabric):
        run_loopback(...)
    for event in tracer.between(1000, 2000):
        print(event)
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List

from repro.errors import ConfigError
from repro.obs.spans import SpanTracer


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event."""

    when: float
    category: str
    actor: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.when:12.1f}ns] {self.category:<10} {self.actor:<14} {self.detail}"


class Tracer:
    """Bounded in-memory event recorder (adapter over SpanTracer)."""

    def __init__(self, capacity: int = 100_000) -> None:
        if capacity <= 0:
            raise ConfigError("capacity must be positive")
        self.capacity = capacity
        # The single tracing spine: events live as instant spans, so
        # capacity bounding and drop counting are SpanTracer's.
        self._spans = SpanTracer(capacity=capacity)
        self._filters: List[Callable[[TraceEvent], bool]] = []

    # ------------------------------------------------------------------
    @property
    def dropped(self) -> int:
        """Events evicted past capacity (delegated to the spine)."""
        return self._spans.dropped

    @property
    def spans(self) -> SpanTracer:
        """The underlying :class:`SpanTracer`, for span-level queries."""
        return self._spans

    def record(self, when: float, category: str, actor: str, detail: str) -> None:
        """Append one event (oldest events roll off past capacity)."""
        event = TraceEvent(when=when, category=category, actor=actor, detail=detail)
        for keep in self._filters:
            if not keep(event):
                return
        self._spans.instant(category, actor=actor, ts=when, detail=detail)

    def add_filter(self, keep: Callable[[TraceEvent], bool]) -> None:
        """Only record events for which every filter returns True."""
        self._filters.append(keep)

    # ------------------------------------------------------------------
    def events(self) -> List[TraceEvent]:
        """All retained events, oldest first."""
        return [
            TraceEvent(
                when=span.start_ns,
                category=span.name,
                actor=span.actor,
                detail=span.args.get("detail", ""),
            )
            for span in self._spans.spans()
        ]

    def between(self, start: float, end: float) -> List[TraceEvent]:
        """Events with ``start <= when < end``."""
        return [e for e in self.events() if start <= e.when < end]

    def by_category(self, category: str) -> List[TraceEvent]:
        """Events of one category."""
        return [e for e in self.events() if e.category == category]

    def __len__(self) -> int:
        return len(self._spans)

    def clear(self) -> None:
        self._spans.clear()

    def to_chrome(self) -> Dict[str, Any]:
        """Chrome-trace-format dict of the recorded events (as instants)."""
        return self._spans.to_chrome()

    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def attach_fabric(self, fabric) -> Iterator["Tracer"]:
        """Record every coherence access while the context is active.

        Wraps ``fabric.access`` and restores the original method on
        exit. Note ``access_burst`` does not route through ``access``,
        so burst payload traffic is invisible here — use the flight
        recorder (:mod:`repro.obs.flight`) for full line coverage. The
        wrapper is pure (it calls the original bound method and only
        appends to this tracer), so traced runs keep their metric
        fingerprints; plans are epoch-invalidated on attach/detach for
        symmetry with the other instrumentation hooks.
        """
        original = fabric.access
        invalidate = getattr(fabric, "invalidate_plans", None)

        def traced(agent, addr, size, write):
            latency = original(agent, addr, size, write)
            region = fabric.space.try_region_of(addr)
            name = region.name if region is not None else "?"
            self.record(
                fabric.sim.now,
                "write" if write else "read",
                agent.name,
                f"{name}+{addr - (region.base if region else 0):#x} "
                f"{size}B -> {latency:.1f}ns",
            )
            return latency

        if invalidate is not None:
            invalidate()
        fabric.access = traced
        try:
            yield self
        finally:
            fabric.access = original
            if invalidate is not None:
                invalidate()
