"""Statistics primitives used across the simulator.

These are deliberately simple: experiments in this package collect a few
thousand samples each, so histograms keep raw samples and compute exact
quantiles.

Sample storage has two interchangeable backends:

* **numpy** (default when numpy is importable): samples live in a
  growable ``float64`` array with amortized appends; quantiles come
  from :func:`numpy.partition` over the exact order statistics. float64
  round-trips Python floats exactly and the mean is kept as a running
  total accumulated in recording order, so every statistic — and the
  :meth:`Histogram.samples` recording-order contract the shard merge
  layer relies on — is bit-identical to the list backend.
* **list** (reference): plain Python lists and ``sorted()``, retained
  as the slowpath twin. Selected when numpy is unavailable or
  ``REPRO_SIM_SLOWPATH=1`` is set (the same switch that selects the
  reference event loop; stats cannot import
  :func:`repro.sim.engine.slowpath_requested` without creating an
  import cycle through ``repro.obs``, so the env check is mirrored
  here).
"""

from __future__ import annotations

import math
import os
from typing import Dict, Iterable, List, Optional

from repro.errors import ConfigError

try:  # pragma: no cover - exercised implicitly by backend selection
    import numpy as _np
except ImportError:  # pragma: no cover - image always ships numpy
    _np = None


def _use_numpy_backend() -> bool:
    """True when histograms should store samples in numpy arrays.

    Mirrors ``repro.sim.engine.slowpath_requested()`` — see the module
    docstring for why the env check is duplicated rather than imported.
    """
    return _np is not None and os.environ.get("REPRO_SIM_SLOWPATH", "") != "1"


class Counter:
    """A named bag of monotonically increasing counters.

    Values are stored in single-element list *cells* so hot paths can
    resolve a name once via :meth:`cell` and then increment with
    ``cell[0] += x`` — no per-event dict lookup or string formatting.
    :meth:`reset` detaches every cell; callers caching cells must
    re-resolve when :attr:`epoch` changes.
    """

    def __init__(self) -> None:
        self._cells: Dict[str, list] = {}
        #: Bumped by :meth:`reset`; cached cells from older epochs are stale.
        self.epoch = 0

    def add(self, name: str, amount: float = 1.0) -> None:
        """Increment ``name`` by ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ConfigError(f"counter increments must be >= 0, got {amount}")
        cell = self._cells.get(name)
        if cell is None:
            self._cells[name] = [0.0 + amount]
        else:
            cell[0] += amount

    def cell(self, name: str) -> list:
        """Mutable ``[value]`` cell for ``name``, created at 0.0.

        The cell is live until the next :meth:`reset`; cache it together
        with :attr:`epoch` and re-resolve when the epoch moves on.
        """
        cell = self._cells.get(name)
        if cell is None:
            cell = self._cells[name] = [0.0]
        return cell

    def get(self, name: str) -> float:
        """Current value of ``name`` (0 if never incremented)."""
        cell = self._cells.get(name)
        return cell[0] if cell is not None else 0.0

    def names(self) -> List[str]:
        """Sorted list of counters that have been touched."""
        return sorted(self._cells)

    def snapshot(self) -> Dict[str, float]:
        """Copy of all counters."""
        return {name: cell[0] for name, cell in self._cells.items()}

    def reset(self) -> None:
        """Forget every counter and invalidate outstanding cells."""
        self._cells.clear()
        self.epoch += 1

    def diff(self, earlier: Dict[str, float]) -> Dict[str, float]:
        """Per-counter delta versus an earlier :meth:`snapshot`."""
        out = {}
        for name, cell in self._cells.items():
            out[name] = cell[0] - earlier.get(name, 0.0)
        return out

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v[0]:g}" for k, v in sorted(self._cells.items()))
        return f"Counter({inner})"


class Histogram:
    """Collects raw samples; exact quantiles over what was recorded.

    Backend selection (numpy array vs reference list) happens per
    instance at construction time — see the module docstring. Every
    public statistic is bit-identical between the two backends.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        if _use_numpy_backend():
            self._samples: Optional[List[float]] = None
            self._buf = _np.empty(256, dtype=_np.float64)
            self._n = 0
            self._total = 0.0
        else:
            self._samples = []
            self._buf = None
            self._n = 0
            self._total = 0.0
        self._sorted: Optional[List[float]] = None

    def _grow(self, need: int):
        """Double the numpy buffer until it holds ``need`` samples."""
        buf = self._buf
        cap = buf.shape[0]
        while cap < need:
            cap *= 2
        bigger = _np.empty(cap, dtype=_np.float64)
        bigger[: self._n] = buf[: self._n]
        self._buf = bigger
        return bigger

    def record(self, value: float) -> None:
        """Add one sample."""
        buf = self._buf
        if buf is None:
            self._samples.append(value)
            self._sorted = None
        else:
            n = self._n
            if n == buf.shape[0]:
                buf = self._grow(n + 1)
            buf[n] = value
            self._n = n + 1
            # Accumulated in recording order, so it equals sum(samples)
            # computed left to right — the reference backend's mean.
            self._total += value

    def extend(self, values: Iterable[float]) -> None:
        """Add many samples."""
        buf = self._buf
        if buf is None:
            self._samples.extend(values)
            self._sorted = None
            return
        vals = list(values)
        if not vals:
            return
        n = self._n
        need = n + len(vals)
        if need > buf.shape[0]:
            buf = self._grow(need)
        buf[n:need] = vals
        self._n = need
        total = self._total
        for v in vals:
            total += v
        self._total = total

    def __len__(self) -> int:
        return self._n if self._buf is not None else len(self._samples)

    def samples(self) -> List[float]:
        """Copy of the raw samples, in recording order.

        This is the exact-merge contract the shard layer relies on:
        concatenating the samples of per-shard histograms and sorting
        reproduces the quantiles a single-process run over the same
        partition would report, independent of shard execution order.
        """
        if self._buf is not None:
            return self._buf[: self._n].tolist()
        return list(self._samples)

    @property
    def count(self) -> int:
        return len(self)

    @property
    def mean(self) -> float:
        if self._buf is not None:
            if not self._n:
                return math.nan
            return self._total / self._n
        if not self._samples:
            return math.nan
        return sum(self._samples) / len(self._samples)

    @property
    def minimum(self) -> float:
        if self._buf is not None:
            return float(self._buf[: self._n].min()) if self._n else math.nan
        return min(self._samples) if self._samples else math.nan

    @property
    def maximum(self) -> float:
        if self._buf is not None:
            return float(self._buf[: self._n].max()) if self._n else math.nan
        return max(self._samples) if self._samples else math.nan

    def percentile(self, pct: float) -> float:
        """Exact percentile (nearest-rank with interpolation)."""
        n = len(self)
        if not n:
            return math.nan
        if not 0.0 <= pct <= 100.0:
            raise ConfigError(f"percentile out of range: {pct}")
        if self._buf is not None:
            arr = self._buf[:n]
            if n == 1:
                return float(arr[0])
            rank = (pct / 100.0) * (n - 1)
            low = int(math.floor(rank))
            high = int(math.ceil(rank))
            if low == high:
                # kth element of a partition is the exact order
                # statistic — same float a full sort would place there.
                return float(_np.partition(arr, low)[low])
            part = _np.partition(arr, (low, high))
            frac = rank - low
            return float(part[low] * (1.0 - frac) + part[high] * frac)
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        data = self._sorted
        if len(data) == 1:
            return data[0]
        rank = (pct / 100.0) * (len(data) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return data[low]
        frac = rank - low
        return data[low] * (1.0 - frac) + data[high] * frac

    @property
    def median(self) -> float:
        return self.percentile(50.0)

    def summary(self) -> Dict[str, float]:
        """Dict with count/mean/min/median/p99/max."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "min": self.minimum,
            "median": self.median,
            "p99": self.percentile(99.0),
            "max": self.maximum,
        }

    def __repr__(self) -> str:
        if not len(self):
            return f"Histogram({self.name!r}, empty)"
        return (
            f"Histogram({self.name!r}, n={self.count}, "
            f"median={self.median:.1f}, p99={self.percentile(99):.1f})"
        )


class RateMeter:
    """Counts events/bytes over a window of virtual time."""

    def __init__(self) -> None:
        self.events = 0
        self.byte_count = 0
        self.start_ns: Optional[float] = None
        self.end_ns: Optional[float] = None

    def mark(self, now_ns: float, byte_count: int = 0, events: int = 1) -> None:
        """Record ``events`` events carrying ``byte_count`` bytes at ``now_ns``."""
        if self.start_ns is None:
            self.start_ns = now_ns
        self.end_ns = now_ns
        self.events += events
        self.byte_count += byte_count

    @property
    def elapsed_ns(self) -> float:
        if self.start_ns is None or self.end_ns is None:
            return 0.0
        return self.end_ns - self.start_ns

    def events_per_second(self) -> float:
        """Average event rate in events/s over the marked window."""
        elapsed = self.elapsed_ns
        if elapsed <= 0:
            return 0.0
        return self.events / elapsed * 1e9

    def gbps(self) -> float:
        """Average data rate in Gbps over the marked window."""
        elapsed = self.elapsed_ns
        if elapsed <= 0:
            return 0.0
        return self.byte_count * 8.0 / elapsed

    def __repr__(self) -> str:
        return (
            f"RateMeter(events={self.events}, bytes={self.byte_count}, "
            f"elapsed={self.elapsed_ns:.0f}ns)"
        )
