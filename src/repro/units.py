"""Unit helpers and conversions.

The simulator's clock is in **nanoseconds** (floats). Capacities are in
**bytes**; link speeds in **bytes per nanosecond** (1 B/ns == 8 Gbps).
These helpers keep the arithmetic explicit at call sites.
"""

# Sizes.
KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

# Times, expressed in the simulator's nanosecond unit.
NS = 1.0
US = 1_000.0
MS = 1_000_000.0
S = 1_000_000_000.0

from repro.errors import ConfigError

CACHE_LINE = 64


def gbps_to_bytes_per_ns(gbps: float) -> float:
    """Convert gigabits/second to bytes/nanosecond."""
    return gbps / 8.0


def bytes_per_ns_to_gbps(bpns: float) -> float:
    """Convert bytes/nanosecond to gigabits/second."""
    return bpns * 8.0


def gbytes_per_s_to_bytes_per_ns(gbs: float) -> float:
    """Convert gigabytes/second to bytes/nanosecond."""
    return gbs


def mpps(packets: float, elapsed_ns: float) -> float:
    """Packet rate in millions of packets per second."""
    if elapsed_ns <= 0:
        return 0.0
    return packets / elapsed_ns * 1e3


def gbps(byte_count: float, elapsed_ns: float) -> float:
    """Data rate in gigabits per second."""
    if elapsed_ns <= 0:
        return 0.0
    return byte_count * 8.0 / elapsed_ns


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to the next multiple of ``alignment``."""
    if alignment <= 0:
        raise ConfigError("alignment must be positive")
    return (value + alignment - 1) // alignment * alignment


def align_down(value: int, alignment: int) -> int:
    """Round ``value`` down to a multiple of ``alignment``."""
    if alignment <= 0:
        raise ConfigError("alignment must be positive")
    return value // alignment * alignment


def is_aligned(value: int, alignment: int) -> bool:
    """Return True if ``value`` is a multiple of ``alignment``."""
    return alignment > 0 and value % alignment == 0
