"""CC-NIC reproduction: a cache-coherent host-NIC interface.

This package reproduces *CC-NIC: a Cache-Coherent Interface to the NIC*
(Schuh et al., ASPLOS 2024) as a pure-Python system built on a
discrete-event simulation of a dual-socket coherent platform.

Layers, bottom-up:

``repro.sim``
    Discrete-event engine, virtual nanosecond clock, statistics.
``repro.mem``
    Physical address space, cache-line math, memory types, regions.
``repro.interconnect``
    Generic link cost model; UPI and PCIe instances.
``repro.coherence``
    MESIF line states, cache models, coherence protocol, counters,
    hardware prefetcher model.
``repro.platform``
    Two-socket system builders with Ice Lake (ICX) and Sapphire Rapids
    (SPR) presets calibrated to the paper's microbenchmarks.
``repro.pcie``
    MMIO (UC / write-combining) and DMA device access paths.
``repro.nicmodels``
    Descriptor rings and baseline NIC interface models: E810-like and
    CX6-like PCIe NICs, and the unoptimized-UPI baseline.
``repro.core``
    CC-NIC itself: the public data-plane API, shared recycling buffer
    pool, inlined-signal descriptor-group queues, host driver and NIC
    agent.
``repro.workloads``
    Packet types, loopback traffic generation, load control, and the
    Ads / Geo / Zipf distributions used by the application studies.
``repro.apps``
    Key-value store (CliqueMap-like), TAS-like TCP RPC fast path, and
    the CC-NIC overlay bridge.
``repro.analysis``
    Sweep harnesses, the multi-core scaling model, and table/figure
    formatters used by the benchmark suite.
"""

from repro.version import __version__

__all__ = ["__version__"]
