"""Self-benchmarking harness: simulation speed as a first-class metric.

Every figure reproduction funnels through the same hot paths — the
event loop in :mod:`repro.sim.engine`, protocol cost resolution in
:mod:`repro.coherence.fabric`, and link/telemetry accounting — so the
repo benchmarks *itself*: ``python -m repro perf`` runs the registered
scenarios, reports wall-clock seconds, **events per second** and peak
RSS, and writes the trajectory document ``BENCH_sim_perf.json`` at the
repo root.

Scenarios are no longer hardcoded here: they are
:class:`~repro.shard.ScenarioSpec` entries in the
:mod:`repro.shard.spec` registry, so ``--scenario`` accepts anything
registered — including user scenarios pulled in with ``--register``.
Each scenario is a fixed partition of per-queue-pair shards;
``run_scenario(..., workers=n)`` executes that partition across ``n``
processes. The merged metric *fingerprint* — a hash over every shard's
end-to-end metrics plus the merged reduction — is invariant under the
worker count, and the harness proves it on every ``--shards`` run by
re-running the partition single-process and comparing.

Running a scenario with ``REPRO_SIM_SLOWPATH=1`` disables every fast
path (engine event-record reuse and calendar queue, fabric cost-plan
memoization, link pair batching) and must also yield the same
fingerprint: the optimizations are behavior-preserving by construction.

The committed floor in ``benchmarks/perf/baseline.json`` is what CI's
perf-smoke job regresses against (see :func:`check_regression`).
"""

from __future__ import annotations

import json
import os
import platform
import resource
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import SimulationError
from repro.shard import run_sharded, scenario, scenario_names
from repro.shard.merge import fingerprint as _merged_fingerprint

#: Escape hatch read by every layer's fast path (one Simulator at a time).
SLOWPATH_ENV = "REPRO_SIM_SLOWPATH"
#: Schema version of the BENCH document.
BENCH_SCHEMA = 2
#: Default output path, relative to the invoking directory (repo root).
DEFAULT_BENCH_PATH = "BENCH_sim_perf.json"
#: Committed events/sec floor used by the CI perf-smoke job.
DEFAULT_BASELINE_PATH = os.path.join("benchmarks", "perf", "baseline.json")


def _fingerprint(snapshot: Dict) -> str:
    """Stable short hash of a run's end-to-end metric snapshot."""
    return _merged_fingerprint(snapshot)


# ----------------------------------------------------------------------
# Measurement
# ----------------------------------------------------------------------
@dataclass
class PerfMeasurement:
    """One timed scenario run (fast path, slow path, or parallel)."""

    scenario: str
    wall_s: float
    events: int
    events_per_sec: float
    sim_ns: float
    peak_rss_kb: int
    fingerprint: str
    extra: Dict[str, float]
    slowpath: bool
    n_shards: int = 1
    workers: int = 1
    #: Merged per-edge fabric counters (``edge:dir:field`` -> value) when
    #: the scenario runs on a :mod:`repro.topology` graph; None otherwise.
    topology: Optional[Dict[str, float]] = None

    def to_doc(self) -> Dict:
        doc = {
            "wall_s": round(self.wall_s, 4),
            "events": self.events,
            "events_per_sec": round(self.events_per_sec, 1),
            "sim_ns": self.sim_ns,
            "peak_rss_kb": self.peak_rss_kb,
            "fingerprint": self.fingerprint,
            "n_shards": self.n_shards,
            "workers": self.workers,
            "extra": self.extra,
        }
        if self.topology is not None:
            doc["topology"] = self.topology
        return doc


def _peak_rss_kb() -> int:
    """Peak RSS over this process and any reaped shard workers."""
    own = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    children = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return int(max(own, children))


def run_scenario(
    name: str,
    quick: bool = False,
    slowpath: bool = False,
    repeat: int = 1,
    workers: int = 1,
) -> PerfMeasurement:
    """Time one scenario; ``slowpath`` runs it with every fast path off.

    The scenario's fixed shard partition executes on ``workers``
    processes (1 = sequential in this process — the baseline every
    parallel run must reproduce bit-identically). ``repeat`` reruns the
    scenario and keeps the *minimum* wall time (the standard way to
    strip scheduler noise from a wall-clock benchmark). Every repeat
    must reproduce the same merged document — a divergence means the
    simulation itself is nondeterministic, which no amount of timing
    tolerance should paper over.
    """
    spec = scenario(name)
    prev = os.environ.get(SLOWPATH_ENV)
    if slowpath:
        # Workers inherit the environment at fork/spawn time, so the
        # toggle reaches every shard process too.
        os.environ[SLOWPATH_ENV] = "1"
    else:
        os.environ.pop(SLOWPATH_ENV, None)
    try:
        wall = None
        run = None
        for _ in range(max(1, repeat)):
            this = run_sharded(spec, workers=workers, quick=quick)
            if run is not None and this.doc != run.doc:
                raise SimulationError(
                    f"scenario {name!r} is nondeterministic across repeats"
                )
            run = this
            wall = this.wall_s if wall is None else min(wall, this.wall_s)
    finally:
        if prev is None:
            os.environ.pop(SLOWPATH_ENV, None)
        else:
            os.environ[SLOWPATH_ENV] = prev
    return PerfMeasurement(
        scenario=name,
        wall_s=wall,
        events=run.events,
        events_per_sec=run.events / wall if wall > 0 else 0.0,
        sim_ns=run.sim_ns,
        peak_rss_kb=_peak_rss_kb(),
        fingerprint=run.fingerprint,
        extra=run.extra,
        slowpath=slowpath,
        n_shards=run.n_shards,
        workers=run.workers,
        topology=run.doc["merged"].get("topology"),
    )


def run_suite(
    scenarios: Optional[Sequence[str]] = None,
    quick: bool = False,
    compare: Sequence[str] = ("loopback_64b",),
    repeat: int = 1,
    progress: Optional[Callable[[str], None]] = None,
    shards: Optional[int] = None,
) -> Dict:
    """Run the suite; returns the ``BENCH_sim_perf.json`` document.

    In the default single-process mode, scenarios named in ``compare``
    run a second time with ``REPRO_SIM_SLOWPATH=1`` to record the
    fast/slow speedup and check that both paths produced identical
    fingerprints. With ``shards`` set (> 1 worker processes), the
    comparison changes meaning: ``compare`` scenarios re-run the same
    partition single-process and the gate becomes *parallel vs
    sequential* — same merged fingerprint, speedup = parallel
    events/sec over sequential.
    """
    names = list(scenarios) if scenarios else scenario_names()
    workers = 1 if shards is None else max(1, shards)
    doc: Dict = {
        "bench": "sim_perf",
        "schema": BENCH_SCHEMA,
        "quick": quick,
        "repeat": repeat,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "generated_unix": int(time.time()),  # repro: allow(wall-clock) report timestamp
        "scenarios": {},
    }
    if shards is not None:
        doc["shards"] = workers
    for name in names:
        if progress is not None:
            progress(f"running {name}{' (quick)' if quick else ''} ...")
        fast = run_scenario(name, quick=quick, repeat=repeat, workers=workers)
        entry = fast.to_doc()
        if name in compare:
            if workers > 1:
                if progress is not None:
                    progress(f"running {name} single-process for comparison ...")
                single = run_scenario(name, quick=quick, repeat=repeat, workers=1)
                entry["single_process"] = single.to_doc()
                entry["speedup"] = (
                    round(fast.events_per_sec / single.events_per_sec, 2)
                    if single.events_per_sec > 0
                    else None
                )
                entry["deterministic"] = fast.fingerprint == single.fingerprint
            else:
                if progress is not None:
                    progress(f"running {name} with {SLOWPATH_ENV}=1 ...")
                slow = run_scenario(
                    name, quick=quick, slowpath=True, repeat=repeat, workers=workers
                )
                entry["slowpath"] = slow.to_doc()
                entry["speedup"] = (
                    round(fast.events_per_sec / slow.events_per_sec, 2)
                    if slow.events_per_sec > 0
                    else None
                )
                entry["deterministic"] = fast.fingerprint == slow.fingerprint
        doc["scenarios"][name] = entry
    return doc


def write_bench(doc: Dict, path: str = DEFAULT_BENCH_PATH) -> str:
    """Write the BENCH document; returns the path written."""
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return path


def load_bench(path: str = DEFAULT_BENCH_PATH) -> Optional[Dict]:
    """A previously written BENCH document, or None when absent/foreign.

    Used by ``perf --compare`` to diff a fresh suite against the
    *committed* trajectory document before overwriting it; anything
    unreadable or from another schema version silently disables the
    diff rather than failing the benchmark.
    """
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, ValueError):
        return None
    if doc.get("schema") != BENCH_SCHEMA or "scenarios" not in doc:
        return None
    return doc


def bench_delta_rows(doc: Dict, committed: Dict) -> List[tuple]:
    """Signed per-scenario events/sec deltas vs a committed BENCH doc.

    Rows are ``(scenario, committed ev/s, this run, delta)``; scenarios
    absent from the committed document show as ``new``.
    """
    rows = []
    committed_scenarios = committed.get("scenarios", {})
    for name, entry in doc["scenarios"].items():
        current = entry.get("events_per_sec", 0.0)
        old = committed_scenarios.get(name, {}).get("events_per_sec", 0.0)
        if old <= 0:
            rows.append((name, "-", f"{current:.0f}", "new"))
            continue
        delta = (current - old) / old * 100.0
        rows.append((name, f"{old:.0f}", f"{current:.0f}", f"{delta:+.1f}%"))
    return rows


# ----------------------------------------------------------------------
# cProfile artifact (``python -m repro perf --profile``)
# ----------------------------------------------------------------------
#: Schema version of the profile artifact.
PROFILE_SCHEMA = 1
#: Rows kept in the committed artifact.
PROFILE_TOP = 25


def _short_func(path: str, line: int, name: str) -> str:
    """``src/<pkg-relative>:line(name)`` — stable across checkouts."""
    marker = os.sep + "src" + os.sep
    at = path.rfind(marker)
    if at >= 0:
        path = path[at + len(marker):]
    return f"{path}:{line}({name})"


def profile_scenario(
    name: str, quick: bool = False, top: int = PROFILE_TOP
) -> Dict:
    """cProfile one sequential scenario run; returns the artifact doc.

    The run is forced to one worker: cProfile only sees this process,
    so a pool run would profile dispatch overhead instead of the
    simulation. The document carries the ``top`` functions by
    *cumulative* time (the ISSUE's contract: future perf PRs start
    from data, and cumulative ordering surfaces the layer boundaries
    the flat ``tottime`` view hides).
    """
    import cProfile
    import pstats

    spec = scenario(name)
    profiler = cProfile.Profile()
    profiler.enable()
    run = run_sharded(spec, workers=1, quick=quick)
    profiler.disable()
    stats = pstats.Stats(profiler)
    rows = [
        {
            "function": _short_func(*func),
            "ncalls": nc,
            "tottime": round(tt, 4),
            "cumtime": round(ct, 4),
        }
        for func, (cc, nc, tt, ct, callers) in stats.stats.items()
    ]
    rows.sort(key=lambda r: r["cumtime"], reverse=True)
    total_tt = sum(r["tottime"] for r in rows)
    return {
        "bench": "sim_perf_profile",
        "schema": PROFILE_SCHEMA,
        "scenario": name,
        "quick": quick,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "generated_unix": int(time.time()),  # repro: allow(wall-clock) report timestamp
        "wall_s": round(run.wall_s, 4),
        "events": run.events,
        "events_per_sec": round(run.events / run.wall_s, 1) if run.wall_s > 0 else 0.0,
        "fingerprint": run.fingerprint,
        "profiled_s": round(total_tt, 4),
        "top": rows[: max(1, top)],
    }


def format_profile(doc: Dict) -> str:
    """Text rendering of a profile artifact (committed alongside it)."""
    lines = [
        f"cProfile: scenario {doc['scenario']}"
        f"{' (quick)' if doc['quick'] else ''} — "
        f"{doc['events']} events, {doc['wall_s']:.3f}s wall "
        f"({doc['events_per_sec']:.0f} events/sec), "
        f"fingerprint {doc['fingerprint']}",
        f"{'cumtime':>10} {'tottime':>10} {'ncalls':>10}  function",
    ]
    for row in doc["top"]:
        lines.append(
            f"{row['cumtime']:>10.4f} {row['tottime']:>10.4f} "
            f"{row['ncalls']:>10}  {row['function']}"
        )
    return "\n".join(lines)


def write_profile(doc: Dict, bench_path: str = DEFAULT_BENCH_PATH) -> List[str]:
    """Write the JSON + text artifacts next to the BENCH document.

    ``<bench stem>_profile.json`` / ``.txt`` — returned in that order.
    """
    stem, _ext = os.path.splitext(bench_path)
    json_path = stem + "_profile.json"
    txt_path = stem + "_profile.txt"
    with open(json_path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")
    with open(txt_path, "w") as fh:
        fh.write(format_profile(doc))
        fh.write("\n")
    return [json_path, txt_path]


# ----------------------------------------------------------------------
# Regression checking (CI perf-smoke gate)
# ----------------------------------------------------------------------
def load_baseline(path: str = DEFAULT_BASELINE_PATH) -> Optional[Dict]:
    """The committed baseline, or None when the file is absent."""
    if not os.path.isfile(path):
        return None
    with open(path) as fh:
        return json.load(fh)


def check_regression(
    doc: Dict, baseline: Dict, tolerance: float = 0.30
) -> List[str]:
    """Compare a BENCH document against the committed baseline.

    Returns one message per failure: an events/sec figure more than
    ``tolerance`` below the baseline floor, or a comparison run (fast vs
    slowpath, or parallel vs single-process) whose fingerprints
    diverged. An empty list means the gate passes. Scenarios present in
    only one document are skipped (the baseline carries deliberately
    conservative floors, valid for both ``--quick`` and full runs across
    machine classes). A multi-worker document (``doc["shards"] > 1``)
    is gated against the baseline's nested ``"sharded"`` floor when one
    is committed, since worker dispatch overhead shifts the achievable
    rate on small machines.
    """
    sharded_doc = doc.get("shards", 1) > 1
    failures: List[str] = []
    for name, base in baseline.get("scenarios", {}).items():
        entry = doc["scenarios"].get(name)
        if entry is None:
            continue
        base_rate = base.get("events_per_sec", 0.0)
        if sharded_doc and "sharded" in base:
            base_rate = base["sharded"].get("events_per_sec", base_rate)
        floor = base_rate * (1.0 - tolerance)
        got = entry.get("events_per_sec", 0.0)
        if got < floor:
            failures.append(
                f"{name}: {got:.0f} events/sec is below the regression floor "
                f"{floor:.0f} (baseline {base_rate:.0f} - {tolerance:.0%})"
            )
    for name, entry in doc["scenarios"].items():
        if entry.get("deterministic") is False:
            other = entry.get("slowpath") or entry.get("single_process") or {}
            what = (
                "parallel and single-process"
                if "single_process" in entry
                else f"fast and {SLOWPATH_ENV}=1"
            )
            failures.append(
                f"{name}: {what} runs produced different metric fingerprints "
                f"({entry['fingerprint']} vs {other.get('fingerprint', '?')})"
            )
    return failures
