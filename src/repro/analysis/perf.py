"""Self-benchmarking harness: simulation speed as a first-class metric.

Every figure reproduction funnels through the same hot paths — the
event loop in :mod:`repro.sim.engine`, protocol cost resolution in
:mod:`repro.coherence.fabric`, and link/telemetry accounting — so the
repo benchmarks *itself*: ``python -m repro perf`` runs the canonical
scenarios below, reports wall-clock seconds, **events per second** and
peak RSS, and writes the trajectory document ``BENCH_sim_perf.json``
at the repo root.

Each scenario also produces a deterministic *fingerprint* — a hash of
the run's end-to-end metrics (packet counts, latency percentiles,
coherence-transaction counters, per-direction link statistics, event
count and final simulated time). Running a scenario with
``REPRO_SIM_SLOWPATH=1`` disables every fast path (engine event-record
reuse and calendar queue, fabric cost-plan memoization, link pair
batching) and must yield the *same fingerprint*: the optimizations are
behavior-preserving by construction, and the harness proves it on
every comparison run.

The committed floor in ``benchmarks/perf/baseline.json`` is what CI's
perf-smoke job regresses against (see :func:`check_regression`).
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import resource
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.loopback import InterfaceKind, build_interface, run_point
from repro.core.recovery import RecoveryPolicy
from repro.errors import ConfigError, SimulationError
from repro.faults import FaultInjector, FaultPlan
from repro.platform import icx

#: Escape hatch read by every layer's fast path (one Simulator at a time).
SLOWPATH_ENV = "REPRO_SIM_SLOWPATH"
#: Schema version of the BENCH document.
BENCH_SCHEMA = 1
#: Default output path, relative to the invoking directory (repo root).
DEFAULT_BENCH_PATH = "BENCH_sim_perf.json"
#: Committed events/sec floor used by the CI perf-smoke job.
DEFAULT_BASELINE_PATH = os.path.join("benchmarks", "perf", "baseline.json")


# ----------------------------------------------------------------------
# Scenario outcomes and measurements
# ----------------------------------------------------------------------
@dataclass
class ScenarioOutcome:
    """What one scenario run returns to the measurement wrapper.

    ``wall_s`` is measured *inside* the runner, around the simulation
    run only — events/sec is a simulator-throughput metric, so system
    construction (region allocation, plan tables, ring setup) stays
    outside the timed window.
    """

    wall_s: float
    events: int
    sim_ns: float
    snapshot: Dict
    extra: Dict[str, float] = field(default_factory=dict)


@dataclass
class PerfMeasurement:
    """One timed scenario run (fast path or slow path)."""

    scenario: str
    wall_s: float
    events: int
    events_per_sec: float
    sim_ns: float
    peak_rss_kb: int
    fingerprint: str
    extra: Dict[str, float]
    slowpath: bool

    def to_doc(self) -> Dict:
        return {
            "wall_s": round(self.wall_s, 4),
            "events": self.events,
            "events_per_sec": round(self.events_per_sec, 1),
            "sim_ns": self.sim_ns,
            "peak_rss_kb": self.peak_rss_kb,
            "fingerprint": self.fingerprint,
            "extra": self.extra,
        }


def _fingerprint(snapshot: Dict) -> str:
    """Stable short hash of a run's end-to-end metric snapshot."""
    blob = json.dumps(snapshot, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def _system_snapshot(system) -> Dict:
    """The simulation-state half of every scenario fingerprint."""
    return {
        "counters": system.fabric.snapshot_counters(),
        "events": system.sim.events_executed,
        "now": system.sim.now,
        "link": [
            {
                "messages": st.messages,
                "payload": st.payload_bytes,
                "wire": st.wire_bytes,
                "busy": st.busy_ns,
                "by_class": st.by_class,
                "wire_by_class": st.wire_by_class,
            }
            for st in system.link.stats
        ],
    }


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------
def _run_loopback_64b(quick: bool) -> ScenarioOutcome:
    """Closed-loop 64B CC-NIC loopback — the headline scenario."""
    n_packets = 4000 if quick else 50000
    setup = build_interface(icx(), InterfaceKind.CCNIC)
    start = time.perf_counter()  # repro: allow(wall-clock) host benchmark timing
    result = run_point(setup, pkt_size=64, n_packets=n_packets, inflight=64)
    wall = time.perf_counter() - start  # repro: allow(wall-clock) host benchmark timing
    system = setup.system
    snapshot = {
        "received": result.received,
        "dropped": result.dropped,
        "mpps": result.mpps,
        "median_ns": result.latency.percentile(50),
        "p99_ns": result.latency.percentile(99),
        **_system_snapshot(system),
    }
    return ScenarioOutcome(
        wall_s=wall,
        events=system.sim.events_executed,
        sim_ns=system.sim.now,
        snapshot=snapshot,
        extra={"packets": float(result.received), "mpps": result.mpps},
    )


def _run_kv_zipf(quick: bool) -> ScenarioOutcome:
    """KV server thread under the Zipf-skewed Ads object distribution."""
    from repro.apps.kvstore import KvServerApp, KvWorkload

    n_ops = 120 if quick else 500
    setup = build_interface(icx(), InterfaceKind.CCNIC)
    app = KvServerApp(setup, KvWorkload.ads(), offered_mops=50.0, n_ops=n_ops)
    start = time.perf_counter()  # repro: allow(wall-clock) host benchmark timing
    result = app.run()
    wall = time.perf_counter() - start  # repro: allow(wall-clock) host benchmark timing
    system = setup.system
    snapshot = {
        "ops": result.ops,
        "mops": result.mops,
        "median_ns": result.latency.percentile(50),
        "p99_ns": result.latency.percentile(99),
        **_system_snapshot(system),
    }
    return ScenarioOutcome(
        wall_s=wall,
        events=system.sim.events_executed,
        sim_ns=system.sim.now,
        snapshot=snapshot,
        extra={"ops": float(result.ops), "mops": result.mops},
    )


def _run_faults_canned(quick: bool) -> ScenarioOutcome:
    """Loopback under the canned fault plan with data-plane recovery.

    With an injector attached the fabric and link fall back to their
    reference implementations, so this scenario exercises the *engine*
    fast path (event-record reuse, calendar queue) under the most
    irregular event pattern the repo produces.
    """
    n_packets = 1200 if quick else 6000
    faults = FaultInjector(FaultPlan.canned(), seed=7)
    setup = build_interface(icx(), InterfaceKind.CCNIC, faults=faults)
    start = time.perf_counter()  # repro: allow(wall-clock) host benchmark timing
    result = run_point(
        setup,
        pkt_size=256,
        n_packets=n_packets,
        inflight=64,
        recovery=RecoveryPolicy(),
    )
    wall = time.perf_counter() - start  # repro: allow(wall-clock) host benchmark timing
    system = setup.system
    snapshot = {
        "received": result.received,
        "dropped": result.dropped,
        "mpps": result.mpps,
        "median_ns": result.latency.percentile(50),
        "faults": faults.counters.snapshot(),
        "injected": faults.total_injected(),
        "tx_retries": setup.driver.tx_retries,
        "watchdog_resets": setup.driver.watchdog_resets,
        **_system_snapshot(system),
    }
    return ScenarioOutcome(
        wall_s=wall,
        events=system.sim.events_executed,
        sim_ns=system.sim.now,
        snapshot=snapshot,
        extra={
            "packets": float(result.received),
            "dropped": float(result.dropped),
            "injected": float(faults.total_injected()),
        },
    )


#: name -> (description, runner)
SCENARIOS: Dict[str, tuple] = {
    "loopback_64b": ("closed-loop 64B CC-NIC loopback", _run_loopback_64b),
    "kv_zipf": ("KV server thread, Zipf Ads objects", _run_kv_zipf),
    "faults_canned": ("canned fault plan + recovery", _run_faults_canned),
}


# ----------------------------------------------------------------------
# Measurement
# ----------------------------------------------------------------------
def run_scenario(
    name: str, quick: bool = False, slowpath: bool = False, repeat: int = 1
) -> PerfMeasurement:
    """Time one scenario; ``slowpath`` runs it with every fast path off.

    ``repeat`` reruns the scenario and keeps the *minimum* wall time
    (the standard way to strip scheduler noise from a wall-clock
    benchmark). Every repeat must reproduce the same fingerprint — a
    divergence means the simulation itself is nondeterministic, which
    no amount of timing tolerance should paper over.
    """
    try:
        _desc, runner = SCENARIOS[name]
    except KeyError:
        raise ConfigError(
            f"unknown scenario {name!r} (choose from {', '.join(SCENARIOS)})"
        )
    prev = os.environ.get(SLOWPATH_ENV)
    if slowpath:
        os.environ[SLOWPATH_ENV] = "1"
    else:
        os.environ.pop(SLOWPATH_ENV, None)
    try:
        wall = None
        outcome = None
        for _ in range(max(1, repeat)):
            this = runner(quick)
            if outcome is not None and this.snapshot != outcome.snapshot:
                raise SimulationError(
                    f"scenario {name!r} is nondeterministic across repeats"
                )
            outcome = this
            wall = this.wall_s if wall is None else min(wall, this.wall_s)
    finally:
        if prev is None:
            os.environ.pop(SLOWPATH_ENV, None)
        else:
            os.environ[SLOWPATH_ENV] = prev
    rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return PerfMeasurement(
        scenario=name,
        wall_s=wall,
        events=outcome.events,
        events_per_sec=outcome.events / wall if wall > 0 else 0.0,
        sim_ns=outcome.sim_ns,
        peak_rss_kb=int(rss_kb),
        fingerprint=_fingerprint(outcome.snapshot),
        extra=outcome.extra,
        slowpath=slowpath,
    )


def run_suite(
    scenarios: Optional[Sequence[str]] = None,
    quick: bool = False,
    compare: Sequence[str] = ("loopback_64b",),
    repeat: int = 1,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict:
    """Run the suite; returns the ``BENCH_sim_perf.json`` document.

    Scenarios named in ``compare`` run a second time with
    ``REPRO_SIM_SLOWPATH=1`` to record the fast/slow speedup and check
    that both paths produced identical fingerprints.
    """
    names = list(scenarios) if scenarios else list(SCENARIOS)
    doc: Dict = {
        "bench": "sim_perf",
        "schema": BENCH_SCHEMA,
        "quick": quick,
        "repeat": repeat,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "generated_unix": int(time.time()),  # repro: allow(wall-clock) report timestamp
        "scenarios": {},
    }
    for name in names:
        if progress is not None:
            progress(f"running {name}{' (quick)' if quick else ''} ...")
        fast = run_scenario(name, quick=quick, repeat=repeat)
        entry = fast.to_doc()
        if name in compare:
            if progress is not None:
                progress(f"running {name} with {SLOWPATH_ENV}=1 ...")
            slow = run_scenario(name, quick=quick, slowpath=True, repeat=repeat)
            entry["slowpath"] = slow.to_doc()
            entry["speedup"] = (
                round(fast.events_per_sec / slow.events_per_sec, 2)
                if slow.events_per_sec > 0
                else None
            )
            entry["deterministic"] = fast.fingerprint == slow.fingerprint
        doc["scenarios"][name] = entry
    return doc


def write_bench(doc: Dict, path: str = DEFAULT_BENCH_PATH) -> str:
    """Write the BENCH document; returns the path written."""
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return path


# ----------------------------------------------------------------------
# Regression checking (CI perf-smoke gate)
# ----------------------------------------------------------------------
def load_baseline(path: str = DEFAULT_BASELINE_PATH) -> Optional[Dict]:
    """The committed baseline, or None when the file is absent."""
    if not os.path.isfile(path):
        return None
    with open(path) as fh:
        return json.load(fh)


def check_regression(
    doc: Dict, baseline: Dict, tolerance: float = 0.30
) -> List[str]:
    """Compare a BENCH document against the committed baseline.

    Returns one message per failure: an events/sec figure more than
    ``tolerance`` below the baseline floor, or a fast/slow comparison
    whose fingerprints diverged. An empty list means the gate passes.
    Scenarios present in only one document are skipped (the baseline
    carries deliberately conservative floors, valid for both ``--quick``
    and full runs across machine classes).
    """
    failures: List[str] = []
    for name, base in baseline.get("scenarios", {}).items():
        entry = doc["scenarios"].get(name)
        if entry is None:
            continue
        floor = base.get("events_per_sec", 0.0) * (1.0 - tolerance)
        got = entry.get("events_per_sec", 0.0)
        if got < floor:
            failures.append(
                f"{name}: {got:.0f} events/sec is below the regression floor "
                f"{floor:.0f} (baseline {base['events_per_sec']:.0f} "
                f"- {tolerance:.0%})"
            )
    for name, entry in doc["scenarios"].items():
        if entry.get("deterministic") is False:
            failures.append(
                f"{name}: fast and {SLOWPATH_ENV}=1 runs produced different "
                f"metric fingerprints ({entry['fingerprint']} vs "
                f"{entry['slowpath']['fingerprint']})"
            )
    return failures
