"""Loopback experiment setup shared by the evaluation benchmarks.

Builds any of the four §5.1 comparison points on a fresh simulated
system and runs single-queue loopback measurements:

* ``ccnic`` — CC-NIC over UPI (fully optimized),
* ``unopt`` — the E810 interface run verbatim over UPI,
* ``e810`` / ``cx6`` — the PCIe NICs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.core import CcnicConfig, CcnicInterface
from repro.core.nic import NicDriver, NicInterface
from repro.errors import ConfigError
from repro.nicmodels import PcieNicInterface, unoptimized_upi_config
from repro.obs.instrument import Observability
from repro.obs.wire import instrument_all
from repro.platform.presets import PlatformSpec
from repro.platform.system import System
from repro.workloads.trafficgen import LoopbackResult, run_loopback


class InterfaceKind(enum.Enum):
    """The four host-NIC interfaces compared in the evaluation."""

    CCNIC = "ccnic"
    UNOPT = "unopt"
    E810 = "e810"
    CX6 = "cx6"

    @property
    def is_coherent(self) -> bool:
        return self in (InterfaceKind.CCNIC, InterfaceKind.UNOPT)


@dataclass
class LoopbackSetup:
    """A ready-to-run system + interface + driver for one queue."""

    system: System
    interface: NicInterface
    driver: NicDriver
    kind: InterfaceKind

    def link(self):
        """The interconnect the host-NIC traffic crosses."""
        return self.interface.link


def build_interface(
    spec: PlatformSpec,
    kind: InterfaceKind,
    config: Optional[CcnicConfig] = None,
    same_socket: bool = False,
    prefetch_host: bool = True,
    prefetch_nic: bool = False,
    link_latency_factor: float = 1.0,
    link_bandwidth_factor: float = 1.0,
    ring_slots: int = 1024,
    obs: Optional[Observability] = None,
    faults=None,
) -> LoopbackSetup:
    """Instantiate one comparison point with a single queue pair.

    ``faults`` is an optional :class:`repro.faults.FaultInjector`; it is
    attached to the system link, the coherence fabric, and the interface
    so every injection hook sees the same schedule, and it joins the
    telemetry cascade.
    """
    system = System(
        spec,
        same_socket=same_socket,
        prefetch_host=prefetch_host,
        prefetch_nic=prefetch_nic,
        link_latency_factor=link_latency_factor,
        link_bandwidth_factor=link_bandwidth_factor,
    )
    if kind is InterfaceKind.CCNIC:
        cfg = config or CcnicConfig(ring_slots=ring_slots, recycle_stack_max=1024)
        interface = CcnicInterface(system, cfg)
        driver = interface.driver(0)
        interface.start()
    elif kind is InterfaceKind.UNOPT:
        if config is not None:
            raise ConfigError("unopt baseline builds its own config")
        cfg = unoptimized_upi_config(ring_slots=ring_slots)
        interface = CcnicInterface(system, cfg)
        driver = interface.driver(0)
        interface.start()
    else:
        nic_spec = spec.nic(kind.value)
        interface = PcieNicInterface(system, nic_spec)
        driver = interface.driver(0)
        interface.start()
    if faults is not None:
        system.link.faults = faults
        system.fabric.faults = faults
        interface.faults = faults
        if getattr(interface, "link", None) is not system.link:
            interface.link.faults = faults  # the PCIe lane group
    if obs is not None and obs.enabled:
        # Instrument after start() so the interface cascade reaches the
        # per-pair NIC agents spawned there.
        instrument_all(obs, system.sim, system.fabric, interface, driver, faults)
    return LoopbackSetup(system=system, interface=interface, driver=driver, kind=kind)


def run_point(
    setup: LoopbackSetup,
    pkt_size: int,
    n_packets: int,
    inflight: Optional[int] = None,
    offered_mpps: Optional[float] = None,
    tx_batch: int = 32,
    rx_batch: int = 32,
    obs: Optional[Observability] = None,
    recovery=None,
    max_sim_ns: float = 1e9,
    flight=None,
    route=None,
    timeline=None,
) -> LoopbackResult:
    """Run one loopback measurement on a built setup.

    ``route`` is an optional per-packet rack-fabric charge (see
    :attr:`repro.workloads.trafficgen.LoopbackApp.route`);
    ``timeline`` an optional
    :class:`repro.obs.timeline.TimelineSampler` the app feeds per-packet
    latency samples into.
    """
    return run_loopback(
        setup.system,
        setup.driver,
        pkt_size=pkt_size,
        n_packets=n_packets,
        inflight=inflight,
        offered_mpps=offered_mpps,
        tx_batch=tx_batch,
        rx_batch=rx_batch,
        obs=obs,
        recovery=recovery,
        max_sim_ns=max_sim_ns,
        flight=flight,
        route=route,
        timeline=timeline,
    )


def min_latency(
    spec: PlatformSpec,
    kind: InterfaceKind,
    pkt_size: int = 64,
    n_packets: int = 1200,
    **build_kwargs,
) -> float:
    """Minimum loopback latency: closed loop, one packet in flight."""
    setup = build_interface(spec, kind, **build_kwargs)
    result = run_point(
        setup, pkt_size, n_packets, inflight=1, tx_batch=1, rx_batch=1
    )
    return result.latency.minimum


def saturation(
    spec: PlatformSpec,
    kind: InterfaceKind,
    pkt_size: int = 64,
    n_packets: int = 30000,
    inflight: int = 384,
    **build_kwargs,
) -> LoopbackResult:
    """Single-queue saturation throughput (deep closed loop)."""
    setup = build_interface(spec, kind, **build_kwargs)
    return run_point(
        setup, pkt_size, n_packets, inflight=inflight, tx_batch=32, rx_batch=32
    )


def wire_bytes_per_packet(setup: LoopbackSetup, result: LoopbackResult) -> tuple:
    """Per-direction interconnect wire bytes per delivered packet."""
    link = setup.link()
    if result.received == 0:
        return 0.0, 0.0
    return (
        link.stats[0].wire_bytes / result.received,
        link.stats[1].wire_bytes / result.received,
    )
