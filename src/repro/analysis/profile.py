"""Flight-recorder profiling runs and report rendering.

``run_profile`` builds one comparison point, attaches a
:class:`~repro.obs.flight.FlightRecorder` to every layer that records
(coherence fabric, cache agents, host driver, NIC queue agents,
application), runs a closed-loop loopback measurement, and returns the
setup, the loopback result, and the recorder. The ``format_*`` helpers
render the recorder's report as the text tables behind
``python -m repro profile``.

Attaching the recorder drops the fabric onto its reference path (see
:meth:`~repro.coherence.fabric.CoherenceFabric.attach_flight`), so a
profiled run is slower in wall-clock but bit-identical in simulated
metrics to an unprofiled one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.loopback import (
    InterfaceKind,
    LoopbackSetup,
    build_interface,
    run_point,
)
from repro.analysis.tables import format_table
from repro.obs.flight import FlightRecorder
from repro.platform.presets import PlatformSpec
from repro.workloads.trafficgen import LoopbackResult


@dataclass
class ProfileRun:
    """Everything ``python -m repro profile`` needs from one run."""

    setup: LoopbackSetup
    result: LoopbackResult
    recorder: FlightRecorder
    report: Dict


def attach_recorder(setup: LoopbackSetup, recorder: FlightRecorder) -> None:
    """Attach ``recorder`` to every recording layer of a built setup.

    The fabric attach forces the reference path; drivers, cache agents
    and NIC queue agents take plain attribute attach (mirroring how the
    fault injector spreads). Interfaces without per-pair queue agents
    (the PCIe NICs) still get full line-event coverage — only the
    packet waterfall is CC-NIC-driver specific.
    """
    setup.system.fabric.attach_flight(recorder)
    for agent in setup.system.fabric.agents:
        agent.flight = recorder
    setup.driver.flight = recorder
    pairs = getattr(setup.interface, "_pairs", None)
    if pairs:
        for pair in pairs.values():
            if pair.agent is not None:
                pair.agent.flight = recorder


def detach_recorder(setup: LoopbackSetup) -> None:
    """Detach any recorder and restore the fabric's configured path."""
    setup.system.fabric.detach_flight()
    for agent in setup.system.fabric.agents:
        agent.flight = None
    setup.driver.flight = None
    pairs = getattr(setup.interface, "_pairs", None)
    if pairs:
        for pair in pairs.values():
            if pair.agent is not None:
                pair.agent.flight = None


def run_profile(
    spec: PlatformSpec,
    kind: InterfaceKind,
    pkt_size: int = 64,
    n_packets: int = 3000,
    inflight: int = 64,
    tx_batch: int = 32,
    rx_batch: int = 32,
    sample_every: int = 1,
    line_capacity: int = 65536,
    max_packets: int = 4096,
    keep_waterfalls: int = 32,
    top: int = 10,
    obs=None,
    timeline=None,
    scenario: Optional[str] = None,
    **build_kwargs,
) -> ProfileRun:
    """One instrumented loopback run with a full flight report.

    ``timeline`` is an optional
    :class:`repro.obs.timeline.TimelineSampler` windowing the run;
    ``scenario`` stamps the flight report with a run name and the spec
    fingerprint of its config block.
    """
    setup = build_interface(spec, kind, obs=obs, **build_kwargs)
    recorder = FlightRecorder(
        line_capacity=line_capacity,
        sample_every=sample_every,
        max_packets=max_packets,
        keep_waterfalls=keep_waterfalls,
    )
    attach_recorder(setup, recorder)
    if timeline is not None:
        from repro.obs.timeline import attach_timeline

        attach_timeline(timeline, setup)
    result = run_point(
        setup,
        pkt_size,
        n_packets,
        inflight=inflight,
        tx_batch=tx_batch,
        rx_batch=rx_batch,
        obs=obs,
        flight=recorder,
        timeline=timeline,
    )
    if timeline is not None:
        timeline.finish(setup.system.sim.now)
    config = {
        "platform": spec.name,
        "interface": kind.value,
        "pkt_size": pkt_size,
        "n_packets": n_packets,
        "inflight": inflight,
        "sample_every": sample_every,
    }
    spec_fingerprint = None
    if scenario is not None:
        from repro.shard.merge import fingerprint

        spec_fingerprint = fingerprint(config)
    report = recorder.report(
        top=top,
        config=config,
        scenario=scenario,
        spec_fingerprint=spec_fingerprint,
    )
    return ProfileRun(setup=setup, result=result, recorder=recorder, report=report)


# ----------------------------------------------------------------------
# Text rendering
# ----------------------------------------------------------------------
def format_waterfall_table(report: Dict) -> str:
    """Per-stage latency breakdown (p50/p99) over sampled packets."""
    stages = report["waterfall"]["stages"]
    rows = [
        (
            name,
            int(summary["count"]),
            f"{summary['p50']:.1f}",
            f"{summary['mean']:.1f}",
            f"{summary['p99']:.1f}",
            f"{summary['max']:.1f}",
        )
        for name, summary in stages.items()
    ]
    title = (
        f"Packet critical path ({report['waterfall']['completed']} sampled, "
        f"{report['waterfall']['incomplete']} in flight at stop)"
    )
    return format_table(
        ["stage", "n", "p50 ns", "mean ns", "p99 ns", "max ns"], rows, title=title
    )


def format_thrash_table(report: Dict) -> str:
    """Top thrashing cache lines (most cross-socket transfers first)."""
    rows = [
        (
            f"{entry['line']:#x}",
            entry["region"],
            entry["class"],
            f"S{entry['home']}",
            entry["xfers"],
            entry["pingpongs"],
            entry["spec_reads"],
            entry["drops"],
            f"{entry['latency_ns']:.0f}",
        )
        for entry in report["thrash"]
    ]
    return format_table(
        [
            "line", "region", "class", "home", "xfers", "pingpong",
            "spec_rd", "drops", "latency ns",
        ],
        rows,
        title="Top thrashing lines",
    )


def format_class_table(report: Dict) -> str:
    """Cross-socket traffic per region class (all classes enumerated)."""
    rows = [
        (
            cls,
            row["lines"],
            row["reads"],
            row["writes"],
            row["xfers"],
            row["pingpongs"],
            row["spec_reads"],
            f"{row['latency_ns']:.0f}",
        )
        for cls, row in report["classes"].items()
    ]
    return format_table(
        [
            "class", "lines", "reads", "writes", "xfers", "pingpong",
            "spec_rd", "latency ns",
        ],
        rows,
        title="Region-class thrash summary",
    )


def format_homing_audit(report: Dict) -> str:
    """Regions whose homing triggered reader-side speculative reads."""
    rows = [
        (
            entry["region"],
            entry["class"],
            f"S{entry['home']}",
            entry["cross_fetches"],
            entry["reader_homed_specs"],
            "FLAG" if entry["flagged"] else "ok",
        )
        for entry in report["homing_audit"]
    ]
    if not rows:
        rows = [("(no cross-socket cache fetches recorded)", "", "", "", "", "")]
    return format_table(
        ["region", "class", "home", "cross_fetch", "reader_spec", "verdict"],
        rows,
        title="Homing audit (reader-homed speculative reads)",
    )


def format_sample_waterfall(report: Dict) -> str:
    """One fully traced packet, stage by stage."""
    samples = report["waterfall"]["samples"]
    if not samples:
        return "No complete packet samples recorded."
    sample = samples[0]
    rows = [(name, f"{duration:.1f}") for name, duration in sample["stages"]]
    rows.append(("total", f"{sample['total_ns']:.1f}"))
    return format_table(
        ["stage", "ns"],
        rows,
        title=f"Sample waterfall: packet {sample['pkt_id']}",
    )
