"""Plain-text table formatting for benchmark output.

Benchmarks print the same rows/series the paper reports; this module
keeps the formatting consistent and dependency-free.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned monospace table."""
    rendered_rows: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value >= 100:
            return f"{value:.0f}"
        if value >= 10:
            return f"{value:.1f}"
        return f"{value:.2f}"
    return str(value)
