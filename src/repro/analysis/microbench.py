"""Microbenchmark harnesses reproducing §2.2 and §3.2-3.3 figures.

Each function builds a fresh simulated system, constructs the cache
state the paper's microbenchmark constructs, and measures the same
quantity:

* :func:`access_latency_cases` — Fig 7 (64B access latency by cache
  state and homing).
* :func:`pingpong` — Fig 8 (producer-consumer round trip by layout).
* :func:`stream_throughput` — Fig 9 (caching vs non-temporal streaming
  across thread counts).
* :func:`wc_write_throughput` — Fig 2 (WC MMIO / WC DRAM / WB DRAM
  streaming writes per barrier size).
* :func:`wc_store_latency` — Fig 3 (cumulative latency of N scattered
  MMIO stores; the write-combining buffer cliff).
* :func:`mmio_read_latency` — §2.2's 8B / 64B MMIO load latencies.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import ConfigError
from repro.pcie.mmio import MmioPath
from repro.pcie.wc import WcBufferFile
from repro.platform.presets import PlatformSpec
from repro.platform.system import System
from repro.sim.stats import Histogram


# ----------------------------------------------------------------------
# Fig 7: access latency by cache state
# ----------------------------------------------------------------------
def access_latency_cases(spec: PlatformSpec) -> Dict[str, float]:
    """Median 64B access latency for the five Fig 7 cases.

    Cases: local DRAM, remote DRAM, local L2 (another core's cache on
    the same socket), remote L2 homed on the remote/writer socket (rh),
    and remote L2 homed on the local/reader socket (lh).
    """
    out: Dict[str, float] = {}

    def fresh():
        system = System(spec, prefetch_host=False, prefetch_nic=False)
        reader = system.fabric.new_agent("reader", socket=0, capacity_lines=spec.l2_lines)
        local_peer = system.fabric.new_agent("peer", socket=0, capacity_lines=spec.l2_lines)
        remote = system.fabric.new_agent("remote", socket=1, capacity_lines=spec.l2_lines)
        return system, reader, local_peer, remote

    # Local DRAM: nothing cached, memory homed on the reader's socket.
    system, reader, _peer, _remote = fresh()
    region = system.alloc_on("obj", 64, socket=0)
    out["L DRAM"] = system.fabric.read(reader, region.base, 64)

    # Remote DRAM: nothing cached, homed on the other socket.
    system, reader, _peer, _remote = fresh()
    region = system.alloc_on("obj", 64, socket=1)
    out["R DRAM"] = system.fabric.read(reader, region.base, 64)

    # Local L2: a same-socket peer holds the line in M state.
    system, reader, peer, _remote = fresh()
    region = system.alloc_on("obj", 64, socket=0)
    system.fabric.write(peer, region.base, 64)
    out["L L2"] = system.fabric.read(reader, region.base, 64)

    # Remote L2, writer-homed (rh): remote wrote and retains M; memory
    # homed on the remote socket.
    system, reader, _peer, remote = fresh()
    region = system.alloc_on("obj", 64, socket=1)
    system.fabric.write(remote, region.base, 64)
    out["R L2 (rh)"] = system.fabric.read(reader, region.base, 64)

    # Remote L2, reader-homed (lh).
    system, reader, _peer, remote = fresh()
    region = system.alloc_on("obj", 64, socket=0)
    system.fabric.write(remote, region.base, 64)
    out["R L2 (lh)"] = system.fabric.read(reader, region.base, 64)
    return out


# ----------------------------------------------------------------------
# Fig 8: pingpong
# ----------------------------------------------------------------------
PINGPONG_CASES = ("S0", "S1", "Rd", "Wr", "S0C", "S1C")


def pingpong(spec: PlatformSpec, case: str, iterations: int = 300) -> Histogram:
    """Two-register pingpong between the sockets; returns RTT histogram.

    The writer (socket 0) increments register 1; the reader (socket 1)
    polls it and echoes into register 2; the writer polls register 2.
    ``case`` selects homing/colocation, matching Fig 8's x-axis.
    """
    if case not in PINGPONG_CASES:
        raise ConfigError(f"unknown pingpong case {case!r}")
    system = System(spec, prefetch_host=False, prefetch_nic=False)
    writer = system.fabric.new_agent("writer", socket=0, capacity_lines=spec.l2_lines)
    reader = system.fabric.new_agent("reader", socket=1, capacity_lines=spec.l2_lines)

    if case in ("S0C", "S1C"):
        home = 0 if case == "S0C" else 1
        region = system.alloc_on("pp", 64, socket=home)
        addr1, addr2 = region.base, region.base + 8
    else:
        if case == "S0":
            h1 = h2 = 0
        elif case == "S1":
            h1 = h2 = 1
        elif case == "Rd":
            h1, h2 = 1, 0   # each register homed on its reader's socket
        else:  # Wr
            h1, h2 = 0, 1   # each register homed on its writer's socket
        addr1 = system.alloc_on("pp1", 64, socket=h1).base
        addr2 = system.alloc_on("pp2", 64, socket=h2).base

    values = {"r1": 0, "r2": 0}
    rtts = Histogram("pingpong_rtt")
    state = {"start": 0.0, "done": False, "count": 0}

    def writer_proc():
        fabric = system.fabric
        sim = system.sim
        while state["count"] < iterations:
            target = values["r1"] + 1
            ns = fabric.write(writer, addr1, 8)
            values["r1"] = target
            state["start"] = sim.now
            yield ns
            while values["r2"] < target:
                yield fabric.read(writer, addr2, 8)
            rtts.record(sim.now - state["start"])
            state["count"] += 1
        state["done"] = True

    def reader_proc():
        fabric = system.fabric
        seen = 0
        while not state["done"]:
            ns = fabric.read(reader, addr1, 8)
            if values["r1"] > seen:
                seen = values["r1"]
                ns += fabric.write(reader, addr2, 8)
                values["r2"] = seen
            yield max(ns, 1.0)

    system.sim.spawn(writer_proc(), "pp-writer")
    system.sim.spawn(reader_proc(), "pp-reader")
    system.sim.run(until=1e9, stop_when=lambda: state["done"])
    return rtts


# ----------------------------------------------------------------------
# Fig 9: streaming transfer throughput
# ----------------------------------------------------------------------
def stream_throughput(
    spec: PlatformSpec,
    pairs: int,
    caching: bool,
    chunk_bytes: int = 65536,
    chunks: int = 12,
) -> float:
    """Aggregate reader-side Gbps for ``pairs`` writer/reader pairs.

    Writers on socket 0 stream into shared regions; readers on socket 1
    poll a signal per chunk, read the chunk, and copy into a local
    buffer — the paper's Fig 9 workload. ``caching=False`` switches the
    writer to non-temporal stores targeting reader-socket DRAM.
    """
    system = System(spec, prefetch_host=False, prefetch_nic=False)
    done = {"count": 0}
    total_bytes = pairs * chunks * chunk_bytes
    per_core_l2 = spec.l2_lines

    start_ns = [None]
    end_ns = [0.0]

    for pair in range(pairs):
        writer = system.fabric.new_agent(f"w{pair}", socket=0, capacity_lines=per_core_l2)
        reader = system.fabric.new_agent(f"r{pair}", socket=1, capacity_lines=per_core_l2)
        # Caching stores target writer-socket memory (cache-to-cache
        # transfers); non-temporal stores target reader-socket DRAM, as
        # in the paper.
        shared = system.alloc_on(f"sh{pair}", chunk_bytes, socket=0 if caching else 1)
        local = system.alloc_on(f"lo{pair}", chunk_bytes, socket=1)
        signal = system.alloc_on(f"sig{pair}", 64, socket=0)
        progress = {"written": 0, "read": 0}

        def writer_proc(writer=writer, shared=shared, signal=signal, progress=progress):
            fabric = system.fabric
            for _chunk in range(chunks):
                while progress["written"] - progress["read"] >= 2:
                    yield fabric.read(writer, signal.base + 8, 8)
                if caching:
                    ns = fabric.access(writer, shared.base, chunk_bytes, write=True)
                else:
                    ns = fabric.nt_store(writer, shared.base, chunk_bytes)
                ns += fabric.write(writer, signal.base, 8)
                progress["written"] += 1
                yield ns

        def reader_proc(reader=reader, shared=shared, local=local, signal=signal, progress=progress):
            fabric = system.fabric
            sim = system.sim
            for _chunk in range(chunks):
                while progress["read"] >= progress["written"]:
                    yield fabric.read(reader, signal.base, 8)
                ns = fabric.access(reader, shared.base, chunk_bytes, write=False)
                ns += fabric.access(reader, local.base, chunk_bytes, write=True)
                ns += fabric.write(reader, signal.base + 8, 8)
                progress["read"] += 1
                if start_ns[0] is None:
                    start_ns[0] = sim.now
                end_ns[0] = sim.now + ns
                yield ns
            done["count"] += 1

        system.sim.spawn(writer_proc(), f"stream-w{pair}")
        system.sim.spawn(reader_proc(), f"stream-r{pair}")

    system.sim.run(until=1e10, stop_when=lambda: done["count"] >= pairs)
    elapsed = max(1.0, end_ns[0] - (start_ns[0] or 0.0))
    return total_bytes * 8.0 / elapsed


# ----------------------------------------------------------------------
# Fig 2: WC write throughput per barrier size
# ----------------------------------------------------------------------
def wc_write_throughput(
    spec: PlatformSpec,
    target: str,
    bytes_per_barrier: int,
    total_bytes: int = 262144,
) -> float:
    """Single-threaded streaming-write Gbps with a fence per barrier.

    ``target`` is one of ``"wc_mmio"`` (device window over PCIe),
    ``"wc_dram"`` (WC-mapped local DRAM), ``"wb_dram"`` (normal
    write-back stores, fences effectively free).
    """
    if bytes_per_barrier < 64 or bytes_per_barrier % 64:
        raise ConfigError("bytes_per_barrier must be a positive multiple of 64")
    if target == "wb_dram":
        # Write-back stores retire into the store buffer and drain
        # continuously; an sfence barely perturbs a steady stream, so
        # throughput is flat in barrier size (the paper's WB curve).
        per_line = spec.cost.local_dram / (spec.write_pipeline * spec.mlp)
        fence = 1.0
        ns = 0.0
        written = 0
        while written < total_bytes:
            ns += (bytes_per_barrier // 64) * per_line + fence
            written += bytes_per_barrier
        return total_bytes * 8.0 / ns

    nic = spec.nic("e810")
    if target == "wc_mmio":
        wc = WcBufferFile(
            n_buffers=nic.wc_buffers,
            evict_stall_ns=nic.wc_evict_stall_ns,
        )
    elif target == "wc_dram":
        wc = WcBufferFile(
            n_buffers=nic.wc_buffers,
            full_flush_ns=4.2,
            evict_stall_ns=80.0,
        )
    else:
        raise ConfigError(f"unknown target {target!r}")
    ns = 0.0
    written = 0
    addr = 0
    while written < total_bytes:
        for _ in range(bytes_per_barrier // 64):
            ns += wc.store(addr, 64)
            addr += 64
            written += 64
        ns += wc.sfence()
    return total_bytes * 8.0 / ns


# ----------------------------------------------------------------------
# Fig 3: cumulative latency of N scattered MMIO stores
# ----------------------------------------------------------------------
def wc_store_latency(spec: PlatformSpec, nic_name: str, max_stores: int = 64) -> List[Tuple[int, float]]:
    """Cumulative ns after N 32-bit stores to distinct 64B regions."""
    nic = spec.nic(nic_name)
    points = []
    for n in range(1, max_stores + 1):
        wc = WcBufferFile(
            n_buffers=nic.wc_buffers,
            evict_stall_ns=nic.wc_evict_stall_ns,
        )
        total = 0.0
        for i in range(n):
            total += wc.store(i * 128, 4)  # distinct lines, never filled
        points.append((n, total))
    return points


# ----------------------------------------------------------------------
# §2.2: MMIO read latency
# ----------------------------------------------------------------------
def mmio_read_latency(spec: PlatformSpec, nic_name: str = "e810") -> Dict[str, float]:
    """MMIO load latency for 8B and 64B reads."""
    mmio = MmioPath(spec.nic(nic_name))
    return {"8B": mmio.read(8), "64B": mmio.read(64)}
