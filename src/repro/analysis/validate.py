"""Calibration self-check.

The model pins a small set of constants to the paper's own
microbenchmarks; everything else is derived. This module re-measures
those anchors and reports drift, so a change anywhere in the substrate
that silently breaks calibration is caught in one call::

    from repro.analysis.validate import validate_calibration
    report = validate_calibration()
    assert report.ok, report.summary()

`tests/test_validate.py` runs it in CI fashion; the benchmark suite's
Fig 2/3/7 tests assert the same anchors against tighter bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.analysis.loopback import InterfaceKind, min_latency
from repro.analysis.microbench import access_latency_cases, mmio_read_latency, wc_store_latency
from repro.platform import icx, spr

#: Anchors: (name, paper value, relative tolerance).
_DEFAULT_TOLERANCE = 0.06


@dataclass
class Check:
    """One calibration anchor's outcome."""

    name: str
    paper: float
    measured: float
    tolerance: float

    @property
    def error(self) -> float:
        if self.paper == 0:
            return 0.0
        return abs(self.measured - self.paper) / self.paper

    @property
    def ok(self) -> bool:
        return self.error <= self.tolerance

    def __str__(self) -> str:
        flag = "ok " if self.ok else "DRIFT"
        return (
            f"[{flag}] {self.name}: paper={self.paper:g} "
            f"measured={self.measured:.4g} ({self.error:+.1%} vs ±{self.tolerance:.0%})"
        )


@dataclass
class CalibrationReport:
    """All anchors, with pass/fail."""

    checks: List[Check] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    def failures(self) -> List[Check]:
        return [check for check in self.checks if not check.ok]

    def summary(self) -> str:
        return "\n".join(str(check) for check in self.checks)


def validate_calibration(
    tolerance: float = _DEFAULT_TOLERANCE,
    include_end_to_end: bool = True,
) -> CalibrationReport:
    """Re-measure every calibration anchor.

    Args:
        tolerance: Relative tolerance for the microbenchmark anchors.
        include_end_to_end: Also check the headline end-to-end anchors
            (minimum loopback latencies) against looser (±15%) bounds —
            these are predictions, not calibration inputs, but drifting
            far usually means a substrate regression.
    """
    report = CalibrationReport()

    fig7_paper = {
        "icx": {"L DRAM": 72, "R DRAM": 144, "L L2": 48,
                "R L2 (rh)": 114, "R L2 (lh)": 119},
        "spr": {"L DRAM": 108, "R DRAM": 191, "L L2": 82,
                "R L2 (rh)": 171, "R L2 (lh)": 174},
    }
    for platform, spec in (("icx", icx()), ("spr", spr())):
        cases = access_latency_cases(spec)
        for target, paper in fig7_paper[platform].items():
            report.checks.append(Check(
                name=f"fig7.{platform}.{target}",
                paper=float(paper),
                measured=cases[target],
                tolerance=tolerance,
            ))

    mmio = mmio_read_latency(icx())
    report.checks.append(Check("mmio.read8", 982.0, mmio["8B"], tolerance))
    report.checks.append(Check("mmio.read64", 1026.0, mmio["64B"], tolerance))

    points = dict(wc_store_latency(icx(), "e810"))
    report.checks.append(Check("fig3.n64_us", 20.0, points[64] / 1000.0, 0.25))

    if include_end_to_end:
        report.checks.append(Check(
            "loopback.icx.ccnic_min", 490.0,
            min_latency(icx(), InterfaceKind.CCNIC, n_packets=600), 0.15,
        ))
        report.checks.append(Check(
            "loopback.icx.e810_min", 3809.0,
            min_latency(icx(), InterfaceKind.E810, n_packets=400), 0.15,
        ))
        report.checks.append(Check(
            "loopback.icx.cx6_min", 2116.0,
            min_latency(icx(), InterfaceKind.CX6, n_packets=400), 0.15,
        ))
    return report
