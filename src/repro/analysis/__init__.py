"""Experiment harnesses: sweeps, scaling model, microbenchmarks, tables."""

from repro.analysis.loopback import (
    InterfaceKind,
    LoopbackSetup,
    build_interface,
    run_point,
    saturation,
)
from repro.analysis.profile import (
    ProfileRun,
    attach_recorder,
    detach_recorder,
    run_profile,
)
from repro.analysis.scaling import CurvePoint, ScalingModel, throughput_latency_curve
from repro.analysis.tables import format_table

__all__ = [
    "CurvePoint",
    "InterfaceKind",
    "LoopbackSetup",
    "ProfileRun",
    "ScalingModel",
    "attach_recorder",
    "build_interface",
    "detach_recorder",
    "format_table",
    "run_point",
    "run_profile",
    "saturation",
    "throughput_latency_curve",
]
