"""Experiment harnesses: sweeps, scaling model, microbenchmarks, tables."""

from repro.analysis.loopback import (
    InterfaceKind,
    LoopbackSetup,
    build_interface,
    run_point,
    saturation,
)
from repro.analysis.scaling import CurvePoint, ScalingModel, throughput_latency_curve
from repro.analysis.tables import format_table

__all__ = [
    "CurvePoint",
    "InterfaceKind",
    "LoopbackSetup",
    "ScalingModel",
    "build_interface",
    "format_table",
    "run_point",
    "saturation",
    "throughput_latency_curve",
]
