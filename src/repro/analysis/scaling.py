"""Multi-core scaling model.

The detailed simulation layer runs one queue pair per process; fleet-
scale curves (Figs 11-13) compose a measured single-queue profile into
n-core results. This is the documented substitution for hardware
parallelism (DESIGN.md §5): the paper's multi-core curves are limited by
per-core service time, interconnect bandwidth, and (for PCIe NICs) the
device packet engine — all three captured here.

For ``n`` cores offering total rate ``R``:

* per-core service is measured by a detailed open-loop run at ``R/n``;
* the shared bottleneck (UPI direction or NIC packet engine) adds an
  M/M/1-style waiting term ``w = s * rho / (1 - rho)`` where ``s`` is
  the bottleneck's per-packet service time and ``rho`` the utilization
  from all cores together;
* achievable throughput is capped at
  ``min(n * per_core_rate, bottleneck_capacity)``.

Hyperthread counts above the physical core count scale per-core rate by
the platform's measured HT speedup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.analysis.loopback import (
    InterfaceKind,
    LoopbackSetup,
    build_interface,
    run_point,
    wire_bytes_per_packet,
)
from repro.errors import ConfigError
from repro.platform.presets import PlatformSpec


@dataclass
class CurvePoint:
    """One point of a throughput-latency curve."""

    offered_mpps: float
    achieved_mpps: float
    achieved_gbps: float
    median_latency_ns: float
    p99_latency_ns: float
    cores: int

    def __repr__(self) -> str:
        return (
            f"CurvePoint(cores={self.cores}, {self.achieved_mpps:.1f}Mpps, "
            f"{self.achieved_gbps:.1f}Gbps, median={self.median_latency_ns:.0f}ns)"
        )


@dataclass
class ScalingModel:
    """Measured single-queue profile plus shared-resource capacities."""

    spec: PlatformSpec
    kind: InterfaceKind
    pkt_size: int
    per_queue_sat_mpps: float
    wire_bytes_dir0: float
    wire_bytes_dir1: float
    nic_pps_capacity: Optional[float]   # PCIe packet engine, else None
    nic_line_gbps: Optional[float]

    # ------------------------------------------------------------------
    @property
    def link_capacity_bytes_per_ns(self) -> float:
        return self.spec.upi_wire_bytes_per_ns if self.kind.is_coherent \
            else self.spec.pcie_wire_bytes_per_ns

    def bottleneck_mpps(self) -> float:
        """Total packet rate the shared resources can sustain."""
        per_dir = max(self.wire_bytes_dir0, self.wire_bytes_dir1)
        if per_dir <= 0:
            link_cap = float("inf")
        else:
            link_cap = self.link_capacity_bytes_per_ns / per_dir * 1e3  # Mpps
        caps = [link_cap]
        if self.nic_pps_capacity is not None:
            caps.append(self.nic_pps_capacity / 1e6)
        if self.nic_line_gbps is not None:
            caps.append(self.nic_line_gbps / (self.pkt_size * 8e-3))
        return min(caps)

    def per_core_rate(self, cores: int) -> float:
        """Per-thread saturation rate, with HT beyond physical cores."""
        if cores <= self.spec.cores_per_socket:
            return self.per_queue_sat_mpps
        # Threads beyond the physical core count share cores: total
        # speedup of a fully-HT core is ht_speedup, so each of its two
        # threads runs at ht_speedup / 2 of a full core.
        return self.per_queue_sat_mpps * self.spec.ht_speedup / 2.0

    def max_mpps(self, cores: int) -> float:
        """Achievable total rate for ``cores`` threads."""
        if cores <= 0:
            raise ConfigError("cores must be positive")
        physical = min(cores, self.spec.cores_per_socket)
        extra = max(0, cores - self.spec.cores_per_socket)
        core_limit = (
            physical * self.per_queue_sat_mpps
            + extra * self.per_queue_sat_mpps * (self.spec.ht_speedup - 1.0)
        )
        return min(core_limit, self.bottleneck_mpps())

    def shared_wait_ns(self, total_mpps: float) -> float:
        """M/M/1-style waiting time at the shared bottleneck."""
        capacity = self.bottleneck_mpps()
        if capacity <= 0 or capacity == float("inf"):
            return 0.0
        rho = min(0.995, total_mpps / capacity)
        service_ns = 1e3 / capacity
        return service_ns * rho / (1.0 - rho)


def build_scaling_model(
    spec: PlatformSpec,
    kind: InterfaceKind,
    pkt_size: int,
    n_packets: int = 20000,
    inflight: int = 384,
    **build_kwargs,
) -> ScalingModel:
    """Measure a single queue in detail and wrap it in a scaling model."""
    setup = build_interface(spec, kind, **build_kwargs)
    result = run_point(
        setup, pkt_size, n_packets, inflight=inflight, tx_batch=32, rx_batch=32
    )
    d0, d1 = wire_bytes_per_packet(setup, result)
    nic_pps = None
    nic_line = None
    if not kind.is_coherent:
        nic_spec = spec.nic(kind.value)
        nic_pps = nic_spec.pps_capacity
        nic_line = nic_spec.line_rate_gbps
    return ScalingModel(
        spec=spec,
        kind=kind,
        pkt_size=pkt_size,
        per_queue_sat_mpps=result.mpps,
        wire_bytes_dir0=d0,
        wire_bytes_dir1=d1,
        nic_pps_capacity=nic_pps,
        nic_line_gbps=nic_line,
    )


def throughput_latency_curve(
    spec: PlatformSpec,
    kind: InterfaceKind,
    pkt_size: int,
    cores: int,
    fractions: Optional[List[float]] = None,
    n_packets: int = 8000,
    model: Optional[ScalingModel] = None,
    setup_factory: Optional[Callable[[], LoopbackSetup]] = None,
    **build_kwargs,
) -> List[CurvePoint]:
    """Trace a throughput-latency curve for ``cores`` threads.

    Each point runs a fresh detailed single-queue simulation at the
    per-core offered rate and adds the shared-bottleneck waiting term.
    """
    if fractions is None:
        fractions = [0.1, 0.3, 0.5, 0.7, 0.8, 0.9, 0.97]
    if model is None:
        model = build_scaling_model(spec, kind, pkt_size, **build_kwargs)
    total_max = model.max_mpps(cores)
    points: List[CurvePoint] = []
    for fraction in fractions:
        offered_total = total_max * fraction
        offered_per_core = offered_total / cores
        if setup_factory is not None:
            setup = setup_factory()
        else:
            setup = build_interface(spec, kind, **build_kwargs)
        result = run_point(
            setup,
            pkt_size,
            n_packets,
            offered_mpps=offered_per_core,
            inflight=None,
            tx_batch=32,
            rx_batch=32,
        )
        achieved_per_core = min(result.mpps, offered_per_core)
        achieved_total = min(achieved_per_core * cores, total_max)
        wait = model.shared_wait_ns(achieved_total)
        points.append(
            CurvePoint(
                offered_mpps=offered_total,
                achieved_mpps=achieved_total,
                achieved_gbps=achieved_total * pkt_size * 8e-3,
                median_latency_ns=result.latency.median + wait,
                p99_latency_ns=result.latency.percentile(99) + wait,
                cores=cores,
            )
        )
    return points
