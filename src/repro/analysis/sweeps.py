"""Design-choice ablation sweeps beyond the paper's figures.

DESIGN.md calls out several sizing decisions the paper fixes without a
figure: descriptor-ring depth, recycling-stack depth, and the small-
buffer threshold. These sweeps quantify each over the detailed
simulation; `benchmarks/test_ablation_sweeps.py` runs them.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.loopback import InterfaceKind, build_interface, run_point
from repro.core import CcnicConfig
from repro.platform.presets import PlatformSpec


def ring_size_sweep(
    spec: PlatformSpec,
    sizes: List[int],
    pkt_size: int = 64,
    n_packets: int = 8000,
) -> List[Tuple[int, float, float]]:
    """Throughput and loaded latency versus descriptor-ring depth.

    Small rings backpressure early (throughput loss); huge rings let
    queues build (latency) without adding throughput.
    """
    out = []
    for slots in sizes:
        config = CcnicConfig(ring_slots=slots, recycle_stack_max=1024)
        setup = build_interface(spec, InterfaceKind.CCNIC, config=config)
        inflight = min(384, max(8, slots // 2))
        result = run_point(setup, pkt_size, n_packets, inflight=inflight,
                           tx_batch=min(32, slots // 4) or 1,
                           rx_batch=min(32, slots // 4) or 1)
        out.append((slots, result.mpps, result.latency.median))
    return out


def recycle_stack_sweep(
    spec: PlatformSpec,
    depths: List[int],
    pkt_size: int = 64,
    n_packets: int = 8000,
    inflight: int = 256,
) -> List[Tuple[int, float, float]]:
    """Throughput versus per-side recycling-stack depth.

    Depths below the in-flight window force spills to the shared pool
    (cold reuse plus contended index lines); beyond it, returns flatten.
    Returns (depth, Mpps, stack hit fraction).
    """
    out = []
    for depth in depths:
        config = CcnicConfig(ring_slots=1024, recycle_stack_max=depth,
                             pool_buffers=8192)
        setup = build_interface(spec, InterfaceKind.CCNIC, config=config)
        result = run_point(setup, pkt_size, n_packets, inflight=inflight,
                           tx_batch=32, rx_batch=32)
        stats = setup.interface.pool.stats
        hits = stats.get("stack_alloc")
        total = hits + stats.get("shared_alloc")
        fraction = hits / total if total else 0.0
        out.append((depth, result.mpps, fraction))
    return out


def small_threshold_sweep(
    spec: PlatformSpec,
    thresholds: List[int],
    pkt_size: int = 64,
    n_packets: int = 8000,
) -> List[Tuple[int, float]]:
    """Throughput versus the small-buffer cutoff for a small-packet load.

    A threshold below the packet size disables subdivision for it
    (full 4KB buffers per packet); at or above, packets share subdivided
    buffers and the interface's cache footprint shrinks.
    """
    out = []
    for threshold in thresholds:
        config = CcnicConfig(ring_slots=1024, recycle_stack_max=1024,
                             small_threshold=min(threshold, 128),
                             small_buffers=threshold > 0)
        setup = build_interface(spec, InterfaceKind.CCNIC, config=config)
        result = run_point(setup, pkt_size, n_packets, inflight=256,
                           tx_batch=32, rx_batch=32)
        out.append((threshold, result.mpps))
    return out


def batching_matrix(
    spec: PlatformSpec,
    kind: InterfaceKind,
    batches: List[int],
    pkt_size: int = 64,
    n_packets: int = 6000,
) -> Dict[Tuple[int, int], float]:
    """Joint TX x RX batch-size grid (Fig 16 explores the axes only)."""
    out: Dict[Tuple[int, int], float] = {}
    for tx in batches:
        for rx in batches:
            setup = build_interface(spec, kind)
            result = run_point(setup, pkt_size, n_packets, inflight=256,
                               tx_batch=tx, rx_batch=rx)
            out[(tx, rx)] = result.mpps
    return out
