"""Sanitizer wiring and report rendering for checked runs.

``attach_sanitizer`` mirrors :func:`repro.analysis.profile.attach_recorder`:
one call spreads a :class:`~repro.check.sanitizer.Sanitizer` across every
layer that carries protocol events (coherence fabric, descriptor rings,
buffer pool, host driver, NIC queue agents). Attaching drops the fabric
onto its reference path, so a sanitized run is slower in wall-clock but
bit-identical in simulated metrics to an unsanitized one.

The ``format_*`` helpers render a sanitizer report as the text tables
behind ``--sanitize`` on the loopback/kv/rpc CLI commands.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.tables import format_table
from repro.check.sanitizer import Sanitizer


def _pair_queues(pair):
    for queue in (pair.tx, pair.rx, pair.tx_comp, pair.rx_post):
        if queue is not None:
            yield queue


def attach_sanitizer(setup, sanitizer: Sanitizer) -> None:
    """Attach ``sanitizer`` to every checked layer of a built setup.

    The fabric attach forces the reference path (so the speculative-read
    hook fires and metrics stay fingerprint-identical); rings, pool,
    driver and NIC queue agents take plain attribute attach, mirroring
    how the flight recorder spreads. Interfaces without coherent rings
    (the PCIe NICs) get pool and payload coverage only.
    """
    system = setup.system
    sanitizer.bind(system.sim)
    system.fabric.attach_sanitizer(sanitizer)
    setup.driver.sanitizer = sanitizer
    pool = getattr(setup.interface, "pool", None)
    if pool is not None:
        pool.sanitizer = sanitizer
    pairs = getattr(setup.interface, "_pairs", None)
    if pairs:
        for pair in pairs.values():
            for queue in _pair_queues(pair):
                queue.sanitizer = sanitizer
            if pair.agent is not None:
                pair.agent.sanitizer = sanitizer


def detach_sanitizer(setup) -> None:
    """Detach any sanitizer and restore the fabric's configured path."""
    setup.system.fabric.detach_sanitizer()
    setup.driver.sanitizer = None
    pool = getattr(setup.interface, "pool", None)
    if pool is not None:
        pool.sanitizer = None
    pairs = getattr(setup.interface, "_pairs", None)
    if pairs:
        for pair in pairs.values():
            for queue in _pair_queues(pair):
                queue.sanitizer = None
            if pair.agent is not None:
                pair.agent.sanitizer = None


# ----------------------------------------------------------------------
# Text rendering
# ----------------------------------------------------------------------
def format_rule_summary(report: Dict) -> str:
    """Per-rule finding counts (all observed rules, worst first)."""
    counts = report["counts"]
    rows = [
        (rule, count)
        for rule, count in sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    ]
    if not rows:
        rows = [("(no violations)", 0)]
    title = (
        f"Sanitizer summary: {report['total']} finding(s) over "
        f"{report['events']} protocol events"
    )
    return format_table(["rule", "findings"], rows, title=title)


def format_violation_table(report: Dict, limit: int = 20) -> str:
    """The first ``limit`` retained findings, in detection order."""
    rows = [
        (
            v["rule"],
            f"{v['addr']:#x}" if v["addr"] is not None else "-",
            ",".join(v["agents"]),
            f"{v['sim_time']:.1f}",
            v["location"],
            v["message"][:60],
        )
        for v in report["findings"][:limit]
    ]
    if not rows:
        return "No sanitizer findings."
    shown = len(rows)
    suffix = "" if shown == report["total"] else f" (showing {shown} of {report['total']})"
    return format_table(
        ["rule", "addr", "agents", "t ns", "where", "message"],
        rows,
        title=f"Sanitizer findings{suffix}",
    )
