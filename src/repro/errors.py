"""Exception hierarchy for the CC-NIC reproduction.

All library-specific errors derive from :class:`ReproError` so callers can
catch one base type at an API boundary.
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """The discrete-event engine was used incorrectly."""


class MemoryError_(ReproError):
    """Address-space or region misuse (bad address, overlap, exhaustion)."""


class CoherenceError(ReproError):
    """The coherence protocol reached an inconsistent state."""


class InterconnectError(ReproError):
    """Invalid link configuration or message."""


class NicError(ReproError):
    """NIC interface misuse: bad descriptor, full ring, bad burst."""


class PoolError(NicError):
    """Buffer-pool misuse: double free, exhaustion, foreign buffer."""


class ConfigError(ReproError):
    """Invalid platform or interface configuration."""


class WorkloadError(ReproError):
    """Invalid workload parameters."""
