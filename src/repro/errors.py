"""Exception hierarchy for the CC-NIC reproduction.

All library-specific errors derive from :class:`ReproError` so callers can
catch one base type at an API boundary.
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """The discrete-event engine was used incorrectly."""


class AddressSpaceError(ReproError):
    """Address-space or region misuse (bad address, overlap, exhaustion)."""


#: Deprecated alias for :class:`AddressSpaceError`; kept so existing
#: callers (and the original awkward name) keep working.
MemoryError_ = AddressSpaceError


class CoherenceError(ReproError):
    """The coherence protocol reached an inconsistent state."""


class InterconnectError(ReproError):
    """Invalid link configuration or message."""


class NicError(ReproError):
    """NIC interface misuse: bad descriptor, full ring, bad burst."""


class PoolError(NicError):
    """Buffer-pool misuse: double free, exhaustion, foreign buffer."""


class RingTimeoutError(NicError):
    """A descriptor ring made no progress within the recovery budget."""


class FaultError(ReproError):
    """Invalid fault plan, fault event, or fault-injector misuse."""


class ConfigError(ReproError, ValueError):
    """Invalid platform, interface, or tool configuration.

    Also a :class:`ValueError`: configuration mistakes are bad argument
    values, so callers guarding stdlib-style (``except ValueError``)
    keep working while everything stays catchable at :class:`ReproError`.
    """


class WorkloadError(ReproError):
    """Invalid workload parameters."""


class CheckError(ReproError):
    """Base class for ``repro.check`` findings (sanitizer and linter)."""


class SanitizerError(CheckError):
    """A protocol violation detected by the runtime sanitizer.

    Raised by fail-fast (``--sanitize=strict``) runs. Carries the
    structured finding so handlers need not re-parse the message:

    Attributes:
        rule: Violation rule id (e.g. ``read-before-signal``).
        addr: Byte address of the violating cache line, when known.
        agents: Names of the agents involved.
        sim_time: Simulated nanoseconds at the violation.
    """

    def __init__(self, message, rule=None, addr=None, agents=(), sim_time=None):
        super().__init__(message)
        self.rule = rule
        self.addr = addr
        self.agents = tuple(agents)
        self.sim_time = sim_time


class LintError(CheckError):
    """The static lint pass was misconfigured or could not run."""


class ModelCheckError(CheckError):
    """The protocol model checker or schedule explorer found a violation.

    Raised when a small-scope enumeration of the coherence fabric (or a
    permuted cohort schedule) breaks a checked invariant. Carries the
    structured counterexample so handlers can replay it without parsing
    the message:

    Attributes:
        invariant: Violated invariant id (e.g. ``swmr``, ``stale-read``,
            ``transition-unknown``, ``cost-mismatch``, ``twin-diverged``,
            ``fingerprint-diverged``).
        sequence: The op sequence (or schedule plan) that reproduces the
            violation, as a tuple of JSON-safe steps.
        step: Index into ``sequence`` of the violating step, when known.
        detail: Free-form structured context (expected/observed values).
    """

    def __init__(self, message, invariant=None, sequence=(), step=None, detail=None):
        super().__init__(message)
        self.invariant = invariant
        self.sequence = tuple(sequence)
        self.step = step
        self.detail = dict(detail or {})
