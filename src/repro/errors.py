"""Exception hierarchy for the CC-NIC reproduction.

All library-specific errors derive from :class:`ReproError` so callers can
catch one base type at an API boundary.
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """The discrete-event engine was used incorrectly."""


class AddressSpaceError(ReproError):
    """Address-space or region misuse (bad address, overlap, exhaustion)."""


#: Deprecated alias for :class:`AddressSpaceError`; kept so existing
#: callers (and the original awkward name) keep working.
MemoryError_ = AddressSpaceError


class CoherenceError(ReproError):
    """The coherence protocol reached an inconsistent state."""


class InterconnectError(ReproError):
    """Invalid link configuration or message."""


class NicError(ReproError):
    """NIC interface misuse: bad descriptor, full ring, bad burst."""


class PoolError(NicError):
    """Buffer-pool misuse: double free, exhaustion, foreign buffer."""


class RingTimeoutError(NicError):
    """A descriptor ring made no progress within the recovery budget."""


class FaultError(ReproError):
    """Invalid fault plan, fault event, or fault-injector misuse."""


class ConfigError(ReproError):
    """Invalid platform or interface configuration."""


class WorkloadError(ReproError):
    """Invalid workload parameters."""
