"""PCIe NIC interface model (E810- and CX6-style).

Implements the descriptor-queue interface of §2.1 over the PCIe access
paths of §2.2, exposing the same driver API as
:class:`~repro.core.driver.CcnicDriver` so the traffic generator and
applications are interface-agnostic:

* the host keeps rings and buffers in local write-back memory;
* TX submission writes descriptors locally, fences, and rings an
  uncacheable MMIO doorbell (one per burst);
* the device DMA-reads descriptors in batches, DMA-reads payloads,
  passes packets through a rate-limited pipeline, and on the RX side
  consumes pre-posted blank buffers, DMA-writes payloads and completion
  descriptors (DDIO-installing them into the host LLC);
* the host reaps TX completions from a head line the device DMA-writes,
  frees buffers, and re-posts blank RX buffers with an RX doorbell —
  the host-only buffer management of Fig 10a;
* a CX6-style device additionally accepts small packets inline through
  the write-combining MMIO path, skipping both DMA reads for
  latency-critical traffic (footnote 1 of §2.3).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.coherence.cache import CacheAgent
from repro.core.buffers import Buffer
from repro.core.config import CcnicConfig
from repro.core.pool import BufferPool
from repro.core.recovery import RecoverableDriver
from repro.core.results import AllocResult, RxResult, TxResult
from repro.errors import NicError
from repro.interconnect.link import Link
from repro.interconnect.messages import MessageClass
from repro.mem.region import Region
from repro.obs.instrument import Instrumented, Observability
from repro.pcie.dma import DmaEngine
from repro.pcie.mmio import MmioPath
from repro.platform.nicspecs import NicHardwareSpec
from repro.platform.system import System
from repro.workloads.packets import Packet

#: Device-side cycles per packet of pipeline bookkeeping (ns, fixed).
DEVICE_TICK_NS = 3.0

#: Idle poll gap of the device engine loop.
DEVICE_IDLE_NS = 25.0


@dataclass(frozen=True)
class PcieNicConfig:
    """Sizing and policy for a PCIe NIC interface instance."""

    ring_slots: int = 1024
    pool_buffers: int = 4096
    buf_size: int = 4096
    dma_batch: int = 32          # descriptors fetched per DMA read
    rx_post_target: int = 256    # blanks the host keeps posted
    inline_threshold: int = 128  # CX6: payloads at or below go inline
    tx_batch: int = 32
    rx_batch: int = 32

    def pool_config(self) -> CcnicConfig:
        """Pool settings: software-only recycling, full-size buffers."""
        return CcnicConfig(
            buf_recycling=True,       # i40e-style software reuse
            small_buffers=False,
            nic_buffer_mgmt=True,     # pool flag unused by this driver
            nonseq_alloc=False,
            ring_slots=self.ring_slots,
            pool_buffers=self.pool_buffers,
            buf_size=self.buf_size,
            recycle_stack_max=1024,
        )


@dataclass
class _TxWork:
    pkt: Packet
    buf: Buffer
    submit_ns: float
    inline: bool = False


@dataclass
class _RxCompletion:
    pkt: Packet
    buf: Buffer
    visible_at: float


@dataclass
class _PcieQueue:
    """Shared state between the host driver and the device engine."""

    tx_ring: Region
    rx_ring: Region
    tx_head_line: Region          # device DMA-writes the TX head here
    # Host-side logical state.
    tx_inflight: "Deque[_TxWork]" = field(default_factory=deque)
    tx_completed: "Deque[Buffer]" = field(default_factory=deque)
    rx_completions: "Deque[_RxCompletion]" = field(default_factory=deque)
    posted_blanks: int = 0
    # Device-side logical state.
    doorbells: "Deque[Tuple[float, int]]" = field(default_factory=deque)
    rx_doorbells: "Deque[Tuple[float, int]]" = field(default_factory=deque)
    host_tail: int = 0
    device_fetched: int = 0
    host_rx_posted: int = 0
    device_rx_fetched: int = 0
    device_blanks: "Deque[Buffer]" = field(default_factory=deque)
    # Inline (MMIO-path) TX work arriving with its WC flush: (when, work).
    inline_arrivals: "Deque[Tuple[float, _TxWork]]" = field(default_factory=deque)
    # Blanks in flight: (ready time after the background descriptor
    # prefetch completes, buffer).
    blank_queue: "Deque[Tuple[float, Buffer]]" = field(default_factory=deque)
    pending_tx: "Deque[_TxWork]" = field(default_factory=deque)
    wire: "Deque[Tuple[float, Packet]]" = field(default_factory=deque)
    waiting_rx: "Deque[Packet]" = field(default_factory=deque)
    # Fault state: a reset wedges the device until the host watchdog
    # reinitializes the queue; orphaned holds buffers the device forgot
    # (fetched blanks, pending TX) for the host to reclaim.
    wedged: bool = False
    lost_packets: int = 0
    orphaned: List[Buffer] = field(default_factory=list)


class PcieNicInterface(Instrumented):
    """One PCIe NIC on the simulated host.

    Args:
        system: Simulated platform (device uses its PCIe, not UPI).
        spec: E810 or CX6 hardware parameters.
        config: Ring/pool sizing.
    """

    #: Optional :class:`repro.faults.FaultInjector` consulted by the
    #: device engines for stall/reset events. Class-level None.
    faults = None

    def __init__(
        self,
        system: System,
        spec: NicHardwareSpec,
        config: Optional[PcieNicConfig] = None,
    ) -> None:
        self.system = system
        self.spec = spec
        self.config = config or PcieNicConfig()
        self.link = Link(
            system.sim,
            name=f"pcie-{spec.name.lower()}",
            latency_ns=spec.pcie_one_way_ns,
            bandwidth_bytes_per_ns=system.spec.pcie_wire_bytes_per_ns,
            header_overhead=24,
        )
        self.pool = BufferPool(system, self.config.pool_config())
        self.dma = DmaEngine(system, spec, self.link)
        self._queues: Dict[int, _PcieQueue] = {}
        self._started = False
        # Device packet pipeline pacing (shared across queues).
        self._next_emit = 0.0
        # Loopback by default; apps may set a transmit sink per queue.
        self.on_transmit = None

    # ------------------------------------------------------------------
    def queue(self, index: int) -> _PcieQueue:
        existing = self._queues.get(index)
        if existing is not None:
            return existing
        if self._started:
            raise NicError("cannot add queues after start()")
        q = _PcieQueue(
            tx_ring=self.system.alloc_host(f"{self.spec.name}_txr{index}", self.config.ring_slots * 16),
            rx_ring=self.system.alloc_host(f"{self.spec.name}_rxr{index}", self.config.ring_slots * 16),
            tx_head_line=self.system.alloc_host(f"{self.spec.name}_txh{index}", 64),
        )
        self._queues[index] = q
        return q

    def driver(self, index: int, host_agent: Optional[CacheAgent] = None) -> "PcieNicDriver":
        if host_agent is None:
            host_agent = self.system.new_host_core(f"host-{self.spec.name}-q{index}")
        return PcieNicDriver(self, index, host_agent)

    def start(self) -> None:
        if self._started:
            raise NicError("interface already started")
        self._started = True
        for index in sorted(self._queues):
            engine = _DeviceEngine(self, index)
            self.system.sim.spawn(engine.run(), name=f"{self.spec.name}-dev-q{index}")

    def emit_slot(self, ready_ns: float) -> float:
        """Reserve the next packet-pipeline slot (token bucket)."""
        gap = 1e9 / self.spec.pps_capacity
        start = max(ready_ns, self._next_emit)
        self._next_emit = start + gap
        return start

    def inject(self, queue_index: int, pkt: Packet, when: float = 0.0) -> None:
        """Deliver an externally generated packet to a queue's RX path."""
        self.queue(queue_index).wire.append((when, pkt))

    @property
    def queue_count(self) -> int:
        return len(self._queues)

    # ------------------------------------------------------------------
    def _obs_component(self) -> str:
        return f"pcie.{self.spec.name.lower()}"

    def _register_metrics(self, registry) -> None:
        registry.gauge(self.obs_name, "queue_count", fn=lambda: float(self.queue_count))

    def _instrument_children(self, obs: Observability) -> None:
        self.pool.instrument(obs)

    def __repr__(self) -> str:
        return f"<PcieNicInterface {self.spec.name} queues={len(self._queues)}>"


class _DeviceEngine:
    """The NIC ASIC's per-queue engine loop."""

    def __init__(self, interface: PcieNicInterface, index: int) -> None:
        self.nic = interface
        self.index = index
        self.q = interface.queue(index)
        self.spec = interface.spec
        self.dma = interface.dma
        self.config = interface.config
        # True while the engine has had work on consecutive iterations:
        # its DMA pipeline is full and new reads hide their round trip.
        self._warm = False

    def run(self):
        sim = self.nic.system.sim
        q = self.q
        while True:
            faults = self.nic.faults
            if faults is not None:
                fault = faults.nic_decide(self.index, sim.now)
                if fault is not None:
                    if fault.kind == "nic_reset":
                        self._device_reset()
                    yield fault.duration_ns
                    continue
                if q.wedged:
                    # Arrivals fall on the floor until the host watchdog
                    # reinitializes this queue.
                    while q.wire and q.wire[0][0] <= sim.now:
                        q.wire.popleft()
                        q.lost_packets += 1
                    yield DEVICE_IDLE_NS
                    continue
            busy = False
            ns = 0.0
            now = sim.now
            # --- Accept doorbells that have traversed PCIe.
            while q.doorbells and q.doorbells[0][0] <= now:
                _t, tail = q.doorbells.popleft()
                q.host_tail = max(q.host_tail, tail)
            while q.rx_doorbells and q.rx_doorbells[0][0] <= now:
                _t, posted = q.rx_doorbells.popleft()
                q.host_rx_posted = max(q.host_rx_posted, posted)
            while q.inline_arrivals and q.inline_arrivals[0][0] <= now:
                q.pending_tx.append(q.inline_arrivals.popleft()[1])

            # --- Fetch TX descriptors (one DMA batch per iteration).
            backlog = q.host_tail - q.device_fetched
            if backlog > 0:
                n = min(backlog, self.config.dma_batch)
                addr = self.q.tx_ring.base + (q.device_fetched % self.config.ring_slots) * 16
                span = min(n * 16, self.q.tx_ring.size - (addr - self.q.tx_ring.base))
                ns += self.dma.read(addr, max(16, span), pipelined=self._warm)
                q.device_fetched += n
                moved = 0
                while moved < n and q.tx_inflight:
                    q.pending_tx.append(q.tx_inflight.popleft())
                    moved += 1
                busy = True

            # --- RX blank descriptors arrive via a background prefetch
            # engine (it does not block the packet path; its DMA reads
            # were issued and charged when the host rang the doorbell).
            while q.blank_queue and q.blank_queue[0][0] <= now:
                q.device_blanks.append(q.blank_queue.popleft()[1])
                q.device_rx_fetched += 1

            # --- RX side: deliver arrived packets into posted blanks.
            while q.wire and q.wire[0][0] <= now:
                q.waiting_rx.append(q.wire.popleft()[1])
            if q.waiting_rx and q.device_blanks:
                rx_ns = self._receive(now + ns)
                if rx_ns > 0:
                    busy = True
                    ns += rx_ns

            # --- TX pipeline: read payloads, pace, loop back.
            if q.pending_tx:
                busy = True
                batch = []
                while q.pending_tx and len(batch) < self.config.tx_batch:
                    batch.append(q.pending_tx.popleft())
                ns += self._transmit(batch, now + ns)

            # Late wire arrivals within this iteration get picked up on
            # the next pass (the engine re-polls immediately when busy).
            self._warm = busy
            if ns:
                yield ns
            else:
                yield DEVICE_IDLE_NS

    # ------------------------------------------------------------------
    def _device_reset(self) -> None:
        """Lose all on-chip state: in-flight packets drop, the device wedges.

        Fetched-but-unsent TX work and fetched blanks are host pool
        memory the device has now forgotten; they park in ``orphaned``
        until the host driver's ring reset reclaims them.
        """
        q = self.q
        q.wedged = True
        q.lost_packets += len(q.wire) + len(q.waiting_rx)
        q.wire.clear()
        q.waiting_rx.clear()
        while q.pending_tx:
            work = q.pending_tx.popleft()
            q.lost_packets += 1
            if not work.inline:
                q.orphaned.append(work.buf)
        q.orphaned.extend(q.device_blanks)
        q.device_blanks.clear()

    def _transmit(self, batch: List[_TxWork], now: float) -> float:
        ns = 0.0
        to_complete: List[Buffer] = []
        # Payload DMA reads: the first pays the round trip, the rest are
        # pipelined behind it (the engine keeps several reads in flight).
        first = not self._warm
        for work in batch:
            if work.inline:
                continue  # payload already arrived through MMIO
            size = work.buf.total_len
            cost = self.dma.read(work.buf.addr, max(64, size), pipelined=not first)
            ns += cost if first else size / self.nic.link.bandwidth + DEVICE_TICK_NS
            first = False
        for work in batch:
            emit = self.nic.emit_slot(now + ns)
            depart = emit + self.spec.pipeline_ns
            if self.nic.on_transmit is not None:
                self.nic.on_transmit(work.pkt, depart)
            else:
                self.q.wire.append((depart, work.pkt))
            if not work.inline:
                # Inline buffers were reclaimed at submit (payload was
                # copied through MMIO); only DMA-path buffers complete.
                to_complete.append(work.buf)
            ns += DEVICE_TICK_NS
        # Completion: one posted DMA write of the TX head line per batch.
        ns += self.dma.write(self.q.tx_head_line.base, 8)
        visible = now + ns + self.dma.visibility_ns
        for buf in to_complete:
            self.q.tx_completed.append(buf)
        self._tx_complete_visible = visible
        return ns

    def _receive(self, now: float) -> float:
        q = self.q
        ns = 0.0
        completed: List[_RxCompletion] = []
        while q.waiting_rx and q.device_blanks:
            pkt = q.waiting_rx[0]
            segments_needed = max(1, -(-pkt.size // self.config.buf_size))
            if len(q.device_blanks) < segments_needed:
                break  # not enough posted blanks for this jumbo frame
            q.waiting_rx.popleft()
            head = None
            prev = None
            remaining = pkt.size
            for _ in range(segments_needed):
                seg = q.device_blanks.popleft()
                seg.seg_next = None
                seg.set_payload(min(remaining, self.config.buf_size))
                remaining -= seg.data_len
                ns += self.dma.write(seg.addr, seg.data_len)
                if head is None:
                    head = seg
                else:
                    prev.seg_next = seg
                prev = seg
            ns += DEVICE_TICK_NS
            completed.append(_RxCompletion(pkt=pkt, buf=head, visible_at=0.0))
            if len(completed) >= self.config.rx_batch:
                break
        if completed:
            # Completion descriptors: one posted DMA write per 4 (one
            # cache line of 16B completions).
            lines = (len(completed) + 3) // 4
            addr = q.rx_ring.base
            for i in range(lines):
                ns += self.dma.write(addr + i * 64, 64)
            visible = now + ns + self.dma.visibility_ns
            for comp in completed:
                comp.visible_at = visible
                q.rx_completions.append(comp)
        return ns


class PcieNicDriver(RecoverableDriver, Instrumented):
    """Host-side driver with the common burst API.

    Per-descriptor costs are substantially higher than CC-NIC's: PCIe
    NICs use 32-64B work-queue entries with many fields to build on TX
    and full completion-queue entries to parse on RX, plus the memory
    barriers the DMA interface requires (the DPDK mlx5/ice datapaths
    spend on the order of 100 cycles per descriptor each way).
    """

    CYCLES_PER_DESC = 60
    CYCLES_PER_PKT = 8
    CYCLES_PER_BLANK = 30

    def __init__(self, interface: PcieNicInterface, index: int, host_agent: CacheAgent) -> None:
        self.interface = interface
        self.queue_index = index
        self.agent = host_agent
        self.q = interface.queue(index)
        self.mmio = MmioPath(interface.spec, link=interface.link)
        self._rx_reap_count = 0
        self.tx_packets = 0
        self.rx_packets = 0
        self.tx_ns = 0.0
        self.rx_ns = 0.0
        self._init_recovery_state()
        self._device_losses_taken = 0

    # ------------------------------------------------------------------
    def _obs_component(self) -> str:
        return f"driver.q{self.queue_index}"

    def _register_metrics(self, registry) -> None:
        registry.gauge(self.obs_name, "tx_packets", fn=lambda: float(self.tx_packets))
        registry.gauge(self.obs_name, "rx_packets", fn=lambda: float(self.rx_packets))
        registry.gauge(self.obs_name, "tx_ns", fn=lambda: self.tx_ns)
        registry.gauge(self.obs_name, "rx_ns", fn=lambda: self.rx_ns)
        self._register_recovery_metrics(registry)

    # ------------------------------------------------------------------
    # Recovery (inert until configure_recovery is called)
    # ------------------------------------------------------------------
    def watchdog(self) -> float:
        """Reset the queue if descriptor fetch has stopped making progress.

        The PCIe stall signature: host-side descriptors keep piling up
        in ``tx_inflight`` while ``device_fetched`` stays frozen — the
        engine is no longer consuming doorbells.
        """
        if self._watchdog is None:
            return 0.0
        sim = self.interface.system.sim
        q = self.q
        if not self._watchdog.stalled(sim.now, len(q.tx_inflight), q.device_fetched):
            return 0.0
        ns = self._reset_rings()
        self._watchdog.reset(sim.now)
        return ns

    def _reset_rings(self) -> float:
        """Reinitialize the queue after a wedge and reclaim buffers.

        Everything outstanding on either side of PCIe is abandoned:
        unfetched TX descriptors, in-flight inline submissions, unread
        RX completions, posted and fetched blanks. Cursors realign so
        host and device agree that nothing is outstanding.
        """
        q = self.q
        lost_packets = 0
        to_free: List[Buffer] = []
        while q.tx_inflight:
            work = q.tx_inflight.popleft()
            lost_packets += 1
            to_free.append(work.buf)
        while q.inline_arrivals:
            q.inline_arrivals.popleft()
            lost_packets += 1  # its buffer was reclaimed at submit (copied)
        while q.rx_completions:
            comp = q.rx_completions.popleft()
            lost_packets += 1
            to_free.append(comp.buf)
        to_free.extend(q.orphaned)
        q.orphaned.clear()
        while q.blank_queue:
            to_free.append(q.blank_queue.popleft()[1])
        while q.device_blanks:
            to_free.append(q.device_blanks.popleft())
        q.doorbells.clear()
        q.rx_doorbells.clear()
        q.device_fetched = q.host_tail
        q.device_rx_fetched = q.host_rx_posted
        q.posted_blanks = 0
        q.wedged = False
        ns = self._free_abandoned(to_free)
        self.watchdog_resets += 1
        self.reset_dropped += lost_packets
        self._reset_losses += lost_packets
        return ns

    def take_reset_losses(self) -> int:
        """Packets lost to NIC resets since the last call.

        Covers descriptors abandoned during ring reinitialization and
        packets the device dropped from the wire while wedged; the
        traffic generator writes these off so its closed-loop window
        refills instead of deadlocking.
        """
        lost = self._reset_losses
        self._reset_losses = 0
        lost += self.q.lost_packets - self._device_losses_taken
        self._device_losses_taken = self.q.lost_packets
        return lost

    # ------------------------------------------------------------------
    # Buffers and payloads (host-local; no interconnect involvement)
    # ------------------------------------------------------------------
    def alloc(self, sizes: Sequence[int]) -> AllocResult:
        bufs, ns = self.interface.pool.alloc(self.agent, sizes)
        return AllocResult(bufs, ns)

    def free(self, bufs: Sequence[Buffer]) -> float:
        return self.interface.pool.free(self.agent, bufs)

    def write_payload(self, buf: Buffer, size: int) -> float:
        return self.write_payloads([(buf, size)])

    def write_payloads(self, sized: Sequence[Tuple[Buffer, int]]) -> float:
        fabric = self.interface.system.fabric
        spans = []
        for buf, size in sized:
            buf.set_payload(size)
            spans.append((buf.addr, size))
        if not spans:
            return 0.0
        return fabric.access_burst(self.agent, spans, write=True)

    def read_payload(self, buf: Buffer) -> float:
        return self.read_payloads([buf])

    def read_payloads(self, bufs: Sequence[Buffer]) -> float:
        fabric = self.interface.system.fabric
        spans = [
            (seg.addr, seg.data_len)
            for buf in bufs
            for seg in buf.segments()
            if seg.data_len
        ]
        if not spans:
            return 0.0
        return fabric.access_burst(self.agent, spans, write=False)

    # ------------------------------------------------------------------
    # TX / RX
    # ------------------------------------------------------------------
    def tx_burst(
        self,
        entries: Sequence[Tuple[Buffer, Packet]],
        base_ns: float = 0.0,
    ) -> TxResult:
        system = self.interface.system
        sim = system.sim
        q = self.q
        config = self.interface.config
        space = config.ring_slots - len(q.tx_inflight) - len(q.tx_completed)
        accepted = list(entries)[: max(0, space)]
        if not accepted:
            return TxResult(0, system.cycles(self.CYCLES_PER_DESC))
        tracer = self.obs.tracer
        span = None
        if tracer.enabled:
            span = tracer.begin(
                "tx_burst",
                actor=self.agent.name,
                category="driver",
                start_ns=sim.now + base_ns,
                packets=len(entries),
            )
        ns = 0.0
        inline_ok = self.interface.spec.inline_descriptors
        inline_count = 0
        fabric = system.fabric
        dma_count = 0
        inline_work = []
        for buf, pkt in accepted:
            if buf.data_len <= 0:
                raise NicError(f"buffer {buf.buf_id} submitted without payload")
            inline = inline_ok and buf.total_len <= config.inline_threshold and buf.seg_next is None
            if inline:
                # CX6 low-latency path: descriptor + payload through the
                # write-combining MMIO window. These never enter the
                # DMA-fetched descriptor stream.
                ns += self.mmio.wc_write(q.tx_ring.base, 16 + buf.total_len)
                inline_count += 1
                work = _TxWork(pkt=pkt, buf=buf, submit_ns=sim.now + ns, inline=True)
                inline_work.append(work)
                q.tx_completed.append(buf)  # reclaimed immediately (copied)
            else:
                slot = q.host_tail % config.ring_slots
                ns += fabric.write(self.agent, q.tx_ring.base + slot * 16, 16)
                work = _TxWork(pkt=pkt, buf=buf, submit_ns=sim.now + ns, inline=False)
                q.host_tail += 1
                q.tx_inflight.append(work)
                dma_count += 1
            ns += system.cycles(self.CYCLES_PER_DESC)
        if inline_count:
            ns += self.mmio.sfence()
            arrival = sim.now + base_ns + ns + self.interface.spec.pcie_one_way_ns
            for work in inline_work:
                q.inline_arrivals.append((arrival, work))
        if dma_count:
            # Ring the doorbell for the DMA-path descriptors.
            ns += self.mmio.uc_write(4)
            arrival = sim.now + base_ns + ns + self.interface.spec.pcie_one_way_ns \
                + self.interface.spec.doorbell_coalesce_ns
            q.doorbells.append((arrival, q.host_tail))
        self.tx_packets += len(accepted)
        self.tx_ns += ns
        if span is not None:
            span.args["accepted"] = len(accepted)
            tracer.end(span, sim.now + base_ns + ns)
        return TxResult(len(accepted), ns)

    def rx_burst(self, max_packets: int) -> RxResult:
        system = self.interface.system
        sim = system.sim
        q = self.q
        fabric = system.fabric
        tracer = self.obs.tracer
        span = None
        if tracer.enabled:
            span = tracer.begin(
                "rx_burst",
                actor=self.agent.name,
                category="driver",
                start_ns=sim.now,
                max_packets=max_packets,
            )
        out: List[Tuple[Packet, Buffer]] = []
        # Poll the completion line (DDIO-resident after a DMA write).
        ns = fabric.read(self.agent, q.rx_ring.base, 16)
        while q.rx_completions and len(out) < max_packets:
            comp = q.rx_completions[0]
            if comp.visible_at > sim.now + ns:
                break
            q.rx_completions.popleft()
            ns += fabric.read(self.agent, q.rx_ring.base + (len(out) % 16) * 64, 16)
            ns += system.cycles(self.CYCLES_PER_DESC)
            out.append((comp.pkt, comp.buf))
            q.posted_blanks -= sum(1 for _seg in comp.buf.segments())
        self.rx_packets += len(out)
        self.rx_ns += ns
        if span is not None:
            span.args["received"] = len(out)
            tracer.end(span, sim.now + ns)
        return RxResult(out, ns)

    # ------------------------------------------------------------------
    def housekeeping(self, post_target: Optional[int] = None) -> float:
        """Reap TX completions and keep blank RX buffers posted."""
        system = self.interface.system
        sim = system.sim
        q = self.q
        config = self.interface.config
        target = post_target or config.rx_post_target
        fabric = system.fabric
        ns = 0.0
        # Reap TX completions: read the DMA-written head line, free bufs.
        if q.tx_completed:
            ns += fabric.read(self.agent, q.tx_head_line.base, 8)
            done: List[Buffer] = []
            while q.tx_completed:
                done.append(q.tx_completed.popleft())
            ns += self.free(done)
        # Post blank RX buffers.
        deficit = target - q.posted_blanks
        if deficit >= 16 or (q.posted_blanks == 0 and deficit > 0):
            blank = self.alloc([config.buf_size] * deficit)
            blanks = list(blank.bufs)
            ns += blank.ns
            for i, buf in enumerate(blanks):
                slot = (q.host_rx_posted + i) % config.ring_slots
                ns += fabric.write(self.agent, q.rx_ring.base + slot * 16, 16)
            ns += system.cycles(self.CYCLES_PER_BLANK * max(1, len(blanks)))
            q.posted_blanks += len(blanks)
            ns += self.mmio.uc_write(4)
            arrival = sim.now + ns + self.interface.spec.pcie_one_way_ns
            q.rx_doorbells.append((arrival, q.host_rx_posted + len(blanks)))
            q.host_rx_posted += len(blanks)
            # The device's background engine DMA-reads the posted
            # descriptors; blanks become usable one DMA round trip after
            # the doorbell lands (bandwidth charged, packet path not
            # blocked).
            ready = arrival + self.interface.spec.dma_rtt_ns
            lines = (len(blanks) * 16 + 63) // 64
            for _ in range(lines):
                self.interface.link.occupy(
                    MessageClass.DMA_READ,
                    direction=0,
                    payload_bytes=64,
                    charge_queueing=False,
                )
            for buf in blanks:
                q.blank_queue.append((ready, buf))
        return ns
