"""Baseline NIC interface models.

Three baselines complement CC-NIC:

* :class:`PcieNicInterface` with the E810 spec — today's standard PCIe
  NIC: host-local rings, DMA descriptor fetch, MMIO doorbells.
* :class:`PcieNicInterface` with the CX6 spec — adds the MMIO-inline
  descriptor path for latency-critical small packets.
* :func:`unoptimized_upi_config` — the paper's "unopt" baseline: the
  E810 software interface (packed descriptors, register signaling,
  host-only buffer management) run verbatim over the coherent
  interconnect.
"""

from repro.nicmodels.pcie_nic import PcieNicConfig, PcieNicDriver, PcieNicInterface
from repro.nicmodels.unopt import unoptimized_upi_config

__all__ = [
    "PcieNicConfig",
    "PcieNicDriver",
    "PcieNicInterface",
    "unoptimized_upi_config",
]
