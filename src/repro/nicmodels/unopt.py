"""The unoptimized-UPI baseline (§5.1's "Unoptimized UPI" scenario).

The paper implements the Intel E810's software interface verbatim over
the UPI interconnect: write-back memory and caching accesses, but the
E810's data-structure layout and register-based signaling. In our model
that is precisely a :class:`~repro.core.config.CcnicConfig` with every
coherence-specific optimization turned off:

* packed 16B descriptors (the E810 layout) with **register** signaling
  (separate head/tail lines) instead of inlined signals;
* everything homed on the host socket (the E810's rings and registers
  live in host memory);
* host-only buffer management: pre-posted blank RX buffers, TX
  completions reaped by the host, no recycling stacks, no small-buffer
  subdivision, sequential pool fill.
"""

from __future__ import annotations

from repro.core.config import CcnicConfig, DescLayout


def unoptimized_upi_config(**overrides) -> CcnicConfig:
    """CcnicConfig for the unoptimized-UPI baseline.

    Keyword overrides are applied on top (e.g. ``ring_slots=2048``).
    """
    base = dict(
        inline_signals=False,
        desc_layout=DescLayout.PACK,
        buf_recycling=False,
        small_buffers=False,
        nic_buffer_mgmt=False,
        nonseq_alloc=False,
        writer_homed_rings=False,
        caching_stores=True,
        # A production-sized mempool: FIFO reuse cycles the full
        # footprint, so buffers come back cache-cold (no recycling).
        pool_buffers=16384,
    )
    base.update(overrides)
    return CcnicConfig(**base)
