"""Device-initiated DMA with DDIO cache interactions.

DMA reads snoop host caches; DMA writes allocate into the host LLC
(Intel Data Direct I/O), so the host's subsequent poll of a completion
or payload is a cache hit instead of a DRAM access. We model DDIO with a
dedicated host-socket caching agent that DMA writes install lines into;
host cores then find the data via a same-socket cache-to-cache transfer.

Latency semantics:

* ``read`` — non-posted; the device waits a full round trip plus
  serialization of the returned data.
* ``write`` — posted; the device is charged only issue/serialization
  overhead, and the data becomes host-visible one link traversal later
  (returned separately so callers can model visibility).
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.interconnect.link import Link
from repro.interconnect.messages import MessageClass
from repro.platform.nicspecs import NicHardwareSpec
from repro.platform.system import System

#: LLC share available to DDIO (two ways of the LLC, per Intel docs).
DDIO_LINES = 8192

#: Device-side issue overhead per DMA transaction, ns.
DMA_ISSUE_NS = 10.0


class DmaEngine:
    """One device's DMA path into host memory.

    Args:
        system: The simulated platform (fabric + address space).
        spec: Device hardware parameters (round-trip latency).
        link: The device's PCIe link (direction 1 is device-to-host).
    """

    def __init__(self, system: System, spec: NicHardwareSpec, link: Link) -> None:
        self.system = system
        self.spec = spec
        self.link = link
        self.ddio = system.fabric.new_agent(
            f"ddio-{spec.name.lower()}",
            socket=system.HOST_SOCKET,
            capacity_lines=DDIO_LINES,
        )
        self.reads = 0
        self.writes = 0

    # ------------------------------------------------------------------
    def read(self, addr: int, size: int, pipelined: bool = False) -> float:
        """DMA read of host memory; returns device-side stall ns.

        ``pipelined=True`` models an engine that already has reads in
        flight: the round-trip latency is hidden behind earlier requests
        and only issue + serialization + queueing are charged.
        """
        if size <= 0:
            raise ConfigError(f"dma read size must be positive, got {size}")
        self.reads += 1
        # Snoop host caches so dirty data is returned (state effect only;
        # the PCIe round trip dominates and is charged below).
        self.system.fabric.read(self.ddio, addr, size)
        ser = size / self.link.bandwidth
        self.link.occupy(
            MessageClass.DMA_READ, direction=1, charge_queueing=False,
            actor=self.ddio.name,
        )
        wait = self.link.occupy(
            MessageClass.DMA_READ, direction=0, payload_bytes=size,
            actor=self.ddio.name,
        )
        if pipelined:
            return DMA_ISSUE_NS + ser + wait
        return DMA_ISSUE_NS + self.spec.dma_rtt_ns + ser + wait

    def write(self, addr: int, size: int) -> float:
        """Posted DMA write into host memory; returns device-side cost.

        The written lines are installed into the DDIO (LLC) agent in
        Modified state, invalidating stale host-core copies — the host's
        next read is a same-socket cache hit.
        """
        if size <= 0:
            raise ConfigError(f"dma write size must be positive, got {size}")
        self.writes += 1
        self.system.fabric.write(self.ddio, addr, size)
        ser = size / self.link.bandwidth
        wait = self.link.occupy(
            MessageClass.DMA_WRITE, direction=1, payload_bytes=size,
            actor=self.ddio.name,
        )
        return DMA_ISSUE_NS + ser + wait

    @property
    def visibility_ns(self) -> float:
        """Delay from a posted write's issue to host visibility."""
        return self.spec.pcie_one_way_ns
