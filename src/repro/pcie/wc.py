"""Write-combining buffer file model.

x86 CPUs provide a small file of 64B write-combining buffers. Stores to
WC-mapped memory land in a buffer for their 64B-aligned region; a buffer
flushes to the device when completely filled, when evicted to make room
for a store to a new region, or when drained by a fence. The paper's §2.2
microbenchmarks characterise exactly this:

* Fig 2 — streaming-write throughput versus bytes-per-sfence: barriers
  drain the file on the critical path, so small barriers are slow; a
  4KB-per-barrier stream approaches (but does not reach) write-back
  DRAM throughput.
* Fig 3 — a burst of N scattered 32-bit stores is fast until all ~24
  buffers are in use (< 20ns cumulative), after which each store stalls
  on an eviction flush, 15x+ slower.

Costs are charged to the storing core; flush transfers consume PCIe
link bandwidth when a link is attached.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.errors import ConfigError
from repro.interconnect.link import Link
from repro.interconnect.messages import MessageClass
from repro.mem.address import line_base


class WcBufferFile:
    """One core's write-combining buffers targeting one device window.

    Args:
        n_buffers: Number of 64B buffers (the paper observes ~24 usable).
        store_cost_ns: Cost of a store that merges into an open buffer.
        full_flush_ns: Flush cost of a completely filled buffer (posted,
            pipelined; cheap per buffer when streaming).
        evict_stall_ns: Stall when a store needs a buffer but all are in
            use: the oldest buffer is flushed on the critical path.
        fence_ns: Fixed sfence overhead on top of draining open buffers.
        link: Optional PCIe link charged for flush bandwidth.
        link_direction: Link direction for host-to-device transfers.
    """

    def __init__(
        self,
        n_buffers: int = 24,
        store_cost_ns: float = 0.8,
        full_flush_ns: float = 5.5,
        evict_stall_ns: float = 450.0,
        fence_ns: float = 45.0,
        link: Optional[Link] = None,
        link_direction: int = 0,
    ) -> None:
        if n_buffers <= 0:
            raise ConfigError("n_buffers must be positive")
        self.n_buffers = n_buffers
        self.store_cost_ns = store_cost_ns
        self.full_flush_ns = full_flush_ns
        self.evict_stall_ns = evict_stall_ns
        self.fence_ns = fence_ns
        self.link = link
        self.link_direction = link_direction
        # Open buffers: line base -> bytes filled (insertion-ordered).
        self._open: "OrderedDict[int, int]" = OrderedDict()
        self.flushes = 0
        self.evictions = 0
        self.stores = 0

    # ------------------------------------------------------------------
    def store(self, addr: int, size: int) -> float:
        """Issue one store of ``size`` bytes at ``addr``; returns ns.

        Stores larger than a line are split; each 64B region occupies
        one buffer.
        """
        if size <= 0:
            raise ConfigError(f"store size must be positive, got {size}")
        ns = 0.0
        remaining = size
        cursor = addr
        while remaining > 0:
            base = line_base(cursor)
            chunk = min(remaining, base + 64 - cursor)
            ns += self._store_line(base, cursor - base, chunk)
            cursor += chunk
            remaining -= chunk
        return ns

    def _store_line(self, base: int, offset: int, size: int) -> float:
        self.stores += 1
        ns = self.store_cost_ns
        if base in self._open:
            filled = self._open[base] + size
        else:
            if len(self._open) >= self.n_buffers:
                # Evict the oldest buffer: a partial flush on the
                # critical path (Fig 3's 15x latency cliff).
                self._open.popitem(last=False)
                self.evictions += 1
                ns += self.evict_stall_ns
                self._charge_link(partial=True)
            filled = size
        if filled >= 64:
            self._open.pop(base, None)
            self.flushes += 1
            ns += self.full_flush_ns
            self._charge_link(partial=False)
        else:
            self._open[base] = filled
            self._open.move_to_end(base)
        return ns

    def sfence(self) -> float:
        """Drain every open buffer; returns the stall charged to the core."""
        ns = self.fence_ns
        for _base in list(self._open):
            ns += self.full_flush_ns
            self.flushes += 1
            self._charge_link(partial=True)
        self._open.clear()
        return ns

    @property
    def open_buffers(self) -> int:
        """Number of partially filled buffers currently held."""
        return len(self._open)

    def _charge_link(self, partial: bool) -> None:
        if self.link is None:
            return
        # Partial flushes still move a padded transaction on the wire.
        self.link.occupy(
            MessageClass.MMIO_WRITE,
            direction=self.link_direction,
            payload_bytes=64,
            charge_queueing=False,
        )

    def __repr__(self) -> str:
        return (
            f"<WcBufferFile open={len(self._open)}/{self.n_buffers} "
            f"flushes={self.flushes} evictions={self.evictions}>"
        )
