"""PCIe device-access substrate: MMIO (UC/WC), write-combining, DMA."""

from repro.pcie.wc import WcBufferFile
from repro.pcie.mmio import MmioPath
from repro.pcie.dma import DmaEngine

__all__ = ["DmaEngine", "MmioPath", "WcBufferFile"]
