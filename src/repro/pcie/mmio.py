"""Host-initiated MMIO access paths to a PCIe device.

Loads from BAR space are non-posted: the core stalls for a full PCIe
round trip (~1us measured in §2.2 — 982ns for 8B, 1026ns for a 64B
AVX512 load on the ICX + E810 testbed). Stores are posted but expensive:
UC stores allow only one in flight between core and PCIe root; WC stores
go through the write-combining buffer file (:mod:`repro.pcie.wc`).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigError
from repro.interconnect.link import Link
from repro.interconnect.messages import MessageClass
from repro.pcie.wc import WcBufferFile
from repro.platform.nicspecs import NicHardwareSpec


class MmioPath:
    """MMIO access costs for one core targeting one device.

    Args:
        spec: The device's hardware parameters.
        link: PCIe link for bandwidth accounting (direction 0 is
            host-to-device).
        uc_store_ns: Core stall per UC store (doorbell writes).
        wc: Write-combining buffer file; created on demand if omitted.
    """

    #: Extra read latency per byte beyond the first 8 (982ns -> 1026ns
    #: between an 8B and a 64B load in the paper's measurement).
    READ_NS_PER_EXTRA_BYTE = 0.8

    def __init__(
        self,
        spec: NicHardwareSpec,
        link: Optional[Link] = None,
        uc_store_ns: float = 90.0,
        wc: Optional[WcBufferFile] = None,
    ) -> None:
        self.spec = spec
        self.link = link
        self.uc_store_ns = uc_store_ns
        self.wc = wc or WcBufferFile(
            n_buffers=spec.wc_buffers,
            evict_stall_ns=spec.wc_evict_stall_ns,
            link=link,
            link_direction=0,
        )
        self.reads = 0
        self.uc_writes = 0

    # ------------------------------------------------------------------
    def read(self, size: int = 8) -> float:
        """Load from BAR space: a full PCIe round trip stall."""
        if size <= 0:
            raise ConfigError(f"read size must be positive, got {size}")
        self.reads += 1
        if self.link is not None:
            self.link.occupy(
                MessageClass.MMIO_READ, direction=0, charge_queueing=False
            )
            self.link.occupy(
                MessageClass.MMIO_READ,
                direction=1,
                payload_bytes=size,
                charge_queueing=False,
            )
        extra = max(0, size - 8) * self.READ_NS_PER_EXTRA_BYTE
        return self.spec.mmio_read_rtt_ns + extra

    def uc_write(self, size: int = 4) -> float:
        """Uncacheable store (doorbell): posted, but one in flight."""
        if size <= 0:
            raise ConfigError(f"write size must be positive, got {size}")
        self.uc_writes += 1
        if self.link is not None:
            self.link.occupy(
                MessageClass.MMIO_WRITE,
                direction=0,
                payload_bytes=size,
                charge_queueing=False,
            )
        return self.uc_store_ns

    def wc_write(self, addr: int, size: int) -> float:
        """Write-combining store into the device window."""
        return self.wc.store(addr, size)

    def sfence(self) -> float:
        """Drain the WC buffers (ordering barrier before a doorbell)."""
        return self.wc.sfence()
