"""Declarative fault plans: *what* goes wrong, *when*, *how badly*.

A :class:`FaultPlan` is an immutable schedule of :class:`FaultEvent`\\ s
over simulated time. Plans are data, not code: they load from JSON or
TOML files (see :func:`FaultPlan.load`), round-trip through
:meth:`FaultPlan.to_dict`, and are validated eagerly so a bad plan fails
at load time, not mid-run.

Eight fault classes exist, in three families:

**Link faults** (per-message, ``target`` optionally names one link):

* ``link_drop`` — a flit is lost and link-layer retransmitted: the
  message is delayed by ``extra_ns`` plus a second serialization, and
  the wasted copy still consumed bandwidth (how UPI/CXL CRC retry
  manifests — coherent links never surface loss to the protocol).
* ``link_duplicate`` — a spurious extra copy consumes bandwidth.
* ``link_delay`` — the message takes ``extra_ns`` longer (protocol-
  stack hiccup, retimer, throttling burst).
* ``link_degrade`` — a bandwidth-degradation *window*: while active,
  serialization time is scaled by ``1 / factor`` (e.g. ``factor=0.5``
  halves usable bandwidth — lane drop, thermal throttle).

**Coherence faults** (per-snoop):

* ``snoop_delay`` — a snoop response arrives ``extra_ns`` late.
* ``snoop_nack`` — a snoop is NACKed; the requester re-issues it after
  ``extra_ns`` and the retry message crosses the link again.

**NIC faults** (one-shot, fire once at ``start_ns``; ``queue``
optionally restricts to one queue pair):

* ``nic_stall`` — the NIC-side engine freezes for ``duration_ns``
  (firmware pause, PCIe credit stall) and then resumes intact.
* ``nic_reset`` — the NIC loses its on-chip state: packets on the wire
  are dropped and the engine is *wedged* (stops serving its rings)
  until the host driver's watchdog reinitializes the queue; the reset
  itself takes ``duration_ns``.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import FaultError

#: All recognised fault-event kinds.
FAULT_KINDS = (
    "link_drop",
    "link_duplicate",
    "link_delay",
    "link_degrade",
    "snoop_delay",
    "snoop_nack",
    "nic_stall",
    "nic_reset",
)

#: Kinds decided per message on a link (probability applies).
LINK_MESSAGE_KINDS = ("link_drop", "link_duplicate", "link_delay")

#: Kinds decided per snoop in the coherence fabric.
SNOOP_KINDS = ("snoop_delay", "snoop_nack")

#: One-shot kinds fired by the NIC-side engine loop.
NIC_KINDS = ("nic_stall", "nic_reset")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault (validated on construction).

    Args:
        kind: One of :data:`FAULT_KINDS`.
        start_ns: Window start (or firing time, for one-shot NIC kinds).
        end_ns: Window end; ignored by one-shot kinds.
        probability: Per-message / per-snoop injection probability.
        extra_ns: Added delay (drop retry, delay, snoop classes).
        factor: Bandwidth factor for ``link_degrade`` (0 < factor < 1).
        duration_ns: Stall / reset length for the NIC kinds.
        target: Restrict link kinds to one link name (``"upi"``, ...).
        queue: Restrict NIC kinds to one queue-pair index.
    """

    kind: str
    start_ns: float = 0.0
    end_ns: float = math.inf
    probability: float = 1.0
    extra_ns: float = 0.0
    factor: float = 1.0
    duration_ns: float = 0.0
    target: Optional[str] = None
    queue: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultError(
                f"unknown fault kind {self.kind!r} (use one of: {', '.join(FAULT_KINDS)})"
            )
        if self.start_ns < 0:
            raise FaultError(f"{self.kind}: start_ns must be >= 0, got {self.start_ns}")
        if self.end_ns < self.start_ns:
            raise FaultError(
                f"{self.kind}: end_ns {self.end_ns} precedes start_ns {self.start_ns}"
            )
        if not 0.0 < self.probability <= 1.0:
            raise FaultError(
                f"{self.kind}: probability must be in (0, 1], got {self.probability}"
            )
        if self.extra_ns < 0:
            raise FaultError(f"{self.kind}: extra_ns must be >= 0, got {self.extra_ns}")
        if self.kind == "link_degrade" and not 0.0 < self.factor < 1.0:
            raise FaultError(
                f"link_degrade: factor must be in (0, 1), got {self.factor}"
            )
        if self.kind in NIC_KINDS and self.duration_ns <= 0:
            raise FaultError(f"{self.kind}: duration_ns must be positive")
        if self.queue is not None and self.queue < 0:
            raise FaultError(f"{self.kind}: queue must be >= 0, got {self.queue}")

    # ------------------------------------------------------------------
    def active(self, now: float) -> bool:
        """True when ``now`` falls inside this event's window."""
        return self.start_ns <= now < self.end_ns

    def matches_link(self, link_name: str) -> bool:
        """True when this event applies to ``link_name``."""
        return self.target is None or self.target == link_name

    def matches_queue(self, queue_index: int) -> bool:
        """True when this event applies to queue pair ``queue_index``."""
        return self.queue is None or self.queue == queue_index

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (omits defaulted fields; ``inf`` end omitted)."""
        out: Dict[str, Any] = {"kind": self.kind}
        if self.start_ns:
            out["start_ns"] = self.start_ns
        if math.isfinite(self.end_ns):
            out["end_ns"] = self.end_ns
        if self.probability != 1.0:
            out["probability"] = self.probability
        if self.extra_ns:
            out["extra_ns"] = self.extra_ns
        if self.factor != 1.0:
            out["factor"] = self.factor
        if self.duration_ns:
            out["duration_ns"] = self.duration_ns
        if self.target is not None:
            out["target"] = self.target
        if self.queue is not None:
            out["queue"] = self.queue
        return out


_EVENT_FIELDS = frozenset(
    (
        "kind",
        "start_ns",
        "end_ns",
        "probability",
        "extra_ns",
        "factor",
        "duration_ns",
        "target",
        "queue",
    )
)


def _event_from_dict(raw: Dict[str, Any]) -> FaultEvent:
    if not isinstance(raw, dict):
        raise FaultError(f"fault event must be a table/object, got {type(raw).__name__}")
    unknown = set(raw) - _EVENT_FIELDS
    if unknown:
        raise FaultError(f"fault event has unknown fields: {sorted(unknown)}")
    if "kind" not in raw:
        raise FaultError("fault event is missing its 'kind'")
    return FaultEvent(**raw)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, validated schedule of fault events."""

    events: Tuple[FaultEvent, ...] = ()
    name: str = "plan"
    _by_kind: Dict[str, Tuple[FaultEvent, ...]] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        by_kind: Dict[str, List[FaultEvent]] = {}
        for ev in self.events:
            if not isinstance(ev, FaultEvent):
                raise FaultError(f"plan events must be FaultEvent, got {type(ev).__name__}")
            by_kind.setdefault(ev.kind, []).append(ev)
        object.__setattr__(
            self, "_by_kind", {k: tuple(v) for k, v in by_kind.items()}
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def events_of(self, *kinds: str) -> Tuple[FaultEvent, ...]:
        """All events of the given kinds, in plan order."""
        if len(kinds) == 1:
            return self._by_kind.get(kinds[0], ())
        wanted = set(kinds)
        return tuple(ev for ev in self.events if ev.kind in wanted)

    def kinds(self) -> Tuple[str, ...]:
        """Distinct fault kinds present, in :data:`FAULT_KINDS` order."""
        return tuple(k for k in FAULT_KINDS if k in self._by_kind)

    def restricted(self, kinds) -> "FaultPlan":
        """A sub-plan keeping only events of the given kinds."""
        wanted = set(kinds)
        unknown = wanted - set(FAULT_KINDS)
        if unknown:
            raise FaultError(f"unknown fault kinds: {sorted(unknown)}")
        return FaultPlan(
            events=tuple(ev for ev in self.events if ev.kind in wanted),
            name=self.name,
        )

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------
    # Construction / serialization
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "FaultPlan":
        """Build a plan from ``{"name": ..., "events": [...]}``."""
        if not isinstance(raw, dict):
            raise FaultError(f"fault plan must be a mapping, got {type(raw).__name__}")
        unknown = set(raw) - {"name", "events"}
        if unknown:
            raise FaultError(f"fault plan has unknown fields: {sorted(unknown)}")
        events = raw.get("events", [])
        if not isinstance(events, (list, tuple)):
            raise FaultError("fault plan 'events' must be a list")
        return cls(
            events=tuple(_event_from_dict(ev) for ev in events),
            name=str(raw.get("name", "plan")),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a plan from JSON text."""
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultError(f"fault plan is not valid JSON: {exc}") from exc
        return cls.from_dict(raw)

    @classmethod
    def from_toml(cls, text: str) -> "FaultPlan":
        """Parse a plan from TOML text (``[[events]]`` tables).

        Requires ``tomllib`` (Python 3.11+); raises :class:`FaultError`
        on older interpreters so callers can fall back to JSON.
        """
        try:
            import tomllib
        except ImportError as exc:  # pragma: no cover - version-dependent
            raise FaultError(
                "TOML fault plans need Python 3.11+ (tomllib); use JSON instead"
            ) from exc
        try:
            raw = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise FaultError(f"fault plan is not valid TOML: {exc}") from exc
        return cls.from_dict(raw)

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        """Load a plan file; ``.toml`` parses as TOML, anything else JSON."""
        try:
            with open(path) as fh:
                text = fh.read()
        except OSError as exc:
            raise FaultError(f"cannot read fault plan {path!r}: {exc}") from exc
        if path.endswith(".toml"):
            return cls.from_toml(text)
        return cls.from_json(text)

    def to_dict(self) -> Dict[str, Any]:
        """Round-trippable plain-dict form."""
        return {"name": self.name, "events": [ev.to_dict() for ev in self.events]}

    # ------------------------------------------------------------------
    @classmethod
    def canned(cls) -> "FaultPlan":
        """The built-in smoke plan: every fault class inside ~400 us.

        Windows are staggered so each class is identifiable in the
        counters, and the NIC one-shots land early enough that a few
        thousand loopback packets exercise the full recovery path.
        """
        return cls.from_dict(
            {
                "name": "canned",
                "events": [
                    {"kind": "link_delay", "start_ns": 10_000, "end_ns": 160_000,
                     "probability": 0.05, "extra_ns": 150.0},
                    {"kind": "link_drop", "start_ns": 40_000, "end_ns": 190_000,
                     "probability": 0.02, "extra_ns": 400.0},
                    {"kind": "link_duplicate", "start_ns": 70_000, "end_ns": 220_000,
                     "probability": 0.05},
                    {"kind": "link_degrade", "start_ns": 100_000, "end_ns": 250_000,
                     "factor": 0.5},
                    {"kind": "snoop_delay", "start_ns": 130_000, "end_ns": 280_000,
                     "probability": 0.05, "extra_ns": 120.0},
                    {"kind": "snoop_nack", "start_ns": 160_000, "end_ns": 310_000,
                     "probability": 0.02, "extra_ns": 90.0},
                    {"kind": "nic_stall", "start_ns": 300_000, "duration_ns": 25_000},
                    {"kind": "nic_reset", "start_ns": 380_000, "duration_ns": 15_000},
                ],
            }
        )
