"""Deterministic fault injection and recovery support (``repro.faults``).

Split into the declarative side — :class:`FaultPlan` /
:class:`FaultEvent`, a validated schedule of fault events over simulated
time — and the operational side, :class:`FaultInjector`, which owns the
seeded RNG stream and answers the injection hooks in the link, the
coherence fabric, and the NIC queue engines. See ``docs/FAULTS.md`` for
the plan schema and recovery semantics.
"""

from repro.faults.injector import (
    FaultInjector,
    LinkFault,
    NicFault,
    SnoopFault,
)
from repro.faults.plan import FAULT_KINDS, FaultEvent, FaultPlan

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "LinkFault",
    "NicFault",
    "SnoopFault",
]
