"""The :class:`FaultInjector`: turns a plan into concrete fault decisions.

The injector is the single stochastic authority for faults. It owns one
seeded RNG stream (``make_rng(seed, "faults")``), so for a fixed
``(plan, seed)`` the sequence of injected events is bit-reproducible —
the property the determinism tests and the CI double-run job assert.

Components never read the plan themselves; they ask the injector at
their hook points:

* :meth:`link_ser_scale` — multiplicative serialization-time factor for
  active ``link_degrade`` windows (pure function of time, no RNG).
* :meth:`link_decide` — per-message draw for drop/duplicate/delay.
* :meth:`snoop_decide` — per-snoop draw for delayed/NACKed responses.
* :meth:`nic_decide` — one-shot stall/reset events for a queue engine.

Every injected fault is tallied in a :class:`~repro.sim.stats.Counter`
bag adopted by the ``repro.obs`` registry under the ``faults``
component, so ``--metrics-out`` reports exactly what was injected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.errors import FaultError
from repro.faults.plan import (
    LINK_MESSAGE_KINDS,
    NIC_KINDS,
    SNOOP_KINDS,
    FaultEvent,
    FaultPlan,
)
from repro.obs.instrument import Instrumented
from repro.sim.rng import make_rng
from repro.sim.stats import Counter


@dataclass(frozen=True)
class LinkFault:
    """Outcome of one per-message link draw.

    ``extra_ns`` is added to the message's delivery latency;
    ``retransmit`` / ``duplicate`` tell the link to book one extra
    serialization's worth of bandwidth (the wasted copy on the wire).
    """

    kind: str
    extra_ns: float = 0.0
    retransmit: bool = False
    duplicate: bool = False


@dataclass(frozen=True)
class SnoopFault:
    """Outcome of one per-snoop draw.

    A NACK means the requester re-issues the snoop: ``extra_ns`` covers
    the turnaround and ``reissue`` tells the fabric to charge the snoop
    message a second time on the link.
    """

    kind: str
    extra_ns: float = 0.0
    reissue: bool = False


@dataclass(frozen=True)
class NicFault:
    """A one-shot NIC event delivered to a queue engine."""

    kind: str
    duration_ns: float = 0.0


class FaultInjector(Instrumented):
    """Deterministic fault oracle for one simulation run.

    Args:
        plan: The fault schedule.
        seed: Root seed; the injector derives its own RNG stream from
            it, independent of every other seeded component.
    """

    def __init__(self, plan: FaultPlan, seed: int = 0) -> None:
        if not isinstance(plan, FaultPlan):
            raise FaultError(f"expected a FaultPlan, got {type(plan).__name__}")
        self.plan = plan
        self.seed = seed
        self._rng = make_rng(seed, "faults")
        self.counters = Counter()
        self._link_events = plan.events_of(*LINK_MESSAGE_KINDS)
        self._degrade_events = plan.events_of("link_degrade")
        self._snoop_events = plan.events_of(*SNOOP_KINDS)
        self._nic_events: Tuple[FaultEvent, ...] = plan.events_of(*NIC_KINDS)
        #: One-shot bookkeeping: (event position in plan, queue index).
        self._fired: Set[Tuple[int, int]] = set()
        self._injection_log: List[Tuple[float, str]] = []

    # ------------------------------------------------------------------
    def _obs_component(self) -> str:
        return "faults"

    def _register_metrics(self, registry) -> None:
        registry.adopt_counters(self.obs_name, self.counters)

    # ------------------------------------------------------------------
    def _note(self, now: float, kind: str) -> None:
        self.counters.add(f"injected_{kind}")
        self._injection_log.append((now, kind))

    @property
    def injection_log(self) -> Tuple[Tuple[float, str], ...]:
        """Chronological ``(now, kind)`` record of every injected fault."""
        return tuple(self._injection_log)

    def total_injected(self) -> int:
        """Total faults injected so far, across all kinds."""
        return len(self._injection_log)

    # ------------------------------------------------------------------
    # Link hooks
    # ------------------------------------------------------------------
    def link_ser_scale(self, link_name: str, now: float) -> float:
        """Serialization-time multiplier from active degrade windows.

        Pure function of (plan, link, time): no RNG draw, so calling it
        never perturbs the injector's stream. Overlapping windows
        compound.
        """
        scale = 1.0
        for ev in self._degrade_events:
            if ev.active(now) and ev.matches_link(link_name):
                scale /= ev.factor
        if scale != 1.0:
            self.counters.add("degraded_messages")
        return scale

    def link_decide(self, link_name: str, now: float) -> Optional[LinkFault]:
        """Per-message draw: drop (retransmit), duplicate, or delay.

        The first matching event in plan order wins; at most one link
        fault is injected per message.
        """
        for ev in self._link_events:
            if not ev.active(now) or not ev.matches_link(link_name):
                continue
            if self._rng.random() >= ev.probability:
                continue
            self._note(now, ev.kind)
            if ev.kind == "link_drop":
                return LinkFault("link_drop", extra_ns=ev.extra_ns, retransmit=True)
            if ev.kind == "link_duplicate":
                return LinkFault("link_duplicate", duplicate=True)
            return LinkFault("link_delay", extra_ns=ev.extra_ns)
        return None

    # ------------------------------------------------------------------
    # Coherence hook
    # ------------------------------------------------------------------
    def snoop_decide(self, now: float) -> Optional[SnoopFault]:
        """Per-snoop draw: delayed response or NACK + re-issue."""
        for ev in self._snoop_events:
            if not ev.active(now):
                continue
            if self._rng.random() >= ev.probability:
                continue
            self._note(now, ev.kind)
            if ev.kind == "snoop_nack":
                return SnoopFault("snoop_nack", extra_ns=ev.extra_ns, reissue=True)
            return SnoopFault("snoop_delay", extra_ns=ev.extra_ns)
        return None

    # ------------------------------------------------------------------
    # NIC hook
    # ------------------------------------------------------------------
    def nic_decide(self, queue_index: int, now: float) -> Optional[NicFault]:
        """One-shot stall/reset check for queue ``queue_index``.

        Each ``nic_stall`` / ``nic_reset`` event fires at most once per
        matching queue, the first time the engine polls at or after its
        ``start_ns``. Earliest-due event wins when several are pending.
        """
        best: Optional[Tuple[float, int, FaultEvent]] = None
        for position, ev in enumerate(self._nic_events):
            if now < ev.start_ns or not ev.matches_queue(queue_index):
                continue
            key = (position, queue_index)
            if key in self._fired:
                continue
            if best is None or ev.start_ns < best[0]:
                best = (ev.start_ns, position, ev)
        if best is None:
            return None
        _, position, ev = best
        self._fired.add((position, queue_index))
        self._note(now, ev.kind)
        return NicFault(ev.kind, duration_ns=ev.duration_ns)

    def __repr__(self) -> str:
        return (
            f"FaultInjector(plan={self.plan.name!r}, seed={self.seed}, "
            f"injected={self.total_injected()})"
        )
