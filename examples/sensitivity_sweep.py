#!/usr/bin/env python3
"""Interconnect sensitivity sweep: will CC-NIC's design travel to CXL?

Reproduces the spirit of the paper's Fig 21 interactively: sweep the
interconnect's latency (the CXL Consortium expects 170-250ns loads for
CXL-attached memory, ~1.1-1.5x cross-UPI) and bandwidth, and check that
CC-NIC's advantage over the unoptimized interface is preserved.

Run:  python examples/sensitivity_sweep.py
"""

from repro.analysis import InterfaceKind, format_table
from repro.analysis.loopback import build_interface, run_point
from repro.platform import spr


def latency_sweep() -> None:
    rows = []
    for factor in (1.0, 1.11, 1.25, 1.5):
        point = {}
        for kind in (InterfaceKind.CCNIC, InterfaceKind.UNOPT):
            setup = build_interface(spr(), kind, link_latency_factor=factor)
            result = run_point(setup, 64, 700, inflight=1, tx_batch=1, rx_batch=1)
            point[kind] = result.latency.minimum
        rows.append((
            factor,
            point[InterfaceKind.CCNIC],
            point[InterfaceKind.UNOPT],
            point[InterfaceKind.UNOPT] / point[InterfaceKind.CCNIC],
        ))
    print(format_table(
        ["Latency factor", "CC-NIC min [ns]", "Unopt min [ns]", "Unopt/CC-NIC"],
        rows,
        title="Fig 21a-style sweep on SPR (1.11x ~ the middle of the CXL "
        "Consortium's expected latency range)",
    ))
    print("-> CC-NIC's relative improvement holds across the CXL range.\n")


def bandwidth_sweep() -> None:
    rows = []
    for factor in (1.0, 0.7, 0.4):
        point = {}
        for kind in (InterfaceKind.CCNIC, InterfaceKind.UNOPT):
            setup = build_interface(spr(), kind, link_bandwidth_factor=factor)
            result = run_point(setup, 1500, 4000, inflight=256,
                               tx_batch=32, rx_batch=32)
            point[kind] = result.gbps
        rows.append((factor, point[InterfaceKind.CCNIC], point[InterfaceKind.UNOPT]))
    print(format_table(
        ["Bandwidth factor", "CC-NIC 1.5KB [Gbps]", "Unopt 1.5KB [Gbps]"],
        rows,
        title="Fig 21b-style sweep: per-queue 1.5KB throughput vs link rate",
    ))


if __name__ == "__main__":
    latency_sweep()
    bandwidth_sweep()
