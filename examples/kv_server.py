#!/usr/bin/env python3
"""Key-value store over CC-NIC: the paper's application study (§5.7).

Runs a CliqueMap-style KV server thread against the Ads object-size
distribution (61% of objects under 100B), once over the CC-NIC coherent
interface and once over the CX6-style PCIe interface, and reports the
per-thread service rate plus how many application threads each
deployment needs to saturate the NIC.

Run:  python examples/kv_server.py
"""

from repro.analysis import InterfaceKind, format_table
from repro.apps.kvstore import KvWorkload, kv_thread_study
from repro.platform import icx


def main() -> None:
    spec = icx()
    workload = KvWorkload.ads()
    rows = []
    studies = {}
    for kind in (InterfaceKind.CX6, InterfaceKind.CCNIC):
        study = kv_thread_study(spec, kind, workload, n_ops=2000)
        studies[kind.value] = study
        rows.append(
            (
                "CC-NIC Overlay" if kind is InterfaceKind.CCNIC else "PCIe (CX6)",
                study.per_thread_mops,
                study.peak_mops,
                study.threads_to_saturate(spec),
            )
        )
    print(format_table(
        ["Deployment", "Per-thread [Mops]", "Peak [Mops]", "Threads to saturate"],
        rows,
        title="KV store (Ads, 95% get / 5% set, Zipf 0.75) on ICX "
        "(paper: 16 threads with the CX6, 8 with CC-NIC)",
    ))
    print()
    print("Throughput vs thread count:")
    points = []
    for threads in (1, 2, 4, 8, 12, 16):
        points.append(
            (
                threads,
                studies["cx6"].throughput(threads, spec),
                studies["ccnic"].throughput(threads, spec),
            )
        )
    print(format_table(["Threads", "PCIe [Mops]", "CC-NIC [Mops]"], points))


if __name__ == "__main__":
    main()
