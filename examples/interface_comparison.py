#!/usr/bin/env python3
"""Compare the four host-NIC interfaces of the paper's evaluation.

Reproduces the headline Fig 11 comparison interactively: minimum
loopback latency and single-queue saturation for CC-NIC, the
unoptimized-UPI baseline, and the two PCIe NICs, all on the simulated
Ice Lake server.

Run:  python examples/interface_comparison.py
"""

from repro.analysis import InterfaceKind, format_table
from repro.analysis.loopback import build_interface, run_point, wire_bytes_per_packet
from repro.platform import icx

PAPER_MIN = {"ccnic": 490, "unopt": 1030, "e810": 3809, "cx6": 2116}


def main() -> None:
    spec = icx()
    rows = []
    for kind in InterfaceKind:
        setup = build_interface(spec, kind)
        lat = run_point(setup, 64, 1000, inflight=1, tx_batch=1, rx_batch=1)

        setup2 = build_interface(spec, kind)
        sat = run_point(setup2, 64, 10000, inflight=256, tx_batch=32, rx_batch=32)
        d0, d1 = wire_bytes_per_packet(setup2, sat)
        rows.append(
            (
                kind.value,
                lat.latency.minimum,
                PAPER_MIN[kind.value],
                sat.mpps,
                max(d0, d1),
            )
        )
    print(format_table(
        ["Interface", "Min lat [ns]", "Paper [ns]", "Per-queue sat [Mpps]",
         "Wire B/pkt/dir"],
        rows,
        title="Host-NIC interface comparison, 64B loopback on ICX",
    ))
    print()
    print("CC-NIC's coherent interface avoids the PCIe round trips entirely:")
    print("descriptors and payloads move as cache-to-cache transfers, and the")
    print("inlined signal means one line carries both data and notification.")


if __name__ == "__main__":
    main()
