#!/usr/bin/env python3
"""Quickstart: bring up CC-NIC on a simulated Ice Lake server.

Builds the two-socket platform, creates a CC-NIC interface with one
queue pair, and exercises the Figure 5 data-plane API directly — then
runs the loopback traffic generator for a quick latency/throughput
reading.

Run:  python examples/quickstart.py
"""

from repro.analysis import format_table
from repro.core import CcnicConfig, CcnicInterface
from repro.core.api import buf_alloc, buf_free, rx_burst, tx_burst
from repro.platform import System, icx
from repro.workloads.packets import Packet
from repro.workloads.trafficgen import run_loopback


def manual_api_demo() -> None:
    """Send four packets by hand through the public API."""
    system = System(icx())
    nic = CcnicInterface(system, CcnicConfig())
    driver = nic.driver(0)
    nic.start()

    # ccnic_buf_alloc: four small-packet buffers from the shared pool.
    alloc = buf_alloc(nic.pool, driver.agent, [64] * 4)
    bufs = alloc.bufs
    print(f"allocated {alloc.count} buffers in {alloc.ns:.1f}ns "
          f"(small={bufs[0].small}, capacity={bufs[0].capacity}B)")

    # Write payloads, then ccnic_tx_burst.
    entries = []
    for buf in bufs:
        driver.write_payload(buf, 64)
        entries.append((buf, Packet(size=64, tx_ns=system.now)))
    tx = tx_burst(driver, entries)
    print(f"tx_burst accepted {tx.count} packets in {tx.ns:.1f}ns")

    # Poll ccnic_rx_burst until the NIC loops them back.
    received = []

    def app():
        while len(received) < 4:
            rx = rx_burst(driver, 8)
            received.extend(rx.entries)
            yield max(rx.ns, 1.0)

    system.sim.spawn(app(), "quickstart-app")
    system.sim.run(until=1e6, stop_when=lambda: len(received) >= 4)
    for pkt, _buf in received:
        pkt.rx_ns = system.now
    print(f"received {len(received)} packets back at t={system.now:.0f}ns")

    # ccnic_buf_free returns the buffers to the pool.
    buf_free(nic.pool, driver.agent, [buf for _pkt, buf in received])


def loopback_measurement() -> None:
    """Minimum latency and single-queue saturation on ICX."""
    rows = []
    for label, kwargs in (
        ("min latency (1 in flight)", dict(inflight=1, tx_batch=1, rx_batch=1, n_packets=1000)),
        ("saturation (batch 32)", dict(inflight=256, tx_batch=32, rx_batch=32, n_packets=10000)),
    ):
        system = System(icx())
        nic = CcnicInterface(system, CcnicConfig(ring_slots=1024, recycle_stack_max=1024))
        driver = nic.driver(0)
        nic.start()
        result = run_loopback(system, driver, pkt_size=64, **kwargs)
        rows.append((label, result.latency.minimum, result.latency.median, result.mpps))
    print()
    print(format_table(
        ["Scenario", "Min lat [ns]", "Median [ns]", "Mpps"],
        rows,
        title="CC-NIC 64B loopback on simulated ICX (paper: 490ns minimum)",
    ))


if __name__ == "__main__":
    manual_api_demo()
    loopback_measurement()
