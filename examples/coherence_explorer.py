#!/usr/bin/env python3
"""Explore the coherence substrate directly: the paper's §3 measurements.

Shows the three microbenchmark results that drive CC-NIC's design:
Fig 7's access-latency cases, Fig 8's pingpong layouts, and the remote
access counting that signal inlining and buffer recycling optimize.

Run:  python examples/coherence_explorer.py
"""

from repro.analysis import format_table
from repro.analysis.microbench import PINGPONG_CASES, access_latency_cases, pingpong
from repro.core import CcnicConfig, CcnicInterface
from repro.platform import System, icx
from repro.workloads.trafficgen import run_loopback


def fig7() -> None:
    cases = access_latency_cases(icx())
    print(format_table(
        ["Access target", "Latency [ns]"],
        list(cases.items()),
        title="Fig 7 (ICX): where the data lives determines the cost",
    ))
    print("-> remote L2 beats remote DRAM: cache-to-cache transfers are the")
    print("   fast path a coherent NIC interface should engineer for.\n")


def fig8() -> None:
    rows = [(case, pingpong(icx(), case, 150).median) for case in PINGPONG_CASES]
    print(format_table(
        ["Layout", "RTT [ns]"],
        rows,
        title="Fig 8 (ICX): producer-consumer pingpong by layout",
    ))
    print("-> co-locating the two directions on one cache line (S0C/S1C) is")
    print("   the cheapest two-way communication: CC-NIC inlines signals in")
    print("   descriptors for exactly this reason.\n")


def coherence_traffic() -> None:
    system = System(icx())
    nic = CcnicInterface(system, CcnicConfig())
    driver = nic.driver(0)
    nic.start()
    result = run_loopback(system, driver, pkt_size=64, n_packets=4000,
                          inflight=128, tx_batch=32, rx_batch=32)
    counters = system.fabric.snapshot_counters()
    rows = [
        (name, counters[name] / result.received)
        for name in sorted(counters)
        if name.startswith("s1.")
    ]
    print(format_table(
        ["NIC-socket transaction", "per packet"],
        rows,
        title="Fig 17-style counters: CC-NIC batched loopback "
        "(paper: 1.3 READ + 0.3 RFO per packet)",
    ))


if __name__ == "__main__":
    fig7()
    fig8()
    coherence_traffic()
