"""Table 2 (TCP echo RPC row): TAS fast-path thread count.

A TAS-style userspace TCP fast path serves 64B echo RPCs across 96
flows. The paper measures the fast-path threads needed for 95% of peak:
5 with the direct CX6 interface, 3 with the CC-NIC Overlay (peak 58.3
vs 64.6 Mops, both limited by the CX6 packet rate).
"""

from conftest import emit

from repro.analysis import InterfaceKind, format_table
from repro.apps.tas import rpc_thread_study
from repro.platform import icx


def run_table2():
    out = {}
    for kind in (InterfaceKind.CCNIC, InterfaceKind.CX6):
        out[kind.value] = rpc_thread_study(icx(), kind, n_ops=2500)
    return out


def test_table2_tcp_rpc(run_once):
    results = run_once(run_table2)
    rows = []
    for kind, label in (("cx6", "PCIe (CX6)"), ("ccnic", "CC-NIC Overlay")):
        study = results[kind]
        rows.append(
            (
                label,
                study.per_thread_mops,
                study.peak_mops,
                study.threads_to_saturate(),
            )
        )
    emit(
        format_table(
            ["Interface", "Per-thread [Mops]", "Peak [Mops]", "Threads for 95%"],
            rows,
            title="Table 2 (RPC row). TCP echo RPC fast-path threads "
            "(paper: 5 with CX6, 3 with CC-NIC; 58.3 vs 64.6 Mops peak)",
        )
    )
    cc = results["ccnic"]
    px = results["cx6"]
    # Fewer fast-path threads saturate the NIC with the coherent interface.
    assert cc.threads_to_saturate() < px.threads_to_saturate()
    # Per-thread fast-path rate is meaningfully higher.
    assert cc.per_thread_mops > 1.25 * px.per_thread_mops
