"""Smoke coverage for the self-benchmarking harness.

CI's perf-smoke job runs ``python -m repro perf --quick`` directly;
these tests cover the same plumbing from pytest so a broken harness
fails fast locally too.
"""

import json

import repro.topology  # noqa: F401  registers the rack topology scenarios
from repro.analysis import perf


def test_quick_loopback_meets_committed_floor(tmp_path):
    doc = perf.run_suite(["loopback_64b"], quick=True, compare=("loopback_64b",))
    entry = doc["scenarios"]["loopback_64b"]
    assert entry["deterministic"] is True
    assert entry["events"] > 0
    path = perf.write_bench(doc, str(tmp_path / "BENCH_sim_perf.json"))
    reread = json.load(open(path))
    assert reread["scenarios"]["loopback_64b"]["fingerprint"] == entry["fingerprint"]
    baseline = perf.load_baseline()
    assert baseline is not None, "benchmarks/perf/baseline.json must be committed"
    assert perf.check_regression(doc, baseline) == []


def test_check_regression_flags_slowdowns_and_divergence():
    doc = {
        "scenarios": {
            "loopback_64b": {
                "events_per_sec": 100.0,
                "deterministic": False,
                "fingerprint": "aaaa",
                "slowpath": {"fingerprint": "bbbb"},
            }
        }
    }
    baseline = {"scenarios": {"loopback_64b": {"events_per_sec": 1000.0}}}
    failures = perf.check_regression(doc, baseline, tolerance=0.30)
    assert len(failures) == 2
    assert any("below the regression floor" in msg for msg in failures)
    assert any("different metric fingerprints" in msg for msg in failures)
    # At-tolerance throughput with matching fingerprints passes.
    ok = {
        "scenarios": {
            "loopback_64b": {"events_per_sec": 701.0, "deterministic": True}
        }
    }
    assert perf.check_regression(ok, baseline, tolerance=0.30) == []


def test_quick_sharded_run_matches_single_process():
    doc = perf.run_suite(
        ["loopback_64b"], quick=True, compare=("loopback_64b",), shards=2
    )
    entry = doc["scenarios"]["loopback_64b"]
    assert doc["shards"] == 2
    assert entry["n_shards"] == 8  # partition is fixed by the scenario
    assert entry["deterministic"] is True
    assert entry["single_process"]["fingerprint"] == entry["fingerprint"]
    baseline = perf.load_baseline()
    assert baseline is not None
    assert perf.check_regression(doc, baseline) == []


def test_quick_rack_kv_sharded_matches_single_process():
    doc = perf.run_suite(
        ["kv_rack_zipf"], quick=True, compare=("kv_rack_zipf",), shards=2
    )
    entry = doc["scenarios"]["kv_rack_zipf"]
    assert entry["n_shards"] == 8  # one shard per rack host
    assert entry["deterministic"] is True
    assert entry["single_process"]["fingerprint"] == entry["fingerprint"]
    # Per-edge fabric counters ride along in the BENCH document.
    assert entry["topology"]["h0~tor0:0:messages"] > 0
    baseline = perf.load_baseline()
    assert baseline is not None
    assert perf.check_regression(doc, baseline) == []


def test_check_regression_prefers_sharded_floor():
    baseline = {
        "scenarios": {
            "loopback_64b": {
                "events_per_sec": 1000.0,
                "sharded": {"events_per_sec": 400.0},
            }
        }
    }
    sharded = {"shards": 2, "scenarios": {"loopback_64b": {"events_per_sec": 350.0}}}
    assert perf.check_regression(sharded, baseline, tolerance=0.30) == []
    single = {"shards": 1, "scenarios": {"loopback_64b": {"events_per_sec": 350.0}}}
    assert len(perf.check_regression(single, baseline, tolerance=0.30)) == 1
