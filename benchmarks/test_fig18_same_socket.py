"""Fig 18: same-socket NIC deployment (no UPI crossing).

Deploying the software NIC's threads on the host CPU removes all
cross-interconnect transfers. Paper: the interconnect accounts for
~40-50% of TX-RX loopback latency, and the same-socket case reaches
1.5x the per-thread throughput.
"""

from conftest import emit

from repro.analysis import InterfaceKind, format_table
from repro.analysis.loopback import build_interface, run_point
from repro.platform import spr


def measure(same_socket):
    setup = build_interface(spr(), InterfaceKind.CCNIC, same_socket=same_socket)
    lat = run_point(setup, 64, 800, inflight=1, tx_batch=1, rx_batch=1)
    setup2 = build_interface(spr(), InterfaceKind.CCNIC, same_socket=same_socket)
    sat = run_point(setup2, 64, 12000, inflight=384, tx_batch=32, rx_batch=32)
    return {"min_ns": lat.latency.minimum, "mpps": sat.mpps}


def run_fig18():
    return {
        "remote": measure(same_socket=False),
        "same": measure(same_socket=True),
    }


def test_fig18_same_socket(run_once):
    results = run_once(run_fig18)
    emit(
        format_table(
            ["Deployment", "Min lat [ns]", "Per-thread [Mpps]"],
            [
                ("Remote-socket NIC (cross-UPI)", results["remote"]["min_ns"],
                 results["remote"]["mpps"]),
                ("Same-socket NIC", results["same"]["min_ns"],
                 results["same"]["mpps"]),
            ],
            title="Fig 18. Same-socket vs cross-UPI single-thread loopback "
            "(paper: interconnect is 40-50% of latency; 1.5x per-thread "
            "throughput same-socket)",
        )
    )
    remote, same = results["remote"], results["same"]
    interconnect_share = 1 - same["min_ns"] / remote["min_ns"]
    # The interconnect contributes a large minority of loopback latency.
    assert 0.30 <= interconnect_share <= 0.65
    # Same-socket per-thread throughput is substantially higher.
    speedup = same["mpps"] / remote["mpps"]
    assert 1.2 <= speedup <= 2.2
