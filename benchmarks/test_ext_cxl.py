"""Extension: CC-NIC projected onto a CXL-attached NIC.

The paper's Fig 21a marks the CXL Consortium's expected 170-250ns
latency range on its sensitivity axis and argues CC-NIC's design
carries to CXL. The `cxl()` preset projects the SPR host onto a CXL 2.0
x16 device link (1.3x device-path latency, 504 Gbps data rate); this
benchmark compares CC-NIC and the unoptimized interface there against
the UPI baseline.
"""

from conftest import emit

from repro.analysis import InterfaceKind, format_table
from repro.analysis.loopback import min_latency, saturation
from repro.platform import cxl, spr


def run_ext_cxl():
    out = {}
    for name, spec in (("spr-upi", spr()), ("cxl", cxl())):
        out[name] = {
            "ccnic_min": min_latency(spec, InterfaceKind.CCNIC, n_packets=700),
            "unopt_min": min_latency(spec, InterfaceKind.UNOPT, n_packets=700),
            "ccnic_per_queue": saturation(
                spec, InterfaceKind.CCNIC, n_packets=10000
            ).mpps,
        }
    return out


def test_ext_cxl_projection(run_once):
    results = run_once(run_ext_cxl)
    rows = []
    for name in ("spr-upi", "cxl"):
        r = results[name]
        rows.append((name, r["ccnic_min"], r["unopt_min"],
                     r["unopt_min"] / r["ccnic_min"], r["ccnic_per_queue"]))
    emit(
        format_table(
            ["Platform", "CC-NIC min [ns]", "Unopt min [ns]",
             "Unopt/CC-NIC", "CC-NIC per-queue [Mpps]"],
            rows,
            title="Extension: CC-NIC projected onto CXL 2.0 x16 (paper §5.9: "
            "benefits hold across interconnect characteristics)",
        )
    )
    upi = results["spr-upi"]
    cxl_r = results["cxl"]
    # CXL's longer device path costs latency...
    assert cxl_r["ccnic_min"] > upi["ccnic_min"]
    # ...but stays in the same class (well under any PCIe NIC's ~2.1us+).
    assert cxl_r["ccnic_min"] < 1500.0
    # The design's relative win over the naive interface is preserved.
    upi_ratio = upi["unopt_min"] / upi["ccnic_min"]
    cxl_ratio = cxl_r["unopt_min"] / cxl_r["ccnic_min"]
    assert cxl_ratio > 0.85 * upi_ratio
    # Per-queue throughput degrades gracefully, not catastrophically.
    assert cxl_r["ccnic_per_queue"] > 0.6 * upi["ccnic_per_queue"]
