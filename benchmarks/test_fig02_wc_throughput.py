"""Fig 2: single-threaded write throughput per barrier size.

Also reproduces the §2.2 MMIO read-latency measurements (982ns for 8B,
1026ns for 64B loads) taken on the same testbed.
"""

from conftest import emit

from repro.analysis import format_table
from repro.analysis.microbench import mmio_read_latency, wc_write_throughput
from repro.platform import icx

SIZES = [64, 128, 256, 512, 1024, 2048, 4096, 8192]


def run_fig2():
    spec = icx()
    rows = []
    for size in SIZES:
        rows.append(
            (
                size,
                wc_write_throughput(spec, "wc_mmio", size),
                wc_write_throughput(spec, "wc_dram", size),
                wc_write_throughput(spec, "wb_dram", size),
            )
        )
    return rows


def test_fig2_wc_write_throughput(run_once):
    rows = run_once(run_fig2)
    emit(
        format_table(
            ["Write Size/Barrier [B]", "WC MMIO [Gbps]", "WC DRAM [Gbps]", "WB DRAM [Gbps]"],
            rows,
            title="Fig 2. Single-threaded write throughput (paper: WC MMIO "
            "needs ~4KB/barrier for near-max; peaks at ~76% of WB)",
        )
    )
    by_size = {r[0]: r for r in rows}
    # WC paths are barrier-limited: small barriers are far below peak.
    assert by_size[64][1] < 0.35 * by_size[4096][1]
    # Near-maximum WC throughput requires ~4KB per barrier.
    assert by_size[4096][1] > 0.9 * by_size[8192][1]
    # Batched WC MMIO still trails WB DRAM (paper: 76% of singleton WB).
    ratio = by_size[8192][1] / by_size[64][3]
    assert 0.5 < ratio < 1.0
    # WB DRAM is flat regardless of barrier frequency.
    assert by_size[8192][3] / by_size[64][3] < 1.3


def test_mmio_read_latency(run_once):
    latencies = run_once(mmio_read_latency, icx())
    emit(
        format_table(
            ["Load size", "Latency [ns]", "Paper [ns]"],
            [("8B", latencies["8B"], 982), ("64B (AVX512)", latencies["64B"], 1026)],
            title="§2.2 MMIO read latency (ICX host, E810 BAR)",
        )
    )
    assert abs(latencies["8B"] - 982.0) < 50
    assert abs(latencies["64B"] - 1026.0) < 50
