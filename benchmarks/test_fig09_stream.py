"""Fig 9: streaming transfer throughput, caching vs non-temporal stores.

Writer threads on socket 0 stream chunks to readers on socket 1. With
cacheable stores the readers pull data cache-to-cache; with non-temporal
stores the data is pushed to reader-socket DRAM. The paper measures
1.8x (ICX) / 1.6x (SPR) higher saturated throughput for the caching
path, reaching 91% of the link's best-case read-only throughput.
"""

from conftest import emit

from repro.analysis import format_table
from repro.analysis.microbench import stream_throughput
from repro.platform import icx, spr

PAIR_COUNTS = [1, 2, 4, 8]


def run_fig9():
    rows = []
    for pairs in PAIR_COUNTS:
        rows.append(
            (
                pairs,
                stream_throughput(icx(), pairs, caching=True, chunks=6),
                stream_throughput(icx(), pairs, caching=False, chunks=6),
                stream_throughput(spr(), pairs, caching=True, chunks=6),
                stream_throughput(spr(), pairs, caching=False, chunks=6),
            )
        )
    return rows


def test_fig9_stream_throughput(run_once):
    rows = run_once(run_fig9)
    emit(
        format_table(
            ["Pairs", "ICX caching", "ICX nontmp", "SPR caching", "SPR nontmp"],
            rows,
            title="Fig 9. Streaming throughput [Gbps] (paper: caching stores "
            "reach 1.8x/1.6x the non-temporal rate at saturation)",
        )
    )
    # Aggregate throughput grows with thread pairs for the caching path.
    assert rows[-1][1] > rows[0][1]
    # At the largest pair count, caching beats non-temporal clearly on
    # both platforms.
    last = rows[-1]
    assert last[1] > 1.3 * last[2]
    assert last[3] > 1.3 * last[4]
