"""Fault injection and data-plane recovery (repro.faults).

Not a paper figure: the paper's data plane never loses a descriptor, so
it has no recovery story. This benchmark injects every fault class from
the canned plan into a CC-NIC and an E810 loopback and asserts the
recovery triad (bounded TX backoff, ring watchdog, in-flight write-off)
keeps the data plane alive:

  * every offered packet resolves to received or dropped (no deadlock,
    no unhandled exception);
  * goodput stays within a bounded loss budget of the offered count;
  * for a fixed (plan, seed) the run is bit-deterministic — same
    injection log, same packet counts, same latency distribution.
"""

from conftest import emit

from repro.analysis import format_table
from repro.analysis.loopback import InterfaceKind, build_interface, run_point
from repro.core.recovery import RecoveryPolicy
from repro.faults import FaultInjector, FaultPlan
from repro.platform import icx

N_PACKETS = 6000
#: Loss budget: a reset drops at most the in-flight window plus wire
#: packets; anything above ~5% of offered load means recovery is broken.
MAX_LOSS_FRACTION = 0.05

#: Fault classes each family must see injected from the canned plan.
#: PCIe NIC traffic never crosses the coherent fabric's remote-snoop
#: path, so the snoop classes only apply to the coherent interface.
EXPECTED_KINDS = {
    InterfaceKind.CCNIC: {
        "link_delay", "link_drop", "link_duplicate", "snoop_delay",
        "snoop_nack", "nic_stall", "nic_reset",
    },
    InterfaceKind.E810: {
        "link_delay", "link_drop", "link_duplicate", "nic_stall", "nic_reset",
    },
}


def run_faulted(kind: InterfaceKind, seed: int):
    faults = FaultInjector(FaultPlan.canned(), seed=seed)
    setup = build_interface(icx(), kind, faults=faults)
    result = run_point(
        setup,
        pkt_size=256,
        n_packets=N_PACKETS,
        inflight=64,
        tx_batch=32,
        rx_batch=32,
        recovery=RecoveryPolicy(),
    )
    return {
        "received": result.received,
        "dropped": result.dropped,
        "sent": result.sent,
        "mpps": result.mpps,
        "median_ns": result.latency.median,
        "injected": faults.total_injected(),
        "injection_log": faults.injection_log,
        "kinds": {k for _t, k in faults.injection_log},
        "watchdog_resets": setup.driver.watchdog_resets,
        "tx_timeouts": setup.driver.tx_timeouts,
    }


def run_both():
    return {
        kind: run_faulted(kind, seed=7)
        for kind in (InterfaceKind.CCNIC, InterfaceKind.E810)
    }


def test_recovery_from_every_fault_class(run_once):
    results = run_once(run_both)
    rows = []
    for kind, r in results.items():
        rows.append((
            kind.value, r["received"], r["dropped"], r["injected"],
            r["watchdog_resets"], r["mpps"],
        ))
    emit(format_table(
        ["Interface", "Received", "Dropped", "Faults", "Resets", "Goodput Mpps"],
        rows,
        title=f"Fault recovery: canned plan, {N_PACKETS} x 256B packets (seed 7)",
    ))
    for kind, r in results.items():
        # Liveness: every offered packet resolved, with real goodput.
        assert r["received"] + r["dropped"] == N_PACKETS, kind
        assert r["received"] > 0 and r["mpps"] > 0.0, kind
        # Bounded loss: recovery sheds at most a small fraction.
        assert r["dropped"] <= MAX_LOSS_FRACTION * N_PACKETS, kind
        # Coverage: every applicable fault class was actually injected.
        assert EXPECTED_KINDS[kind] <= r["kinds"], (kind, r["kinds"])
        # The NIC reset forced the watchdog to reinitialize the rings.
        assert r["watchdog_resets"] >= 1, kind


def test_bit_determinism_per_seed():
    first = run_faulted(InterfaceKind.CCNIC, seed=21)
    second = run_faulted(InterfaceKind.CCNIC, seed=21)
    assert first == second
    other_seed = run_faulted(InterfaceKind.CCNIC, seed=22)
    assert other_seed["injection_log"] != first["injection_log"]
