"""Fig 16: TX/RX batch-size sensitivity, CC-NIC vs E810 (ICX, 64B).

Paper: CC-NIC needs far less TX batching — the unbatched case reaches
27% of its peak versus 12% for the E810 (whose MMIO doorbells demand
amortization). Poll-mode RX batching barely matters for either (>=93%
for CC-NIC, >=63% for E810 across batch sizes).
"""

from conftest import emit

from repro.analysis import InterfaceKind, format_table
from repro.analysis.loopback import build_interface, run_point
from repro.platform import icx

TX_BATCHES = [1, 4, 16, 32]
RX_BATCHES = [1, 4, 16, 32]


def saturate(kind, tx_batch, rx_batch):
    setup = build_interface(icx(), kind)
    result = run_point(
        setup, 64, 10000, inflight=256, tx_batch=tx_batch, rx_batch=rx_batch
    )
    return result.mpps


def run_fig16():
    out = {}
    for kind in (InterfaceKind.CCNIC, InterfaceKind.E810):
        tx = {b: saturate(kind, b, 32) for b in TX_BATCHES}
        rx = {b: saturate(kind, 32, b) for b in RX_BATCHES}
        out[kind.value] = {"tx": tx, "rx": rx}
    return out


def test_fig16_batching(run_once):
    results = run_once(run_fig16)
    rows = []
    for kind in ("ccnic", "e810"):
        tx = results[kind]["tx"]
        rx = results[kind]["rx"]
        peak = max(max(tx.values()), max(rx.values()))
        for b in TX_BATCHES:
            rows.append((kind, "TX", b, tx[b], tx[b] / peak))
        for b in RX_BATCHES:
            rows.append((kind, "RX", b, rx[b], rx[b] / peak))
    emit(
        format_table(
            ["Interface", "Dir", "Batch", "Mpps", "Fraction of peak"],
            rows,
            title="Fig 16. Batching sensitivity (paper: unbatched TX = 27% "
            "of peak for CC-NIC vs 12% for E810; RX batching minor)",
        )
    )
    cc_tx = results["ccnic"]["tx"]
    e8_tx = results["e810"]["tx"]
    cc_unbatched = cc_tx[1] / max(cc_tx.values())
    e8_unbatched = e8_tx[1] / max(e8_tx.values())
    # CC-NIC tolerates small TX batches far better than the E810.
    assert cc_unbatched > 1.5 * e8_unbatched
    assert cc_unbatched > 0.15
    # RX batching is much less critical for both.
    cc_rx = results["ccnic"]["rx"]
    assert min(cc_rx.values()) / max(cc_rx.values()) > 0.6
