"""Fig 15: buffer-management feature ablation (SPR, 64B packets).

Features removed cumulatively, as in the paper:
  1. optimized design (all features on);
  2. buffer recycling + non-sequential allocation removed (-20% tput);
  3. small-buffer subdivision also removed (further -37%);
  4. NIC-side shared buffer management also removed (further -46%,
     latency x1.3) — PCIe-NIC-style host-only management.
"""

from conftest import emit

from repro.analysis import InterfaceKind, format_table
from repro.analysis.loopback import build_interface, run_point
from repro.core import CcnicConfig
from repro.platform import spr


def measure(config):
    spec = spr()
    setup = build_interface(spec, InterfaceKind.CCNIC, config=config)
    sat = run_point(setup, 64, 12000, inflight=384, tx_batch=32, rx_batch=32)
    return {"mpps": sat.mpps, "median_ns": sat.latency.median}


def run_fig15():
    # A pool much larger than the on-chip caches, as in a real
    # deployment: without recycling, FIFO reuse cycles through the whole
    # footprint and arrives cache-cold.
    base = dict(ring_slots=1024, recycle_stack_max=1024, pool_buffers=16384)
    return {
        "optimized": measure(CcnicConfig(**base)),
        "no_recycling": measure(
            CcnicConfig(buf_recycling=False, nonseq_alloc=False, **base)
        ),
        "no_small_bufs": measure(
            CcnicConfig(buf_recycling=False, nonseq_alloc=False,
                        small_buffers=False, **base)
        ),
        "no_nic_mgmt": measure(
            CcnicConfig(buf_recycling=False, nonseq_alloc=False,
                        small_buffers=False, nic_buffer_mgmt=False, **base)
        ),
    }


def test_fig15_buffer_management(run_once):
    results = run_once(run_fig15)
    emit(
        format_table(
            ["Configuration", "Tput [Mpps]", "Median lat [ns]"],
            [(k, v["mpps"], v["median_ns"]) for k, v in results.items()],
            title="Fig 15. Buffer-management ablations, 64B on SPR (paper: "
            "-20% recycling, further -37% small bufs, further -46% + "
            "1.3x latency for host-only management)",
        )
    )
    tput = {k: v["mpps"] for k, v in results.items()}
    # Each removal costs throughput.
    assert tput["optimized"] > tput["no_recycling"]
    assert tput["no_recycling"] > tput["no_small_bufs"]
    assert tput["no_small_bufs"] > tput["no_nic_mgmt"]
    # The full stack of features is worth a large factor overall
    # (paper: ~2.5x compounded).
    assert tput["optimized"] > 1.6 * tput["no_nic_mgmt"]
