"""Extension (§6 Discussion): CPU-initiated bulk transfers via a
DSA-style on-chip copy engine.

The paper suggests on-chip DMA engines (Intel DSA) as a mechanism for
CPU-initiated bulk transfers that "could benefit large-packet
workloads". This benchmark quantifies the tradeoff in the model: the
core-side cost of a payload copy done with stores versus offloaded to
the engine, across payload sizes — small copies are cheaper on the
core, large copies amortize the submission cost and free the core
entirely.
"""

from conftest import emit

from repro.analysis import format_table
from repro.offload import DsaEngine
from repro.offload.dsa import SUBMIT_NS, breakeven_bytes
from repro.platform import System, icx

SIZES = [256, 1024, 4096, 16384, 65536]


def run_ext_dsa():
    rows = []
    for size in SIZES:
        system = System(icx())
        engine = DsaEngine(system)
        engine.start()
        src = system.alloc_host("src", size)
        dst = system.alloc_host("dst", size)
        core = system.new_host_core("core")
        # CPU path: read source + write destination with ordinary stores.
        cpu_ns = system.fabric.access(core, src.base, size, write=False)
        cpu_ns += system.fabric.access(core, dst.base, size, write=True)
        # Offload path: core pays only the submission; the engine
        # completes asynchronously.
        completion, core_ns = engine.submit(src.base, dst.base, size)
        system.sim.run(until=1e7, stop_when=lambda: completion.done)
        rows.append((size, cpu_ns, core_ns, completion.latency_ns))
    breakeven = breakeven_bytes(System(icx()))
    return {"rows": rows, "breakeven": breakeven}


def test_ext_dsa_bulk_copy(run_once):
    results = run_once(run_ext_dsa)
    emit(
        format_table(
            ["Copy size [B]", "CPU cost [ns]", "Core cost w/ DSA [ns]",
             "DSA completion [ns]"],
            results["rows"],
            title=f"Extension (§6): DSA-style bulk copy offload "
            f"(modelled breakeven ~{results['breakeven']}B)",
        )
    )
    rows = {size: (cpu, core, total) for size, cpu, core, total in results["rows"]}
    # The core-side cost of offloading is flat (one descriptor).
    assert rows[65536][1] == rows[256][1] == SUBMIT_NS
    # For large copies, offload releases the core far earlier than
    # copying with stores would.
    assert rows[65536][0] > 10 * rows[65536][1]
    # For tiny copies, the CPU path is the cheaper choice.
    assert rows[256][0] < rows[256][2]
    # Completion latency grows with size (the engine is not magic).
    assert rows[65536][2] > rows[1024][2]
