"""Fig 7: local and cross-UPI access latency by cache state."""

from conftest import emit

from repro.analysis import format_table
from repro.analysis.microbench import access_latency_cases
from repro.platform import icx, spr

PAPER = {
    "icx": {"L DRAM": 72, "R DRAM": 144, "L L2": 48, "R L2 (rh)": 114, "R L2 (lh)": 119},
    "spr": {"L DRAM": 108, "R DRAM": 191, "L L2": 82, "R L2 (rh)": 171, "R L2 (lh)": 174},
}


def run_fig7():
    return {"icx": access_latency_cases(icx()), "spr": access_latency_cases(spr())}


def test_fig7_access_latency(run_once):
    cases = run_once(run_fig7)
    rows = []
    for target in ("L DRAM", "R DRAM", "L L2", "R L2 (rh)", "R L2 (lh)"):
        rows.append(
            (
                target,
                cases["icx"][target],
                PAPER["icx"][target],
                cases["spr"][target],
                PAPER["spr"][target],
            )
        )
    emit(
        format_table(
            ["Access Target", "ICX [ns]", "ICX paper", "SPR [ns]", "SPR paper"],
            rows,
            title="Fig 7. 64B access latency by cache state and homing",
        )
    )
    for platform in ("icx", "spr"):
        for target, paper in PAPER[platform].items():
            assert abs(cases[platform][target] - paper) / paper < 0.05
        # Structural claims: remote cache beats remote DRAM; writer-homed
        # beats reader-homed.
        assert cases[platform]["R L2 (rh)"] < cases[platform]["R DRAM"]
        assert cases[platform]["R L2 (rh)"] <= cases[platform]["R L2 (lh)"]
