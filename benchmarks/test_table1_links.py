"""Table 1: PCIe/CXL/UPI bandwidth comparison."""

from conftest import emit

from repro.analysis import format_table
from repro.platform import table1_rows

PAPER_ROWS = {
    "PCIe 4.0": (16.0, 2.0, 31.5),
    "PCIe 5.0, CXL 1.0-2.0": (32.0, 3.9, 63.0),
    "PCIe 6.0, CXL 3.0": (64.0, 7.6, 121.0),
    "Ice Lake UPI": (11.2, 22.4, 67.2),
    "Sapphire Rapids UPI": (16.0, 48.0, 192.0),
}


def test_table1(run_once):
    rows = run_once(table1_rows)
    emit(
        format_table(
            ["Protocol", "GT/s", "1 Link GB/s", "Max Total GB/s"],
            rows,
            title="Table 1. PCIe, CXL and UPI bandwidth",
        )
    )
    for protocol, gts, one, total in rows:
        paper = PAPER_ROWS[protocol]
        assert (gts, one, total) == paper
