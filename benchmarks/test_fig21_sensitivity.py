"""Fig 21: sensitivity to interconnect latency and bandwidth (SPR).

The paper down-clocks the NIC-socket uncore to stretch UPI latency and
shrink bandwidth, finding (a) 64B loopback latency tracks interconnect
latency ~1:1 (a 1.11x latency increase costs 1.13x loopback latency,
covering the CXL-expected 170-250ns range), and (b) 1.5KB throughput
scales with link bandwidth while CC-NIC's advantage over the
unoptimized interface is preserved throughout.
"""

from conftest import emit

from repro.analysis import InterfaceKind, format_table
from repro.analysis.loopback import build_interface, run_point
from repro.platform import spr

LATENCY_FACTORS = [1.0, 1.11, 1.3, 1.5]
BANDWIDTH_FACTORS = [1.0, 0.7, 0.4]


def min_lat(kind, factor):
    setup = build_interface(spr(), kind, link_latency_factor=factor)
    result = run_point(setup, 64, 700, inflight=1, tx_batch=1, rx_batch=1)
    return result.latency.minimum


def tput_1500(kind, factor):
    setup = build_interface(spr(), kind, link_bandwidth_factor=factor)
    result = run_point(setup, 1500, 6000, inflight=256, tx_batch=32, rx_batch=32)
    return result.gbps


def run_fig21():
    latency = {
        kind.value: {f: min_lat(kind, f) for f in LATENCY_FACTORS}
        for kind in (InterfaceKind.CCNIC, InterfaceKind.UNOPT)
    }
    bandwidth = {
        kind.value: {f: tput_1500(kind, f) for f in BANDWIDTH_FACTORS}
        for kind in (InterfaceKind.CCNIC, InterfaceKind.UNOPT)
    }
    return {"latency": latency, "bandwidth": bandwidth}


def test_fig21_sensitivity(run_once):
    results = run_once(run_fig21)
    lat_rows = [
        (f, results["latency"]["ccnic"][f], results["latency"]["unopt"][f])
        for f in LATENCY_FACTORS
    ]
    bw_rows = [
        (f, results["bandwidth"]["ccnic"][f], results["bandwidth"]["unopt"][f])
        for f in BANDWIDTH_FACTORS
    ]
    emit(
        format_table(
            ["Latency factor", "CC-NIC min [ns]", "Unopt min [ns]"],
            lat_rows,
            title="Fig 21a. 64B loopback latency vs interconnect latency "
            "(paper: 1.11x interconnect -> 1.13x loopback; CXL range)",
        )
    )
    emit(
        format_table(
            ["Bandwidth factor", "CC-NIC 1.5KB [Gbps]", "Unopt 1.5KB [Gbps]"],
            bw_rows,
            title="Fig 21b. 1.5KB throughput vs interconnect bandwidth "
            "(paper: scales with the link; 40% bandwidth -> 39% tput)",
        )
    )
    cc_lat = results["latency"]["ccnic"]
    # Loopback latency tracks interconnect latency roughly 1:1.
    growth = cc_lat[1.11] / cc_lat[1.0]
    assert 1.04 < growth < 1.25
    # CC-NIC's advantage holds at every latency point (consistent
    # relative improvement).
    for f in LATENCY_FACTORS:
        assert results["latency"]["unopt"][f] > 1.3 * cc_lat[f]
    # Throughput scales down with bandwidth; per-thread 1.5KB rates are
    # not link-bound at factor 1.0, so the drop shows at 0.4.
    cc_bw = results["bandwidth"]["ccnic"]
    assert cc_bw[0.4] < cc_bw[1.0]
    for f in BANDWIDTH_FACTORS:
        assert cc_bw[f] >= results["bandwidth"]["unopt"][f]
