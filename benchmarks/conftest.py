"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure from the paper's
evaluation and prints the same rows/series the paper reports, with the
paper's numbers alongside for comparison. Absolute values come from the
simulation model; the *shape* (who wins, by what factor, where the knees
fall) is the reproduction target (see EXPERIMENTS.md).
"""

from __future__ import annotations

import sys

import pytest


def emit(text: str) -> None:
    """Print benchmark output so it survives pytest capture settings."""
    sys.stdout.write("\n" + text + "\n")
    sys.stdout.flush()


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are deterministic simulations; repeating rounds only
    re-measures wall-clock, so one round suffices.
    """

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
