"""Fig 14: metadata design ablations on SPR.

(a) Signaling: inlined signals vs head/tail doorbell registers.
    Paper: inlining cuts minimum latency 37% and raises peak rate 1.3x.
(b) Descriptor layout: OPT (grouped + one signal/line) vs PACK (16B
    packed, per-descriptor signals) vs PAD (one descriptor per line).
    Paper: OPT achieves 3.0x the padded throughput at padded-case
    minimum latency; PACK throughput is high but it thrashes.
"""

from conftest import emit

from repro.analysis import InterfaceKind, format_table
from repro.analysis.loopback import build_interface, run_point, wire_bytes_per_packet
from repro.analysis.scaling import ScalingModel
from repro.core import CcnicConfig, DescLayout
from repro.platform import spr


def measure(config):
    """Fleet peak (56 cores, as the paper runs) plus minimum latency.

    The padded layout's 4x metadata footprint costs interconnect
    bandwidth, which binds at fleet scale — a single queue pair would
    hide it.
    """
    spec = spr()
    setup = build_interface(spec, InterfaceKind.CCNIC, config=config)
    sat = run_point(setup, 64, 12000, inflight=384, tx_batch=32, rx_batch=32)
    d0, d1 = wire_bytes_per_packet(setup, sat)
    model = ScalingModel(
        spec=spec, kind=InterfaceKind.CCNIC, pkt_size=64,
        per_queue_sat_mpps=sat.mpps, wire_bytes_dir0=d0, wire_bytes_dir1=d1,
        nic_pps_capacity=None, nic_line_gbps=None,
    )
    setup2 = build_interface(spec, InterfaceKind.CCNIC, config=config)
    lat = run_point(setup2, 64, 800, inflight=1, tx_batch=1, rx_batch=1)
    return {
        "mpps": model.max_mpps(spec.cores_per_socket),
        "per_queue": sat.mpps,
        "wire_per_pkt": max(d0, d1),
        "min_ns": lat.latency.minimum,
    }


def run_fig14():
    base = dict(ring_slots=1024, recycle_stack_max=1024)
    return {
        "inline": measure(CcnicConfig(**base)),
        "reg": measure(CcnicConfig(inline_signals=False, **base)),
        "pack": measure(CcnicConfig(desc_layout=DescLayout.PACK, **base)),
        "pad": measure(CcnicConfig(desc_layout=DescLayout.PAD, **base)),
    }


def test_fig14_signaling_and_layout(run_once):
    results = run_once(run_fig14)
    emit(
        format_table(
            ["Variant", "Fleet peak [Mpps]", "Per-queue [Mpps]",
             "Wire B/pkt/dir", "Min lat [ns]"],
            [
                (k, v["mpps"], v["per_queue"], v["wire_per_pkt"], v["min_ns"])
                for k, v in results.items()
            ],
            title="Fig 14. Signaling (inline vs registers) and descriptor "
            "layout (opt/pack/pad) on SPR, 56 cores (paper: inline -37% "
            "latency, 1.3x rate; opt = 3.0x pad throughput at pad's "
            "latency)",
        )
    )
    inline, reg = results["inline"], results["reg"]
    # (a) Inlined signals cut latency and raise per-queue throughput
    # (at 56 cores both variants approach the link bound, so the
    # per-queue rate is where signaling efficiency shows).
    assert inline["min_ns"] < reg["min_ns"]
    assert inline["per_queue"] > 1.15 * reg["per_queue"]
    # (b) The grouped layout beats padded throughput substantially at
    # fleet scale (the padded layout moves 4x the metadata)...
    opt, pack, pad = results["inline"], results["pack"], results["pad"]
    assert opt["mpps"] > 1.25 * pad["mpps"]
    assert opt["wire_per_pkt"] < pad["wire_per_pkt"]
    # ...while matching padded minimum latency within ~15%.
    assert opt["min_ns"] < 1.15 * pad["min_ns"]
    # Packed descriptors never beat the grouped layout's latency (the
    # line-sharing thrash mechanism itself is exercised in
    # tests/test_ring.py::TestPackedLayout::test_thrash_when_interleaved).
    assert pack["min_ns"] >= opt["min_ns"] - 1.0
