"""Fig 11: throughput-latency overview — CC-NIC vs unoptimized-UPI vs
PCIe NICs on the ICX server (64B and 1.5KB packets).

Paper claims reproduced here:
  * CC-NIC minimum latency 77% / 86% lower than CX6 / E810;
  * CC-NIC peak 64B packet rate 1.7x (E810) and 4.3x (CX6) higher;
  * the unoptimized UPI baseline reaches only ~21% of CC-NIC's
    throughput at 2.1x its minimum latency despite the faster link.
"""

from conftest import emit

from repro.analysis import InterfaceKind, format_table
from repro.analysis.loopback import min_latency
from repro.analysis.scaling import build_scaling_model
from repro.platform import icx

PAPER_MIN_NS = {"ccnic": 490, "unopt": 1030, "e810": 3809, "cx6": 2116}
PAPER_PEAK_MPPS = {"ccnic": 330, "unopt": 69, "e810": 192, "cx6": 76}


def run_fig11():
    spec = icx()
    out = {}
    for kind in InterfaceKind:
        model = build_scaling_model(spec, kind, 64, n_packets=15000, inflight=384)
        out[kind.value] = {
            "min_ns": min_latency(spec, kind, n_packets=800),
            "peak_mpps": model.max_mpps(spec.cores_per_socket),
            "per_queue_mpps": model.per_queue_sat_mpps,
        }
    return out


def test_fig11_overview(run_once):
    results = run_once(run_fig11)
    rows = []
    for kind in ("ccnic", "unopt", "e810", "cx6"):
        r = results[kind]
        rows.append(
            (
                kind,
                r["min_ns"],
                PAPER_MIN_NS[kind],
                r["peak_mpps"],
                PAPER_PEAK_MPPS[kind],
            )
        )
    emit(
        format_table(
            ["Interface", "Min lat [ns]", "paper", "Peak 64B [Mpps]", "paper"],
            rows,
            title="Fig 11. ICX overview: CC-NIC vs unoptimized UPI vs PCIe",
        )
    )
    r = {k: v for k, v in results.items()}
    # Latency ordering and reduction factors.
    assert r["ccnic"]["min_ns"] < r["unopt"]["min_ns"] < r["cx6"]["min_ns"] < r["e810"]["min_ns"]
    cx6_cut = 1 - r["ccnic"]["min_ns"] / r["cx6"]["min_ns"]
    e810_cut = 1 - r["ccnic"]["min_ns"] / r["e810"]["min_ns"]
    assert cx6_cut > 0.65          # paper: 77%
    assert e810_cut > 0.80         # paper: 86%
    # Throughput ordering: CC-NIC > E810 > CX6 >= unopt.
    assert r["ccnic"]["peak_mpps"] > r["e810"]["peak_mpps"] > r["cx6"]["peak_mpps"]
    assert r["ccnic"]["peak_mpps"] > 1.4 * r["e810"]["peak_mpps"]   # paper: 1.7x
    assert r["ccnic"]["peak_mpps"] > 3.0 * r["cx6"]["peak_mpps"]    # paper: 4.3x
    # The unoptimized coherent interface wastes the faster link.
    assert r["unopt"]["peak_mpps"] < 0.45 * r["ccnic"]["peak_mpps"]  # paper: 21%
    assert r["unopt"]["min_ns"] > 1.4 * r["ccnic"]["min_ns"]         # paper: 2.1x
