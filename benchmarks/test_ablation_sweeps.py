"""Ablation sweeps for sizing decisions the paper fixes without a figure.

DESIGN.md calls these out: descriptor-ring depth, per-side recycling
stack depth, and the joint TX x RX batching grid (Fig 16 explores only
the axes). Run on ICX with 64B packets.
"""

from conftest import emit

from repro.analysis import InterfaceKind, format_table
from repro.analysis.sweeps import (
    batching_matrix,
    recycle_stack_sweep,
    ring_size_sweep,
)
from repro.platform import icx


def run_sweeps():
    spec = icx()
    return {
        "ring": ring_size_sweep(spec, [64, 256, 1024, 4096], n_packets=6000),
        "stack": recycle_stack_sweep(spec, [16, 64, 256, 1024], n_packets=6000),
        "grid": batching_matrix(spec, InterfaceKind.CCNIC, [1, 8, 32],
                                n_packets=4000),
    }


def test_ablation_sweeps(run_once):
    results = run_once(run_sweeps)
    emit(
        format_table(
            ["Ring slots", "Mpps", "Median lat [ns]"],
            results["ring"],
            title="Ablation: descriptor-ring depth (CC-NIC, ICX, 64B)",
        )
    )
    emit(
        format_table(
            ["Stack depth", "Mpps", "Stack-hit fraction"],
            results["stack"],
            title="Ablation: recycling-stack depth (inflight window = 256)",
        )
    )
    emit(
        format_table(
            ["TX batch", "RX batch", "Mpps"],
            [(tx, rx, v) for (tx, rx), v in sorted(results["grid"].items())],
            title="Ablation: joint TX x RX batching grid",
        )
    )
    ring = {slots: (mpps, lat) for slots, mpps, lat in results["ring"]}
    # Tiny rings cost throughput.
    assert ring[64][0] < ring[1024][0]
    # Beyond the knee, depth buys little throughput.
    assert ring[4096][0] < 1.2 * ring[1024][0]
    stack = {d: (mpps, frac) for d, mpps, frac in results["stack"]}
    # Stacks shallower than the in-flight window spill to the shared pool.
    assert stack[16][1] < stack[1024][1]
    # Deep-enough stacks recycle essentially everything.
    assert stack[1024][1] > 0.95
    # Shallow stacks cost throughput (contended shared-pool lines).
    assert stack[1024][0] >= stack[16][0]
    # The batching grid peaks at (or near) the largest batches and its
    # worst corner is the fully unbatched one.
    grid = results["grid"]
    assert grid[(32, 32)] >= grid[(1, 1)]
    assert min(grid, key=grid.get) in {(1, 1), (1, 8), (8, 1)}
