"""Fig 20: hardware prefetching sensitivity (SPR, 64B packets).

Paper: with CC-NIC's locality-oriented buffer pool, host-side
prefetching helps small packets (1.2x); for the unoptimized interface
prefetching strictly hurts (up to -7%) because remote prefetches
contend with producer writes. NIC-side prefetching does not help either
design.
"""

from conftest import emit

from repro.analysis import InterfaceKind, format_table
from repro.analysis.loopback import build_interface, run_point
from repro.platform import spr


def measure(kind, prefetch_host, prefetch_nic):
    setup = build_interface(
        spr(), kind, prefetch_host=prefetch_host, prefetch_nic=prefetch_nic
    )
    result = run_point(setup, 64, 10000, inflight=256, tx_batch=32, rx_batch=32)
    return result.mpps


def run_fig20():
    out = {}
    for kind in (InterfaceKind.CCNIC, InterfaceKind.UNOPT):
        off = measure(kind, False, False)
        out[kind.value] = {
            "off": off,
            "host": measure(kind, True, False) / off,
            "nic": measure(kind, False, True) / off,
            "both": measure(kind, True, True) / off,
        }
    return out


def test_fig20_prefetch_sensitivity(run_once):
    results = run_once(run_fig20)
    rows = []
    for kind in ("ccnic", "unopt"):
        r = results[kind]
        rows.append((kind, r["off"], r["host"], r["nic"], r["both"]))
    emit(
        format_table(
            ["Interface", "Pf off [Mpps]", "Host on (rel)", "NIC on (rel)", "Both (rel)"],
            rows,
            title="Fig 20. Prefetching impact on 64B rate, relative to "
            "prefetch-off (paper: CC-NIC +1.2x with host prefetch; "
            "unopt loses up to 7%)",
        )
    )
    cc = results["ccnic"]
    un = results["unopt"]
    # The paper's conclusion: the interface design dictates whether
    # prefetching helps. CC-NIC's locality-oriented buffer pool turns
    # prefetching into a clear gain (paper: 1.2x with host prefetch)...
    best_cc = max(cc["host"], cc["both"])
    assert best_cc > 1.15
    # ...while the unoptimized layout benefits far less (the paper
    # measures an outright loss of up to 7%).
    best_un = max(un["host"], un["both"])
    assert best_un < best_cc
    # Prefetching never *helps* the unoptimized design as much as the
    # optimized one in any configuration.
    rel_keys = ("host", "nic", "both")
    assert max(un[k] for k in rel_keys) <= max(cc[k] for k in rel_keys)
