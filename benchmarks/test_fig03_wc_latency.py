"""Fig 3: cumulative MMIO store latency versus store count.

The write-combining buffer file holds ~24 buffers; scattered stores are
cheap until the file is full, then each store stalls on an eviction
flush (15x+ slower, growing with N).
"""

from conftest import emit

from repro.analysis import format_table
from repro.analysis.microbench import wc_store_latency
from repro.platform import icx


def run_fig3():
    spec = icx()
    return {
        "E810": dict(wc_store_latency(spec, "e810")),
        "CX6": dict(wc_store_latency(spec, "cx6")),
    }


def test_fig3_wc_store_latency(run_once):
    curves = run_once(run_fig3)
    counts = [1, 8, 16, 24, 32, 40, 48, 56, 64]
    rows = [
        (n, curves["E810"][n] / 1000.0, curves["CX6"][n] / 1000.0)
        for n in counts
    ]
    emit(
        format_table(
            ["Store Count", "E810 [us]", "CX6 [us]"],
            rows,
            title="Fig 3. Cumulative MMIO store latency (paper: <20ns flat "
            "until N=24, then 15x+ per store, ~20us at N=64 for E810)",
        )
    )
    e810 = curves["E810"]
    # Uniform and low until all WC buffers are occupied.
    assert e810[24] < 25.0
    # At least 15x greater per-store latency beyond the cliff.
    per_store_before = e810[24] / 24
    per_store_after = (e810[32] - e810[24]) / 8
    assert per_store_after > 15 * per_store_before
    # Latency keeps increasing with N.
    assert e810[64] > e810[48] > e810[32]
    # E810 worst-case in the paper is ~20us at N=64.
    assert 10_000 < e810[64] < 30_000
