"""Extension (§6 Discussion): network-function (middlebox) forwarding.

"A coherent NIC may retain payloads in the NIC cache while the host
operates on the header, avoiding interconnect transfers for packet data
the host does not access." This benchmark forwards 1.5KB packets through
a middlebox thread over CC-NIC in two modes — full-payload (the
PCIe-equivalent data motion) and header-only — and compares per-packet
interconnect traffic and the forwarding rate.
"""

from conftest import emit

from repro.analysis import format_table
from repro.apps.forwarding import forwarding_study
from repro.platform import icx


def run_ext_netfunc():
    return forwarding_study(icx(), pkt_size=1500, n_packets=2500)


def test_ext_netfunc_header_only(run_once):
    results = run_once(run_ext_netfunc)
    rows = [
        (
            mode,
            r.mpps,
            r.wire_bytes_per_pkt,
            r.latency.median,
        )
        for mode, r in results.items()
    ]
    emit(
        format_table(
            ["Mode", "Rate [Mpps]", "Wire bytes/pkt", "Median lat [ns]"],
            rows,
            title="Extension (§6): 1.5KB middlebox forwarding over CC-NIC — "
            "payload retention in the NIC cache",
        )
    )
    header = results["header_only"]
    full = results["full_payload"]
    # Header-only forwarding keeps payloads out of the interconnect...
    assert header.wire_bytes_per_pkt < 0.5 * full.wire_bytes_per_pkt
    # ...and forwards substantially faster per core.
    assert header.mpps > 1.5 * full.mpps
