"""Fig 19 + Table 2 (KV rows): key-value store thread-count study.

CliqueMap-style KV store, 95% gets / 5% sets, Zipf(0.75), Ads and Geo
object-size distributions. Both deployments forward through the same
CX6-class packet engine, so peak throughput matches; the CC-NIC Overlay
interface reaches it with roughly half the application threads
(paper: Ads 16 -> 8 threads, Geo 8 -> 4; peak 37.0 vs 42.3 Mops Ads,
17.8 vs 17.9 Mops Geo).
"""

from conftest import emit

from repro.analysis import InterfaceKind, format_table
from repro.apps.kvstore import KvWorkload, kv_thread_study
from repro.platform import icx

THREAD_POINTS = [1, 2, 4, 8, 12, 16, 20]


def run_fig19():
    spec = icx()
    out = {}
    for name, workload, n_ops in (("ads", KvWorkload.ads(), 2500),
                                  ("geo", KvWorkload.geo(), 2000)):
        studies = {}
        for kind in (InterfaceKind.CCNIC, InterfaceKind.CX6):
            studies[kind.value] = kv_thread_study(spec, kind, workload, n_ops=n_ops)
        out[name] = studies
    return out


def test_fig19_kv_thread_scaling(run_once):
    results = run_once(run_fig19)
    spec = icx()
    rows = []
    for dist in ("ads", "geo"):
        for kind in ("ccnic", "cx6"):
            study = results[dist][kind]
            for threads in THREAD_POINTS:
                rows.append(
                    (dist, kind, threads, study.throughput(threads, spec))
                )
    emit(
        format_table(
            ["Distribution", "Interface", "Threads", "Tput [Mops]"],
            rows,
            title="Fig 19. KV store throughput vs thread count (paper: "
            "CC-NIC saturates with 8 vs 16 threads on Ads, 4 vs 8 on Geo)",
        )
    )
    summary = []
    for dist in ("ads", "geo"):
        cc = results[dist]["ccnic"]
        px = results[dist]["cx6"]
        cc_threads = cc.threads_to_saturate(spec)
        px_threads = px.threads_to_saturate(spec)
        summary.append((dist, px.peak_mops, cc.peak_mops, px_threads, cc_threads))
        # CC-NIC needs substantially fewer application threads.
        assert cc_threads < px_threads
        assert cc_threads <= 0.75 * px_threads
        # Per-thread service rate is the mechanism.
        assert cc.per_thread_mops > 1.3 * px.per_thread_mops
    emit(
        format_table(
            ["Distribution", "PCIe peak", "CC-NIC peak", "PCIe threads", "CC-NIC threads"],
            summary,
            title="Table 2 (KV rows). Paper: Ads 37.0/42.3 Mops, 16 -> 8 "
            "threads; Geo 17.8/17.9 Mops, 8 -> 4 threads",
        )
    )
