"""Fig 8: UPI pingpong latency across memory-layout choices.

Two 8B registers bounced between the sockets: homed on socket 0 or 1
(S0/S1), homed with each register's reader (Rd) or writer (Wr), or
co-located on a single cache line (S0C/S1C). The paper finds co-location
wins by 1.7-2.4x and halves remote-socket requests from 4 to 2 per
round trip.
"""

from conftest import emit

from repro.analysis import format_table
from repro.analysis.microbench import PINGPONG_CASES, pingpong
from repro.platform import icx, spr


def run_fig8():
    out = {}
    for name, spec in (("icx", icx()), ("spr", spr())):
        out[name] = {case: pingpong(spec, case, 200).median for case in PINGPONG_CASES}
    return out


def test_fig8_pingpong(run_once):
    medians = run_once(run_fig8)
    rows = [
        (case, medians["icx"][case], medians["spr"][case]) for case in PINGPONG_CASES
    ]
    emit(
        format_table(
            ["Homing", "ICX RTT [ns]", "SPR RTT [ns]"],
            rows,
            title="Fig 8. Pingpong median latency (paper: separate lines are "
            "1.7-2.4x slower than co-located; writer-homed best among "
            "separate-line layouts)",
        )
    )
    for platform in ("icx", "spr"):
        values = medians[platform]
        separate = min(values[c] for c in ("S0", "S1", "Rd", "Wr"))
        colocated = min(values["S0C"], values["S1C"])
        # Co-locating producer and consumer state on one line wins.
        assert colocated < separate
        assert separate / colocated > 1.3
        # Writer-homing is the best separate-line choice (within noise).
        best_separate = min(values[c] for c in ("S0", "S1", "Rd", "Wr"))
        assert values["Wr"] <= best_separate * 1.03
