"""Fig 17: NIC remote accesses (READ / RFO) per TX-RX loopback.

The paper measures offcore-response PMU counters on the NIC CPU:

                  READ   RFO     (per 64B TX-RX loopback)
  CC-NIC batch    1.3    0.3
  Unopt batch     1.5    0.8
  CC-NIC single   2.9    2.8
  Unopt single    5.4    4.9

The simulator's coherence fabric counts exactly these transaction
classes.
"""

from conftest import emit

from repro.analysis import InterfaceKind, format_table
from repro.analysis.loopback import build_interface, run_point
from repro.platform import icx

PAPER = {
    ("ccnic", "batch"): (1.3, 0.3),
    ("unopt", "batch"): (1.5, 0.8),
    ("ccnic", "single"): (2.9, 2.8),
    ("unopt", "single"): (5.4, 4.9),
}


def measure(kind, batched):
    setup = build_interface(icx(), kind)
    nic_socket = setup.system.nic_socket
    before = setup.system.fabric.snapshot_counters()
    if batched:
        result = run_point(setup, 64, 6000, inflight=128, tx_batch=32, rx_batch=32)
    else:
        result = run_point(setup, 64, 1500, inflight=1, tx_batch=1, rx_batch=1)
    diff = setup.system.fabric.counters.diff(before)
    reads = diff.get(f"s{nic_socket}.read", 0) / result.received
    rfos = diff.get(f"s{nic_socket}.rfo", 0) / result.received
    return reads, rfos


def run_fig17():
    out = {}
    for kind in (InterfaceKind.CCNIC, InterfaceKind.UNOPT):
        for mode, batched in (("batch", True), ("single", False)):
            out[(kind.value, mode)] = measure(kind, batched)
    return out


def test_fig17_remote_access_counters(run_once):
    results = run_once(run_fig17)
    rows = []
    for key in (("ccnic", "batch"), ("unopt", "batch"), ("ccnic", "single"), ("unopt", "single")):
        reads, rfos = results[key]
        p_reads, p_rfos = PAPER[key]
        rows.append((f"{key[0]} {key[1]}", reads, p_reads, rfos, p_rfos))
    emit(
        format_table(
            ["Case", "READ/pkt", "paper", "RFO/pkt", "paper"],
            rows,
            title="Fig 17. NIC-socket remote accesses per TX-RX loopback",
        )
    )
    cc_b = results[("ccnic", "batch")]
    un_b = results[("unopt", "batch")]
    cc_s = results[("ccnic", "single")]
    un_s = results[("unopt", "single")]
    # Batched CC-NIC: ~1 payload read + 1/4 group read; few RFOs.
    assert 1.0 <= cc_b[0] <= 1.6
    assert cc_b[1] <= 0.5
    # The unoptimized interface does more of both, in batch and single.
    assert un_b[0] > cc_b[0]
    assert un_b[1] > cc_b[1]
    assert un_s[0] > cc_s[0]
    assert un_s[1] > cc_s[1]
    # Batching amortizes metadata transfers for both designs.
    assert cc_s[0] > 1.5 * cc_b[0]
    assert un_s[0] > 1.5 * un_b[0]
