"""Fig 13: CC-NIC on the Sapphire Rapids terabit UPI interconnect.

Paper: 1520Mpps peak 64B rate (778Gbps; ~96% of the measured UPI data
ceiling including descriptors) and 986Gbps with 1.5KB packets (97% of
the interconnect). Core counts: 48 of 56 needed for 90% of the 64B max.
"""

from conftest import emit

from repro.analysis import InterfaceKind, format_table
from repro.analysis.scaling import build_scaling_model
from repro.platform import spr


def run_fig13():
    spec = spr()
    model64 = build_scaling_model(spec, InterfaceKind.CCNIC, 64,
                                  n_packets=15000, inflight=384)
    model1500 = build_scaling_model(spec, InterfaceKind.CCNIC, 1500,
                                    n_packets=6000, inflight=256)
    rows = []
    for cores in (1, 8, 24, 56):
        rows.append(
            (
                cores,
                model64.max_mpps(cores),
                model1500.max_mpps(cores) * 1500 * 8e-3,
            )
        )
    return {"rows": rows, "model64": model64, "model1500": model1500}


def test_fig13_spr_terabit(run_once):
    results = run_once(run_fig13)
    emit(
        format_table(
            ["Cores", "64B [Mpps]", "1.5KB [Gbps]"],
            results["rows"],
            title="Fig 13. CC-NIC on SPR UPI (paper: 1520Mpps 64B peak; "
            "986Gbps at 1.5KB = 97% of the 1020Gbps interconnect)",
        )
    )
    model64 = results["model64"]
    model1500 = results["model1500"]
    peak64 = model64.max_mpps(56)
    peak1500_gbps = model1500.max_mpps(56) * 1500 * 8e-3
    # Terabit-class packet rates: within 2x of the paper's 1520Mpps and
    # far beyond anything PCIe-attached.
    assert peak64 > 700.0
    # 1.5KB throughput saturates most of the terabit interconnect.
    assert peak1500_gbps > 0.75 * 1020.0
    # The 1.5KB case is interconnect-limited, not core-limited.
    per_dir = max(model1500.wire_bytes_dir0, model1500.wire_bytes_dir1)
    link_cap_mpps = spr().upi_wire_bytes_per_ns / per_dir * 1e3
    assert model1500.max_mpps(56) >= 0.9 * min(link_cap_mpps,
                                               56 * model1500.per_queue_sat_mpps)
    # Scaling: more cores help until the link binds.
    r = {c: v for c, v, _ in results["rows"]}
    assert r[8] > 4 * r[1] * 0.8
    assert r[56] >= r[24]
