"""Fig 12: ICX throughput-latency curves by core count (CC-NIC vs CX6).

Reproduces the shape of the four panels: CC-NIC's curves stay flat to
much higher rates; under load the latency gap widens (paper: 88% lower
latency at 80% load); CX6 plateaus at its packet engine rate.
"""

from conftest import emit

from repro.analysis import InterfaceKind, format_table
from repro.analysis.scaling import build_scaling_model, throughput_latency_curve
from repro.platform import icx

CORES = [1, 4, 16]
FRACTIONS = [0.3, 0.8, 0.97]


def run_fig12():
    spec = icx()
    out = {}
    for kind in (InterfaceKind.CCNIC, InterfaceKind.CX6):
        model = build_scaling_model(spec, kind, 64, n_packets=12000, inflight=384)
        curves = {}
        for cores in CORES:
            curves[cores] = throughput_latency_curve(
                spec, kind, 64, cores,
                fractions=FRACTIONS, n_packets=5000, model=model,
            )
        out[kind.value] = {"model": model, "curves": curves}
    return out


def test_fig12_core_scaling(run_once):
    results = run_once(run_fig12)
    rows = []
    for kind in ("ccnic", "cx6"):
        for cores, points in results[kind]["curves"].items():
            for p in points:
                rows.append(
                    (kind, cores, p.achieved_mpps, p.median_latency_ns)
                )
    emit(
        format_table(
            ["Interface", "Cores", "64B Tput [Mpps]", "Median lat [ns]"],
            rows,
            title="Fig 12. ICX loopback curves (paper: CC-NIC 330Mpps max vs "
            "CX6 76Mpps; CC-NIC ~88% lower latency at 80% load)",
        )
    )
    ccnic = results["ccnic"]["curves"]
    cx6 = results["cx6"]["curves"]
    # Throughput grows with core count for CC-NIC.
    assert ccnic[16][-1].achieved_mpps > 3 * ccnic[4][-1].achieved_mpps > 0
    # CX6 is engine-capped: 16 cores do not go far beyond its rating.
    assert cx6[16][-1].achieved_mpps < 90.0
    # CC-NIC at 16 cores far outpaces CX6 at 16 cores.
    assert ccnic[16][-1].achieved_mpps > 3 * cx6[16][-1].achieved_mpps
    # Latency under ~80% load: CC-NIC is much lower (paper: 88% lower;
    # the model preserves the ordering at a smaller factor — see
    # EXPERIMENTS.md deviations).
    cc_loaded = ccnic[16][1].median_latency_ns
    cx_loaded = cx6[16][1].median_latency_ns
    assert cc_loaded < 0.6 * cx_loaded
    # Latency rises monotonically-ish with load for both.
    assert ccnic[16][-1].median_latency_ns >= ccnic[16][0].median_latency_ns
