"""Unit tests for the repro.obs telemetry subsystem."""

import json
import os
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    NULL_METRIC,
    OBS_OFF,
    Instrumented,
    MetricRegistry,
    NullRegistry,
    NullTracer,
    Observability,
    SpanTracer,
    export_chrome_trace,
    export_metrics_csv,
    export_metrics_json,
    instrument_all,
    load_metrics_csv,
    load_metrics_json,
    metrics_rows,
)
from repro.sim.stats import Counter, Histogram


class TestMetricRegistry:
    def test_counter_gauge_histogram_snapshot(self):
        reg = MetricRegistry()
        reg.counter("comp", "hits").inc()
        reg.counter("comp", "hits").inc(2)
        reg.gauge("comp", "level").set(7.5)
        hist = reg.histogram("comp", "lat")
        hist.record(10.0)
        hist.record(30.0)
        snap = reg.snapshot()
        assert snap["comp"]["hits"] == 3.0
        assert snap["comp"]["level"] == 7.5
        assert snap["comp"]["lat.count"] == 2.0
        assert snap["comp"]["lat.min"] == 10.0
        assert snap["comp"]["lat.max"] == 30.0

    def test_counter_rejects_negative(self):
        reg = MetricRegistry()
        with pytest.raises(ValueError):
            reg.counter("c", "n").inc(-1)

    def test_collector_gauge_reads_lazily(self):
        reg = MetricRegistry()
        state = {"v": 1.0}
        reg.gauge("c", "live", fn=lambda: state["v"])
        assert reg.snapshot()["c"]["live"] == 1.0
        state["v"] = 42.0
        assert reg.snapshot()["c"]["live"] == 42.0

    def test_get_or_create_returns_same_metric(self):
        reg = MetricRegistry()
        assert reg.counter("c", "n") is reg.counter("c", "n")
        with pytest.raises(ValueError):
            reg.gauge("c", "n")  # same name, different type

    def test_empty_histogram_omitted_from_snapshot(self):
        reg = MetricRegistry()
        reg.histogram("c", "lat")
        assert reg.snapshot().get("c", {}) == {}

    def test_adopt_counters_mirrors_bag(self):
        reg = MetricRegistry()
        bag = Counter()
        reg.adopt_counters("fabric", bag)
        reg.adopt_counters("fabric", bag)  # idempotent
        bag.add("s1.read", 5)
        snap = reg.snapshot()
        assert snap["fabric"] == {"s1.read": 5.0}
        assert snap["fabric"] == bag.snapshot()

    def test_adopt_histogram(self):
        reg = MetricRegistry()
        hist = Histogram("lat")
        reg.adopt_histogram("app", "lat", hist)
        hist.record(4.0)
        assert reg.snapshot()["app"]["lat.count"] == 1.0

    def test_reset_zeroes_owned_and_adopted(self):
        reg = MetricRegistry()
        reg.counter("c", "n").inc(3)
        bag = Counter()
        bag.add("x", 2)
        reg.adopt_counters("c", bag)
        reg.reset()
        snap = reg.snapshot()
        assert snap["c"]["n"] == 0.0
        assert bag.get("x") == 0.0

    def test_unique_component_dedupes(self):
        reg = MetricRegistry()
        assert reg.unique_component("fabric") == "fabric"
        assert reg.unique_component("fabric") == "fabric#2"
        assert reg.unique_component("fabric") == "fabric#3"

    def test_components_listing(self):
        reg = MetricRegistry()
        reg.counter("b", "n")
        reg.adopt_counters("a", Counter())
        assert reg.components() == ["a", "b"]


class TestSpanTracer:
    def test_span_nesting_and_parent_linkage(self):
        tr = SpanTracer()
        outer = tr.begin("tx_burst", actor="host", start_ns=100.0)
        inner = tr.instant("read", actor="host", ts=110.0, size=64)
        tr.end(outer, 150.0)
        after = tr.begin("rx_burst", actor="host", start_ns=200.0)
        tr.end(after, 210.0)
        assert inner.parent == outer.sid
        assert after.parent is None
        assert outer.duration_ns == 50.0
        assert tr.children_of(outer) == [inner]
        assert tr.roots() == [outer, after]

    def test_context_manager_scoping(self):
        tr = SpanTracer()
        with tr.span("op", start_ns=10.0, end_ns=30.0) as span:
            tr.instant("tick", ts=15.0)
        assert span.end_ns == 30.0
        assert tr.spans()[1].parent == span.sid

    def test_end_clamps_to_start(self):
        tr = SpanTracer()
        span = tr.begin("op", start_ns=100.0)
        tr.end(span, 50.0)
        assert span.end_ns == 100.0

    def test_capacity_bound(self):
        tr = SpanTracer(capacity=4)
        for i in range(6):
            span = tr.begin("s", start_ns=float(i))
            tr.end(span, float(i))
        assert len(tr) == 4
        assert tr.dropped == 2
        with pytest.raises(ValueError):
            SpanTracer(capacity=0)

    def test_to_chrome_shape(self):
        tr = SpanTracer()
        span = tr.begin("tx_burst", actor="host", category="driver",
                        start_ns=1000.0, packets=3)
        tr.instant("read", actor="host", ts=1200.0)
        tr.end(span, 2000.0)
        doc = tr.to_chrome()
        assert doc["displayTimeUnit"] == "ns"
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert meta and complete and instants
        assert complete[0]["ts"] == 1.0 and complete[0]["dur"] == 1.0  # µs
        assert complete[0]["args"]["packets"] == 3
        assert instants[0]["args"]["parent"] == span.sid
        assert "_instant" not in instants[0]["args"]


class TestSpanTracerOverflow:
    def test_oldest_evicted_and_drop_count(self):
        tr = SpanTracer(capacity=3)
        for i in range(5):
            tr.instant("e", ts=float(i))
        assert len(tr) == 3
        assert tr.dropped == 2
        assert [s.start_ns for s in tr.spans()] == [2.0, 3.0, 4.0]

    def test_dropped_stays_zero_under_capacity(self):
        tr = SpanTracer(capacity=3)
        tr.instant("e", ts=0.0)
        tr.instant("e", ts=1.0)
        assert tr.dropped == 0

    def test_to_chrome_well_formed_after_overflow(self):
        tr = SpanTracer(capacity=2)
        outer = tr.begin("op", start_ns=0.0)
        for i in range(4):
            # Instants nested in ``outer``, which itself gets evicted.
            tr.instant("tick", ts=float(10 + i))
        tr.end(outer, 100.0)
        doc = tr.to_chrome()
        json.dumps(doc)  # must serialize even with evicted parents
        events = doc["traceEvents"]
        assert len([e for e in events if e["ph"] in ("i", "X")]) == 2
        assert all("ts" in e for e in events if e["ph"] != "M")
        assert tr.dropped == 3


class TestDisabledMode:
    def test_obs_off_is_fully_inert(self):
        assert not OBS_OFF.enabled
        assert isinstance(OBS_OFF.metrics, NullRegistry)
        assert isinstance(OBS_OFF.tracer, NullTracer)
        assert OBS_OFF.metrics.counter("c", "n") is NULL_METRIC
        assert OBS_OFF.metrics.gauge("c", "g") is NULL_METRIC
        assert OBS_OFF.metrics.snapshot() == {}
        assert OBS_OFF.tracer.begin("x") is None
        assert OBS_OFF.tracer.spans() == ()

    def test_uninstrumented_component_shares_obs_off(self):
        class Thing(Instrumented):
            pass

        a, b = Thing(), Thing()
        # Class-attribute default: no per-instance state until instrumented.
        assert a.obs is OBS_OFF and b.obs is OBS_OFF
        assert "obs" not in a.__dict__

    def test_null_metric_noops(self):
        NULL_METRIC.inc()
        NULL_METRIC.set(3.0)
        NULL_METRIC.record(1.0)
        assert NULL_METRIC.value == 0.0

    def test_instrument_registers_and_cascades(self):
        class Child(Instrumented):
            def _register_metrics(self, registry):
                registry.counter(self.obs_name, "n").inc()

        class Parent(Instrumented):
            def __init__(self):
                self.child = Child()

            def _instrument_children(self, obs):
                self.child.instrument(obs)

        obs = Observability(metrics=MetricRegistry())
        parent = Parent()
        parent.instrument(obs)
        snap = obs.metrics.snapshot()
        assert parent.obs_name == "parent"
        assert parent.child.obs_name == "child"
        assert snap["child"]["n"] == 1.0

    def test_instrument_all_skips_none(self):
        obs = Observability(metrics=MetricRegistry())

        class Thing(Instrumented):
            pass

        thing = Thing()
        attached = instrument_all(obs, None, thing, object())
        assert attached == [thing]
        assert thing.obs is obs


class TestExporters:
    def _populated(self):
        reg = MetricRegistry()
        reg.counter("fabric", "s1.read").inc(12)
        reg.gauge("sim", "now_ns").set(99.0)
        return reg

    def test_json_round_trip(self, tmp_path):
        reg = self._populated()
        path = str(tmp_path / "m.json")
        doc = export_metrics_json(reg, path)
        assert doc["schema"] == "repro.obs/metrics-v1"
        assert load_metrics_json(path) == reg.snapshot()

    def test_json_rejects_foreign_schema(self, tmp_path):
        path = str(tmp_path / "bad.json")
        with open(path, "w") as fh:
            json.dump({"schema": "nope", "metrics": {}}, fh)
        with pytest.raises(ValueError):
            load_metrics_json(path)

    def test_csv_round_trip(self, tmp_path):
        reg = self._populated()
        path = str(tmp_path / "m.csv")
        rows = export_metrics_csv(reg, path)
        assert rows == 2
        assert load_metrics_csv(path) == reg.snapshot()

    def test_csv_rejects_wrong_header(self, tmp_path):
        path = str(tmp_path / "bad.csv")
        with open(path, "w") as fh:
            fh.write("a,b\n1,2\n")
        with pytest.raises(ValueError):
            load_metrics_csv(path)

    def test_metrics_rows_sorted(self):
        reg = self._populated()
        rows = metrics_rows(reg)
        assert rows == sorted(rows)
        assert ("fabric", "s1.read", 12.0) in rows

    def test_chrome_trace_file_is_valid_json(self, tmp_path):
        tr = SpanTracer()
        span = tr.begin("op", actor="a", start_ns=10.0)
        tr.end(span, 20.0)
        path = str(tmp_path / "t.json")
        count = export_chrome_trace(tr, path)
        with open(path) as fh:
            doc = json.load(fh)
        assert len(doc["traceEvents"]) == count
        assert {e["ph"] for e in doc["traceEvents"]} == {"M", "X"}


def _registries():
    """Hypothesis strategy: registries mixing metric kinds and components.

    Covers the S6 regression surface: ``#``-suffixed deduplicated
    components, dotted metric names, histogram keys that flatten to
    ``name.count``/``name.p99``..., and empty histograms that must not
    materialize a section.
    """
    value = st.floats(min_value=0.0, max_value=1e9, allow_nan=False)

    @st.composite
    def build(draw):
        reg = MetricRegistry()
        for _ in range(draw(st.integers(1, 3))):
            comp = reg.unique_component(
                draw(st.sampled_from(["fabric", "driver.q0", "pool"]))
            )
            for i in range(draw(st.integers(0, 2))):
                reg.counter(comp, f"c{i}.events").inc(draw(value))
            for i in range(draw(st.integers(0, 2))):
                reg.gauge(comp, f"g{i}.level").set(draw(value))
            for i in range(draw(st.integers(0, 2))):
                hist = reg.histogram(comp, f"h{i}.lat.ns")
                for sample in draw(st.lists(value, max_size=4)):
                    hist.record(sample)
        return reg

    return build()


class TestExportRoundTripProperties:
    @given(reg=_registries())
    @settings(max_examples=30, deadline=None)
    def test_csv_and_json_round_trips_equal_snapshot(self, reg):
        snap = reg.snapshot()
        with tempfile.TemporaryDirectory() as td:
            jpath = os.path.join(td, "m.json")
            cpath = os.path.join(td, "m.csv")
            export_metrics_json(reg, jpath)
            export_metrics_csv(reg, cpath)
            assert load_metrics_json(jpath) == snap
            assert load_metrics_csv(cpath) == snap
        rows = metrics_rows(reg)
        assert rows == sorted(rows)
        assert {comp for comp, _name, _value in rows} == set(snap)

    def test_dedup_component_histogram_regression(self, tmp_path):
        # The original bug: an empty histogram under "fabric" made
        # snapshot() emit an empty section that JSON kept and CSV
        # dropped, so the two loaders disagreed.
        reg = MetricRegistry()
        first = reg.unique_component("fabric")
        second = reg.unique_component("fabric")
        assert second == "fabric#2"
        reg.histogram(first, "lat.ns")  # never recorded into
        reg.histogram(second, "lat.ns").record(5.0)
        snap = reg.snapshot()
        assert "fabric" not in snap
        assert snap["fabric#2"]["lat.ns.count"] == 1.0
        jpath = str(tmp_path / "m.json")
        cpath = str(tmp_path / "m.csv")
        export_metrics_json(reg, jpath)
        export_metrics_csv(reg, cpath)
        assert load_metrics_json(jpath) == load_metrics_csv(cpath) == snap


class TestEndToEnd:
    def test_loopback_registry_matches_fabric_counters(self):
        from repro.analysis.loopback import InterfaceKind, build_interface, run_point
        from repro.platform import icx

        obs = Observability(metrics=MetricRegistry(), tracer=SpanTracer())
        setup = build_interface(icx(), InterfaceKind.CCNIC, obs=obs)
        with obs.tracer.attach_fabric(setup.system.fabric):
            result = run_point(setup, 64, 400, inflight=32, obs=obs)
        assert result.received == 400
        snap = obs.metrics.snapshot()
        # Acceptance criterion: the registry's fabric section is exactly
        # the fabric's own counter snapshot.
        assert snap["fabric"] == setup.system.fabric.snapshot_counters()
        for component in ("sim", "pool", "ccnic", "driver.q0",
                          "nic_agent.q0", "trafficgen"):
            assert component in snap, component
        assert snap["trafficgen"]["received"] == 400.0
        # Spans recorded with descriptor-level instants nested inside.
        spans = obs.tracer.spans()
        by_sid = {s.sid: s for s in spans}
        tx = [s for s in spans if s.name == "tx_burst"]
        assert tx, "expected tx_burst spans"
        nested = [s for s in spans
                  if s.is_instant and s.parent is not None
                  and by_sid[s.parent].name in ("tx_burst", "rx_burst",
                                                "nic_tx", "nic_rx")]
        assert nested, "expected coherence instants under burst spans"

    def test_disabled_mode_records_nothing(self):
        from repro.analysis.loopback import InterfaceKind, build_interface, run_point
        from repro.platform import icx

        setup = build_interface(icx(), InterfaceKind.CCNIC)  # no obs
        result = run_point(setup, 64, 200, inflight=16)
        assert result.received == 200
        assert setup.driver.obs is OBS_OFF
        assert setup.interface.obs is OBS_OFF
