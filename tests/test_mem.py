"""Address math, regions and the address space."""

import pytest

from repro.errors import MemoryError_
from repro.mem import (
    AddressSpace,
    MemType,
    Region,
    line_base,
    line_index,
    line_offset,
    lines_spanned,
)


class TestAddressMath:
    def test_line_index(self):
        assert line_index(0) == 0
        assert line_index(63) == 0
        assert line_index(64) == 1

    def test_line_base_and_offset(self):
        assert line_base(130) == 128
        assert line_offset(130) == 2

    def test_lines_spanned_single(self):
        assert lines_spanned(0, 1) == [0]
        assert lines_spanned(0, 64) == [0]

    def test_lines_spanned_crossing(self):
        assert lines_spanned(60, 8) == [0, 1]
        assert lines_spanned(0, 65) == [0, 1]
        assert lines_spanned(64, 128) == [1, 2]

    def test_lines_spanned_empty(self):
        assert lines_spanned(100, 0) == []


class TestRegion:
    def test_basic(self):
        r = Region("buf", base=128, size=256, home=0)
        assert r.end == 384
        assert r.contains(128)
        assert r.contains(383)
        assert not r.contains(384)
        assert r.offset_of(130) == 2

    def test_contains_with_size(self):
        r = Region("buf", base=0, size=128, home=1)
        assert r.contains(64, 64)
        assert not r.contains(64, 65)

    def test_misaligned_base_rejected(self):
        with pytest.raises(MemoryError_):
            Region("bad", base=10, size=64, home=0)

    def test_bad_size_rejected(self):
        with pytest.raises(MemoryError_):
            Region("bad", base=0, size=0, home=0)

    def test_offset_of_outside_raises(self):
        r = Region("buf", base=0, size=64, home=0)
        with pytest.raises(MemoryError_):
            r.offset_of(100)

    def test_default_memtype_is_writeback(self):
        r = Region("buf", base=0, size=64, home=0)
        assert r.memtype is MemType.WRITEBACK
        assert r.memtype.is_cacheable


class TestMemType:
    def test_only_wb_cacheable(self):
        assert MemType.WRITEBACK.is_cacheable
        assert not MemType.WRITE_COMBINING.is_cacheable
        assert not MemType.UNCACHEABLE.is_cacheable


class TestAddressSpace:
    def test_allocation_is_disjoint_and_aligned(self):
        space = AddressSpace()
        a = space.allocate("a", 100, home=0)
        b = space.allocate("b", 64, home=1)
        assert a.base % 64 == 0
        assert b.base >= a.end
        assert a.size == 128  # rounded to whole lines

    def test_region_of(self):
        space = AddressSpace()
        a = space.allocate("a", 64, home=0)
        b = space.allocate("b", 64, home=1)
        assert space.region_of(a.base) is a
        assert space.region_of(b.base + 63) is b

    def test_region_of_unmapped_raises(self):
        space = AddressSpace()
        space.allocate("a", 64, home=0)
        with pytest.raises(MemoryError_):
            space.region_of(1)

    def test_try_region_of_none(self):
        space = AddressSpace()
        assert space.try_region_of(0) is None

    def test_alignment_parameter(self):
        space = AddressSpace()
        r = space.allocate("a", 64, home=0, align=4096)
        assert r.base % 4096 == 0

    def test_bad_alignment_rejected(self):
        space = AddressSpace()
        with pytest.raises(MemoryError_):
            space.allocate("a", 64, home=0, align=32)

    def test_zero_size_rejected(self):
        space = AddressSpace()
        with pytest.raises(MemoryError_):
            space.allocate("a", 0, home=0)

    def test_regions_listing_sorted(self):
        space = AddressSpace()
        names = ["r1", "r2", "r3"]
        for name in names:
            space.allocate(name, 64, home=0)
        assert [r.name for r in space.regions] == names
