"""Fast path vs. REPRO_SIM_SLOWPATH=1: bit-identical metric snapshots.

The perf harness's scenarios double as the determinism regression
suite: every engine/fabric/link/telemetry fast path must reproduce the
reference implementation's metrics exactly — same packet counts, same
latency percentiles, same coherence-transaction counters, same
per-direction link statistics, same event count and final simulated
time. A single diverging float fails the fingerprint comparison.
"""

import heapq

import pytest

from repro.analysis import perf
from repro.sim import Simulator
from repro.sim.rng import make_rng


@pytest.mark.parametrize("scenario", ["loopback_64b", "kv_zipf", "faults_canned"])
def test_fast_and_slow_paths_fingerprint_identically(scenario):
    fast = perf.run_scenario(scenario, quick=True)
    slow = perf.run_scenario(scenario, quick=True, slowpath=True)
    assert fast.events == slow.events
    assert fast.sim_ns == slow.sim_ns
    assert fast.fingerprint == slow.fingerprint


def test_scenario_fingerprint_stable_across_repeats():
    one = perf.run_scenario("loopback_64b", quick=True)
    two = perf.run_scenario("loopback_64b", quick=True)
    assert one.fingerprint == two.fingerprint
    assert one.events == two.events


def test_unknown_scenario_rejected():
    with pytest.raises(ValueError):
        perf.run_scenario("nope")


def _firing_order(slowpath, n_events):
    """Event order of a randomized callback storm (seeded)."""
    sim = Simulator(slowpath=slowpath)
    rng = make_rng(11, "calqueue-storm")
    order = []
    for i in range(n_events):
        when = rng.random() * 1e6
        sim.call_at(when, lambda i=i: order.append((sim.now, i)))
    sim.run()
    return order


def test_calendar_queue_matches_heap_order():
    """Past CALENDAR_THRESHOLD pending events the fast path migrates to
    the calendar queue; the pop order must still match the reference
    heap exactly, including seq tie-breaks."""
    n = Simulator.CALENDAR_THRESHOLD + 512
    fast = _firing_order(slowpath=False, n_events=n)
    slow = _firing_order(slowpath=True, n_events=n)
    assert fast == slow


def test_calendar_queue_pop_is_sorted():
    from repro.sim.calqueue import CalendarQueue

    rng = make_rng(5, "calqueue-unit")
    recs = [[rng.random() * 1e4, i, 0, None] for i in range(3000)]
    heap = list(recs)
    heapq.heapify(heap)
    cal = CalendarQueue(heap)
    popped = []
    while len(cal):
        popped.append(cal.pop())
    assert popped == sorted(recs, key=lambda r: (r[0], r[1]))
