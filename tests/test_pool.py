"""Shared buffer pool: recycling, subdivision, sharing semantics."""

import pytest

from repro.core import BufferPool, CcnicConfig
from repro.errors import PoolError
from repro.platform import System, icx


def make_pool(**overrides):
    defaults = dict(pool_buffers=32, ring_slots=64)
    defaults.update(overrides)
    config = CcnicConfig(**defaults)
    system = System(icx())
    pool = BufferPool(system, config)
    host = system.new_host_core("host")
    nic = system.new_nic_core("nic")
    return system, pool, host, nic


class TestAllocFree:
    def test_alloc_returns_requested_count(self):
        _sys, pool, host, _nic = make_pool()
        bufs, ns = pool.alloc(host, [4096, 4096])
        assert len(bufs) == 2
        assert ns > 0
        assert all(b.capacity == 4096 for b in bufs)

    def test_free_and_realloc(self):
        _sys, pool, host, _nic = make_pool()
        bufs, _ = pool.alloc(host, [4096])
        pool.free(host, bufs)
        again, _ = pool.alloc(host, [4096])
        assert len(again) == 1

    def test_double_free_rejected(self):
        _sys, pool, host, _nic = make_pool()
        bufs, _ = pool.alloc(host, [4096])
        pool.free(host, bufs)
        with pytest.raises(PoolError):
            pool.free(host, bufs)

    def test_exhaustion_returns_partial(self):
        _sys, pool, host, _nic = make_pool(pool_buffers=4, small_buffers=False)
        bufs, _ = pool.alloc(host, [4096] * 8)
        assert len(bufs) == 4
        assert pool.stats.get("exhausted") >= 1

    def test_bad_size_rejected(self):
        _sys, pool, host, _nic = make_pool()
        with pytest.raises(PoolError):
            pool.alloc(host, [0])

    def test_buffers_are_line_aligned_addresses(self):
        _sys, pool, host, _nic = make_pool()
        bufs, _ = pool.alloc(host, [4096] * 4)
        for buf in bufs:
            assert buf.addr % 64 == 0


class TestRecycling:
    def test_freed_buffer_comes_back_lifo(self):
        _sys, pool, host, _nic = make_pool()
        bufs, _ = pool.alloc(host, [4096, 4096])
        pool.free(host, bufs)
        again, _ = pool.alloc(host, [4096])
        assert again[0] is bufs[-1]  # most recently freed first

    def test_stacks_are_per_side(self):
        _sys, pool, host, nic = make_pool()
        bufs, _ = pool.alloc(host, [4096])
        pool.free(nic, bufs)  # NIC freed it: goes to the NIC stack
        assert pool.stack_depth(nic) == 1
        assert pool.stack_depth(host) == 0
        got, _ = pool.alloc(nic, [4096])
        assert got[0] is bufs[0]

    def test_stack_fast_path_is_cheaper(self):
        _sys, pool, host, _nic = make_pool()
        bufs, _ = pool.alloc(host, [4096])
        pool.free(host, bufs)
        _again, stack_ns = pool.alloc(host, [4096])
        _fresh, shared_ns = pool.alloc(host, [4096])
        assert stack_ns < shared_ns

    def test_recycling_disabled_goes_to_shared_fifo(self):
        _sys, pool, host, _nic = make_pool(buf_recycling=False, small_buffers=False)
        first, _ = pool.alloc(host, [4096])
        pool.free(host, first)
        nxt, _ = pool.alloc(host, [4096])
        # FIFO: the freed buffer goes to the back, not returned next.
        assert nxt[0] is not first[0]
        assert pool.stack_depth(host) == 0

    def test_stack_overflow_spills_to_shared(self):
        _sys, pool, host, _nic = make_pool(recycle_stack_max=8, pool_buffers=64)
        bufs, _ = pool.alloc(host, [4096] * 16)
        pool.free(host, bufs)
        assert pool.stack_depth(host) == 8
        assert pool.stats.get("shared_free") == 8


class TestSmallBuffers:
    def test_small_request_subdivides(self):
        _sys, pool, host, _nic = make_pool()
        bufs, _ = pool.alloc(host, [64])
        assert bufs[0].small
        assert bufs[0].capacity == 128
        assert pool.stats.get("subdivisions") == 1

    def test_subdivision_yields_32_smalls(self):
        _sys, pool, host, _nic = make_pool(recycle_stack_max=64)
        bufs, _ = pool.alloc(host, [64] * 32)
        assert len(bufs) == 32
        # One 4KB buffer covers all 32.
        assert pool.stats.get("subdivisions") == 1

    def test_large_request_gets_full_buffer(self):
        _sys, pool, host, _nic = make_pool()
        bufs, _ = pool.alloc(host, [1500])
        assert not bufs[0].small
        assert bufs[0].capacity == 4096

    def test_small_buffers_disabled(self):
        _sys, pool, host, _nic = make_pool(small_buffers=False)
        bufs, _ = pool.alloc(host, [64])
        assert not bufs[0].small
        assert bufs[0].capacity == 4096

    def test_small_addresses_within_parent(self):
        _sys, pool, host, _nic = make_pool(recycle_stack_max=64)
        bufs, _ = pool.alloc(host, [64] * 4)
        addrs = sorted(b.addr for b in bufs)
        assert pool.region.contains(addrs[0], 128)


class TestFillOrder:
    def test_nonseq_alloc_shuffles(self):
        _sys, pool, host, _nic = make_pool(nonseq_alloc=True, buf_recycling=False,
                                           small_buffers=False, pool_buffers=64)
        bufs, _ = pool.alloc(host, [4096] * 8)
        addrs = [b.addr for b in bufs]
        assert addrs != sorted(addrs)

    def test_sequential_fill_when_disabled(self):
        _sys, pool, host, _nic = make_pool(nonseq_alloc=False, buf_recycling=False,
                                           small_buffers=False, pool_buffers=64)
        bufs, _ = pool.alloc(host, [4096] * 8)
        addrs = [b.addr for b in bufs]
        assert addrs == sorted(addrs)
        assert addrs[1] - addrs[0] == 4096


class TestBufferHandle:
    def test_payload_bounds(self):
        _sys, pool, host, _nic = make_pool()
        bufs, _ = pool.alloc(host, [4096])
        buf = bufs[0]
        buf.set_payload(1500)
        assert buf.data_len == 1500
        with pytest.raises(PoolError):
            buf.set_payload(5000)
        with pytest.raises(PoolError):
            buf.set_payload(0)

    def test_segment_chain(self):
        _sys, pool, host, _nic = make_pool()
        bufs, _ = pool.alloc(host, [4096, 4096])
        head, tail = bufs
        head.set_payload(64)
        tail.set_payload(1000)
        head.chain(tail)
        assert [s.buf_id for s in head.segments()] == [head.buf_id, tail.buf_id]
        assert head.total_len == 1064
