"""Overlay deployment profiling (§4 / Fig 19's UPI 1-1 series)."""

from repro.apps.kvstore import KvWorkload
from repro.apps.overlay import OverlayProfile, measure_overlay_profile
from repro.platform import icx


class TestOverlayProfile:
    def test_one_to_one_is_min_of_stages(self):
        profile = OverlayProfile(app_mops=10.0, overlay_mops=4.0)
        assert profile.one_to_one_mops == 4.0
        profile = OverlayProfile(app_mops=3.0, overlay_mops=8.0)
        assert profile.one_to_one_mops == 3.0

    def test_measured_profile_has_both_stages(self):
        profile = measure_overlay_profile(icx(), KvWorkload.ads(), n_ops=600)
        assert profile.app_mops > 0
        assert profile.overlay_mops > 0

    def test_one_to_one_limited_by_slower_stage(self):
        """The paper's UPI 1-1 series is capped by overlay threads."""
        profile = measure_overlay_profile(icx(), KvWorkload.ads(), n_ops=600)
        assert profile.one_to_one_mops <= profile.app_mops
        assert profile.one_to_one_mops <= profile.overlay_mops
