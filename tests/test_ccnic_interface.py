"""End-to-end CC-NIC interface behaviour over the simulated platform."""

import pytest

from repro.core import CcnicConfig, CcnicInterface, DescLayout
from repro.core.api import buf_alloc, buf_free, rx_burst, tx_burst
from repro.errors import NicError
from repro.nicmodels import unoptimized_upi_config
from repro.platform import System, icx
from repro.workloads.packets import Packet
from repro.workloads.trafficgen import run_loopback


def make(config=None):
    system = System(icx())
    nic = CcnicInterface(system, config or CcnicConfig())
    driver = nic.driver(0)
    nic.start()
    return system, nic, driver


class TestLoopback:
    def test_every_packet_comes_back(self):
        system, _nic, driver = make()
        result = run_loopback(system, driver, pkt_size=64, n_packets=500,
                              inflight=32, tx_batch=8, rx_batch=8)
        assert result.sent == result.received == 500

    def test_latency_reasonable_for_icx(self):
        system, _nic, driver = make()
        result = run_loopback(system, driver, pkt_size=64, n_packets=800,
                              inflight=1, tx_batch=1, rx_batch=1)
        # Paper: 490ns minimum on ICX; the model should land within 25%.
        assert 380 <= result.latency.minimum <= 640

    def test_large_packets(self):
        system, _nic, driver = make()
        result = run_loopback(system, driver, pkt_size=1500, n_packets=300,
                              inflight=16, tx_batch=8, rx_batch=8)
        assert result.received == 300
        assert result.gbps > 0

    def test_batched_counters_match_paper_shape(self):
        """Fig 17: batched CC-NIC does ~1.25 remote reads and ~0.25
        RFOs per packet on the NIC socket."""
        system, _nic, driver = make()
        result = run_loopback(system, driver, pkt_size=64, n_packets=4000,
                              inflight=128, tx_batch=32, rx_batch=32)
        counters = system.fabric.snapshot_counters()
        reads_per_pkt = counters.get("s1.read", 0) / result.received
        rfos_per_pkt = counters.get("s1.rfo", 0) / result.received
        assert 1.0 <= reads_per_pkt <= 1.6
        assert 0.15 <= rfos_per_pkt <= 0.5

    def test_buffers_conserved(self):
        system, nic, driver = make()
        run_loopback(system, driver, pkt_size=64, n_packets=400,
                     inflight=16, tx_batch=4, rx_batch=4)
        host_stack = nic.pool.stack_depth(driver.agent, small=True)
        nic_agent = nic.pair(0).agent.agent
        nic_stack = nic.pool.stack_depth(nic_agent, small=True)
        # Everything allocated has been freed back somewhere.
        assert host_stack + nic_stack > 0
        counters = nic.pool.stats
        assert counters.get("alloc_bufs") == counters.get("free_bufs")


class TestAblations:
    def test_register_signaling_still_works(self):
        config = CcnicConfig(inline_signals=False, desc_layout=DescLayout.PACK)
        system, _nic, driver = make(config)
        result = run_loopback(system, driver, pkt_size=64, n_packets=300,
                              inflight=16, tx_batch=8, rx_batch=8)
        assert result.received == 300

    def test_register_signaling_is_slower(self):
        base_sys, _n1, base_drv = make()
        base = run_loopback(base_sys, base_drv, pkt_size=64, n_packets=600,
                            inflight=1, tx_batch=1, rx_batch=1)
        config = CcnicConfig(inline_signals=False)
        reg_sys, _n2, reg_drv = make(config)
        reg = run_loopback(reg_sys, reg_drv, pkt_size=64, n_packets=600,
                           inflight=1, tx_batch=1, rx_batch=1)
        assert reg.latency.minimum > base.latency.minimum

    def test_host_only_buffer_management(self):
        config = CcnicConfig(nic_buffer_mgmt=False)
        system, _nic, driver = make(config)
        result = run_loopback(system, driver, pkt_size=64, n_packets=400,
                              inflight=16, tx_batch=8, rx_batch=8)
        assert result.received == 400

    def test_unopt_config_is_complete_inverse(self):
        config = unoptimized_upi_config()
        assert not config.inline_signals
        assert not config.buf_recycling
        assert not config.nic_buffer_mgmt
        assert not config.small_buffers
        assert not config.nonseq_alloc
        assert not config.writer_homed_rings
        assert config.desc_layout is DescLayout.PACK

    def test_unopt_baseline_runs_and_is_slower(self):
        fast_sys, _n1, fast_drv = make()
        fast = run_loopback(fast_sys, fast_drv, pkt_size=64, n_packets=600,
                            inflight=1, tx_batch=1, rx_batch=1)
        slow_sys, _n2, slow_drv = make(unoptimized_upi_config())
        slow = run_loopback(slow_sys, slow_drv, pkt_size=64, n_packets=600,
                            inflight=1, tx_batch=1, rx_batch=1)
        # Paper: unopt has 2.1x the minimum latency of CC-NIC.
        assert slow.latency.minimum > 1.5 * fast.latency.minimum

    def test_nt_stores_config(self):
        config = CcnicConfig(caching_stores=False)
        system, _nic, driver = make(config)
        result = run_loopback(system, driver, pkt_size=64, n_packets=300,
                              inflight=16, tx_batch=8, rx_batch=8)
        assert result.received == 300


class TestMultiSegment:
    def test_chained_buffer_transmits_once(self):
        system, nic, driver = make()
        bufs = driver.alloc([4096, 4096]).bufs
        head, seg = bufs
        driver.write_payload(head, 64)
        driver.write_payload(seg, 1000)
        head.chain(seg)
        pkt = Packet(size=1064)
        sent = driver.tx_burst([(head, pkt)]).count
        assert sent == 1
        # Drive the sim until the packet loops back.
        received = []
        def app():
            while not received:
                rx = driver.rx_burst(4)
                received.extend(rx.entries)
                yield max(rx.ns, 1.0)
        system.sim.spawn(app(), "app")
        system.sim.run(until=1e7, stop_when=lambda: bool(received))
        assert received[0][0] is pkt


class TestApiFunctions:
    def test_fig5_api_round_trip(self):
        system, nic, driver = make()
        alloc = buf_alloc(nic.pool, driver.agent, [64, 64])
        assert alloc.count == 2 and alloc.ns > 0
        for buf in alloc.bufs:
            driver.write_payload(buf, 64)
        entries = [(b, Packet(size=64)) for b in alloc.bufs]
        tx = tx_burst(driver, entries)
        assert tx.count == 2
        got = []
        def app():
            while len(got) < 2:
                rx = rx_burst(driver, 4)
                got.extend(rx.entries)
                yield max(rx.ns, 1.0)
        system.sim.spawn(app(), "app")
        system.sim.run(until=1e7, stop_when=lambda: len(got) >= 2)
        assert len(got) == 2
        ns = buf_free(nic.pool, driver.agent, [b for _p, b in got])
        assert ns > 0

    def test_buf_alloc_partial_on_exhaustion_never_raises(self):
        # DPDK mempool semantics: an exhausted pool yields fewer buffers
        # than requested; it does not raise.
        _system, nic, driver = make()
        total = nic.config.pool_buffers
        alloc = buf_alloc(nic.pool, driver.agent, [4096] * (total + 8))
        assert alloc.count == total < total + 8


class TestInterfaceLifecycle:
    def test_cannot_add_queue_after_start(self):
        system = System(icx())
        nic = CcnicInterface(system)
        nic.driver(0)
        nic.start()
        with pytest.raises(NicError):
            nic.pair(1)

    def test_double_start_rejected(self):
        system = System(icx())
        nic = CcnicInterface(system)
        nic.driver(0)
        nic.start()
        with pytest.raises(NicError):
            nic.start()

    def test_writer_homing_applied(self):
        system = System(icx())
        nic = CcnicInterface(system, CcnicConfig())
        pair = nic.pair(0)
        assert pair.tx.region.home == 0   # host-homed TX ring
        assert pair.rx.region.home == 1   # NIC-homed RX ring

    def test_homing_disabled_puts_all_on_host(self):
        system = System(icx())
        nic = CcnicInterface(system, CcnicConfig(writer_homed_rings=False))
        pair = nic.pair(0)
        assert pair.tx.region.home == 1
        assert pair.rx.region.home == 0
