"""PCIe NIC interface models (E810- and CX6-style)."""

import pytest

from repro.nicmodels import PcieNicConfig, PcieNicInterface
from repro.platform import CX6, E810, System, icx
from repro.workloads.trafficgen import run_loopback


def build(spec, config=None):
    system = System(icx())
    nic = PcieNicInterface(system, spec, config)
    driver = nic.driver(0)
    nic.start()
    return system, nic, driver


class TestLoopback:
    def test_e810_all_packets_delivered(self):
        system, _nic, driver = build(E810)
        result = run_loopback(system, driver, pkt_size=64, n_packets=400,
                              inflight=32, tx_batch=8, rx_batch=8)
        assert result.received == 400

    def test_e810_min_latency_matches_paper(self):
        system, _nic, driver = build(E810)
        result = run_loopback(system, driver, pkt_size=64, n_packets=500,
                              inflight=1, tx_batch=1, rx_batch=1)
        # Paper: 3809ns best-case on the ICX testbed; allow 15%.
        assert 3200 <= result.latency.minimum <= 4400

    def test_cx6_min_latency_matches_paper(self):
        system, _nic, driver = build(CX6)
        result = run_loopback(system, driver, pkt_size=64, n_packets=500,
                              inflight=1, tx_batch=1, rx_batch=1)
        # Paper: 2116ns best-case.
        assert 1800 <= result.latency.minimum <= 2450

    def test_cx6_faster_than_e810_at_low_load(self):
        _s1, _n1, d1 = build(E810)
        r1 = run_loopback(_s1, d1, pkt_size=64, n_packets=400,
                          inflight=1, tx_batch=1, rx_batch=1)
        _s2, _n2, d2 = build(CX6)
        r2 = run_loopback(_s2, d2, pkt_size=64, n_packets=400,
                          inflight=1, tx_batch=1, rx_batch=1)
        assert r2.latency.minimum < r1.latency.minimum

    def test_large_packets(self):
        system, _nic, driver = build(E810)
        result = run_loopback(system, driver, pkt_size=1500, n_packets=200,
                              inflight=16, tx_batch=8, rx_batch=8)
        assert result.received == 200


class TestInlinePath:
    def test_cx6_small_packets_skip_dma_reads(self):
        system, nic, driver = build(CX6)
        before = nic.dma.reads
        run_loopback(system, driver, pkt_size=64, n_packets=200,
                     inflight=8, tx_batch=4, rx_batch=4)
        # Payload/descriptor DMA reads avoided for inline-size packets
        # (only background RX machinery reads remain).
        tx_related_reads = nic.dma.reads - before
        assert tx_related_reads == 0

    def test_e810_always_uses_dma(self):
        system, nic, driver = build(E810)
        run_loopback(system, driver, pkt_size=64, n_packets=200,
                     inflight=8, tx_batch=4, rx_batch=4)
        assert nic.dma.reads > 0

    def test_cx6_large_packets_fall_back_to_dma(self):
        system, nic, driver = build(CX6)
        run_loopback(system, driver, pkt_size=1500, n_packets=100,
                     inflight=8, tx_batch=4, rx_batch=4)
        assert nic.dma.reads > 0


class TestDevicePacing:
    def test_pps_capacity_bounds_throughput(self):
        slow = PcieNicConfig(ring_slots=256)
        system, _nic, driver = build(E810, slow)
        result = run_loopback(system, driver, pkt_size=64, n_packets=5000,
                              inflight=128, tx_batch=32, rx_batch=32)
        assert result.mpps * 1e6 <= E810.pps_capacity * 1.05

    def test_emit_slot_spacing(self):
        system = System(icx())
        nic = PcieNicInterface(system, E810)
        first = nic.emit_slot(100.0)
        second = nic.emit_slot(100.0)
        assert second - first == pytest.approx(1e9 / E810.pps_capacity)


class TestHousekeeping:
    def test_tx_buffers_reclaimed(self):
        system, nic, driver = build(E810)
        run_loopback(system, driver, pkt_size=64, n_packets=300,
                     inflight=16, tx_batch=8, rx_batch=8)
        stats = nic.pool.stats
        assert stats.get("free_bufs") > 0
        # No buffer leak: allocations equal frees plus currently posted blanks.
        outstanding = stats.get("alloc_bufs") - stats.get("free_bufs")
        assert outstanding <= nic.config.rx_post_target + nic.config.ring_slots

    def test_doorbell_per_burst_not_per_packet(self):
        system, _nic, driver = build(E810)
        run_loopback(system, driver, pkt_size=64, n_packets=320,
                     inflight=64, tx_batch=32, rx_batch=32)
        # One TX doorbell per 32-packet burst plus RX-post doorbells.
        assert driver.mmio.uc_writes < 320
