"""Reproducibility: identical runs give identical results."""

from repro.analysis.microbench import pingpong
from repro.core import CcnicConfig, CcnicInterface
from repro.platform import System, icx
from repro.workloads.trafficgen import run_loopback


def loopback_fingerprint(seed=3):
    system = System(icx())
    nic = CcnicInterface(system, CcnicConfig(), seed=seed)
    driver = nic.driver(0)
    nic.start()
    result = run_loopback(system, driver, pkt_size=64, n_packets=1500,
                          inflight=64, tx_batch=16, rx_batch=16)
    counters = system.fabric.snapshot_counters()
    return (
        result.received,
        round(result.mpps, 9),
        round(result.latency.median, 9),
        tuple(sorted(counters.items())),
        system.sim.events_executed,
    )


class TestDeterminism:
    def test_identical_seeds_identical_runs(self):
        assert loopback_fingerprint(seed=3) == loopback_fingerprint(seed=3)

    def test_different_pool_seed_changes_layout_not_count(self):
        a = loopback_fingerprint(seed=3)
        b = loopback_fingerprint(seed=4)
        assert a[0] == b[0]  # same packet count either way

    def test_pingpong_deterministic(self):
        one = pingpong(icx(), "S0C", 100)
        two = pingpong(icx(), "S0C", 100)
        assert one.median == two.median
        assert one.count == two.count
