"""Driver and NIC-agent edge cases."""

import pytest

from repro.core import CcnicConfig, CcnicInterface
from repro.errors import NicError
from repro.platform import System, icx
from repro.workloads.packets import Packet


def make(config=None):
    system = System(icx())
    nic = CcnicInterface(system, config or CcnicConfig())
    driver = nic.driver(0)
    nic.start()
    return system, nic, driver


class TestDriverValidation:
    def test_tx_without_payload_rejected(self):
        _system, _nic, driver = make()
        bufs = driver.alloc([64]).bufs
        with pytest.raises(NicError):
            driver.tx_burst([(bufs[0], Packet(size=64))])

    def test_empty_payload_helpers(self):
        _system, _nic, driver = make()
        assert driver.read_payloads([]) == 0.0
        assert driver.write_payloads([]) == 0.0

    def test_rx_burst_empty_queue(self):
        _system, _nic, driver = make()
        rx = driver.rx_burst(8)
        assert rx.count == 0
        assert rx.ns > 0  # the signal poll still costs

    def test_housekeeping_noop_with_shared_management(self):
        _system, _nic, driver = make()
        assert driver.housekeeping() == 0.0


class TestVisibility:
    def test_descriptor_not_visible_before_store_retires(self):
        """A consumer polling at the exact submission instant must not
        see descriptors whose producer time has not elapsed."""
        system, nic, driver = make()
        bufs = driver.alloc([64]).bufs
        driver.write_payload(bufs[0], 64)
        driver.tx_burst([(bufs[0], Packet(size=64))], base_ns=500.0)
        pair = nic.pair(0)
        agent = pair.agent.agent
        items, _ns = pair.tx.poll(agent, 4)
        assert items == []  # visible only after ~500ns
        system.sim.now += 600.0
        items, _ns = pair.tx.poll(agent, 4)
        assert len(items) == 1


class TestBackpressure:
    def test_tx_ring_full_returns_zero(self):
        system, nic, driver = make(CcnicConfig(ring_slots=8))
        # Fill the ring without letting the NIC run (no sim.run yet).
        accepted_total = 0
        for _ in range(4):
            bufs = driver.alloc([64] * 4).bufs
            for buf in bufs:
                driver.write_payload(buf, 64)
            sent = driver.tx_burst([(b, Packet(size=64)) for b in bufs]).count
            accepted_total += sent
        assert accepted_total == 8  # ring capacity

    def test_recovery_after_drain(self):
        system, nic, driver = make(CcnicConfig(ring_slots=8))
        bufs = driver.alloc([64] * 8).bufs
        for buf in bufs:
            driver.write_payload(buf, 64)
        driver.tx_burst([(b, Packet(size=64)) for b in bufs])
        # Let the NIC drain and loop everything back.
        received = []

        def app():
            while len(received) < 8:
                rx = driver.rx_burst(8)
                received.extend(rx.entries)
                yield max(rx.ns, 1.0)

        system.sim.spawn(app(), "drain")
        system.sim.run(until=1e7, stop_when=lambda: len(received) >= 8)
        assert len(received) == 8
        # Ring space is free again.
        bufs2 = driver.alloc([64] * 4).bufs
        for buf in bufs2:
            driver.write_payload(buf, 64)
        sent = driver.tx_burst([(b, Packet(size=64)) for b in bufs2]).count
        assert sent == 4


class TestAgentAccounting:
    def test_busy_time_accumulates(self):
        system, nic, driver = make()
        bufs = driver.alloc([64] * 4).bufs
        for buf in bufs:
            driver.write_payload(buf, 64)
        driver.tx_burst([(b, Packet(size=64)) for b in bufs])
        system.sim.run(until=1e5)
        agent = nic.pair(0).agent
        assert agent.busy_ns > 0
        assert agent.tx_packets == 4

    def test_wire_preserves_order(self):
        system, nic, driver = make()
        pkts = []
        bufs = driver.alloc([64] * 4).bufs
        for buf in bufs:
            driver.write_payload(buf, 64)
            pkts.append(Packet(size=64))
        driver.tx_burst(list(zip(bufs, pkts)))
        received = []

        def app():
            while len(received) < 4:
                rx = driver.rx_burst(8)
                received.extend(p for p, _b in rx.entries)
                yield max(rx.ns, 1.0)

        system.sim.spawn(app(), "order")
        system.sim.run(until=1e7, stop_when=lambda: len(received) >= 4)
        assert [p.pkt_id for p in received] == [p.pkt_id for p in pkts]
