"""Coherence protocol behaviour: states, latencies, counters."""

import pytest

from repro.coherence import CoherenceFabric, CostModel, LineState
from repro.errors import CoherenceError
from repro.interconnect import Link
from repro.mem import AddressSpace, MemType
from repro.sim import Simulator

COST = CostModel(
    l2_hit=5.0,
    local_cache=48.0,
    local_dram=72.0,
    remote_dram=144.0,
    remote_cache_writer_homed=114.0,
    remote_cache_reader_homed=119.0,
    local_invalidate=30.0,
    remote_invalidate=100.0,
    store_buffer=1.5,
)


def make_fabric(mlp=10.0, write_pipeline=2.0):
    sim = Simulator()
    space = AddressSpace()
    link = Link(sim, "upi", latency_ns=50.0, bandwidth_bytes_per_ns=66.0)
    fabric = CoherenceFabric(sim, space, COST, link, mlp=mlp, write_pipeline=write_pipeline)
    local = fabric.new_agent("local", socket=0)
    peer = fabric.new_agent("peer", socket=0)
    remote = fabric.new_agent("remote", socket=1)
    return fabric, space, local, peer, remote


class TestBasicAccesses:
    def test_local_dram_fill(self):
        fabric, space, local, _peer, _remote = make_fabric()
        region = space.allocate("r", 64, home=0)
        assert fabric.read(local, region.base, 64) == pytest.approx(72.0)
        assert fabric.state_in(local, region.base) is LineState.EXCLUSIVE

    def test_remote_dram_fill(self):
        fabric, space, local, _peer, _remote = make_fabric()
        region = space.allocate("r", 64, home=1)
        latency = fabric.read(local, region.base, 64)
        assert latency >= 144.0
        assert fabric.counters.get("s0.read") == 1

    def test_hit_after_fill(self):
        fabric, space, local, _peer, _remote = make_fabric()
        region = space.allocate("r", 64, home=0)
        fabric.read(local, region.base, 64)
        assert fabric.read(local, region.base, 8) == pytest.approx(5.0)

    def test_write_hit_on_exclusive_is_cheap(self):
        fabric, space, local, _peer, _remote = make_fabric()
        region = space.allocate("r", 64, home=0)
        fabric.read(local, region.base, 64)
        cost = fabric.write(local, region.base, 8)
        assert cost == pytest.approx(1.5 / 2.0)
        assert fabric.state_in(local, region.base) is LineState.MODIFIED

    def test_write_miss_installs_modified(self):
        fabric, space, local, _peer, _remote = make_fabric()
        region = space.allocate("r", 64, home=0)
        fabric.write(local, region.base, 64)
        assert fabric.state_in(local, region.base) is LineState.MODIFIED

    def test_zero_size_rejected(self):
        fabric, space, local, _peer, _remote = make_fabric()
        region = space.allocate("r", 64, home=0)
        with pytest.raises(CoherenceError):
            fabric.access(local, region.base, 0, write=False)

    def test_non_wb_region_rejected(self):
        fabric, space, local, _peer, _remote = make_fabric()
        region = space.allocate("mmio", 64, home=0, memtype=MemType.UNCACHEABLE)
        with pytest.raises(CoherenceError):
            fabric.read(local, region.base, 8)


class TestHitM:
    """Reads of Modified lines transfer dirty ownership (HitM)."""

    def test_remote_hitm_transfers_ownership(self):
        fabric, space, local, _peer, remote = make_fabric()
        region = space.allocate("r", 64, home=1)
        fabric.write(remote, region.base, 64)
        latency = fabric.read(local, region.base, 64)
        assert latency >= 114.0  # writer-homed remote cache case
        assert fabric.state_in(local, region.base) is LineState.MODIFIED
        assert fabric.state_in(remote, region.base) is None

    def test_subsequent_write_by_reader_is_free(self):
        fabric, space, local, _peer, remote = make_fabric()
        region = space.allocate("r", 64, home=1)
        fabric.write(remote, region.base, 64)
        fabric.read(local, region.base, 64)
        cost = fabric.write(local, region.base, 8)
        assert cost == pytest.approx(1.5 / 2.0)

    def test_reader_homed_is_slower_and_speculates(self):
        fabric, space, local, _peer, remote = make_fabric()
        region = space.allocate("r", 64, home=0)  # homed on reader
        fabric.write(remote, region.base, 64)
        latency = fabric.read(local, region.base, 64)
        assert latency >= 119.0
        assert fabric.counters.get("s0.spec_mem_read") == 1

    def test_local_hitm(self):
        fabric, space, local, peer, _remote = make_fabric()
        region = space.allocate("r", 64, home=0)
        fabric.write(peer, region.base, 64)
        latency = fabric.read(local, region.base, 64)
        assert latency == pytest.approx(48.0)
        assert fabric.state_in(local, region.base) is LineState.MODIFIED
        assert fabric.state_in(peer, region.base) is None


class TestSharingAndUpgrades:
    def test_clean_read_shares(self):
        fabric, space, local, peer, _remote = make_fabric()
        region = space.allocate("r", 64, home=0)
        fabric.read(peer, region.base, 64)   # peer E
        fabric.read(local, region.base, 64)  # share
        assert fabric.state_in(local, region.base) is LineState.SHARED
        assert fabric.state_in(peer, region.base) is LineState.SHARED
        assert len(fabric.holders_of(region.base)) == 2

    def test_upgrade_invalidates_local_sharers(self):
        fabric, space, local, peer, _remote = make_fabric()
        region = space.allocate("r", 64, home=0)
        fabric.read(peer, region.base, 64)
        fabric.read(local, region.base, 64)
        cost = fabric.write(local, region.base, 8)
        assert cost == pytest.approx(30.0 / 2.0)
        assert fabric.state_in(peer, region.base) is None
        assert fabric.state_in(local, region.base) is LineState.MODIFIED

    def test_upgrade_invalidates_remote_sharers(self):
        fabric, space, local, _peer, remote = make_fabric()
        region = space.allocate("r", 64, home=0)
        fabric.read(remote, region.base, 64)
        fabric.read(local, region.base, 64)
        before = fabric.counters.get("s0.rfo")
        cost = fabric.write(local, region.base, 8)
        assert cost >= 100.0 / 2.0
        assert fabric.counters.get("s0.rfo") == before + 1
        assert fabric.state_in(remote, region.base) is None

    def test_write_miss_to_shared_line_counts_one_rfo(self):
        fabric, space, local, _peer, remote = make_fabric()
        region = space.allocate("r", 64, home=1)
        fabric.read(remote, region.base, 64)
        fabric.write(local, region.base, 8)
        # The RFO fetch covers the invalidation; exactly one RFO counted.
        assert fabric.counters.get("s0.rfo") == 1
        assert fabric.state_in(remote, region.base) is None


class TestMultiLine:
    def test_mlp_discounts_subsequent_lines(self):
        fabric, space, local, _peer, _remote = make_fabric(mlp=10.0)
        region = space.allocate("r", 64 * 8, home=0)
        latency = fabric.read(local, region.base, 64 * 8)
        expected = 72.0 + 7 * 72.0 / 10.0
        assert latency == pytest.approx(expected)

    def test_access_burst_first_full_rest_overlapped(self):
        fabric, space, local, _peer, _remote = make_fabric(mlp=10.0)
        regions = [space.allocate(f"r{i}", 64, home=0) for i in range(4)]
        spans = [(r.base, 64) for r in regions]
        latency = fabric.access_burst(local, spans, write=False)
        expected = 72.0 + 3 * 72.0 / 10.0
        assert latency == pytest.approx(expected)

    def test_write_pipeline_divides_store_cost(self):
        fabric, space, local, _peer, _remote = make_fabric(write_pipeline=2.0)
        region = space.allocate("r", 64, home=0)
        cost = fabric.write(local, region.base, 64)
        assert cost == pytest.approx(72.0 / 2.0)


class TestEvictionAndWriteback:
    def test_dirty_eviction_to_remote_home_writes_back(self):
        sim = Simulator()
        space = AddressSpace()
        link = Link(sim, "upi", latency_ns=50.0, bandwidth_bytes_per_ns=66.0)
        fabric = CoherenceFabric(sim, space, COST, link)
        tiny = fabric.new_agent("tiny", socket=0, capacity_lines=2)
        region = space.allocate("r", 64 * 4, home=1)
        fabric.write(tiny, region.base, 64)
        fabric.write(tiny, region.base + 64, 64)
        fabric.write(tiny, region.base + 128, 64)  # evicts the first line
        assert fabric.counters.get("s0.writeback") == 1
        assert not tiny.holds(region.base // 64)

    def test_clean_eviction_no_writeback(self):
        sim = Simulator()
        space = AddressSpace()
        link = Link(sim, "upi", latency_ns=50.0, bandwidth_bytes_per_ns=66.0)
        fabric = CoherenceFabric(sim, space, COST, link)
        tiny = fabric.new_agent("tiny", socket=0, capacity_lines=1)
        region = space.allocate("r", 128, home=1)
        fabric.read(tiny, region.base, 64)
        fabric.read(tiny, region.base + 64, 64)
        assert fabric.counters.get("s0.writeback") == 0


class TestFlushAndNt:
    def test_flush_invalidates_everywhere(self):
        fabric, space, local, _peer, remote = make_fabric()
        region = space.allocate("r", 64, home=0)
        fabric.write(remote, region.base, 64)
        cost = fabric.flush(local, region.base, 64)
        assert cost == pytest.approx(COST.clflush)
        assert fabric.holders_of(region.base) == []
        assert fabric.counters.get("s1.writeback") == 1

    def test_nt_store_bypasses_cache(self):
        fabric, space, local, _peer, _remote = make_fabric()
        region = space.allocate("r", 64, home=1)
        fabric.nt_store(local, region.base, 64)
        assert fabric.state_in(local, region.base) is None
        assert fabric.counters.get("s0.nt_store") == 1

    def test_nt_store_invalidates_remote_copies(self):
        fabric, space, local, _peer, remote = make_fabric()
        region = space.allocate("r", 64, home=1)
        fabric.read(remote, region.base, 64)
        fabric.nt_store(local, region.base, 64)
        assert fabric.state_in(remote, region.base) is None

    def test_nt_store_local_home_no_link_traffic(self):
        fabric, space, local, _peer, _remote = make_fabric()
        region = space.allocate("r", 64, home=0)
        fabric.nt_store(local, region.base, 64)
        assert fabric.counters.get("s0.nt_store") == 0


class TestInvariants:
    def test_check_invariants_clean(self):
        fabric, space, local, peer, remote = make_fabric()
        region = space.allocate("r", 64 * 16, home=0)
        for i in range(16):
            fabric.write(local, region.base + i * 64, 8)
            fabric.read(remote, region.base + i * 64, 8)
            fabric.read(peer, region.base + i * 64, 8)
        fabric.check_invariants()

    def test_invariant_violation_detected(self):
        fabric, space, local, peer, _remote = make_fabric()
        region = space.allocate("r", 64, home=0)
        fabric.write(local, region.base, 8)
        # Corrupt: second exclusive holder behind the fabric's back.
        peer.set_state(region.base // 64, LineState.MODIFIED)
        fabric._holders[region.base // 64].append(peer)
        with pytest.raises(CoherenceError):
            fabric.check_invariants()


class TestConstruction:
    def test_bad_mlp(self):
        sim = Simulator()
        space = AddressSpace()
        link = Link(sim, "upi", latency_ns=50.0, bandwidth_bytes_per_ns=66.0)
        with pytest.raises(CoherenceError):
            CoherenceFabric(sim, space, COST, link, mlp=0.5)

    def test_bad_write_pipeline(self):
        sim = Simulator()
        space = AddressSpace()
        link = Link(sim, "upi", latency_ns=50.0, bandwidth_bytes_per_ns=66.0)
        with pytest.raises(CoherenceError):
            CoherenceFabric(sim, space, COST, link, write_pipeline=0.0)
